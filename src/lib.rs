//! Umbrella crate for the REPOSE reproduction workspace.
//!
//! This crate only re-exports the member crates so the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/` have a
//! single dependency root. Library users should depend on the individual
//! crates (`repose`, `repose-rptrie`, ...) directly.

pub use repose;
pub use repose_archive as archive;
pub use repose_baselines as baselines;
pub use repose_cluster as cluster;
pub use repose_datagen as datagen;
pub use repose_distance as distance;
pub use repose_durability as durability;
pub use repose_model as model;
pub use repose_rptrie as rptrie;
pub use repose_service as service;
pub use repose_shard as shard;
pub use repose_zorder as zorder;
