//! Online serving scenario: a fleet's live index keeps answering top-k
//! queries while trips stream in and out — the path the paper's
//! build-once pipeline cannot express, provided by `repose-service`.
//!
//! The example bootstraps a deployment from a synthetic corpus, serves
//! queries from several threads while a writer inserts fresh trips,
//! compacts under load, and prints the serving stats (QPS-style counters,
//! cache hit rate, latency percentiles).
//!
//! ```sh
//! cargo run --release --example online_serving
//! ```

use repose::{Repose, ReposeConfig};
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::Measure;
use repose_model::{Point, Trajectory};
use repose_service::ReposeService;
use std::sync::Arc;

fn main() {
    // 1. Bootstrap: build the frozen deployment exactly like the offline
    //    pipeline.
    let dataset = PaperDataset::TDrive.generate(0.2, 42);
    let config = ReposeConfig::new(Measure::Hausdorff)
        .with_partitions(8)
        .with_delta(PaperDataset::TDrive.paper_delta(Measure::Hausdorff));
    let service = Arc::new(ReposeService::new(Repose::build(&dataset, config)));
    println!(
        "bootstrapped service over {} trajectories ({} partitions)",
        service.len(),
        service.config().num_partitions
    );

    // 2. Serve: 4 reader threads replay queries while a writer streams in
    //    200 fresh trips and compacts halfway through.
    let queries = sample_queries(&dataset, 10, 7);
    std::thread::scope(|s| {
        for r in 0..4usize {
            let service = Arc::clone(&service);
            let queries = queries.clone();
            s.spawn(move || {
                for i in 0..150 {
                    let q = &queries[(r + i) % queries.len()];
                    let out = service.query(&q.points, 10).expect("query");
                    assert!(!out.hits.is_empty());
                }
            });
        }
        let service = Arc::clone(&service);
        let template = queries[0].points.clone();
        s.spawn(move || {
            for i in 0..200u64 {
                let jit = (i + 1) as f64 * 1e-5;
                service
                    .insert(Trajectory::new(
                        1_000_000 + i,
                        template
                            .iter()
                            .map(|p| Point::new(p.x + jit, p.y + jit))
                            .collect(),
                    ))
                    .expect("insert");
                if i == 100 {
                    let n = service.compact().expect("compact");
                    println!("mid-stream compaction folded the delta into {n} trajectories");
                }
            }
        });
    });

    // 3. The freshly inserted trips are immediately searchable: the query
    //    matching their template is now dominated by them (the template
    //    trajectory itself, at distance 0, keeps rank 1).
    let out = service.query(&queries[0].points, 5).expect("query");
    let fresh = out.hits.iter().filter(|h| h.id >= 1_000_000).count();
    assert!(fresh >= 4, "expected the fresh trips to dominate, got {fresh}/5");
    println!(
        "\ntop-5 for the written-to region: {:?} ({fresh} fresh trips)",
        out.hits.iter().map(|h| h.id).collect::<Vec<_>>()
    );

    // 4. Operational picture.
    let stats = service.stats();
    println!("\nserving stats:");
    println!("  queries       {:>8}  (cache hit rate {:.0}%)", stats.queries, stats.cache_hit_rate() * 100.0);
    println!("  inserts       {:>8}", stats.inserts);
    println!("  compactions   {:>8}", stats.compactions);
    println!("  delta backlog {:>8} entries", stats.delta_len);
    println!(
        "  read latency  p50 {:?}  p99 {:?}  max {:?}",
        stats.read_latency.p50, stats.read_latency.p99, stats.read_latency.max
    );
    println!(
        "  write latency p50 {:?}  p99 {:?}",
        stats.write_latency.p50, stats.write_latency.p99
    );

    // 5. Final compaction leaves a clean frozen deployment.
    let n = service.compact().expect("compact");
    println!("\nfinal compaction: {n} live trajectories, delta drained");
    assert_eq!(service.stats().delta_len, 0);
}
