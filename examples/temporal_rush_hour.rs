//! Spatio-temporal search (the paper's Section IX future-work item,
//! implemented in `repose::temporal`): find trips similar to a query trip
//! *that were driven during the same rush hour*.
//!
//! ```sh
//! cargo run --release --example temporal_rush_hour
//! ```

use repose::{Repose, ReposeConfig, TemporalRepose, TimeWindow};
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::Measure;
use std::collections::HashMap;

fn main() {
    let dataset = PaperDataset::Chengdu.generate(0.15, 8);
    // Assign each trip a start hour across a synthetic day (skewed toward
    // the 8am and 18pm peaks) and a ~20-minute duration.
    let spans: HashMap<u64, (f64, f64)> = dataset
        .trajectories()
        .iter()
        .map(|t| {
            let h = match t.id % 10 {
                0..=3 => 8.0,            // morning peak
                4..=6 => 18.0,           // evening peak
                other => other as f64 * 2.5,
            } + (t.id % 7) as f64 * 0.1;
            (t.id, (h, h + 0.33))
        })
        .collect();

    let config = ReposeConfig::new(Measure::Frechet)
        .with_partitions(16)
        .with_delta(PaperDataset::Chengdu.paper_delta(Measure::Frechet));
    let temporal = TemporalRepose::build(&dataset, spans.clone(), config);

    let query = &sample_queries(&dataset, 1, 4)[0];
    println!(
        "dataset: {} trips; query: trip {} (active {:.2}h..{:.2}h)\n",
        dataset.len(),
        query.id,
        spans[&query.id].0,
        spans[&query.id].1
    );

    for (label, window) in [
        ("whole day", TimeWindow::new(0.0, 24.0)),
        ("morning peak (7-9h)", TimeWindow::new(7.0, 9.0)),
        ("evening peak (17-19h)", TimeWindow::new(17.0, 19.0)),
        ("night (2-4h)", TimeWindow::new(2.0, 4.0)),
    ] {
        let out = temporal.query(&query.points, window, 5);
        let ids: Vec<String> = out
            .hits
            .iter()
            .map(|h| format!("{} ({:.4})", h.id, h.dist))
            .collect();
        println!("{label:<22} -> {}", if ids.is_empty() { "no trips".into() } else { ids.join(", ") });
        // Every returned trip really is active in the window.
        for h in &out.hits {
            let (a, b) = spans[&h.id];
            assert!(window.overlaps(a, b));
        }
    }

    // Sanity: the windowed answer is never better than the unrestricted one.
    let spatial: &Repose = temporal.spatial();
    let best = spatial.query(&query.points, 1).hits[0].dist;
    let night = temporal.query(&query.points, TimeWindow::new(2.0, 4.0), 1);
    if let Some(h) = night.hits.first() {
        assert!(h.dist >= best);
    }
    println!("\nTemporal windows compose with the spatial RP-Trie search unchanged —");
    println!("pruning bounds stay sound because they hold for any candidate subset.");
}
