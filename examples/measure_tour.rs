//! A tour of all six similarity measures on the same dataset — the
//! "limited support for similarity measures" motivation of Section I made
//! runnable: one REPOSE deployment per measure, same API, exact top-k
//! verified against a brute-force scan.
//!
//! ```sh
//! cargo run --release --example measure_tour
//! ```

use repose::{Repose, ReposeConfig};
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::{Measure, MeasureParams};

fn main() {
    let dataset = PaperDataset::SF.generate(0.2, 5);
    let query = &sample_queries(&dataset, 3, 99)[1];
    println!(
        "SF-like dataset: {} trajectories; query = trajectory {} ({} points)\n",
        dataset.len(),
        query.id,
        query.len()
    );
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>14}  top-3 (id: distance)",
        "measure", "metric?", "trie nodes", "pruned", "exact comps"
    );

    // ε for LCSS/EDR around one grid cell; ERP gap at the region center.
    let params = MeasureParams::with_eps(0.02);

    for measure in Measure::ALL {
        let config = ReposeConfig::new(measure)
            .with_partitions(8)
            .with_delta(PaperDataset::SF.paper_delta(measure))
            .with_params(params);
        let repose = Repose::build(&dataset, config);
        let out = repose.query(&query.points, 3);

        // cross-check against brute force
        let mut brute: Vec<(f64, u64)> = dataset
            .trajectories()
            .iter()
            .map(|t| (params.distance(measure, &query.points, &t.points), t.id))
            .collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(
            out.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            brute.iter().take(3).map(|e| e.1).collect::<Vec<_>>(),
            "{measure}: index answer must equal the scan answer"
        );

        let tops: Vec<String> = out
            .hits
            .iter()
            .map(|h| format!("{}: {:.4}", h.id, h.dist))
            .collect();
        println!(
            "{:<10} {:>8} {:>12} {:>10} {:>14}  {}",
            measure.name(),
            if measure.is_metric() { "yes" } else { "no" },
            repose.trie_nodes(),
            out.search.nodes_pruned + out.search.leaves_pruned,
            out.search.exact_computations,
            tops.join(", ")
        );
    }
    println!("\nAll six measures return exactly the brute-force answer.");
}
