//! Ridesharing analytics scenario (the paper's motivating batch workload):
//! a fleet operator issues a *batch* of top-k queries concentrated in hot
//! city regions and needs every compute node to contribute.
//!
//! This example contrasts heterogeneous and homogeneous partitioning on a
//! skewed query batch, reporting per-strategy worker utilization and load
//! imbalance — the Section V-A argument made concrete.
//!
//! ```sh
//! cargo run --release --example ridesharing_hotspots
//! ```

use repose::{PartitionStrategy, Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_model::Trajectory;
use std::time::Duration;

fn main() {
    let dataset = PaperDataset::Xian.generate(0.6, 11);
    println!(
        "Xi'an-like dataset: {} trajectories (dense downtown hotspots)",
        dataset.len()
    );

    // The skewed batch: queries drawn from the single busiest hotspot —
    // the "ride-hailing companies issue analysis queries in hot regions"
    // situation from Section V-A.
    let hot = hottest_region_queries(&dataset, 8);
    println!("query batch: {} trajectories from the busiest region\n", hot.len());

    for strategy in [
        PartitionStrategy::Heterogeneous,
        PartitionStrategy::Homogeneous,
        PartitionStrategy::Random,
    ] {
        let config = ReposeConfig::new(Measure::Hausdorff)
            .with_cluster(repose_cluster::ClusterConfig::paper_default().with_timing_repeats(5))
            .with_partitions(16)
            .with_delta(PaperDataset::Xian.paper_delta(Measure::Hausdorff))
            .with_strategy(strategy);
        let repose = Repose::build(&dataset, config);

        let mut total = Duration::ZERO;
        let mut imbalance = 0.0;
        let mut utilization = 0.0;
        for q in &hot {
            let out = repose.query(&q.points, 10);
            total += out.query_time();
            imbalance += out.job.imbalance();
            utilization += out.job.worker_utilization();
        }
        let n = hot.len() as f64;
        println!(
            "{:<14} batch time {:>9.3?}  imbalance {:>5.2}  worker utilization {:>4.0}%",
            strategy.name(),
            total,
            imbalance / n,
            100.0 * utilization / n
        );
    }
    println!("\nHeterogeneous partitioning equalizes per-worker work on a skewed batch");
    println!("(imbalance near 1); homogeneous placement concentrates the hot region's");
    println!("work on few workers, inflating the distributed makespan (Table VII's shape).");
}

/// Picks `n` query trajectories starting inside the busiest start-cell.
fn hottest_region_queries(dataset: &repose_model::Dataset, n: usize) -> Vec<Trajectory> {
    use std::collections::HashMap;
    let region = dataset.enclosing_square().expect("non-empty dataset");
    let cell = |t: &Trajectory| {
        let p = t.first().expect("non-empty trajectory");
        let gx = ((p.x - region.min.x) / region.width() * 8.0) as u32;
        let gy = ((p.y - region.min.y) / region.width() * 8.0) as u32;
        (gx.min(7), gy.min(7))
    };
    let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
    for t in dataset.trajectories() {
        *counts.entry(cell(t)).or_default() += 1;
    }
    let hottest = counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .expect("non-empty dataset")
        .0;
    dataset
        .trajectories()
        .iter()
        .filter(|t| cell(t) == hottest)
        .take(n)
        .cloned()
        .collect()
}
