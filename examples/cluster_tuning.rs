//! Operations-style parameter tuning: sweep the grid side `δ` and the
//! pivot count `Np` on one dataset and watch the U-shaped query-time curves
//! the paper reports in Tables V and VI.
//!
//! ```sh
//! cargo run --release --example cluster_tuning
//! ```

use repose::{Repose, ReposeConfig};
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::Measure;
use std::time::Duration;

fn main() {
    let dataset = PaperDataset::TDrive.generate(0.6, 21);
    let queries = sample_queries(&dataset, 5, 77);
    println!(
        "T-drive-like dataset: {} trajectories, {} tuning queries\n",
        dataset.len(),
        queries.len()
    );

    println!("-- Table V shape: query time vs grid side δ (Hausdorff) --");
    for delta in [0.01, 0.05, 0.10, 0.15, 0.20, 0.30] {
        let config = ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(8)
            .with_delta(delta);
        let repose = Repose::build(&dataset, config);
        let (t, comps) = run_batch(&repose, &queries);
        println!(
            "  δ = {delta:<5} query time {t:>10.3?}  exact comps {comps:>8}  trie nodes {:>7}",
            repose.trie_nodes()
        );
    }

    println!("\n-- Table VI shape: query time vs pivot count Np (Hausdorff) --");
    for np in [0, 1, 3, 5, 7, 9, 11] {
        let config = ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(8)
            .with_delta(0.15)
            .with_np(np);
        let repose = Repose::build(&dataset, config);
        let (t, comps) = run_batch(&repose, &queries);
        println!("  Np = {np:<3} query time {t:>10.3?}  exact comps {comps:>8}");
    }

    println!("\nThe two opposing forces of Tables V and VI are visible in the columns:");
    println!("finer grids / more pivots prune better (fewer exact computations) but pay");
    println!("more per-node bound work (larger tries, more pivot distances); the best");
    println!("setting balances them — pick δ and Np at the bottom of the curve.");
}

fn run_batch(repose: &Repose, queries: &[repose_model::Trajectory]) -> (Duration, usize) {
    let mut total = Duration::ZERO;
    let mut comps = 0;
    for q in queries {
        let out = repose.query(&q.points, 10);
        total += out.query_time();
        comps += out.search.exact_computations;
    }
    (total, comps)
}
