//! Quickstart: build a REPOSE deployment over a synthetic taxi dataset and
//! run a distributed top-k query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use repose::{Repose, ReposeConfig};
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::Measure;

fn main() {
    // 1. Generate a scaled-down T-drive-like dataset (see Table III of the
    //    paper; DESIGN.md documents the synthetic substitution).
    let dataset = PaperDataset::TDrive.generate(0.25, 42);
    let stats = dataset.stats();
    println!(
        "dataset: {} trajectories, avg length {:.1}, span ({:.2}, {:.2})",
        stats.cardinality, stats.avg_len, stats.spatial_span.0, stats.spatial_span.1
    );

    // 2. Build the distributed index: heterogeneous partitioning + one
    //    RP-Trie per partition, on a simulated 16x4 cluster.
    let config = ReposeConfig::new(Measure::Hausdorff)
        .with_partitions(16)
        .with_delta(PaperDataset::TDrive.paper_delta(Measure::Hausdorff));
    let repose = Repose::build(&dataset, config);
    println!(
        "index: {} partitions, {} trie nodes, {:.1} KiB, built in {:?} (simulated)",
        repose.num_partitions(),
        repose.trie_nodes(),
        repose.index_bytes() as f64 / 1024.0,
        repose.index_time()
    );

    // 3. Query: the top-10 trajectories most similar to a held-out one.
    let query = &sample_queries(&dataset, 1, 7)[0];
    let outcome = repose.query(&query.points, 10);
    println!(
        "query: {:?} simulated distributed time, {} exact distance computations",
        outcome.query_time(),
        outcome.search.exact_computations
    );
    for (rank, hit) in outcome.hits.iter().enumerate() {
        println!("  #{:<2} trajectory {:<6} distance {:.5}", rank + 1, hit.id, hit.dist);
    }
    assert_eq!(outcome.hits[0].id, query.id, "the query itself is rank 1");
}
