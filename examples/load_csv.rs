//! Loading real trajectory data from text files with `repose-model::io`.
//!
//! Writes a small dataset to a temp file in the line format
//! (`<id>:<x1>,<y1>;<x2>,<y2>;...`), loads it back, applies the paper's
//! preprocessing, and runs a query — the workflow for plugging a real
//! corpus (T-drive, Porto, ...) into REPOSE after converting it to the
//! line format.
//!
//! ```sh
//! cargo run --release --example load_csv
//! ```

use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_model::{io, PreprocessConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand in for a downloaded corpus.
    let corpus = PaperDataset::SF.generate(0.1, 33);
    let path = std::env::temp_dir().join("repose_example_corpus.txt");
    io::write_dataset(&corpus, std::fs::File::create(&path)?)?;
    println!("wrote {} trajectories to {}", corpus.len(), path.display());

    // Load + preprocess (drop len < 10, split len > 1000 — Section VII-A).
    let loaded = io::read_dataset(std::fs::File::open(&path)?)?;
    assert_eq!(loaded.trajectories(), corpus.trajectories());
    let dataset = loaded.preprocess(PreprocessConfig::default());
    let stats = dataset.stats();
    println!(
        "after preprocessing: {} trajectories, avg length {:.1}",
        stats.cardinality, stats.avg_len
    );

    // Index + query.
    let repose = Repose::build(
        &dataset,
        ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(8)
            .with_delta(PaperDataset::SF.paper_delta(Measure::Hausdorff)),
    );
    let query = &dataset.trajectories()[0];
    let out = repose.query(&query.points, 5);
    println!("top-5 for trajectory {}:", query.id);
    for hit in &out.hits {
        println!("  {:<6} {:.5}", hit.id, hit.dist);
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
