//! Exactness of cross-partition shared-threshold execution under real
//! concurrency: `Repose::query` / `Repose::query_batch` /
//! `Repose::query_two_phase` run every partition against one live
//! `SharedTopK` collector on a physical thread pool, so these tests
//! repeat each comparison many times to shake out interleavings and
//! assert the results are *distance-identical* (bit-for-bit equal sorted
//! distance multisets — Definition 3 permits tied *ids* to differ) to the
//! pre-change independent per-partition search.
//!
//! The thread pool sizes itself to the host (`available_parallelism`);
//! CI runners provide >= 4 workers, the regime the satellite task asks
//! for. On a smaller host the tests still verify exactness, just with
//! less interleaving variety.

use proptest::prelude::*;
use repose::{QueryOutcome, Repose, ReposeConfig};
use repose_cluster::ClusterConfig;
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::{Measure, MeasureParams};
use repose_model::{Dataset, Point, Trajectory};

fn small_cluster() -> ClusterConfig {
    ClusterConfig { workers: 4, cores_per_worker: 2, timing_repeats: 1 }
}

fn sorted_dist_bits(o: &QueryOutcome) -> Vec<u64> {
    repose_testkit::sorted_dist_bits(o.hits.iter().map(|h| h.dist))
}

/// Repeatedly compares shared-threshold execution with the independent
/// path on one deployment, over several queries.
fn assert_shared_matches_independent(
    r: &Repose,
    queries: &[Trajectory],
    k: usize,
    repeats: usize,
    label: &str,
) {
    for q in queries {
        let indep = r.query_independent(&q.points, k);
        let expect = sorted_dist_bits(&indep);
        for rep in 0..repeats {
            let shared = r.query(&q.points, k);
            assert_eq!(
                sorted_dist_bits(&shared),
                expect,
                "{label}: shared run {rep} diverged"
            );
            // The structural guarantee: the shared bound only ever
            // tightens local thresholds, on every interleaving.
            assert!(
                shared.search.exact_computations <= indep.search.exact_computations,
                "{label}: shared did more work"
            );
            let two = r.query_two_phase(&q.points, k);
            assert_eq!(
                sorted_dist_bits(&two),
                expect,
                "{label}: two-phase run {rep} diverged"
            );
            assert!(two.search.exact_computations <= indep.search.exact_computations);
        }
    }
}

#[test]
fn shared_query_distance_identical_all_measures_under_threads() {
    let data = PaperDataset::TDrive.generate(0.04, 0xA11CE);
    let queries = sample_queries(&data, 2, 7);
    for measure in Measure::ALL {
        let params = MeasureParams::with_eps(PaperDataset::TDrive.paper_delta(measure));
        let cfg = ReposeConfig::new(measure)
            .with_cluster(small_cluster())
            .with_partitions(8)
            .with_delta(PaperDataset::TDrive.paper_delta(measure))
            .with_params(params)
            .with_seed(3);
        let r = Repose::build(&data, cfg);
        assert_shared_matches_independent(&r, &queries, 10, 6, measure.name());
    }
}

#[test]
fn shared_query_exact_with_heavy_kth_boundary_ties() {
    // Worst case for a shared strict threshold: many *identical*
    // trajectories, with k cutting straight through a tie group, so the
    // global k-th distance is shared by more candidates than fit. The
    // returned distance multiset must still match exactly, every run.
    let mut trajs = Vec::new();
    for g in 0..6u64 {
        for j in 0..8u64 {
            let base = g as f64 * 3.0;
            trajs.push(Trajectory::new(
                g * 8 + j,
                (0..5).map(|s| Point::new(base + s as f64 * 0.4, base)).collect(),
            ));
        }
    }
    let data = Dataset::from_trajectories(trajs);
    let q: Vec<Point> = (0..5).map(|s| Point::new(s as f64 * 0.4, 0.0)).collect();
    for measure in Measure::ALL {
        let cfg = ReposeConfig::new(measure)
            .with_cluster(small_cluster())
            .with_partitions(6)
            .with_delta(0.9)
            .with_params(MeasureParams::with_eps(0.5))
            .with_seed(5);
        let r = Repose::build(&data, cfg);
        // k = 12 slices through the second group of 8 equal distances.
        let indep = r.query_independent(&q, 12);
        let expect = sorted_dist_bits(&indep);
        assert_eq!(indep.hits.len(), 12);
        for rep in 0..12 {
            let shared = r.query(&q, 12);
            assert_eq!(sorted_dist_bits(&shared), expect, "{measure} rep {rep}");
        }
    }
}

#[test]
fn shared_batch_distance_identical_to_independent() {
    let data = PaperDataset::Xian.generate(0.04, 99);
    let queries: Vec<Vec<Point>> = sample_queries(&data, 3, 17)
        .into_iter()
        .map(|t| t.points)
        .collect();
    for measure in [Measure::Hausdorff, Measure::Dtw, Measure::Erp] {
        let cfg = ReposeConfig::new(measure)
            .with_cluster(small_cluster())
            .with_partitions(8)
            .with_delta(PaperDataset::Xian.paper_delta(measure))
            .with_seed(21);
        let r = Repose::build(&data, cfg);
        for rep in 0..4 {
            let batch = r.query_batch(&queries, 9);
            assert_eq!(batch.len(), queries.len());
            for (q, b) in queries.iter().zip(&batch) {
                let indep = r.query_independent(q, 9);
                assert_eq!(
                    sorted_dist_bits(b),
                    sorted_dist_bits(&indep),
                    "{measure} rep {rep}"
                );
                assert!(b.search.exact_computations <= indep.search.exact_computations);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized datasets/queries/partitionings: shared execution must
    /// stay distance-identical to the independent path for a randomly
    /// chosen measure, on every thread interleaving proptest happens to
    /// produce.
    #[test]
    fn prop_shared_matches_independent(
        raw in proptest::collection::vec(
            proptest::collection::vec((0.0f64..48.0, 0.0f64..48.0), 2..10),
            12..60,
        ),
        qpts in proptest::collection::vec((0.0f64..48.0, 0.0f64..48.0), 2..10),
        partitions in 2usize..9,
        k in 1usize..14,
        measure_idx in 0usize..6,
    ) {
        let data = Dataset::from_trajectories(repose_testkit::trajectories_from_raw(raw));
        let q = repose_testkit::pts(&qpts);
        let measure = Measure::ALL[measure_idx];
        let cfg = ReposeConfig::new(measure)
            .with_cluster(small_cluster())
            .with_partitions(partitions)
            .with_delta(1.5)
            .with_params(MeasureParams::with_eps(0.8))
            .with_seed(0xF00D);
        let r = Repose::build(&data, cfg);
        let indep = r.query_independent(&q, k);
        let expect = sorted_dist_bits(&indep);
        for _ in 0..3 {
            prop_assert_eq!(&sorted_dist_bits(&r.query(&q, k)), &expect);
            prop_assert_eq!(&sorted_dist_bits(&r.query_two_phase(&q, k)), &expect);
        }
    }
}
