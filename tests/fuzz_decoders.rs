//! Hostile-input fuzzing for the two wire decoders that parse bytes from
//! outside the process: the shard protocol's [`Message::decode_frame`]
//! and the WAL's [`WalRecord::decode`].
//!
//! Three byte diets, per decoder:
//!
//! * **random garbage** — decoding must return a typed error or a valid
//!   value, never panic, never over-read, and a replay-style decode loop
//!   must always terminate;
//! * **truncations** — every strict prefix of a valid encoding must
//!   report `Truncated` (the torn-tail signal recovery relies on);
//! * **bit flips** — any single flipped payload bit must be caught (the
//!   CRC-32 guarantee), and header flips must at worst produce a typed
//!   error.

use proptest::prelude::*;
use repose_distance::Measure;
use repose_durability::{DecodeError, WalRecord};
use repose_model::Point;
use repose_shard::{Message, ProtocolError, RefusalReason};

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    // Bit patterns straight from u64 so NaNs, infinities, negative zero
    // and subnormals all travel through the encoders.
    proptest::collection::vec((any::<u64>(), any::<u64>()), 0..12).prop_map(|bits| {
        bits.iter()
            .map(|&(x, y)| Point::new(f64::from_bits(x), f64::from_bits(y)))
            .collect()
    })
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), arb_points())
            .prop_map(|(seq, id, points)| WalRecord::Upsert { seq, id, points }),
        (any::<u64>(), any::<u64>()).prop_map(|(seq, id)| WalRecord::Delete { seq, id }),
        any::<u64>().prop_map(|seq| WalRecord::Seal { seq }),
        any::<u64>().prop_map(|seq| WalRecord::Checkpoint { seq }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    let measure = (0..Measure::ALL.len()).prop_map(|i| Measure::ALL[i]);
    let reason = prop_oneof![
        Just(RefusalReason::NotLeader),
        Just(RefusalReason::ReplicationUnavailable),
        Just(RefusalReason::Durability),
    ];
    prop_oneof![
        (any::<u64>(), any::<u32>(), any::<u32>(), measure, any::<u64>(), arb_points()).prop_map(
            |(qid, attempt, k, measure, dk_bits, points)| Message::Query {
                qid,
                attempt,
                k,
                measure,
                seed_dk: f64::from_bits(dk_bits),
                points,
            }
        ),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
            |(qid, attempt, id, dist_bits)| Message::Hit {
                qid,
                attempt,
                id,
                dist: f64::from_bits(dist_bits),
            }
        ),
        (any::<u64>(), any::<u64>())
            .prop_map(|(qid, dk_bits)| Message::Tighten { qid, dk: f64::from_bits(dk_bits) }),
        (any::<u64>(), any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
            |(qid, attempt, hits_sent, c, a)| Message::Done {
                qid,
                attempt,
                hits_sent,
                exact_computations: c,
                exact_abandoned: a,
            }
        ),
        proptest::collection::vec(arb_record(), 0..4)
            .prop_map(|records| Message::Replicate { records }),
        any::<u64>().prop_map(|seq| Message::Ack { seq }),
        any::<u64>().prop_map(|seq| Message::Heartbeat { seq }),
        (any::<u64>(), any::<u64>(), arb_points())
            .prop_map(|(wid, id, points)| Message::Upsert { wid, id, points }),
        (any::<u64>(), any::<u64>()).prop_map(|(wid, id)| Message::Delete { wid, id }),
        (any::<u64>(), any::<u64>()).prop_map(|(wid, seq)| Message::WriteOk { wid, seq }),
        (any::<u64>(), reason).prop_map(|(wid, reason)| Message::WriteRefused { wid, reason }),
        Just(Message::Shutdown),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // ---- random garbage ----

    #[test]
    fn protocol_decode_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut cur = bytes.as_slice();
        // Drain like the transports do: decode until clean end or error.
        // Must terminate (every Ok(Some) consumes at least the 8-byte
        // header) and must never read past the buffer.
        loop {
            let before = cur.len();
            match Message::decode_frame(&mut cur) {
                Ok(None) => break,
                Ok(Some(_)) => prop_assert!(cur.len() <= before.saturating_sub(8)),
                Err(_) => break, // typed error, fine
            }
        }
    }

    #[test]
    fn wal_decode_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut cur = bytes.as_slice();
        loop {
            let before = cur.len();
            match WalRecord::decode(&mut cur) {
                Ok(None) => break,
                Ok(Some(_)) => prop_assert!(cur.len() <= before.saturating_sub(8)),
                Err(_) => break,
            }
        }
    }

    // ---- valid encodings roundtrip bit-exactly ----

    #[test]
    fn protocol_roundtrips_bit_exactly(msg in arb_message()) {
        let frame = msg.encode_frame();
        let mut cur = frame.as_slice();
        let back = Message::decode_frame(&mut cur).unwrap().unwrap();
        prop_assert!(cur.is_empty());
        // Compare re-encoded bytes, not values: NaN points are legal on
        // the wire and `PartialEq` would reject them even when the bit
        // patterns survived perfectly.
        prop_assert_eq!(back.encode_frame(), frame);
    }

    #[test]
    fn wal_record_roundtrips_bit_exactly(rec in arb_record()) {
        let bytes = rec.to_bytes();
        let mut cur = bytes.as_slice();
        let back = WalRecord::decode(&mut cur).unwrap().unwrap();
        prop_assert!(cur.is_empty());
        // Byte comparison for the same NaN reason as the protocol test.
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    // ---- truncation: every strict prefix is a torn tail ----

    #[test]
    fn protocol_truncation_is_typed(msg in arb_message(), frac in 0.0f64..1.0) {
        let frame = msg.encode_frame();
        let cut = ((frame.len() as f64) * frac) as usize; // < len: strict prefix
        let mut cur = &frame[..cut];
        match Message::decode_frame(&mut cur) {
            Ok(None) => prop_assert_eq!(cut, 0, "only empty input may decode to None"),
            Err(ProtocolError::Truncated) => {}
            other => prop_assert!(false, "prefix of {cut}/{} gave {other:?}", frame.len()),
        }
    }

    #[test]
    fn wal_truncation_is_typed(rec in arb_record(), frac in 0.0f64..1.0) {
        let bytes = rec.to_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let mut cur = &bytes[..cut];
        match WalRecord::decode(&mut cur) {
            Ok(None) => prop_assert_eq!(cut, 0, "only empty input may decode to None"),
            Err(DecodeError::Truncated) => {}
            other => prop_assert!(false, "prefix of {cut}/{} gave {other:?}", bytes.len()),
        }
    }

    // ---- bit flips ----

    #[test]
    fn protocol_payload_bit_flip_is_caught(msg in arb_message(), pick in any::<u64>()) {
        let mut frame = msg.encode_frame();
        // Flip one bit inside the CRC-protected payload (bytes 8..): the
        // checksum detects every single-bit error, so decode must fail.
        let payload_bits = (frame.len() - 8) * 8;
        let bit = 64 + (pick as usize % payload_bits);
        frame[bit / 8] ^= 1 << (bit % 8);
        let mut cur = frame.as_slice();
        prop_assert!(Message::decode_frame(&mut cur).is_err());
    }

    #[test]
    fn wal_payload_bit_flip_is_caught(rec in arb_record(), pick in any::<u64>()) {
        let mut bytes = rec.to_bytes();
        let payload_bits = (bytes.len() - 8) * 8;
        let bit = 64 + (pick as usize % payload_bits);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let mut cur = bytes.as_slice();
        prop_assert!(WalRecord::decode(&mut cur).is_err());
    }

    #[test]
    fn protocol_header_bit_flip_never_panics(msg in arb_message(), pick in any::<u64>()) {
        let mut frame = msg.encode_frame();
        let bit = pick as usize % 64; // somewhere in [len][crc]
        frame[bit / 8] ^= 1 << (bit % 8);
        let mut cur = frame.as_slice();
        let _ = Message::decode_frame(&mut cur); // typed error or miss, no panic
    }

    #[test]
    fn wal_header_bit_flip_never_panics(rec in arb_record(), pick in any::<u64>()) {
        let mut bytes = rec.to_bytes();
        let bit = pick as usize % 64;
        bytes[bit / 8] ^= 1 << (bit % 8);
        let mut cur = bytes.as_slice();
        let _ = WalRecord::decode(&mut cur);
    }
}
