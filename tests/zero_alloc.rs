//! Zero-allocation verification path: a counting global allocator proves
//! that warm verification kernels allocate nothing, and that warm index /
//! service queries do not allocate per verification.
//!
//! Three layers of evidence, from strict to end-to-end:
//!
//! 1. **Kernel-strict** — with a warm [`DistScratch`], a loop of exact and
//!    threshold-aware verifications over a [`TrajStore`] arena performs
//!    **exactly zero** heap allocations, for all six measures.
//! 2. **Index** — a warm `RpTrie::top_k` still allocates for its search
//!    structure (frontier heap, per-child bound states), but the count
//!    must not scale with the number of leaf verifications: growing a
//!    leaf's membership ~10× adds hundreds of verifications and the
//!    allocation count must grow by less than one per extra verification
//!    (the seed kernels allocated at least one DP buffer each).
//! 3. **Service** — same decoupling for a warm `ReposeService::query`
//!    whose delta backlog (scored by `refine_by_bound_shared`) grows, plus
//!    thread-scratch footprint stability across the warm query.
//!
//! All measuring tests serialize on one mutex so the global counter only
//! sees the code under test.

use repose::{Repose, ReposeConfig};
use repose_distance::{DistScratch, Measure, MeasureParams};
use repose_model::{Point, TrajStore, Trajectory};
use repose_rptrie::{RpTrie, RpTrieConfig};
use repose_service::{ReposeService, ServiceConfig};
use repose_zorder::Grid;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the measuring sections so concurrent tests in this binary
/// cannot pollute the counter.
static MEASURE: Mutex<()> = Mutex::new(());

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Minimum allocation count over three runs. The counter is global, so a
/// concurrent one-off allocation elsewhere in the process (libtest still
/// spawning a sibling test thread that will park on [`MEASURE`]) can
/// pollute a single window; it cannot pollute all three, while a real
/// per-call allocation shows up in every one.
fn min_allocs_during(mut f: impl FnMut()) -> u64 {
    (0..3).map(|_| allocs_during(&mut f)).min().unwrap()
}

/// Locks [`MEASURE`] even if a failed sibling poisoned it: each test's
/// measurement is independent, and the cascade of bogus `PoisonError`
/// failures would bury the real one.
fn measure_lock() -> std::sync::MutexGuard<'static, ()> {
    MEASURE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

use repose_testkit::arena;

#[test]
fn warm_kernels_allocate_exactly_zero() {
    let _g = measure_lock();
    let store = arena(24, 48, 1.3);
    let query: Vec<Point> = (0..40).map(|j| Point::new(j as f64 * 0.33, 0.4)).collect();
    let params = MeasureParams::with_eps(0.5);
    let mut scratch = DistScratch::new();

    let verify_all = |scratch: &mut DistScratch| {
        for m in Measure::ALL {
            for slot in 0..store.len() {
                let pts = store.points(slot);
                let d = params.distance_in(m, &query, pts, scratch);
                // Threshold-aware: one surviving pass, one abandoning pass.
                let lb = params.lower_bound(m, &query, pts);
                let pass =
                    params.distance_within_from_lb_in(m, &query, pts, d + 1.0, lb, scratch);
                assert_eq!(pass.map(f64::to_bits), Some(d.to_bits()));
                let refute =
                    params.distance_within_from_lb_in(m, &query, pts, d * 0.5, lb, scratch);
                assert!(refute.is_none() || d == 0.0);
            }
        }
    };

    // Warm-up: buffers grow to the largest trajectory involved.
    verify_all(&mut scratch);
    let fp = scratch.footprint();

    // Steady state: the entire verification loop — six measures, full and
    // threshold-aware kernels, every candidate — allocates NOTHING.
    let allocs = min_allocs_during(|| verify_all(&mut scratch));
    assert_eq!(allocs, 0, "warm verification kernels must not allocate");
    assert_eq!(scratch.footprint(), fp, "warm scratch must not grow");
}

#[test]
fn warm_trie_query_allocations_do_not_scale_with_verifications() {
    let _g = measure_lock();
    // Decoys sharing one coarse grid cell sequence: they all land in the
    // same leaf, so extra members add verifications without adding trie
    // nodes. Allocation growth must stay decoupled from verification
    // growth (the seed kernels allocated >= 1 buffer per verification).
    let query: Vec<Point> = (0..12).map(|j| Point::new(j as f64 * 0.3, 1.0)).collect();
    let grid = Grid::new(
        repose_model::Mbr::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)),
        1,
    );
    let build = |members: u64| {
        let mut store = TrajStore::new();
        for i in 0..members {
            let jit = (i % 16) as f64 * 0.07;
            let pts: Vec<Point> =
                (0..12).map(|j| Point::new(j as f64 * 0.3 + jit, 1.0 + jit)).collect();
            store.push(i, &pts);
        }
        let trie = RpTrie::build(
            &store,
            grid.clone(),
            RpTrieConfig::for_measure(Measure::Dtw).with_params(MeasureParams::with_eps(0.5)),
        );
        (store, trie)
    };

    let measure_warm = |store: &TrajStore, trie: &RpTrie| {
        // Warm: thread scratch + one full query.
        let r = trie.top_k(store, &query, 3);
        let verifications = r.stats.exact_computations;
        let a1 = min_allocs_during(|| {
            let _ = trie.top_k(store, &query, 3);
        });
        let a2 = min_allocs_during(|| {
            let _ = trie.top_k(store, &query, 3);
        });
        assert_eq!(a1, a2, "warm queries must be allocation-deterministic");
        (a1, verifications)
    };

    let (small_store, small_trie) = build(12);
    let (big_store, big_trie) = build(120);
    let (a_small, v_small) = measure_warm(&small_store, &small_trie);
    let (a_big, v_big) = measure_warm(&big_store, &big_trie);
    assert!(
        v_big >= v_small + 50,
        "setup broken: big index should verify many more members ({v_small} -> {v_big})"
    );
    let alloc_growth = a_big as i64 - a_small as i64;
    let verif_growth = (v_big - v_small) as i64;
    assert!(
        alloc_growth < verif_growth,
        "allocations grew with verifications: +{alloc_growth} allocs for +{verif_growth} \
         verifications (per-verification allocation is back)"
    );
}

#[test]
fn warm_service_query_allocations_do_not_scale_with_delta_verifications() {
    let _g = measure_lock();
    let query: Vec<Point> = (0..24).map(|j| Point::new(j as f64 * 0.3, 0.5)).collect();

    let build_service = |delta: u64| {
        let base = arena(60, 24, 0.9).to_trajectories();
        let repose = Repose::build(
            &repose_model::Dataset::from_trajectories(base),
            ReposeConfig::new(Measure::Frechet).with_partitions(2).with_delta(0.8),
        );
        // Cache off: every query must walk the real verification path.
        // Pool off: allocation counts must be deterministic run to run,
        // and pooled execution's publish counts (hence collector heap
        // growth) legitimately vary with thread interleaving.
        let svc = ReposeService::with_config(
            repose,
            ServiceConfig { cache_capacity: 0, pool_threads: 1, ..ServiceConfig::default() },
        );
        for i in 0..delta {
            let jit = (i % 9) as f64 * 0.11;
            svc.insert(Trajectory::new(
                10_000 + i,
                (0..24).map(|j| Point::new(j as f64 * 0.3 + jit, 0.5 + jit)).collect(),
            ))
            .unwrap();
        }
        svc
    };

    let measure_warm = |svc: &ReposeService| {
        let out = svc.query(&query, 5).unwrap(); // warm thread scratch + snapshot
        assert!(!out.cache_hit);
        let fp_before = DistScratch::thread_footprint();
        let mut verifications = 0;
        let a1 = min_allocs_during(|| {
            verifications = svc.query(&query, 5).unwrap().search.exact_computations;
        });
        let a2 = min_allocs_during(|| {
            let _ = svc.query(&query, 5);
        });
        assert_eq!(a1, a2, "warm service queries must be allocation-deterministic");
        assert_eq!(
            DistScratch::thread_footprint(),
            fp_before,
            "warm service query grew the thread scratch"
        );
        (a1, verifications)
    };

    let small = build_service(12);
    let big = build_service(96);
    let (a_small, v_small) = measure_warm(&small);
    let (a_big, v_big) = measure_warm(&big);
    assert!(
        v_big >= v_small + 40,
        "setup broken: bigger delta should add verifications ({v_small} -> {v_big})"
    );
    let alloc_growth = a_big as i64 - a_small as i64;
    let verif_growth = (v_big - v_small) as i64;
    assert!(
        alloc_growth < verif_growth,
        "service allocations grew with verifications: +{alloc_growth} allocs for \
         +{verif_growth} verifications"
    );
}

/// The refinement loop (`refine_by_bound_shared_in`) with a warm scratch
/// and a reusable candidate buffer allocates only for its own bookkeeping
/// (the result vector + top-k heap), independent of candidate count.
#[test]
fn warm_refinement_loop_allocations_independent_of_candidates() {
    let _g = measure_lock();
    let params = MeasureParams::with_eps(0.5);
    let query: Vec<Point> = (0..24).map(|j| Point::new(j as f64 * 0.3, 0.5)).collect();
    let mut scratch = DistScratch::new();

    let run = |store: &TrajStore, scratch: &mut DistScratch| -> u64 {
        let cands: Vec<(f64, u64, &[Point])> = (0..store.len())
            .map(|s| {
                (
                    params.lower_bound(Measure::Dtw, &query, store.points(s)),
                    store.id(s),
                    store.points(s),
                )
            })
            .collect();
        allocs_during(|| {
            let got = params.refine_by_bound_shared_in(
                Measure::Dtw,
                &query,
                4,
                f64::INFINITY,
                None,
                cands,
                |_| {},
                scratch,
            );
            assert_eq!(got.len(), 4);
        })
    };

    let small = arena(20, 24, 0.4);
    let big = arena(200, 24, 0.4);
    // Warm on the big arena first so buffers are final-size.
    let _ = run(&big, &mut scratch);
    let a_small = run(&small, &mut scratch);
    let a_big = run(&big, &mut scratch);
    // 180 extra candidates, all scored or bound-skipped: the scan itself
    // must not allocate per candidate (seed kernels did).
    assert!(
        (a_big as i64 - a_small as i64) < 20,
        "refinement allocations scale with candidates: {a_small} -> {a_big}"
    );
}
