//! Archive-accelerated crash restarts at the service level: a durable
//! service with [`ServiceConfig::archive`] configured must restart by
//! attaching the newest valid archive generation and replaying only the
//! WAL tail — and the result must be **bitwise identical** to the slow
//! path (full rebuild from the WAL base snapshot), for every measure.
//!
//! The robustness half: corrupt generations are quarantined loudly and
//! recovery degrades — newest generation → previous generation → full
//! rebuild — without ever serving a wrong answer.

use repose::{Repose, ReposeConfig};
use repose_archive::list_generations;
use repose_distance::{Measure, MeasureParams};
use repose_durability::{DurabilityConfig, FsyncPolicy};
use repose_service::{ReposeService, ServiceConfig};
use repose_testkit::{sorted_dist_bits, tie_dataset, tie_queries, tie_traj};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const PARTITIONS: usize = 4;

fn repose_config(measure: Measure) -> ReposeConfig {
    ReposeConfig::new(measure)
        .with_partitions(PARTITIONS)
        .with_delta(0.7)
        .with_params(MeasureParams::with_eps(0.5))
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("repose-arcrestart-{tag}-{}-{n}", std::process::id()))
}

fn archived_config(wal: &Path, arc: &Path) -> ServiceConfig {
    ServiceConfig {
        cache_capacity: 0,
        pool_threads: 1,
        durability: Some(DurabilityConfig::new(wal).with_fsync(FsyncPolicy::Always)),
        archive: Some(arc.to_path_buf()),
        ..ServiceConfig::default()
    }
}

/// Sorted hit-distance bit patterns of the fixed queries — bit-exact
/// state fingerprint.
fn fingerprint(svc: &ReposeService, k: usize) -> Vec<Vec<u64>> {
    tie_queries()
        .iter()
        .map(|q| sorted_dist_bits(svc.query(q, k).expect("query").hits.iter().map(|h| h.dist)))
        .collect()
}

/// Drives the canonical workload: a burst, a compaction (which installs
/// an archive generation at the checkpoint sequence), then a tail of
/// writes that only the WAL holds.
fn drive(svc: &ReposeService) {
    for i in 0..8u64 {
        svc.insert(tie_traj(500 + i)).expect("insert");
    }
    svc.remove(3).expect("remove");
    svc.compact().expect("compact");
    for i in 8..13u64 {
        svc.insert(tie_traj(500 + i)).expect("insert");
    }
    svc.remove(500).expect("remove");
}

#[test]
fn archive_restart_matches_full_rebuild_for_every_measure() {
    for measure in Measure::ALL {
        let (wal, arc) = (fresh_dir("eq-wal"), fresh_dir("eq-arc"));
        let cfg = repose_config(measure);
        let svc = ReposeService::try_with_config(
            Repose::build(&tie_dataset(0..40), cfg),
            archived_config(&wal, &arc),
        )
        .expect("archived service");
        drive(&svc);
        let want = fingerprint(&svc, 7);
        let stats = svc.stats();
        assert!(
            stats.archive_generations >= 2,
            "{measure}: construction + compaction must both install generations"
        );
        assert_eq!(stats.archive_write_failures, 0, "{measure}");
        drop(svc);

        // Fast path: attach + WAL tail.
        let (fast, report) = ReposeService::recover(cfg, archived_config(&wal, &arc))
            .expect("archive recovery");
        assert!(report.from_archive, "{measure}: valid archive was not attached");
        assert_eq!(report.archives_quarantined, 0, "{measure}");
        let archived_seq = report.archive_op_seq.expect("attached sequence");
        assert!(
            report.replayed_records < 15 && report.replayed_records >= 6,
            "{measure}: expected only the post-compaction tail, replayed {} past seq {}",
            report.replayed_records,
            archived_seq
        );

        // Slow path over the same journal: full rebuild, no archive.
        let (slow, slow_report) = ReposeService::recover(
            cfg,
            ServiceConfig { archive: None, ..archived_config(&wal, &arc) },
        )
        .expect("rebuild recovery");
        assert!(!slow_report.from_archive, "{measure}");
        assert_eq!(report.last_seq, slow_report.last_seq, "{measure}");

        assert_eq!(fast.len(), slow.len(), "{measure}: live count diverged");
        let got_fast = fingerprint(&fast, 7);
        assert_eq!(got_fast, fingerprint(&slow, 7), "{measure}: fast vs slow path diverged");
        assert_eq!(got_fast, want, "{measure}: restart diverged from pre-crash state");

        let _ = std::fs::remove_dir_all(&wal);
        let _ = std::fs::remove_dir_all(&arc);
    }
}

#[test]
fn corrupt_newest_generation_is_quarantined_and_recovery_degrades() {
    let (wal, arc) = (fresh_dir("q-wal"), fresh_dir("q-arc"));
    let cfg = repose_config(Measure::Hausdorff);
    let svc = ReposeService::try_with_config(
        Repose::build(&tie_dataset(0..40), cfg),
        archived_config(&wal, &arc),
    )
    .expect("archived service");
    drive(&svc);
    let want = fingerprint(&svc, 7);
    drop(svc);

    // Flip one byte in the *newest* generation.
    let gens = list_generations(&arc);
    assert_eq!(gens.len(), 2, "construction + compaction generations");
    let newest = gens.last().unwrap().1.clone();
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&newest, bytes).unwrap();

    // Recovery quarantines it. The older generation is intact but
    // pre-dates the WAL checkpoint (its tail was pruned), so it is
    // unusable and recovery falls back to the full rebuild — correct
    // answers either way.
    let (recovered, report) =
        ReposeService::recover(cfg, archived_config(&wal, &arc)).expect("recovery");
    assert_eq!(report.archives_quarantined, 1, "corrupt generation not quarantined");
    assert!(!report.from_archive, "stale generation must not mask lost tail records");
    assert!(!newest.exists(), "corrupt file left in place");
    assert!(arc.join(".quarantine").is_dir(), "quarantine evidence missing");
    assert_eq!(fingerprint(&recovered, 7), want, "fallback recovery diverged");

    // The recovery-time compaction path still works and installs a fresh,
    // usable generation.
    recovered.compact().expect("compact");
    let want2 = fingerprint(&recovered, 7);
    drop(recovered);
    let (again, report2) =
        ReposeService::recover(cfg, archived_config(&wal, &arc)).expect("second recovery");
    assert!(report2.from_archive, "fresh generation must attach");
    assert_eq!(fingerprint(&again, 7), want2);

    let _ = std::fs::remove_dir_all(&wal);
    let _ = std::fs::remove_dir_all(&arc);
}

#[test]
fn every_generation_destroyed_still_recovers_from_the_wal_alone() {
    let (wal, arc) = (fresh_dir("gone-wal"), fresh_dir("gone-arc"));
    let cfg = repose_config(Measure::Dtw);
    let svc = ReposeService::try_with_config(
        Repose::build(&tie_dataset(0..30), cfg),
        archived_config(&wal, &arc),
    )
    .expect("archived service");
    drive(&svc);
    let want = fingerprint(&svc, 5);
    drop(svc);

    let _ = std::fs::remove_dir_all(&arc);
    let (recovered, report) =
        ReposeService::recover(cfg, archived_config(&wal, &arc)).expect("recovery");
    assert!(!report.from_archive);
    assert_eq!(report.archives_quarantined, 0);
    assert_eq!(fingerprint(&recovered, 5), want, "WAL-only recovery diverged");
    let _ = std::fs::remove_dir_all(&wal);
}

#[test]
fn scrub_counts_sections_and_stats_track_generations() {
    let (wal, arc) = (fresh_dir("scrub-wal"), fresh_dir("scrub-arc"));
    let cfg = repose_config(Measure::Frechet);
    let svc = ReposeService::try_with_config(
        Repose::build(&tie_dataset(0..30), cfg),
        archived_config(&wal, &arc),
    )
    .expect("archived service");

    let report = svc.scrub().expect("an archived service must have a scrub target");
    assert!(report.is_clean(), "fresh generation scrubbed dirty: {:?}", report.corrupt);
    // 13 array sections per partition + 1 meta section.
    assert_eq!(report.sections, PARTITIONS * 13 + 1);
    let stats = svc.stats();
    assert_eq!(stats.scrubs, 1);
    assert_eq!(stats.scrub_corruptions, 0);
    assert_eq!(stats.archive_generations, 1);

    // Compaction rolls the scrub target onto the new generation.
    drive(&svc);
    assert!(svc.scrub().expect("scrub").is_clean());
    assert_eq!(svc.stats().archive_generations, 2);
    assert_eq!(svc.stats().scrubs, 2);
    drop(svc);

    // A volatile, archive-less service has nothing to scrub.
    let plain = ReposeService::with_config(
        Repose::build(&tie_dataset(0..10), cfg),
        ServiceConfig { cache_capacity: 0, pool_threads: 1, ..ServiceConfig::default() },
    );
    assert!(plain.scrub().is_none());
    assert_eq!(plain.stats().scrubs, 0);

    let _ = std::fs::remove_dir_all(&wal);
    let _ = std::fs::remove_dir_all(&arc);
}

#[test]
fn generations_are_pruned_to_the_retention_limit() {
    let (wal, arc) = (fresh_dir("prune-wal"), fresh_dir("prune-arc"));
    let cfg = repose_config(Measure::Hausdorff);
    let svc = ReposeService::try_with_config(
        Repose::build(&tie_dataset(0..20), cfg),
        archived_config(&wal, &arc),
    )
    .expect("archived service");
    for round in 0..4u64 {
        svc.insert(tie_traj(900 + round)).expect("insert");
        svc.compact().expect("compact");
    }
    assert_eq!(svc.stats().archive_generations, 5, "1 construction + 4 compactions");
    assert_eq!(
        list_generations(&arc).len(),
        2,
        "retention must keep exactly the newest generation plus one fallback"
    );
    let _ = std::fs::remove_dir_all(&wal);
    let _ = std::fs::remove_dir_all(&arc);
}
