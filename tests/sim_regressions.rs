//! Pinned simulation seeds: the deterministic-simulation regression
//! suite.
//!
//! Each pinned seed expands to a full whole-system schedule (workload +
//! fault arms + virtual-time jumps) and must uphold the shadow oracle's
//! exact-or-honestly-degraded contract, byte-identically, forever. When a
//! soak run finds a new failing seed, the fix lands together with that
//! seed appended here — the schedule it expands to becomes a permanent
//! regression test at zero storage cost.
//!
//! The suite also proves the harness has teeth: a deliberately planted
//! answer-truncation bug must be caught by the oracle and auto-shrunk to
//! a tiny replayable repro.

use repose_sim::{run_scenario, run_seed, shrink, PlantedBug, Scenario, SimMode, Verdict};

/// Seeds chosen to cover both deployment shapes and all six distance
/// measures (see each scenario's mode/measure in the assertion message).
/// Single-node durable: 0 (DTW), 3 (LCSS), 7 (Fréchet), 10 (EDR),
/// 13 (Hausdorff), 18 (ERP). Sharded: 2 (LCSS, replicated), 9 (DTW),
/// 11 (EDR, 3 shards), 12 (ERP, replicated), 14 (Hausdorff),
/// 24 (Fréchet, replicated).
const PINNED: &[u64] = &[0, 2, 3, 7, 9, 10, 11, 12, 13, 14, 18, 24];

#[test]
fn pinned_seeds_uphold_the_oracle() {
    for &seed in PINNED {
        let sc = Scenario::generate(seed);
        let report = run_scenario(&sc, None);
        assert_eq!(
            report.verdict,
            Verdict::Ok,
            "pinned seed {seed} ({:?}, {:?}) violated the oracle:\n{}",
            sc.mode,
            sc.measure,
            report.events.join("\n")
        );
    }
}

#[test]
fn pinned_seeds_cover_both_modes() {
    let modes: Vec<SimMode> = PINNED
        .iter()
        .map(|&s| Scenario::generate(s).mode)
        .collect();
    assert!(modes.contains(&SimMode::SingleNode), "pin a single-node seed");
    assert!(modes.contains(&SimMode::Sharded), "pin a sharded seed");
}

#[test]
fn pinned_seeds_are_byte_deterministic() {
    for &seed in PINNED {
        let a = run_seed(seed, None);
        let b = run_seed(seed, None);
        assert_eq!(
            a, b,
            "seed {seed} produced different event logs on identical runs"
        );
    }
}

#[test]
fn planted_bug_is_caught_and_shrunk_to_a_replayable_repro() {
    let planted = Some(PlantedBug::TruncateTopK);
    let seed = (0..64u64)
        .find(|&s| run_seed(s, planted).failed())
        .expect("the planted truncation bug must trip within 64 seeds");

    let shrunk = shrink(&Scenario::generate(seed), planted, 300);
    assert!(
        run_scenario(&shrunk.scenario, planted).failed(),
        "shrinking must preserve the failure"
    );
    assert!(
        shrunk.scenario.ops.len() <= 20,
        "seed {seed} shrank to {} ops; want a <=20-op repro",
        shrunk.scenario.ops.len()
    );

    // The minimized repro replays identically after a disk round-trip —
    // exactly what `experiments -- sim --repro <file>` does.
    let parsed = Scenario::from_json(&shrunk.scenario.to_json()).expect("repro round-trips");
    let a = run_scenario(&parsed, planted);
    let b = run_scenario(&shrunk.scenario, planted);
    assert!(a.failed(), "replayed repro must still fail");
    assert_eq!(a, b, "replayed repro must be byte-identical to the original");
}
