//! Crash-loop harness for the durability layer: kill the write path at
//! every registered fail point, recover from the journal directory, and
//! prove the recovered service answers **bitwise-identically** to a
//! shadow service that applied exactly the acknowledged writes — for all
//! six measures.
//!
//! The contract under test (`FsyncPolicy::Always`):
//!
//! * `Ok` from `insert`/`remove` means the write is durable — it must
//!   survive any later crash, torn write, or I/O error.
//! * `Err` means the write was **not** acknowledged — it must never
//!   appear after recovery, even when the failure left a torn tail of
//!   the record in the final segment.
//!
//! The graceful-degradation contracts ride along: a deadline-expired
//! query is always explicitly `degraded` and never cached, and a full
//! admission gate sheds load with a typed `Overloaded` error (counted in
//! `ServiceStats::queries_shed`).

use repose::{Repose, ReposeConfig};
use repose_distance::{Measure, MeasureParams};
use repose_durability::{DurabilityConfig, FailAction, FailPlan, FsyncPolicy, WAL_POINTS};
use repose_model::Trajectory;
use repose_service::{ReposeService, ServiceConfig, ServiceError};
use repose_testkit::{sorted_dist_bits, tie_dataset, tie_queries, tie_traj};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PARTITIONS: usize = 4;

fn repose_config(measure: Measure) -> ReposeConfig {
    ReposeConfig::new(measure)
        .with_partitions(PARTITIONS)
        .with_delta(0.7)
        .with_params(MeasureParams::with_eps(0.5))
}

/// A fresh, unique journal directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "repose-crash-{tag}-{}-{n}",
        std::process::id()
    ))
}

/// One acknowledged write, replayable onto a shadow service.
#[derive(Clone)]
enum Op {
    Upsert(Trajectory),
    Delete(u64),
}

/// Drives a fixed mixed workload (two insert/delete bursts with a
/// compaction after each) against `svc`, recording exactly the writes the
/// service acknowledged. Errors are expected — the armed fail point kills
/// the WAL mid-burst — and simply stop that operation from being recorded.
fn drive_workload(svc: &ReposeService) -> (Vec<Op>, usize) {
    let mut acked: Vec<Op> = Vec::new();
    let mut refused = 0usize;
    fn track(
        res: Result<(), ServiceError>,
        op: Op,
        acked: &mut Vec<Op>,
        refused: &mut usize,
    ) {
        match res {
            Ok(()) => acked.push(op),
            Err(_) => *refused += 1,
        }
    }

    for i in 0..10u64 {
        let t = tie_traj(200 + i);
        track(svc.insert(t.clone()), Op::Upsert(t), &mut acked, &mut refused);
    }
    for id in [3u64, 17] {
        track(svc.remove(id), Op::Delete(id), &mut acked, &mut refused);
    }
    // Compaction exercises wal.snapshot / wal.rotate / wal.checkpoint; a
    // failure here is a refused *checkpoint*, never a lost write.
    if svc.compact().is_err() {
        refused += 1;
    }
    for i in 10..20u64 {
        let t = tie_traj(200 + i);
        track(svc.insert(t.clone()), Op::Upsert(t), &mut acked, &mut refused);
    }
    track(svc.remove(44), Op::Delete(44), &mut acked, &mut refused);
    if svc.compact().is_err() {
        refused += 1;
    }
    (acked, refused)
}

/// How many hits of `point` to let pass before firing, so the failure
/// lands mid-workload: `wal.snapshot` is hit once at construction (the
/// base-0 snapshot) and the per-append points several times per burst.
fn countdown_for(point: &str) -> u32 {
    match point {
        "wal.append" | "wal.flush" | "wal.sync" => 5,
        "wal.snapshot" => 1,
        _ => 0,
    }
}

/// The core crash loop: for every registered fail point × every measure,
/// crash, recover, and compare against the acknowledged-writes shadow.
#[test]
fn recovery_matches_acknowledged_writes_at_every_fail_point() {
    let actions = [FailAction::Crash, FailAction::ShortWrite, FailAction::IoError];
    for (mi, &measure) in Measure::ALL.iter().enumerate() {
        // WAL points only: an injected `arc.*` failure never refuses a
        // client operation (the archive suites cover those points).
        for (pi, &point) in WAL_POINTS.iter().enumerate() {
            // Cycle the action so every (point, action) pair is covered
            // across the measure sweep; all three are fail-stop.
            let action = actions[(mi + pi) % actions.len()];
            let dir = fresh_dir("loop");
            let plan = FailPlan::new();
            plan.arm(point, action, countdown_for(point));

            let cfg = repose_config(measure);
            let svc = ReposeService::try_with_config(
                Repose::build(&tie_dataset(0..60), cfg),
                ServiceConfig {
                    cache_capacity: 0,
                    pool_threads: 1,
                    durability: Some(
                        DurabilityConfig::new(&dir)
                            .with_fsync(FsyncPolicy::Always)
                            .with_failpoints(plan.clone()),
                    ),
                    ..ServiceConfig::default()
                },
            )
            .expect("durable service construction");

            let (acked, refused) = drive_workload(&svc);
            assert!(
                plan.any_fired(),
                "{measure} {point}: the armed fail point never fired"
            );
            assert!(
                refused > 0,
                "{measure} {point}: the injected failure refused no operation"
            );
            drop(svc);

            // Recover from the journal alone (no fail plan this time).
            let (recovered, report) = ReposeService::recover(
                cfg,
                ServiceConfig {
                    cache_capacity: 0,
                    pool_threads: 1,
                    durability: Some(DurabilityConfig::new(&dir)),
                    ..ServiceConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("{measure} {point}: recovery failed: {e}"));
            assert!(
                report.replayed_records as usize <= acked.len(),
                "{measure} {point}: replayed more records than were acknowledged"
            );
            assert_eq!(
                recovered.stats().recovered_records,
                report.replayed_records
            );

            // Shadow: a volatile service holding exactly the acknowledged
            // writes, in acknowledgment order.
            let shadow = ReposeService::with_config(
                Repose::build(&tie_dataset(0..60), cfg),
                ServiceConfig {
                    cache_capacity: 0,
                    pool_threads: 1,
                    ..ServiceConfig::default()
                },
            );
            for op in &acked {
                match op {
                    Op::Upsert(t) => shadow.insert(t.clone()).expect("shadow insert"),
                    Op::Delete(id) => shadow.remove(*id).expect("shadow remove"),
                }
            }

            assert_eq!(
                recovered.len(),
                shadow.len(),
                "{measure} {point}: live count diverged after recovery"
            );
            for q in &tie_queries() {
                for k in [3usize, 9] {
                    let r = recovered.query(q, k).expect("recovered query");
                    let s = shadow.query(q, k).expect("shadow query");
                    assert_eq!(
                        sorted_dist_bits(r.hits.iter().map(|h| h.dist)),
                        sorted_dist_bits(s.hits.iter().map(|h| h.dist)),
                        "{measure} {point} ({action:?}) k={k}: recovered state \
                         differs from the acknowledged-writes shadow"
                    );
                    assert!(!r.degraded, "exact path must never report degraded");
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A torn tail never surfaces an unacknowledged write and never drops an
/// acknowledged one: the recovered state is exactly the acknowledged
/// prefix of the burst.
#[test]
fn torn_tail_recovers_exactly_the_acknowledged_prefix() {
    let dir = fresh_dir("torn");
    let plan = FailPlan::new();
    // The 8th flush tears mid-record: inserts 1..=7 acknowledged, the 8th
    // half-written and refused.
    plan.arm("wal.flush", FailAction::ShortWrite, 7);
    let cfg = repose_config(Measure::Hausdorff);
    let svc = ReposeService::try_with_config(
        Repose::build(&tie_dataset(0..30), cfg),
        ServiceConfig {
            cache_capacity: 0,
            pool_threads: 1,
            durability: Some(
                DurabilityConfig::new(&dir)
                    .with_fsync(FsyncPolicy::Always)
                    .with_failpoints(plan),
            ),
            ..ServiceConfig::default()
        },
    )
    .expect("durable service");

    let mut acked = 0u64;
    let mut first_err = None;
    for i in 0..12u64 {
        match svc.insert(tie_traj(300 + i)) {
            Ok(()) => acked += 1,
            Err(e) => {
                first_err.get_or_insert(i);
                assert!(
                    matches!(e, ServiceError::Durability(_)),
                    "expected a durability error, got {e}"
                );
            }
        }
    }
    assert_eq!(acked, 7, "exactly the writes before the torn flush are acked");
    assert_eq!(first_err, Some(7), "the torn write itself must be refused");
    drop(svc);

    let (recovered, report) = ReposeService::recover(
        cfg,
        ServiceConfig {
            cache_capacity: 0,
            pool_threads: 1,
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServiceConfig::default()
        },
    )
    .expect("recovery");
    assert_eq!(report.replayed_records, 7);
    assert!(report.torn_bytes > 0, "the torn frame must be truncated");
    assert_eq!(recovered.len(), tie_dataset(0..30).len() + 7);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery is idempotent: recovering the same journal twice (or three
/// times) is a no-op yielding bitwise-identical state. The regression this
/// pins down: replay used to *count* a torn tail without truncating it, so
/// the first recovery's `Wal::resume` opened a fresh segment, the torn
/// bytes were stranded in a now non-final segment, and the second recovery
/// refused the journal as corrupt.
#[test]
fn recovery_is_idempotent_after_a_torn_tail() {
    let dir = fresh_dir("idem");
    let plan = FailPlan::new();
    plan.arm("wal.flush", FailAction::ShortWrite, 5);
    let cfg = repose_config(Measure::Hausdorff);
    let svc = ReposeService::try_with_config(
        Repose::build(&tie_dataset(0..30), cfg),
        ServiceConfig {
            cache_capacity: 0,
            pool_threads: 1,
            durability: Some(
                DurabilityConfig::new(&dir)
                    .with_fsync(FsyncPolicy::Always)
                    .with_failpoints(plan),
            ),
            ..ServiceConfig::default()
        },
    )
    .expect("durable service");
    let mut acked = 0u64;
    for i in 0..9u64 {
        if svc.insert(tie_traj(600 + i)).is_ok() {
            acked += 1;
        }
    }
    assert_eq!(acked, 5, "the torn flush refuses the 6th write");
    drop(svc);

    let durable_only = || ServiceConfig {
        cache_capacity: 0,
        pool_threads: 1,
        durability: Some(DurabilityConfig::new(&dir)),
        ..ServiceConfig::default()
    };
    let (first, report1) =
        ReposeService::recover(cfg, durable_only()).expect("first recovery");
    assert!(report1.torn_bytes > 0, "the torn frame must be found once");
    let q = &tie_queries()[0];
    let want = sorted_dist_bits(
        first.query(q, 5).expect("query").hits.iter().map(|h| h.dist),
    );
    let (want_len, want_seq) = (first.len(), report1.last_seq);
    drop(first);

    // The torn tail was physically truncated, so every later recovery of
    // the same journal is a clean no-op.
    for round in 2..=3 {
        let (again, report) = ReposeService::recover(cfg, durable_only())
            .unwrap_or_else(|e| panic!("recovery #{round} must be a no-op, got: {e}"));
        assert_eq!(report.torn_bytes, 0, "recovery #{round} found torn bytes again");
        assert_eq!(report.replayed_records, report1.replayed_records, "#{round}");
        assert_eq!(report.last_seq, want_seq, "#{round}");
        assert_eq!(again.len(), want_len, "#{round}");
        assert_eq!(
            sorted_dist_bits(
                again.query(q, 5).expect("query").hits.iter().map(|h| h.dist)
            ),
            want.clone(),
            "recovery #{round} diverged from the first"
        );
        drop(again);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An expired deadline yields an explicitly degraded partial answer —
/// never a silently wrong "exact" one — and degraded answers never reach
/// the cache.
#[test]
fn expired_deadline_degrades_explicitly_and_is_never_cached() {
    let svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..80), repose_config(Measure::Hausdorff)),
        ServiceConfig {
            cache_capacity: 64,
            pool_threads: 1,
            query_deadline: Some(std::time::Duration::ZERO),
            ..ServiceConfig::default()
        },
    );
    let q = &tie_queries()[0];
    let first = svc.query(q, 5).expect("query");
    assert!(first.degraded, "a zero budget must degrade every query");
    assert_eq!(first.partitions_searched, 0);
    assert_eq!(first.partitions_skipped, PARTITIONS);
    assert!(first.hits.is_empty());

    // A degraded answer must not have been cached as if it were exact.
    let second = svc.query(q, 5).expect("query");
    assert!(!second.cache_hit, "a degraded answer was served from cache");
    assert!(second.degraded);

    let batch = svc.query_batch(&tie_queries(), 5).expect("batch");
    for out in &batch {
        assert!(out.degraded || out.cache_hit);
    }
    assert!(svc.stats().queries_degraded >= 2);
    assert_eq!(svc.stats().queries_shed, 0);
}

/// The deadline-free default path reports full coverage on every query —
/// the exactness contract the rest of the suite (pooled_service) verifies
/// bitwise.
#[test]
fn deadline_free_queries_always_report_full_coverage() {
    let svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..40), repose_config(Measure::Frechet)),
        ServiceConfig { cache_capacity: 0, pool_threads: 1, ..ServiceConfig::default() },
    );
    for q in &tie_queries() {
        let out = svc.query(q, 7).expect("query");
        assert!(!out.degraded);
        assert_eq!(out.partitions_searched, PARTITIONS);
        assert_eq!(out.partitions_skipped, 0);
    }
    assert_eq!(svc.stats().queries_degraded, 0);
}

/// A bounded admission gate sheds concurrent load with the typed
/// `Overloaded` error instead of queueing without bound — and what it
/// sheds is counted.
#[test]
fn admission_gate_sheds_concurrent_load_with_typed_error() {
    let svc = Arc::new(ReposeService::with_config(
        Repose::build(&tie_dataset(0..100), repose_config(Measure::Hausdorff)),
        ServiceConfig {
            cache_capacity: 0, // every query must take the gate
            pool_threads: 1,
            max_inflight_queries: 1,
            ..ServiceConfig::default()
        },
    ));
    let qs = tie_queries();
    let shed = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for r in 0..4usize {
            let svc = Arc::clone(&svc);
            let qs = qs.clone();
            let shed = Arc::clone(&shed);
            let served = Arc::clone(&served);
            s.spawn(move || {
                for i in 0..200 {
                    match svc.query(&qs[(r + i) % qs.len()], 5) {
                        Ok(out) => {
                            assert!(!out.degraded);
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServiceError::Overloaded { in_flight, limit }) => {
                            assert_eq!(limit, 1);
                            assert!(in_flight >= 1);
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error under load: {e}"),
                    }
                }
            });
        }
    });
    let shed = shed.load(Ordering::Relaxed);
    let served = served.load(Ordering::Relaxed);
    assert!(served > 0, "the gate must keep serving under load");
    assert!(shed > 0, "4 threads against a 1-slot gate never overlapped");
    let stats = svc.stats();
    assert_eq!(stats.queries_shed, shed);
    assert_eq!(stats.queries, served + shed);
}

/// Unbounded admission (the default) never sheds.
#[test]
fn unbounded_admission_never_sheds() {
    let svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..30), repose_config(Measure::Hausdorff)),
        ServiceConfig { cache_capacity: 0, pool_threads: 1, ..ServiceConfig::default() },
    );
    for q in &tie_queries() {
        svc.query(q, 3).expect("unbounded admission refused a query");
    }
    assert_eq!(svc.stats().queries_shed, 0);
}

/// Durable writes and checkpoints show up in the service stats, and a
/// second service cannot accidentally re-create a journal over an
/// existing one.
#[test]
fn durable_stats_and_journal_exclusivity() {
    let dir = fresh_dir("stats");
    let cfg = repose_config(Measure::Hausdorff);
    let svc = ReposeService::try_with_config(
        Repose::build(&tie_dataset(0..30), cfg),
        ServiceConfig {
            cache_capacity: 0,
            pool_threads: 1,
            durability: Some(DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Always)),
            ..ServiceConfig::default()
        },
    )
    .expect("durable service");
    for i in 0..5u64 {
        svc.insert(tie_traj(400 + i)).expect("insert");
    }
    svc.compact().expect("compact");
    let stats = svc.stats();
    assert!(stats.wal_bytes > 0, "durable writes must be counted");
    assert!(stats.wal_fsyncs >= 5, "Always policy syncs every append");
    assert_eq!(stats.recovered_records, 0, "fresh service recovered nothing");

    // Re-creating over the live journal directory must be refused.
    let err = ReposeService::try_with_config(
        Repose::build(&tie_dataset(0..30), cfg),
        ServiceConfig {
            cache_capacity: 0,
            pool_threads: 1,
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServiceConfig::default()
        },
    );
    assert!(
        matches!(err, Err(ServiceError::Durability(_))),
        "creating a journal over an existing one must fail typed"
    );
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
}
