//! Cross-crate integration tests: the full pipeline from synthetic data
//! generation through distributed indexing to query answers, checked
//! against brute force for every measure, every partitioning strategy, and
//! every algorithm.

use repose::{PartitionStrategy, Repose, ReposeConfig};
use repose_baselines::{BaselinePlacement, Dft, DftConfig, Dita, DitaConfig, LinearScan};
use repose_cluster::ClusterConfig;
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::{Measure, MeasureParams};
use repose_model::{Dataset, Point, Trajectory};

fn brute_force(
    d: &Dataset,
    q: &[Point],
    k: usize,
    m: Measure,
    p: MeasureParams,
) -> Vec<(u64, f64)> {
    let mut v: Vec<(f64, u64)> = d
        .trajectories()
        .iter()
        .map(|t| (p.distance(m, q, &t.points), t.id))
        .collect();
    v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    v.truncate(k);
    v.into_iter().map(|(d, i)| (i, d)).collect()
}

fn small_cluster() -> ClusterConfig {
    ClusterConfig { workers: 4, cores_per_worker: 2, timing_repeats: 1 }
}

/// Asserts `got` is a valid top-k: same multiset of distances as the brute
/// force answer (ties may be resolved differently — Definition 3 permits
/// any tied subset), and every reported distance is the trajectory's true
/// distance.
fn assert_valid_topk(
    got: &[(u64, f64)],
    expect: &[(u64, f64)],
    d: &Dataset,
    q: &[Point],
    m: Measure,
    p: MeasureParams,
    ctx: &str,
) {
    assert_eq!(got.len(), expect.len(), "{ctx}: wrong result size");
    for ((_, gd), (_, ed)) in got.iter().zip(expect) {
        assert!((gd - ed).abs() < 1e-9, "{ctx}: distance vector differs: {gd} vs {ed}");
    }
    let idx = d.id_index();
    for (id, dist) in got {
        let t = &d.trajectories()[idx[id]];
        let true_d = p.distance(m, q, &t.points);
        assert!((dist - true_d).abs() < 1e-9, "{ctx}: reported distance wrong for {id}");
    }
}

#[test]
fn repose_agrees_with_brute_force_on_synthetic_data() {
    let dataset = PaperDataset::SF.generate(0.08, 3);
    let queries = sample_queries(&dataset, 3, 17);
    let params = MeasureParams::with_eps(0.01);
    for measure in Measure::ALL {
        let cfg = ReposeConfig::new(measure)
            .with_cluster(small_cluster())
            .with_partitions(8)
            .with_delta(PaperDataset::SF.paper_delta(measure))
            .with_params(params);
        let repose = Repose::build(&dataset, cfg);
        for q in &queries {
            let got: Vec<(u64, f64)> = repose
                .query(&q.points, 10)
                .hits
                .iter()
                .map(|h| (h.id, h.dist))
                .collect();
            let expect = brute_force(&dataset, &q.points, 10, measure, params);
            assert_valid_topk(&got, &expect, &dataset, &q.points, measure, params, measure.name());
        }
    }
}

#[test]
fn all_algorithms_agree_on_hausdorff_and_frechet() {
    let dataset = PaperDataset::TDrive.generate(0.06, 9);
    let queries = sample_queries(&dataset, 2, 31);
    let params = MeasureParams::default();
    for measure in [Measure::Hausdorff, Measure::Frechet] {
        let repose = Repose::build(
            &dataset,
            ReposeConfig::new(measure)
                .with_cluster(small_cluster())
                .with_partitions(8)
                .with_delta(PaperDataset::TDrive.paper_delta(measure)),
        );
        let ls = LinearScan::build(&dataset, small_cluster(), 8, measure, params);
        let dft = Dft::build(
            &dataset,
            DftConfig {
                cluster: small_cluster(),
                num_partitions: 8,
                sample_factor: 5,
                placement: BaselinePlacement::Homogeneous,
                seed: 1,
            },
            measure,
            params,
        );
        for q in &queries {
            let k = 20;
            let want: Vec<u64> = brute_force(&dataset, &q.points, k, measure, params)
                .into_iter()
                .map(|e| e.0)
                .collect();
            let r: Vec<u64> = repose.query(&q.points, k).hits.iter().map(|h| h.id).collect();
            let l: Vec<u64> = ls.query(&q.points, k).hits.iter().map(|h| h.id).collect();
            let f: Vec<u64> = dft.query(&q.points, k).hits.iter().map(|h| h.id).collect();
            assert_eq!(r, want, "REPOSE {measure}");
            assert_eq!(l, want, "LS {measure}");
            assert_eq!(f, want, "DFT {measure}");
            if Dita::supports(measure) {
                let dita = Dita::build(
                    &dataset,
                    DitaConfig {
                        cluster: small_cluster(),
                        num_partitions: 8,
                        nl: 16,
                        c_factor: 5,
                        placement: BaselinePlacement::Homogeneous,
                    },
                    measure,
                    params,
                );
                let t: Vec<u64> =
                    dita.query(&q.points, k).hits.iter().map(|h| h.id).collect();
                assert_eq!(t, want, "DITA {measure}");
            }
        }
    }
}

#[test]
fn partitioning_strategies_preserve_results_on_generated_data() {
    let dataset = PaperDataset::Porto.generate(0.03, 13);
    let q = &sample_queries(&dataset, 1, 5)[0];
    let mut answers = Vec::new();
    for strategy in [
        PartitionStrategy::Heterogeneous,
        PartitionStrategy::Homogeneous,
        PartitionStrategy::Random,
    ] {
        let cfg = ReposeConfig::new(Measure::Hausdorff)
            .with_cluster(small_cluster())
            .with_partitions(6)
            .with_delta(0.05)
            .with_strategy(strategy);
        let repose = Repose::build(&dataset, cfg);
        answers.push(
            repose
                .query(&q.points, 15)
                .hits
                .iter()
                .map(|h| h.id)
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[0], answers[2]);
}

#[test]
fn preprocessing_pipeline_roundtrip() {
    // Long trajectories get split, short ones dropped, and the result is
    // still queryable.
    let mut trajs = Vec::new();
    for i in 0..30u64 {
        let len = match i % 3 {
            0 => 5,    // dropped
            1 => 40,   // kept
            _ => 2500, // split into 3 (1000+1000+500)
        };
        trajs.push(Trajectory::new(
            i,
            (0..len)
                .map(|j| Point::new(j as f64 * 0.01 + i as f64, i as f64))
                .collect(),
        ));
    }
    let dataset = Dataset::from_trajectories(trajs).preprocess(Default::default());
    assert!(dataset.trajectories().iter().all(|t| t.len() >= 10 && t.len() <= 1000));
    let cfg = ReposeConfig::new(Measure::Hausdorff)
        .with_cluster(small_cluster())
        .with_partitions(4)
        .with_delta(0.5);
    let repose = Repose::build(&dataset, cfg);
    let q = &dataset.trajectories()[0];
    let out = repose.query(&q.points, 5);
    assert_eq!(out.hits[0].id, q.id);
}

#[test]
fn query_trajectories_not_in_dataset_work() {
    let dataset = PaperDataset::Rome.generate(0.1, 23);
    let cfg = ReposeConfig::new(Measure::Dtw)
        .with_cluster(small_cluster())
        .with_partitions(4)
        .with_delta(0.05);
    let repose = Repose::build(&dataset, cfg);
    // A synthetic query that is in the region but not in the dataset.
    let q: Vec<Point> = (0..15).map(|i| Point::new(0.3 + i as f64 * 0.01, 0.4)).collect();
    let out = repose.query(&q, 5);
    assert_eq!(out.hits.len(), 5);
    let expect = brute_force(&dataset, &q, 5, Measure::Dtw, MeasureParams::default());
    assert_eq!(
        out.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
        expect.iter().map(|e| e.0).collect::<Vec<_>>()
    );
}
