//! Property-based integration tests of the paper's core invariants: every
//! lower bound must actually lower-bound the exact distances, and the index
//! answer must always equal the scan answer, for randomized datasets.

use proptest::prelude::*;
use repose_datagen::sample_queries;
use repose_distance::{Measure, MeasureParams};
use repose_model::{Dataset, Mbr, Point, TrajStore, Trajectory};
use repose_rptrie::{RpTrie, RpTrieConfig};
use repose_zorder::Grid;

/// Random trajectory set in [0, 64)^2 with modest lengths.
fn arb_trajectories() -> impl Strategy<Value = Vec<Trajectory>> {
    repose_testkit::arb_trajectories(64.0, 1..40, 2..12)
}

fn region() -> Mbr {
    repose_testkit::square(64.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: for random data, random queries, every
    /// measure, and every k — the RP-Trie answer equals brute force.
    #[test]
    fn rptrie_always_matches_brute_force(
        trajs in arb_trajectories(),
        query in proptest::collection::vec((0.0f64..64.0, 0.0f64..64.0), 1..10),
        level in 2u8..6,
        k in 1usize..8,
        measure_idx in 0usize..6,
    ) {
        let measure = Measure::ALL[measure_idx];
        let query: Vec<Point> = query.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        let params = MeasureParams::with_eps(2.0);
        let grid = Grid::new(region(), level);
        let store = TrajStore::from_trajectories(&trajs);
        let trie = RpTrie::build(
            &store,
            grid,
            RpTrieConfig::for_measure(measure).with_params(params).with_np(3),
        );
        let got = trie.top_k(&store, &query, k).hits;

        let mut expect: Vec<(f64, u64)> = trajs
            .iter()
            .map(|t| (params.distance(measure, &query, &t.points), t.id))
            .collect();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        expect.truncate(k);
        // Ties may resolve differently (Definition 3 permits any tied
        // subset), so compare the distance vector and verify each reported
        // distance is exact.
        prop_assert_eq!(got.len(), expect.len());
        for (h, e) in got.iter().zip(&expect) {
            prop_assert!((h.dist - e.0).abs() < 1e-9,
                "distance vector differs: {} vs {}", h.dist, e.0);
            let t = trajs.iter().find(|t| t.id == h.id).expect("known id");
            let true_d = params.distance(measure, &query, &t.points);
            prop_assert!((h.dist - true_d).abs() < 1e-9, "reported distance wrong");
        }
    }

    /// Pivot-interval containment: distances from any trajectory to any
    /// pivot must fall inside the root HR interval.
    #[test]
    fn hr_intervals_cover_all_distances(
        trajs in arb_trajectories(),
        measure_idx in 0usize..3,
    ) {
        let measure = [Measure::Hausdorff, Measure::Frechet, Measure::Erp][measure_idx];
        let params = MeasureParams::default();
        let grid = Grid::new(region(), 4);
        let trie = RpTrie::build(
            &TrajStore::from_trajectories(&trajs),
            grid,
            RpTrieConfig::for_measure(measure).with_params(params).with_np(2),
        );
        let hr = trie.frozen().hr(trie.frozen().root());
        for (pi, pivot) in trie.pivots().pivots().iter().enumerate() {
            for t in &trajs {
                let d = params.distance(measure, &t.points, pivot);
                prop_assert!(d >= hr[2 * pi] - 1e-9 && d <= hr[2 * pi + 1] + 1e-9);
            }
        }
    }
}

#[test]
fn sampled_queries_always_rank_themselves_first() {
    // A dataset member queried against the index must come back as the top
    // hit with distance 0 for every measure (identity law, end to end).
    let dataset = repose_datagen::PaperDataset::SF.generate(0.05, 77);
    let queries = sample_queries(&dataset, 3, 123);
    let store = TrajStore::from_trajectories(dataset.trajectories());
    let grid = Grid::with_delta(dataset.enclosing_square().unwrap(), 0.05);
    for measure in Measure::ALL {
        let trie = RpTrie::build(
            &store,
            grid.clone(),
            RpTrieConfig::for_measure(measure).with_params(MeasureParams::with_eps(0.01)),
        );
        for q in &queries {
            let r = trie.top_k(&store, &q.points, 1);
            assert_eq!(r.hits[0].id, q.id, "{measure}");
            assert!(r.hits[0].dist.abs() < 1e-12, "{measure}");
        }
    }
}

#[test]
fn dataset_stats_survive_partition_roundtrip() {
    use repose::{partition_dataset, PartitionStrategy};
    let dataset = repose_datagen::PaperDataset::Porto.generate(0.02, 3);
    let region = dataset.enclosing_square().unwrap();
    for strategy in [
        PartitionStrategy::Heterogeneous,
        PartitionStrategy::Homogeneous,
        PartitionStrategy::Random,
    ] {
        let parts = partition_dataset(&dataset, &region, strategy, 7, 1);
        let total_pts: usize = parts
            .iter()
            .flatten()
            .map(Trajectory::len)
            .sum();
        assert_eq!(total_pts, dataset.stats().total_points, "{strategy:?}");
    }
}

#[test]
fn grid_fidelity_improves_with_finer_delta() {
    // Finer grids must never make the reference trajectory a worse
    // Hausdorff approximation of the original.
    let dataset = repose_datagen::PaperDataset::TDrive.generate(0.02, 9);
    let sq = dataset.enclosing_square().unwrap();
    let coarse = Grid::with_delta(sq, 0.5);
    let fine = Grid::with_delta(sq, 0.05);
    for t in dataset.trajectories().iter().take(20) {
        let rc = coarse.reference_trajectory(&t.points);
        let rf = fine.reference_trajectory(&t.points);
        let dc = repose_distance::hausdorff(&t.points, &rc);
        let df = repose_distance::hausdorff(&t.points, &rf);
        assert!(df <= dc + 1e-12, "fine {df} vs coarse {dc}");
        assert!(dc <= coarse.half_diagonal() + 1e-12);
        assert!(df <= fine.half_diagonal() + 1e-12);
    }
}

#[test]
fn dataset_roundtrips_through_serde() {
    let dataset = repose_datagen::PaperDataset::Rome.generate(0.02, 4);
    let json = serde_json::to_string(&dataset).unwrap();
    let back: Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(dataset.trajectories(), back.trajectories());
}
