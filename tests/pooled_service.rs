//! Exactness of the serving layer's pooled execution and incremental
//! compaction — the PR-5 stress harness extension.
//!
//! * **Pooled ≡ sequential**: `ReposeService::query` / `query_batch` on a
//!   worker pool of at least 4 threads must return *distance-identical*
//!   results (bit-for-bit equal sorted distance multisets — the paper's
//!   Definition 3 permits tied *ids* to differ) to the sequential path
//!   (`pool_threads: 1`), for all six measures, under heavy k-th-boundary
//!   ties, with live delta buffers and tombstones in play. Each reported
//!   distance must also be the candidate's true exact distance.
//! * **Incremental ≡ full**: `compact()` (selective per-partition
//!   rebuild) must leave the service answering exactly like
//!   `compact_full()` (global re-partition) and like a from-scratch
//!   rebuild over the same live set, under interleaved writes — and its
//!   rebuild counters must prove only dirtied partitions were touched.
//!
//! Comparisons repeat across several queries and k values (including k
//! cutting through tie groups) to shake out pool interleavings.

use repose::{Repose, ReposeConfig};
use repose_distance::{Measure, MeasureParams};
use repose_model::{Dataset, Point, Trajectory};
use repose_service::{ReposeService, ServiceConfig, ServiceOutcome};
use repose_testkit::{sentinels, tie_dataset, tie_queries as queries, tie_traj};
use std::sync::Arc;

const POOL_THREADS: usize = 4;

fn config(measure: Measure, partitions: usize) -> ReposeConfig {
    ReposeConfig::new(measure)
        .with_partitions(partitions)
        .with_delta(0.7)
        .with_params(MeasureParams::with_eps(0.5))
}

fn service(measure: Measure, pool_threads: usize) -> ReposeService {
    let svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..100), config(measure, 8)),
        // Cache off so every query exercises the search path under test.
        ServiceConfig { cache_capacity: 0, pool_threads, ..ServiceConfig::default() },
    );
    // A live delta on every partition + tombstones over frozen data:
    // the pooled path must handle all three sources at once.
    for id in 100..140 {
        svc.insert(tie_traj(id)).unwrap();
    }
    for id in [3u64, 17, 44, 90] {
        svc.remove(id).unwrap();
    }
    for id in 55..60 {
        // Upserts: moved copies shadow frozen originals.
        let mut t = tie_traj(id);
        for p in &mut t.points {
            p.y += 2.5;
        }
        svc.insert(t).unwrap();
    }
    svc
}

fn sorted_dist_bits(o: &ServiceOutcome) -> Vec<u64> {
    repose_testkit::sorted_dist_bits(o.hits.iter().map(|h| h.dist))
}

/// The live set `service(measure, _)` constructs, for truth checking.
fn live_set() -> Vec<Trajectory> {
    let mut live: Vec<Trajectory> = (0..140u64)
        .filter(|&id| !matches!(id, 3 | 17 | 44 | 90) && !(55..60).contains(&id))
        .map(tie_traj)
        .collect();
    for id in 55..60 {
        let mut t = tie_traj(id);
        for p in &mut t.points {
            p.y += 2.5;
        }
        live.push(t);
    }
    live.extend(sentinels());
    live
}

/// Acceptance criterion: pooled parallel `query` returns bitwise the same
/// distance multisets as the sequential path for all six measures, with k
/// values that cut straight through duplicate groups (k = 3, 7 inside
/// 5-sized tie groups).
#[test]
fn pooled_query_matches_sequential_for_every_measure() {
    for measure in Measure::ALL {
        let pooled = service(measure, POOL_THREADS);
        assert_eq!(pooled.pool_threads(), POOL_THREADS);
        let sequential = service(measure, 1);
        assert_eq!(sequential.pool_threads(), 1);
        let params = MeasureParams::with_eps(0.5);
        let live = live_set();
        for q in &queries() {
            for k in [1usize, 3, 7, 25] {
                // Repeat to shake out pool interleavings.
                for round in 0..3 {
                    let p = pooled.query(q, k).unwrap();
                    let s = sequential.query(q, k).unwrap();
                    assert_eq!(
                        sorted_dist_bits(&p),
                        sorted_dist_bits(&s),
                        "{measure} k={k} round={round}: pooled and sequential \
                         distance multisets differ"
                    );
                    // Every reported distance is its id's true distance.
                    for h in &p.hits {
                        let t = live.iter().find(|t| t.id == h.id).expect("live id");
                        let truth = params.distance(measure, q, &t.points);
                        assert_eq!(
                            h.dist.to_bits(),
                            truth.to_bits(),
                            "{measure} k={k}: reported distance is not exact"
                        );
                    }
                }
            }
        }
    }
}

/// Acceptance criterion for the batch path: every query of a pooled batch
/// answers exactly like the sequential path's individual queries.
#[test]
fn pooled_query_batch_matches_sequential_for_every_measure() {
    for measure in Measure::ALL {
        let pooled = service(measure, POOL_THREADS);
        let sequential = service(measure, 1);
        let qs = queries();
        for k in [1usize, 7, 25] {
            let batch = pooled.query_batch(&qs, k).unwrap();
            assert_eq!(batch.len(), qs.len());
            for (q, b) in qs.iter().zip(&batch) {
                let s = sequential.query(q, k).unwrap();
                assert_eq!(
                    sorted_dist_bits(b),
                    sorted_dist_bits(&s),
                    "{measure} k={k}: batch query differs from sequential"
                );
                assert!(!b.cache_hit);
                assert!(b.delta_candidates > 0, "delta must be scanned");
            }
        }
    }
}

/// Pooled queries racing writers stay well-formed and converge to a
/// rebuild — the PR-1 stress harness re-run on the pooled path.
#[test]
fn pooled_queries_race_writers_and_compactions() {
    let measure = Measure::Hausdorff;
    let svc = Arc::new(service(measure, POOL_THREADS));
    let qs = queries();
    let mut handles = Vec::new();
    for w in 0..2u64 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            for i in 0..25 {
                svc.insert(tie_traj(500 + w * 100 + i)).unwrap();
                if i % 9 == 0 {
                    svc.compact().unwrap();
                }
            }
        }));
    }
    for r in 0..3usize {
        let svc = Arc::clone(&svc);
        let qs = qs.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..30 {
                let out = svc.query(&qs[(r + round) % qs.len()], 10).unwrap();
                for w in out.hits.windows(2) {
                    assert!(
                        w[0].dist < w[1].dist
                            || (w[0].dist == w[1].dist && w[0].id < w[1].id),
                        "unsorted or duplicated hits under racing writes"
                    );
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }

    // Final state answers like a from-scratch rebuild of the same live set.
    let mut live = live_set();
    for w in 0..2u64 {
        for i in 0..25 {
            live.push(tie_traj(500 + w * 100 + i));
        }
    }
    let rebuilt = Repose::build(&Dataset::from_trajectories(live), config(measure, 8));
    for q in &qs {
        let got = svc.query(q, 12).unwrap();
        let want = rebuilt.query(q, 12);
        let mut gd: Vec<u64> = got.hits.iter().map(|h| h.dist.to_bits()).collect();
        let mut wd: Vec<u64> = want.hits.iter().map(|h| h.dist.to_bits()).collect();
        gd.sort_unstable();
        wd.sort_unstable();
        assert_eq!(gd, wd, "post-race pooled state differs from rebuilt index");
    }
}

/// Acceptance criterion: incremental compaction rebuilds *only* dirtied
/// partitions (counter-asserted) and answers exactly like the full
/// rebuild under interleaved writes.
#[test]
fn incremental_compact_matches_full_rebuild_and_counts_dirty_partitions() {
    let measure = Measure::Frechet;
    let n = 8usize;
    let incremental = service(measure, POOL_THREADS);
    let full = service(measure, POOL_THREADS);

    // Round 1: both services compact their identical backlogs.
    let a = incremental.compact().unwrap();
    let b = full.compact_full().unwrap();
    assert_eq!(a, b, "live counts diverged");
    let stats = incremental.stats();
    assert_eq!(stats.partitions, n);
    // The initial backlog touches every partition (inserts 100..140 cover
    // all residues mod 8), so the first compact legitimately rebuilds all.
    assert_eq!(stats.last_compact_rebuilt, n);
    assert_eq!(full.stats().last_compact_rebuilt, n);

    // Round 2: writes confined to delta partition 1 (ids ≡ 1 mod 8;
    // fresh ids, so no frozen partition is tombstone-dirtied elsewhere).
    for svc in [&incremental, &full] {
        for base in [2001u64, 2003, 2009, 2011] {
            svc.insert(tie_traj(base * 8 + 1)).unwrap();
        }
    }
    let a = incremental.compact().unwrap();
    let b = full.compact_full().unwrap();
    assert_eq!(a, b);
    let inc_stats = incremental.stats();
    assert!(
        inc_stats.last_compact_rebuilt < n,
        "incremental compact rebuilt all {n} partitions for a 2-partition write set"
    );
    assert_eq!(
        full.stats().last_compact_rebuilt,
        n,
        "compact_full must rebuild everything"
    );
    assert!(inc_stats.partitions_rebuilt < full.stats().partitions_rebuilt);

    // Round 3: a no-op compact rebuilds nothing and changes nothing
    // (distance multisets — tied ids may legitimately differ between
    // pooled runs, Definition 3).
    let before: Vec<Vec<u64>> = queries()
        .iter()
        .map(|q| sorted_dist_bits(&incremental.query(q, 9).unwrap()))
        .collect();
    incremental.compact().unwrap();
    assert_eq!(incremental.stats().last_compact_rebuilt, 0);
    let after: Vec<Vec<u64>> = queries()
        .iter()
        .map(|q| sorted_dist_bits(&incremental.query(q, 9).unwrap()))
        .collect();
    assert_eq!(before, after, "no-op compact changed answers");

    // Round 4: a single delete dirties exactly one partition.
    incremental.remove(10).unwrap(); // a frozen id (in exactly one partition)
    full.remove(10).unwrap();
    incremental.compact().unwrap();
    assert_eq!(incremental.stats().last_compact_rebuilt, 1);

    // Throughout: both services agree with a from-scratch rebuild.
    let mut live = live_set();
    for base in [2001u64, 2003, 2009, 2011] {
        live.push(tie_traj(base * 8 + 1));
    }
    live.retain(|t| t.id != 10);
    let rebuilt = Repose::build(&Dataset::from_trajectories(live), config(measure, 8));
    full.compact_full().unwrap();
    for q in &queries() {
        let i = incremental.query(q, 11).unwrap();
        let f = full.query(q, 11).unwrap();
        let r = rebuilt.query(q, 11);
        let key = |hits: &[repose::Hit]| {
            let mut d: Vec<u64> = hits.iter().map(|h| h.dist.to_bits()).collect();
            d.sort_unstable();
            d
        };
        assert_eq!(key(&i.hits), key(&f.hits), "incremental != full");
        assert_eq!(key(&i.hits), key(&r.hits), "incremental != rebuilt");
    }
}

/// Writes that leave the frozen region force the documented fall back to
/// a full rebuild (region + grid must be recomputed for soundness).
#[test]
fn out_of_region_writes_fall_back_to_full_rebuild() {
    let svc = service(Measure::Hausdorff, 1);
    svc.compact().unwrap();
    svc.insert(Trajectory::new(
        9_999_999,
        vec![Point::new(500.0, 500.0)], // far outside the sentinel fence
    ))
    .unwrap();
    let before = svc.len();
    svc.compact().unwrap();
    assert_eq!(svc.len(), before);
    assert_eq!(
        svc.stats().last_compact_rebuilt,
        8,
        "out-of-region write must trigger the full rebuild"
    );
    let q: Vec<Point> = vec![Point::new(499.0, 499.0)];
    assert_eq!(svc.query(&q, 1).unwrap().hits[0].id, 9_999_999);
}

/// The cache threshold-hint ring seeds near-duplicate queries' collectors
/// with a finite sound bound — and never changes answers.
#[test]
fn threshold_hints_seed_near_duplicate_queries_soundly() {
    let measure = Measure::Hausdorff;
    // Cache ON here (hints ride the cache) but pool off for determinism
    // of the work counters.
    let svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..100), config(measure, 8)),
        ServiceConfig { cache_capacity: 64, pool_threads: 1, ..ServiceConfig::default() },
    );
    let unseeded_svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..100), config(measure, 8)),
        ServiceConfig { cache_capacity: 0, pool_threads: 1, ..ServiceConfig::default() },
    );
    let q1: Vec<Point> = (0..8).map(|s| Point::new(0.2 + s as f64 * 0.5, 0.1)).collect();
    // Nearby but distinct (beyond cache-key quantization).
    let q2: Vec<Point> = q1.iter().map(|p| Point::new(p.x + 0.05, p.y)).collect();
    let k = 7;

    let first = svc.query(&q1, k).unwrap();
    assert!(!first.cache_hit);
    assert_eq!(first.threshold_seed, f64::INFINITY, "nothing to seed from yet");

    let second = svc.query(&q2, k).unwrap();
    assert!(!second.cache_hit, "a *near*-duplicate must not be a cache hit");
    assert!(
        second.threshold_seed.is_finite(),
        "near-duplicate query should be hint-seeded"
    );
    // Seeding must not change the answer...
    let truth = unseeded_svc.query(&q2, k).unwrap();
    assert_eq!(
        second
            .hits
            .iter()
            .map(|h| (h.dist.to_bits(), h.id))
            .collect::<Vec<_>>(),
        truth
            .hits
            .iter()
            .map(|h| (h.dist.to_bits(), h.id))
            .collect::<Vec<_>>(),
        "hint seeding changed the answer"
    );
    // ...and the seed is a sound upper bound on the k-th distance.
    assert!(second.hits.last().expect("k hits").dist <= second.threshold_seed);

    // A write invalidates the hint (version mismatch): next near query
    // starts unseeded again.
    svc.insert(tie_traj(7777)).unwrap();
    let third = svc.query(&q1, k).unwrap();
    assert!(!third.cache_hit);
    assert_eq!(
        third.threshold_seed,
        f64::INFINITY,
        "stale-version hint must not seed"
    );
}

/// Batch queries on the pooled path also get hint seeding (from earlier
/// batches/queries), and batched near-duplicates answer identically.
#[test]
fn batch_hints_and_repeat_batches_agree() {
    let measure = Measure::Frechet;
    let svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..100), config(measure, 8)),
        ServiceConfig { cache_capacity: 64, pool_threads: POOL_THREADS, ..ServiceConfig::default() },
    );
    let qs = queries();
    let first = svc.query_batch(&qs, 5).unwrap();
    let second = svc.query_batch(&qs, 5).unwrap();
    for (a, b) in first.iter().zip(&second) {
        assert!(!a.cache_hit);
        assert!(b.cache_hit, "repeat batch should be all cache hits");
        assert_eq!(
            a.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            b.hits.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }
    // Near-duplicates of the first batch: seeded, same answers as fresh.
    let near: Vec<Vec<Point>> = qs
        .iter()
        .map(|q| q.iter().map(|p| Point::new(p.x + 0.03, p.y)).collect())
        .collect();
    let seeded = svc.query_batch(&near, 5).unwrap();
    let fresh_svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..100), config(measure, 8)),
        ServiceConfig { cache_capacity: 0, pool_threads: 1, ..ServiceConfig::default() },
    );
    let mut any_seeded = false;
    for (q, s) in near.iter().zip(&seeded) {
        any_seeded |= s.threshold_seed.is_finite();
        let f = fresh_svc.query(q, 5).unwrap();
        let mut sd: Vec<u64> = s.hits.iter().map(|h| h.dist.to_bits()).collect();
        let mut fd: Vec<u64> = f.hits.iter().map(|h| h.dist.to_bits()).collect();
        sd.sort_unstable();
        fd.sort_unstable();
        assert_eq!(sd, fd, "seeded batch answer differs from unseeded truth");
    }
    assert!(any_seeded, "no batch query was hint-seeded");
}

/// Duplicate queries inside one pooled batch collapse onto a single
/// execution: the twins report as cache hits with the same answer, and
/// only one search's work is charged.
#[test]
fn duplicate_batch_queries_share_one_execution() {
    let svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..100), config(Measure::Hausdorff, 8)),
        ServiceConfig { cache_capacity: 64, pool_threads: POOL_THREADS, ..ServiceConfig::default() },
    );
    let q = queries().remove(0);
    let batch = svc.query_batch(&[q.clone(), q.clone(), q.clone()], 6).unwrap();
    assert_eq!(batch.len(), 3);
    assert!(!batch[0].cache_hit, "first copy executes");
    assert!(batch[1].cache_hit && batch[2].cache_hit, "twins are served, not searched");
    assert_eq!(batch[1].search.exact_computations, 0);
    for twin in &batch[1..] {
        assert_eq!(
            twin.hits.iter().map(|h| (h.dist.to_bits(), h.id)).collect::<Vec<_>>(),
            batch[0].hits.iter().map(|h| (h.dist.to_bits(), h.id)).collect::<Vec<_>>(),
        );
    }
    let stats = svc.stats();
    assert_eq!(stats.cache_misses, 1, "one execution for three identical queries");
    assert_eq!(stats.cache_hits, 2);
}

/// Bound-ordered scheduling surfaces per-partition task times; the most
/// promising partition's early publish keeps total verification work at
/// or below the old arbitrary-order path (structural sanity, not timing).
#[test]
fn partition_times_are_reported_per_partition() {
    let svc = service(Measure::Hausdorff, POOL_THREADS);
    let out = svc.query(&queries()[0], 5).unwrap();
    assert_eq!(out.partition_times.len(), 8);
    // Cache hit path reports no partition times.
    let cached_svc = ReposeService::with_config(
        Repose::build(&tie_dataset(0..40), config(Measure::Hausdorff, 4)),
        ServiceConfig { cache_capacity: 8, pool_threads: POOL_THREADS, ..ServiceConfig::default() },
    );
    cached_svc.query(&queries()[0], 3).unwrap();
    let hit = cached_svc.query(&queries()[0], 3).unwrap();
    assert!(hit.cache_hit);
    assert!(hit.partition_times.is_empty());
}
