use crate::interleave;
use repose_model::{Mbr, Point};

/// A geohash-style cluster key for a trajectory: the sequence of geohash
/// cells its points traverse (consecutive duplicates collapsed).
///
/// Two trajectories belong to the same SOM-TC style cluster when their keys
/// are equal at the current granularity (Section V-B: "If τ*_1 = τ*_2, we
/// group τ1 and τ2 into a cluster").
pub type GeohashKey = Vec<u64>;

/// Encodes the geohash cell of a point within `region` at `bits` bits per
/// coordinate.
///
/// Like a textual geohash, the code is the bit-interleaving of the
/// binary-search paths over longitude and latitude; we keep it as an integer
/// (plus the precision) instead of base-32 text since the partitioner only
/// compares cells for equality. Lower `bits` means coarser cells.
pub fn geohash_cell(p: Point, region: &Mbr, bits: u8) -> u64 {
    debug_assert!((1..=31).contains(&bits));
    let w = region.width().max(f64::MIN_POSITIVE);
    let h = region.height().max(f64::MIN_POSITIVE);
    let cells = (1u64 << bits) as f64;
    let ix = (((p.x - region.min.x) / w * cells).floor() as i64)
        .clamp(0, (1i64 << bits) - 1) as u32;
    let iy = (((p.y - region.min.y) / h * cells).floor() as i64)
        .clamp(0, (1i64 << bits) - 1) as u32;
    interleave(ix, iy, bits)
}

/// The cluster key of a trajectory at a given granularity: geohash cells of
/// its points with consecutive duplicates collapsed.
pub fn geohash_key(points: &[Point], region: &Mbr, bits: u8) -> GeohashKey {
    let mut key: GeohashKey = Vec::with_capacity(points.len().min(16));
    for p in points {
        let c = geohash_cell(*p, region, bits);
        if key.last() != Some(&c) {
            key.push(c);
        }
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Mbr {
        Mbr::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn same_cell_same_code() {
        let r = region();
        let a = geohash_cell(Point::new(10.0, 10.0), &r, 2);
        let b = geohash_cell(Point::new(20.0, 20.0), &r, 2); // both in cell (0,0) of 4x4
        assert_eq!(a, b);
    }

    #[test]
    fn finer_bits_separate_points() {
        let r = region();
        let p1 = Point::new(10.0, 10.0);
        let p2 = Point::new(20.0, 20.0);
        assert_eq!(geohash_cell(p1, &r, 2), geohash_cell(p2, &r, 2));
        assert_ne!(geohash_cell(p1, &r, 4), geohash_cell(p2, &r, 4));
    }

    #[test]
    fn key_collapses_consecutive_duplicates() {
        let r = region();
        let pts = [
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(60.0, 60.0),
            Point::new(61.0, 61.0),
        ];
        let key = geohash_key(&pts, &r, 1);
        assert_eq!(key.len(), 2);
    }

    #[test]
    fn equal_keys_for_similar_trajectories() {
        // The clustering criterion: similar trajectories share a key at a
        // coarse granularity but not necessarily at a fine one.
        let r = region();
        let t1 = [Point::new(5.0, 5.0), Point::new(30.0, 5.0), Point::new(70.0, 40.0)];
        let t2 = [Point::new(8.0, 9.0), Point::new(28.0, 2.0), Point::new(68.0, 44.0)];
        assert_eq!(geohash_key(&t1, &r, 2), geohash_key(&t2, &r, 2));
        assert_ne!(geohash_key(&t1, &r, 5), geohash_key(&t2, &r, 5));
    }

    #[test]
    fn clamps_outside_points() {
        let r = region();
        let c = geohash_cell(Point::new(-50.0, 150.0), &r, 3);
        let corner = geohash_cell(Point::new(0.0, 99.9), &r, 3);
        assert_eq!(c, corner);
    }

    #[test]
    fn non_square_region_supported() {
        let r = Mbr::new(Point::new(0.0, 0.0), Point::new(200.0, 50.0));
        let a = geohash_cell(Point::new(150.0, 40.0), &r, 2);
        let b = geohash_cell(Point::new(199.0, 49.0), &r, 2);
        assert_eq!(a, b); // both in the top-right quarter cell
    }
}
