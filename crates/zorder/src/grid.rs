use crate::{deinterleave, interleave};
use repose_model::{Mbr, Point};

/// A z-value: the bit-interleaved coordinates of a grid cell.
pub type ZValue = u64;

/// The regular `l x l` grid over the enclosing square region `A`
/// (Section III-A).
///
/// `l` is always a power of two. Constructing a grid from a requested cell
/// side `δ` rounds `l = U/δ` up to the next power of two and recomputes the
/// *effective* `δ = U/l` (so the effective `δ` is at most the requested one:
/// fidelity never degrades).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Grid {
    region: Mbr,
    level: u8,
    l: u32,
    delta: f64,
}

impl Grid {
    /// Creates a grid with `2^level` cells per side over `region`.
    ///
    /// `region` must be a square (width == height up to floating point); it
    /// typically comes from `Dataset::enclosing_square`. `level` must be in
    /// `1..=31`.
    pub fn new(region: Mbr, level: u8) -> Self {
        assert!((1..=31).contains(&level), "level must be in 1..=31");
        assert!(
            (region.width() - region.height()).abs() <= 1e-9 * region.width().max(1.0),
            "region must be square"
        );
        let l = 1u32 << level;
        let delta = region.width() / l as f64;
        Grid { region, level, l, delta }
    }

    /// Creates the coarsest grid whose cell side is at most `delta`.
    pub fn with_delta(region: Mbr, delta: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        let u = region.width();
        let need = (u / delta).ceil().max(2.0);
        let level = (need.log2().ceil() as u8).clamp(1, 31);
        Grid::new(region, level)
    }

    /// The enclosing region `A`.
    pub fn region(&self) -> Mbr {
        self.region
    }

    /// Cells per side (`l`).
    pub fn cells_per_side(&self) -> u32 {
        self.l
    }

    /// Bits per coordinate (`log2 l`).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Effective cell side length `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// `√2 δ / 2`: the maximum distance between any point of a cell and the
    /// cell's reference point — the slack term of the paper's lower bounds.
    pub fn half_diagonal(&self) -> f64 {
        std::f64::consts::SQRT_2 * self.delta * 0.5
    }

    /// Grid coordinates of the cell containing `p`. Points outside the
    /// region are clamped to the border cells.
    pub fn cell_of(&self, p: Point) -> (u32, u32) {
        let fx = (p.x - self.region.min.x) / self.delta;
        let fy = (p.y - self.region.min.y) / self.delta;
        let ix = (fx.floor() as i64).clamp(0, (self.l - 1) as i64) as u32;
        let iy = (fy.floor() as i64).clamp(0, (self.l - 1) as i64) as u32;
        (ix, iy)
    }

    /// Z-value of the cell containing `p`.
    pub fn z_value(&self, p: Point) -> ZValue {
        let (ix, iy) = self.cell_of(p);
        interleave(ix, iy, self.level)
    }

    /// The reference point (cell center) of the cell with z-value `z`.
    pub fn reference_point(&self, z: ZValue) -> Point {
        let (ix, iy) = deinterleave(z, self.level);
        Point::new(
            self.region.min.x + (ix as f64 + 0.5) * self.delta,
            self.region.min.y + (iy as f64 + 0.5) * self.delta,
        )
    }

    /// The rectangle of the cell with z-value `z`.
    pub fn cell_mbr(&self, z: ZValue) -> Mbr {
        let (ix, iy) = deinterleave(z, self.level);
        let min = Point::new(
            self.region.min.x + ix as f64 * self.delta,
            self.region.min.y + iy as f64 * self.delta,
        );
        Mbr::new(min, Point::new(min.x + self.delta, min.y + self.delta))
    }

    /// Converts a trajectory into its sequence of z-values
    /// `Z = <z1, ..., zn>` (Definition 4).
    pub fn z_sequence(&self, points: &[Point]) -> Vec<ZValue> {
        points.iter().map(|p| self.z_value(*p)).collect()
    }

    /// Converts a trajectory into its reference trajectory
    /// `τ* = <p*_1, ..., p*_n>` (Definition 4).
    pub fn reference_trajectory(&self, points: &[Point]) -> Vec<Point> {
        points
            .iter()
            .map(|p| {
                let (ix, iy) = self.cell_of(*p);
                Point::new(
                    self.region.min.x + (ix as f64 + 0.5) * self.delta,
                    self.region.min.y + (iy as f64 + 0.5) * self.delta,
                )
            })
            .collect()
    }

    /// Z-sequence with *consecutive duplicate* z-values collapsed.
    ///
    /// Collapsing consecutive duplicates is lossless for prefix sharing in
    /// the trie and keeps reference trajectories short for slow-moving
    /// objects.
    pub fn z_sequence_dedup(&self, points: &[Point]) -> Vec<ZValue> {
        let mut out: Vec<ZValue> = Vec::with_capacity(points.len());
        for p in points {
            let z = self.z_value(*p);
            if out.last() != Some(&z) {
                out.push(z);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit_grid(level: u8) -> Grid {
        Grid::new(Mbr::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)), level)
    }

    #[test]
    fn paper_running_example_grid() {
        // Fig. 1: 8x8 grid over [0,8)^2, cell side 1.
        let g = unit_grid(3);
        assert_eq!(g.cells_per_side(), 8);
        assert_eq!(g.delta(), 1.0);
        // Cell with horizontal coord 010=2, vertical 101=5 has z 011001.
        assert_eq!(g.z_value(Point::new(2.5, 5.5)), 0b011001);
    }

    #[test]
    fn with_delta_rounds_up_to_power_of_two() {
        let region = Mbr::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let g = Grid::with_delta(region, 3.0); // 10/3 = 3.3 -> l = 4
        assert_eq!(g.cells_per_side(), 4);
        assert!(g.delta() <= 3.0);
        assert_eq!(g.delta(), 2.5);
    }

    #[test]
    fn reference_point_is_cell_center() {
        let g = unit_grid(3);
        let z = g.z_value(Point::new(2.2, 5.9));
        assert_eq!(g.reference_point(z), Point::new(2.5, 5.5));
    }

    #[test]
    fn cell_mbr_contains_its_points() {
        let g = unit_grid(3);
        let p = Point::new(3.7, 1.2);
        let m = g.cell_mbr(g.z_value(p));
        assert!(m.contains(p));
        assert_eq!(m.width(), 1.0);
    }

    #[test]
    fn out_of_region_points_clamp() {
        let g = unit_grid(3);
        assert_eq!(g.cell_of(Point::new(-5.0, 100.0)), (0, 7));
        assert_eq!(g.cell_of(Point::new(8.0, 8.0)), (7, 7)); // right edge
    }

    #[test]
    fn half_diagonal_value() {
        let g = unit_grid(3);
        assert!((g.half_diagonal() - (2.0f64).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn z_sequence_dedup_collapses_runs() {
        let g = unit_grid(3);
        let pts = [
            Point::new(0.1, 0.1),
            Point::new(0.2, 0.3), // same cell
            Point::new(1.5, 0.1), // new cell
            Point::new(0.4, 0.4), // back to the first cell: kept (non-consecutive)
        ];
        let z = g.z_sequence_dedup(&pts);
        assert_eq!(z.len(), 3);
        assert_eq!(z[0], z[2]);
    }

    #[test]
    fn reference_trajectory_matches_z_sequence() {
        let g = unit_grid(4);
        let pts = [Point::new(1.1, 2.3), Point::new(6.7, 0.2)];
        let rt = g.reference_trajectory(&pts);
        let zs = g.z_sequence(&pts);
        for (rp, z) in rt.iter().zip(zs) {
            assert_eq!(*rp, g.reference_point(z));
        }
    }

    #[test]
    #[should_panic(expected = "region must be square")]
    fn non_square_region_panics() {
        Grid::new(Mbr::new(Point::new(0.0, 0.0), Point::new(4.0, 8.0)), 3);
    }

    proptest! {
        #[test]
        fn point_within_half_diagonal_of_reference(
            x in 0.0f64..8.0, y in 0.0f64..8.0, level in 1u8..8
        ) {
            // The foundation of every lower bound in the paper:
            // d(p, p*) <= √2 δ/2 for p in the cell of p*.
            let g = unit_grid(level);
            let p = Point::new(x, y);
            let rp = g.reference_point(g.z_value(p));
            prop_assert!(p.dist(&rp) <= g.half_diagonal() + 1e-12);
        }

        #[test]
        fn z_roundtrip_cell(ix in 0u32..16, iy in 0u32..16) {
            let g = unit_grid(4);
            let z = interleave(ix, iy, 4);
            let c = g.reference_point(z);
            prop_assert_eq!(g.cell_of(c), (ix, iy));
            prop_assert_eq!(g.z_value(c), z);
        }
    }
}
