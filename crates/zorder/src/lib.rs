//! Z-order discretization of trajectories (Section III-A of the paper) and
//! the geohash encoding used by the heterogeneous global partitioning
//! strategy (Section V-B).
//!
//! A square region `A` with side `U` is partitioned by a regular `l x l`
//! grid with cell side `δ` (`l = U/δ`, a power of two). Every cell has a
//! z-value (bit-interleaved coordinates) and a *reference point* (its
//! center); a trajectory maps to the *reference trajectory* of the cells its
//! points fall in.

#![warn(missing_docs)]

mod geohash;
mod grid;
mod zcurve;

pub use geohash::{geohash_cell, geohash_key, GeohashKey};
pub use grid::{Grid, ZValue};
pub use zcurve::{deinterleave, interleave};
