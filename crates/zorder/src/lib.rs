//! Z-order discretization of trajectories (Section III-A of the paper) and
//! the geohash encoding used by the heterogeneous global partitioning
//! strategy (Section V-B).
//!
//! A square region `A` with side `U` is partitioned by a regular `l x l`
//! grid with cell side `δ` (`l = U/δ`, a power of two). Every cell has a
//! z-value (bit-interleaved coordinates) and a *reference point* (its
//! center); a trajectory maps to the *reference trajectory* of the cells its
//! points fall in.
//!
//! ```
//! use repose_model::{Mbr, Point};
//! use repose_zorder::{interleave, Grid};
//!
//! // An 8x8 grid (level 3) over a 8-unit square: cell side 1.
//! let grid = Grid::new(Mbr::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)), 3);
//! assert_eq!(grid.cells_per_side(), 8);
//! assert_eq!(grid.delta(), 1.0);
//!
//! // A point's z-value is its bit-interleaved cell coordinates, and its
//! // reference point is that cell's center.
//! let p = Point::new(2.5, 1.5);
//! assert_eq!(grid.cell_of(p), (2, 1));
//! assert_eq!(grid.z_value(p), interleave(2, 1, 3));
//! let rp = grid.reference_point(grid.z_value(p));
//! assert_eq!((rp.x, rp.y), (2.5, 1.5));
//! ```

#![warn(missing_docs)]

mod geohash;
mod grid;
mod zcurve;

pub use geohash::{geohash_cell, geohash_key, GeohashKey};
pub use grid::{Grid, ZValue};
pub use zcurve::{deinterleave, interleave};
