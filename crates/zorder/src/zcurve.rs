/// Interleaves the bits of two grid coordinates into a z-value.
///
/// Following Example 2 of the paper, the *horizontal* coordinate contributes
/// the more significant bit of each pair: `x = 010, y = 101` (3 bits each)
/// interleave to `011001`.
///
/// `bits` is the number of bits per coordinate (the grid level); at most 31.
#[inline]
pub fn interleave(x: u32, y: u32, bits: u8) -> u64 {
    debug_assert!(bits <= 31);
    debug_assert!(bits == 0 || (x >> bits.min(31)) == 0, "x out of range");
    debug_assert!(bits == 0 || (y >> bits.min(31)) == 0, "y out of range");
    let mut z: u64 = 0;
    for i in (0..bits).rev() {
        z = (z << 1) | u64::from((x >> i) & 1);
        z = (z << 1) | u64::from((y >> i) & 1);
    }
    z
}

/// Inverse of [`interleave`]: recovers `(x, y)` from a z-value.
#[inline]
pub fn deinterleave(z: u64, bits: u8) -> (u32, u32) {
    debug_assert!(bits <= 31);
    let mut x: u32 = 0;
    let mut y: u32 = 0;
    for i in (0..bits).rev() {
        let pair = z >> (2 * i);
        x = (x << 1) | ((pair >> 1) & 1) as u32;
        y = (y << 1) | (pair & 1) as u32;
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_2() {
        // horizontal 010, vertical 101 -> z-value 011001
        assert_eq!(interleave(0b010, 0b101, 3), 0b011001);
    }

    #[test]
    fn zero_bits() {
        assert_eq!(interleave(0, 0, 0), 0);
        assert_eq!(deinterleave(0, 0), (0, 0));
    }

    #[test]
    fn single_bit() {
        assert_eq!(interleave(1, 0, 1), 0b10);
        assert_eq!(interleave(0, 1, 1), 0b01);
        assert_eq!(interleave(1, 1, 1), 0b11);
    }

    #[test]
    fn z_order_locality_of_quadrants() {
        // All cells of the lower-left quadrant of a 4x4 grid come before all
        // cells of the upper-right quadrant in z-order.
        let max_ll = (0..2)
            .flat_map(|x| (0..2).map(move |y| interleave(x, y, 2)))
            .max()
            .unwrap();
        let min_ur = (2..4)
            .flat_map(|x| (2..4).map(move |y| interleave(x, y, 2)))
            .min()
            .unwrap();
        assert!(max_ll < min_ur);
    }

    proptest! {
        #[test]
        fn roundtrip(x in 0u32..(1 << 16), y in 0u32..(1 << 16)) {
            let z = interleave(x, y, 16);
            prop_assert_eq!(deinterleave(z, 16), (x, y));
        }

        #[test]
        fn strictly_monotone_in_each_coordinate(x in 0u32..1000, y in 0u32..1000) {
            // For a fixed other coordinate, increasing one coordinate
            // strictly increases the z-value (bit spreading is monotone).
            let z = interleave(x, y, 10);
            prop_assert!(interleave(x + 1, y, 10) > z);
            prop_assert!(interleave(x, y + 1, 10) > z);
        }
    }
}
