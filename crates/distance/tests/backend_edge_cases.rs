//! Per-backend edge-case tests for the SIMD verification kernels: the
//! boundary shapes where vector code classically diverges from scalar code
//! — lengths below one vector/wavefront strip, lane remainders, exact-zero
//! distances at zero-adjacent thresholds, and points coinciding with the
//! ERP gap — all checked bit-for-bit against the seed `reference` kernels
//! on every backend the host CPU supports.

use repose_distance::{
    available_backends, force_backend, just_above, reference, Backend, DistScratch, Measure,
    MeasureParams,
};
use repose_model::Point;
use std::sync::Mutex;

const GAP: Point = Point::new(0.0, 0.0);

/// Serializes backend-forcing tests (the active backend is process-global).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn for_each_backend(mut f: impl FnMut(Backend)) {
    let _guard = BACKEND_LOCK.lock().unwrap();
    let all = available_backends();
    for &b in &all {
        force_backend(b);
        f(b);
    }
    force_backend(*all.last().expect("scalar is always available"));
}

/// A deterministic wiggly trajectory of `n` points.
fn traj(n: usize, seed: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let i = i as u64;
            let x = ((i.wrapping_mul(seed).wrapping_add(7)) % 23) as f64 * 0.5;
            let y = ((i.wrapping_mul(seed ^ 0x9e37).wrapping_add(3)) % 19) as f64 * 0.5;
            Point::new(x, y)
        })
        .collect()
}

fn assert_all_measures_agree(a: &[Point], b: &[Point], label: &str) {
    let params = MeasureParams::with_eps(0.5);
    for_each_backend(|backend| {
        let mut scratch = DistScratch::new();
        for m in Measure::ALL {
            let seed = reference::distance(&params, m, a, b);
            let got = params.distance_in(m, a, b, &mut scratch);
            assert_eq!(
                got.to_bits(),
                seed.to_bits(),
                "{label}: {m} on {backend}: {got} != reference {seed}"
            );
            let lb = params.lower_bound(m, a, b);
            for thr in [seed, just_above(seed), f64::INFINITY] {
                let want = reference::distance_within_from_lb(&params, m, a, b, thr, lb);
                let got = params.distance_within_from_lb_in(m, a, b, thr, lb, &mut scratch);
                assert_eq!(
                    got.map(f64::to_bits),
                    want.map(f64::to_bits),
                    "{label}: {m} on {backend} thr={thr}"
                );
            }
        }
    });
}

/// Lengths 1–3 sit below one EDR/LCSS wavefront strip (4 rows) and below
/// one AVX2 point-load (4 points): everything runs in boundary/remainder
/// code.
#[test]
fn tiny_lengths() {
    for la in 1..=3usize {
        for lb in 1..=3usize {
            let a = traj(la, 11);
            let b = traj(lb, 29);
            assert_all_measures_agree(&a, &b, &format!("lengths {la}x{lb}"));
        }
    }
}

/// Single-point trajectories against longer ones: one-row DPs and one-cell
/// columns.
#[test]
fn single_point_against_long() {
    let p = vec![Point::new(1.5, 2.5)];
    for n in [1usize, 2, 3, 4, 5, 8, 17] {
        let t = traj(n, 13);
        assert_all_measures_agree(&p, &t, &format!("1x{n}"));
        assert_all_measures_agree(&t, &p, &format!("{n}x1"));
    }
}

/// Lane-remainder lengths around the SSE (2), AVX2 (4) and wavefront-strip
/// (4) widths, plus chunked-Hausdorff (8) boundaries: every `n % 4 != 0`
/// and `n % 8 != 0` tail path runs.
#[test]
fn lane_remainders() {
    for &(la, lb) in &[(4usize, 5usize), (5, 4), (6, 7), (7, 6), (8, 9), (15, 17), (17, 15)] {
        let a = traj(la, 3);
        let b = traj(lb, 5);
        assert_all_measures_agree(&a, &b, &format!("lengths {la}x{lb}"));
    }
}

/// Identical trajectories have exact distance 0: threshold 0 must refute
/// (strict `<`), its successor must keep the exact 0 — on every backend.
#[test]
fn identical_trajectories_at_zero_thresholds() {
    let params = MeasureParams::with_eps(0.5);
    for n in [1usize, 3, 4, 7, 16] {
        let t = traj(n, 17);
        for_each_backend(|backend| {
            let mut scratch = DistScratch::new();
            for m in Measure::ALL {
                assert_eq!(
                    params.distance_in(m, &t, &t, &mut scratch).to_bits(),
                    0.0f64.to_bits(),
                    "{m} on {backend}: identical trajectories (n={n})"
                );
                let lb = params.lower_bound(m, &t, &t);
                assert_eq!(
                    params.distance_within_from_lb_in(m, &t, &t, 0.0, lb, &mut scratch),
                    None,
                    "{m} on {backend}: threshold 0 must refute"
                );
                assert_eq!(
                    params
                        .distance_within_from_lb_in(
                            m,
                            &t,
                            &t,
                            just_above(0.0),
                            lb,
                            &mut scratch
                        )
                        .map(f64::to_bits),
                    Some(0.0f64.to_bits()),
                    "{m} on {backend}: just_above(0) must keep the exact 0"
                );
            }
        });
    }
}

/// Points coinciding with the ERP gap point make gap costs exactly 0 —
/// ties between the three DP predecessors everywhere.
#[test]
fn erp_coincident_with_gap() {
    let on_gap: Vec<Point> = vec![GAP; 5];
    let mixed = vec![GAP, Point::new(1.0, 0.0), GAP, Point::new(0.0, 1.0)];
    let other = traj(6, 7);
    let params = MeasureParams::default();
    for (a, b) in [
        (on_gap.clone(), other.clone()),
        (mixed.clone(), other),
        (on_gap, mixed),
    ] {
        for_each_backend(|backend| {
            let mut scratch = DistScratch::new();
            let seed = reference::erp(&a, &b, GAP);
            let got = repose_distance::erp_in(&a, &b, GAP, &mut scratch);
            assert_eq!(got.to_bits(), seed.to_bits(), "erp on {backend}");
            let lb = params.lower_bound(Measure::Erp, &a, &b);
            for thr in [seed, just_above(seed), f64::INFINITY] {
                let want =
                    reference::distance_within_from_lb(&params, Measure::Erp, &a, &b, thr, lb);
                let got = params
                    .distance_within_from_lb_in(Measure::Erp, &a, &b, thr, lb, &mut scratch);
                assert_eq!(
                    got.map(f64::to_bits),
                    want.map(f64::to_bits),
                    "erp_within on {backend} thr={thr}"
                );
            }
        });
    }
}

/// Empty inputs never reach a SIMD kernel (the dispatchers' guards settle
/// them first), but the conventions must hold under every forced backend.
#[test]
fn empty_inputs_on_every_backend() {
    let a = traj(3, 19);
    let params = MeasureParams::with_eps(0.5);
    let empty: &[Point] = &[];
    for_each_backend(|backend| {
        let mut scratch = DistScratch::new();
        for m in Measure::ALL {
            for (x, y) in [(empty, empty), (a.as_slice(), empty), (empty, a.as_slice())] {
                let seed = reference::distance(&params, m, x, y);
                let got = params.distance_in(m, x, y, &mut scratch);
                assert_eq!(got.to_bits(), seed.to_bits(), "{m} on {backend}: empty case");
            }
        }
    });
}

/// Batched verification with ragged lengths straddling the lane widths:
/// every group shape from 1 to 6 candidates, including empty candidates
/// (settled by the sequential fallback inside the group).
#[test]
fn batched_ragged_groups() {
    let query = traj(9, 23);
    let lens = [1usize, 2, 3, 4, 5, 6];
    let cand_pts: Vec<Vec<Point>> = lens.iter().map(|&n| traj(n, n as u64 + 31)).collect();
    let params = MeasureParams::default();
    for m in [Measure::Dtw, Measure::Frechet, Measure::Erp] {
        let dists: Vec<f64> = cand_pts
            .iter()
            .map(|c| reference::distance(&params, m, &query, c))
            .collect();
        let mid = dists.iter().copied().fold(0.0f64, f64::max) * 0.6 + 1e-9;
        for take in 1..=cand_pts.len() {
            let cands: Vec<(f64, &[Point])> = cand_pts[..take]
                .iter()
                .map(|c| (params.lower_bound(m, &query, c), c.as_slice()))
                .collect();
            for_each_backend(|backend| {
                let mut scratch = DistScratch::new();
                let mut out = vec![None; cands.len()];
                params.distance_within_batch_in(m, &query, &cands, mid, &mut scratch, &mut out);
                for (i, &(lb, c)) in cands.iter().enumerate() {
                    let want =
                        params.distance_within_from_lb_in(m, &query, c, mid, lb, &mut scratch);
                    assert_eq!(
                        out[i].map(f64::to_bits),
                        want.map(f64::to_bits),
                        "{m} on {backend}, group of {take}, lane {i}"
                    );
                }
            });
        }
    }
}
