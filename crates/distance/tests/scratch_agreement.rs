//! Bitwise agreement between the scratch-threaded kernels and the seed
//! per-call-allocating kernels (`repose_distance::reference`).
//!
//! The zero-allocation refactor (flat scratch buffers, squared-space
//! Fréchet, cached ERP gap distances) is required to leave every result
//! bit-identical. These property tests drive both implementations over
//! random trajectory pairs — including degenerate lengths and heavy
//! coordinate ties — and compare `to_bits()`, never an epsilon. One shared
//! scratch instance persists across all cases of a run, so buffer-reuse
//! contamination between kernels/sizes would be caught too.

use proptest::prelude::*;
use repose_distance::{
    available_backends, force_backend, just_above, reference, Backend, DistScratch, Measure,
    MeasureParams,
};
use repose_model::Point;
use std::sync::Mutex;

fn pts(v: &[(f64, f64)]) -> Vec<Point> {
    v.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

const GAP: Point = Point::new(0.0, 0.0);

/// The active backend is process-global: tests that force it hold this lock
/// so two forcing tests never interleave. (Non-forcing tests in this binary
/// are unaffected either way — every backend is bit-identical, which is the
/// very property under test.)
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once per backend the host CPU supports, with that backend
/// forced; restores the widest backend afterwards.
fn for_each_backend(mut f: impl FnMut(Backend)) {
    let _guard = BACKEND_LOCK.lock().unwrap();
    let all = available_backends();
    for &b in &all {
        force_backend(b);
        f(b);
    }
    force_backend(*all.last().expect("scalar is always available"));
}

/// Coordinates drawn from a coarse lattice so exact ties (equal distances,
/// equal DP cells) are common — the regime where tie-breaking divergence
/// between implementations would show.
fn coord() -> impl Strategy<Value = (f64, f64)> {
    (0i32..12, 0i32..12).prop_map(|(x, y)| (x as f64 * 0.5, y as f64 * 0.5))
}

fn check_pair(a: &[Point], b: &[Point], eps: f64, scratch: &mut DistScratch) {
    let params = MeasureParams::with_eps(eps);
    for m in Measure::ALL {
        let seed = reference::distance(&params, m, a, b);
        let new = params.distance_in(m, a, b, scratch);
        assert_eq!(
            new.to_bits(),
            seed.to_bits(),
            "{m}: scratch {new} != seed {seed}"
        );
        // Threshold-aware kernels: identical Some/None decision and
        // identical surviving value at thresholds straddling the distance.
        for thr in [seed * 0.5, seed, seed + 0.25, f64::INFINITY] {
            let lb = params.lower_bound(m, a, b);
            let seed_w = reference::distance_within_from_lb(&params, m, a, b, thr, lb);
            let new_w = params.distance_within_from_lb_in(m, a, b, thr, lb, scratch);
            assert_eq!(
                new_w.map(f64::to_bits),
                seed_w.map(f64::to_bits),
                "{m} thr={thr}: scratch {new_w:?} != seed {seed_w:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scratch_kernels_agree_bitwise_with_seed_kernels(
        xs in proptest::collection::vec(coord(), 1..24),
        ys in proptest::collection::vec(coord(), 1..24),
        eps_idx in 0usize..3,
    ) {
        let eps = [0.25, 0.75, 1.5][eps_idx];
        let a = pts(&xs);
        let b = pts(&ys);
        let mut scratch = DistScratch::new();
        check_pair(&a, &b, eps, &mut scratch);
        // Symmetry of reuse: run the swapped pair through the *same*
        // scratch (buffers now sized by the first pair).
        check_pair(&b, &a, eps, &mut scratch);
    }

    #[test]
    fn individual_kernels_agree_bitwise(
        xs in proptest::collection::vec(coord(), 1..20),
        ys in proptest::collection::vec(coord(), 1..20),
    ) {
        let a = pts(&xs);
        let b = pts(&ys);
        let mut s = DistScratch::new();
        prop_assert_eq!(
            repose_distance::dtw_in(&a, &b, &mut s).to_bits(),
            reference::dtw(&a, &b).to_bits()
        );
        prop_assert_eq!(
            repose_distance::frechet_in(&a, &b, &mut s).to_bits(),
            reference::frechet(&a, &b).to_bits()
        );
        prop_assert_eq!(
            repose_distance::hausdorff_in(&a, &b, &mut s).to_bits(),
            reference::hausdorff(&a, &b).to_bits()
        );
        prop_assert_eq!(
            repose_distance::erp_in(&a, &b, GAP, &mut s).to_bits(),
            reference::erp(&a, &b, GAP).to_bits()
        );
        prop_assert_eq!(
            repose_distance::edr_in(&a, &b, 0.5, &mut s).to_bits(),
            reference::edr(&a, &b, 0.5).to_bits()
        );
        prop_assert_eq!(
            repose_distance::lcss_distance_in(&a, &b, 0.5, &mut s).to_bits(),
            reference::lcss_distance(&a, &b, 0.5).to_bits()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The backend-differential matrix: every backend the CPU supports
    /// must reproduce the seed reference kernels bit-for-bit — all six
    /// full kernels, and the `*_within` kernels' `Some`/`None` contract at
    /// thresholds straddling the distance, including the exact-tie
    /// threshold `thr == d` (must refute: the contract is strict `<`) and
    /// its successor `just_above(d)` (must keep, with identical bits) —
    /// the k-th-boundary tie cases a running top-k produces constantly.
    #[test]
    fn every_backend_agrees_bitwise_with_reference(
        xs in proptest::collection::vec(coord(), 1..24),
        ys in proptest::collection::vec(coord(), 1..24),
        eps_idx in 0usize..3,
    ) {
        let eps = [0.25, 0.75, 1.5][eps_idx];
        let a = pts(&xs);
        let b = pts(&ys);
        let params = MeasureParams::with_eps(eps);
        for_each_backend(|backend| {
            let mut scratch = DistScratch::new();
            for m in Measure::ALL {
                let seed = reference::distance(&params, m, &a, &b);
                let got = params.distance_in(m, &a, &b, &mut scratch);
                assert_eq!(
                    got.to_bits(),
                    seed.to_bits(),
                    "{m} on {backend}: {got} != reference {seed}"
                );
                let lb = params.lower_bound(m, &a, &b);
                for thr in [seed * 0.5, seed, just_above(seed), seed + 0.25, f64::INFINITY] {
                    let seed_w =
                        reference::distance_within_from_lb(&params, m, &a, &b, thr, lb);
                    let got_w =
                        params.distance_within_from_lb_in(m, &a, &b, thr, lb, &mut scratch);
                    assert_eq!(
                        got_w.map(f64::to_bits),
                        seed_w.map(f64::to_bits),
                        "{m} on {backend} thr={thr}: {got_w:?} != reference {seed_w:?}"
                    );
                }
            }
        });
    }

    /// Lane-batched verification vs one-at-a-time: `out[l]` of
    /// `distance_within_batch_in` must be bit-identical to the sequential
    /// `distance_within_from_lb_in` of the same candidate at the same
    /// threshold, on every backend, for every batchable measure — across
    /// ragged candidate lengths (lanes finish at different columns) and
    /// thresholds that abandon some lanes and not others.
    #[test]
    fn batched_verification_agrees_with_sequential(
        q in proptest::collection::vec(coord(), 1..16),
        cands in proptest::collection::vec(proptest::collection::vec(coord(), 1..20), 1..7),
        thr_scale in 0.25f64..2.0,
    ) {
        let query = pts(&q);
        let cand_pts: Vec<Vec<Point>> = cands.iter().map(|c| pts(c)).collect();
        let params = MeasureParams::with_eps(0.5);
        for m in [Measure::Dtw, Measure::Frechet, Measure::Erp, Measure::Hausdorff] {
            // A threshold near the middle of the candidates' distance range
            // so batches mix survivors, abandons, and prefilter rejections.
            let dmax = cand_pts
                .iter()
                .map(|c| reference::distance(&params, m, &query, c))
                .fold(0.0f64, f64::max);
            let thr = dmax * thr_scale + 1e-6;
            let cand_refs: Vec<(f64, &[Point])> = cand_pts
                .iter()
                .map(|c| (params.lower_bound(m, &query, c), c.as_slice()))
                .collect();
            for_each_backend(|backend| {
                let mut scratch = DistScratch::new();
                let mut out = vec![None; cand_refs.len()];
                params.distance_within_batch_in(
                    m, &query, &cand_refs, thr, &mut scratch, &mut out,
                );
                for (i, &(lb, c)) in cand_refs.iter().enumerate() {
                    let want =
                        params.distance_within_from_lb_in(m, &query, c, thr, lb, &mut scratch);
                    assert_eq!(
                        out[i].map(f64::to_bits),
                        want.map(f64::to_bits),
                        "{m} on {backend} lane {i} thr={thr}: batched {:?} != sequential {want:?}",
                        out[i]
                    );
                }
            });
        }
    }
}

#[test]
fn empty_and_degenerate_inputs_agree() {
    let mut s = DistScratch::new();
    let params = MeasureParams::with_eps(0.5);
    let a = pts(&[(1.0, 2.0)]);
    let cases: [(&[Point], &[Point]); 4] =
        [(&[], &[]), (&a, &[]), (&[], &a), (&a, &a)];
    for (x, y) in cases {
        for m in Measure::ALL {
            let seed = reference::distance(&params, m, x, y);
            let new = params.distance_in(m, x, y, &mut s);
            assert_eq!(new.to_bits(), seed.to_bits(), "{m} on degenerate input");
        }
    }
}

/// A warm scratch produces the same bits as a cold one — reuse leaves no
/// residue (buffers are re-zeroed per call).
#[test]
fn warm_scratch_equals_cold_scratch() {
    let a = pts(&[(0.0, 0.0), (1.5, 0.5), (3.0, 1.0), (4.5, 0.0)]);
    let b = pts(&[(0.5, 0.5), (2.0, 1.5), (3.5, 0.5)]);
    let long: Vec<Point> = (0..64).map(|i| Point::new(i as f64 * 0.3, (i % 5) as f64)).collect();
    let params = MeasureParams::with_eps(0.4);
    for m in Measure::ALL {
        let mut cold = DistScratch::new();
        let want = params.distance_in(m, &a, &b, &mut cold);
        let mut warm = DistScratch::new();
        // Dirty the buffers with larger inputs first.
        let _ = params.distance_in(m, &long, &long, &mut warm);
        let _ = params.distance_within_in(m, &long, &b, 0.1, &mut warm);
        let got = params.distance_in(m, &a, &b, &mut warm);
        assert_eq!(got.to_bits(), want.to_bits(), "{m}: warm != cold");
    }
}
