//! Property-based tests of the metric/non-metric classification the paper
//! relies on (Section IV-D: pivot pruning is only sound for metrics).

use proptest::prelude::*;
use repose_distance::{dtw, frechet, hausdorff};
use repose_model::Point;

fn pts(v: &[(f64, f64)]) -> Vec<Point> {
    v.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

fn arb_traj() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hausdorff_triangle_inequality(a in arb_traj(), b in arb_traj(), c in arb_traj()) {
        let (a, b, c) = (pts(&a), pts(&b), pts(&c));
        let ab = hausdorff(&a, &b);
        let bc = hausdorff(&b, &c);
        let ac = hausdorff(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "H triangle violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn frechet_triangle_inequality(a in arb_traj(), b in arb_traj(), c in arb_traj()) {
        let (a, b, c) = (pts(&a), pts(&b), pts(&c));
        let ab = frechet(&a, &b);
        let bc = frechet(&b, &c);
        let ac = frechet(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "F triangle violated: {ac} > {ab} + {bc}");
    }

    #[test]
    fn hausdorff_symmetry_and_identity(a in arb_traj(), b in arb_traj()) {
        let (a, b) = (pts(&a), pts(&b));
        prop_assert!((hausdorff(&a, &b) - hausdorff(&b, &a)).abs() < 1e-12);
        prop_assert_eq!(hausdorff(&a, &a), 0.0);
    }

    #[test]
    fn frechet_dominates_hausdorff(a in arb_traj(), b in arb_traj()) {
        // Classic relationship: DH <= DF on the same curves.
        let (a, b) = (pts(&a), pts(&b));
        prop_assert!(hausdorff(&a, &b) <= frechet(&a, &b) + 1e-9);
    }

    #[test]
    fn dtw_dominates_frechet_lower(a in arb_traj(), b in arb_traj()) {
        // DTW sums ground distances along the best path, so it is at least
        // the max ground distance along that path >= ... >= nothing tight;
        // but DTW >= d(first, first) and >= d(last, last) always.
        let (a, b) = (pts(&a), pts(&b));
        let d = dtw(&a, &b);
        prop_assert!(d + 1e-9 >= a[0].dist(&b[0]));
        prop_assert!(d + 1e-9 >= a[a.len() - 1].dist(&b[b.len() - 1]));
    }

    #[test]
    fn all_nonnegative(a in arb_traj(), b in arb_traj()) {
        let (a, b) = (pts(&a), pts(&b));
        prop_assert!(hausdorff(&a, &b) >= 0.0);
        prop_assert!(frechet(&a, &b) >= 0.0);
        prop_assert!(dtw(&a, &b) >= 0.0);
    }
}

/// Documented counter-example: DTW violates the triangle inequality, which
/// is exactly why the paper excludes it from pivot pruning (Section VI-B).
///
/// 1-D sequences on the x axis: `a = [0,0,0]`, `b = [0,1]`, `c = [1,1,1]`.
/// The short bridge `b` warps cheaply onto both (cost 1 each: only one
/// element pays), but `a` against `c` pays 1 on every step of a length-3
/// path.
#[test]
fn dtw_triangle_inequality_counterexample() {
    let a = pts(&[(0.0, 0.0), (0.0, 0.0), (0.0, 0.0)]);
    let b = pts(&[(0.0, 0.0), (1.0, 0.0)]);
    let c = pts(&[(1.0, 0.0), (1.0, 0.0), (1.0, 0.0)]);
    let ab = dtw(&a, &b);
    let bc = dtw(&b, &c);
    let ac = dtw(&a, &c);
    assert_eq!(ab, 1.0);
    assert_eq!(bc, 1.0);
    assert_eq!(ac, 3.0);
    assert!(ac > ab + bc, "triangle inequality violated: {ac} > {ab} + {bc}");
}
