//! The `distance_within` contract, property-tested over all six measures:
//! for any trajectories and any threshold, the early-abandoning kernel
//! returns `Some(d)` with `d` *bit-identical* to the unbounded kernel
//! whenever `d < threshold`, and `None` exactly when the true distance is
//! `>= threshold`. This is what lets every verification site in the system
//! swap `distance` for `distance_within` without changing a single result.

use proptest::prelude::*;
use repose_distance::{Measure, MeasureParams};
use repose_model::Point;

fn pts(v: &[(f64, f64)]) -> Vec<Point> {
    v.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

fn check_contract(
    params: &MeasureParams,
    measure: Measure,
    a: &[Point],
    b: &[Point],
    threshold: f64,
) -> Result<(), TestCaseError> {
    let exact = params.distance(measure, a, b);
    let got = params.distance_within(measure, a, b, threshold);
    if exact < threshold {
        match got {
            Some(d) => prop_assert_eq!(
                d.to_bits(),
                exact.to_bits(),
                "{}: within returned {} but exact is {}",
                measure,
                d,
                exact
            ),
            None => prop_assert!(
                false,
                "{}: within abandoned although {} < {}",
                measure,
                exact,
                threshold
            ),
        }
    } else {
        prop_assert_eq!(
            got,
            None,
            "{}: within returned a value although {} >= {}",
            measure,
            exact,
            threshold
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random trajectories × random absolute thresholds.
    #[test]
    fn within_matches_unbounded_at_random_thresholds(
        xs in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..12),
        ys in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..12),
        threshold in 0.0f64..60.0,
        eps in 0.05f64..2.0,
        measure_idx in 0usize..6,
    ) {
        let a = pts(&xs);
        let b = pts(&ys);
        let measure = Measure::ALL[measure_idx];
        let params = MeasureParams::with_eps(eps);
        check_contract(&params, measure, &a, &b, threshold)?;
    }

    /// Thresholds built *from the exact distance* hit the boundary cases a
    /// uniform threshold almost never finds: just below, exactly at, and
    /// just above the true distance.
    #[test]
    fn within_matches_unbounded_at_boundary_thresholds(
        xs in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..10),
        ys in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..10),
        eps in 0.05f64..2.0,
        measure_idx in 0usize..6,
    ) {
        let a = pts(&xs);
        let b = pts(&ys);
        let measure = Measure::ALL[measure_idx];
        let params = MeasureParams::with_eps(eps);
        let exact = params.distance(measure, &a, &b);
        let mut thresholds = vec![exact * 0.5, exact, exact * 1.5 + 1e-9, f64::INFINITY];
        if exact > 0.0 && exact.is_finite() {
            thresholds.push(exact.next_up());
            thresholds.push(exact.next_down());
        }
        for thr in thresholds {
            check_contract(&params, measure, &a, &b, thr)?;
        }
    }

    /// The prefilter must never overshoot the exact distance (soundness of
    /// the O(m+n) lower bound each kernel consults first).
    #[test]
    fn lower_bound_never_exceeds_exact(
        xs in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..10),
        ys in proptest::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 1..10),
        eps in 0.05f64..2.0,
        measure_idx in 0usize..6,
    ) {
        let a = pts(&xs);
        let b = pts(&ys);
        let measure = Measure::ALL[measure_idx];
        let params = MeasureParams::with_eps(eps);
        let lb = params.lower_bound(measure, &a, &b);
        let exact = params.distance(measure, &a, &b);
        prop_assert!(
            lb <= exact + 1e-9,
            "{}: lower bound {} exceeds exact {}",
            measure,
            lb,
            exact
        );
    }
}
