//! Reusable DP scratch for the exact kernels: the zero-allocation
//! verification path.
//!
//! Every distance kernel needs a row or column of DP state (and ERP a
//! cached gap-distance row). Allocating those per call puts the allocator
//! on the hot path of every verification — the dominant cost of a query
//! once the index has pruned (Section VI of the paper). A [`DistScratch`]
//! owns those buffers and is reused across calls: after the first few
//! verifications have grown each buffer to the longest trajectory seen,
//! the kernels run **allocation-free**.
//!
//! Ownership discipline: one scratch per worker thread. Callers that own a
//! loop can hold a `DistScratch` explicitly and call the `*_in` kernel
//! variants; every classic entry point (`dtw(a, b)`,
//! [`crate::MeasureParams::distance`], …) instead borrows the calling
//! thread's scratch via [`DistScratch::with_thread`], so the trie search,
//! the serving layer's delta scans, and the baselines' refinement loops
//! all get the warm-thread zero-allocation behaviour without plumbing a
//! scratch through their public signatures.

use std::cell::RefCell;

/// One 4-lane group of batched-verification column state: candidate lane
/// `l`'s DP cell lives at `.0[l]`. 32-byte alignment keeps every lane
/// group on one AVX2 load/store.
#[derive(Debug, Clone, Copy, Default)]
#[repr(C, align(32))]
pub(crate) struct Lane4(pub [f64; 4]);

/// Reusable kernel scratch space (see module docs).
///
/// The buffers are deliberately typed by role, not by kernel: `fa`/`fb`
/// serve as DP column + ground-distance cache (DTW, Fréchet), as the
/// row pair (ERP), or as column-minima (Hausdorff); `fc` caches ERP gap
/// distances and `fd` the SIMD kernels' per-row-pair ground distances;
/// `ua`/`ub` are the integer row pair of EDR and LCSS and `uc` the SIMD
/// wavefront's precomputed match rows; `lanes` holds the lane-interleaved
/// column state of batched multi-candidate verification. A single scratch
/// therefore serves all six measures interchangeably.
#[derive(Debug, Default)]
pub struct DistScratch {
    fa: Vec<f64>,
    fb: Vec<f64>,
    fc: Vec<f64>,
    fd: Vec<f64>,
    ua: Vec<u32>,
    ub: Vec<u32>,
    uc: Vec<u32>,
    lanes: Vec<Lane4>,
}

fn grow_u(buf: &mut Vec<u32>, n: usize) -> &mut [u32] {
    buf.clear();
    buf.resize(n, 0);
    &mut buf[..]
}

/// Returns a length-`n` view of `buf` without clearing retained values:
/// for kernels that fully initialize the buffer before reading it, the
/// per-call `memset` is waste the warm path should not pay.
fn grow_f_uninit(buf: &mut Vec<f64>, n: usize) -> &mut [f64] {
    if buf.len() < n {
        buf.resize(n, 0.0);
    }
    &mut buf[..n]
}

fn grow_u_uninit(buf: &mut Vec<u32>, n: usize) -> &mut [u32] {
    if buf.len() < n {
        buf.resize(n, 0);
    }
    &mut buf[..n]
}

impl DistScratch {
    /// An empty scratch. Buffers grow on first use and are then reused.
    pub fn new() -> Self {
        DistScratch::default()
    }

    /// One `f64` buffer of length `n` with **unspecified contents** — for
    /// kernels that fully initialize it before any read (DTW/Fréchet first
    /// column, Hausdorff after its own `fill`).
    pub(crate) fn f1_uninit(&mut self, n: usize) -> &mut [f64] {
        grow_f_uninit(&mut self.fa, n)
    }

    /// Three `f64` buffers with **unspecified contents** (the ERP rows and
    /// gap cache; ERP writes every entry it reads).
    pub(crate) fn f3_uninit(
        &mut self,
        na: usize,
        nb: usize,
        nc: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64]) {
        (
            grow_f_uninit(&mut self.fa, na),
            grow_f_uninit(&mut self.fb, nb),
            grow_f_uninit(&mut self.fc, nc),
        )
    }

    /// Two zeroed `u32` buffers (LCSS relies on the zeros: row slot 0 is
    /// read but never written).
    pub(crate) fn u2(&mut self, na: usize, nb: usize) -> (&mut [u32], &mut [u32]) {
        (grow_u(&mut self.ua, na), grow_u(&mut self.ub, nb))
    }

    /// Two `u32` buffers with **unspecified contents** (EDR initializes
    /// both rows before reading).
    pub(crate) fn u2_uninit(&mut self, na: usize, nb: usize) -> (&mut [u32], &mut [u32]) {
        (
            grow_u_uninit(&mut self.ua, na),
            grow_u_uninit(&mut self.ub, nb),
        )
    }

    /// Four `f64` buffers with **unspecified contents** — the SIMD ERP
    /// kernel's row pair, gap cache, and packed per-row ground distances.
    pub(crate) fn f4_uninit(
        &mut self,
        na: usize,
        nb: usize,
        nc: usize,
        nd: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        (
            grow_f_uninit(&mut self.fa, na),
            grow_f_uninit(&mut self.fb, nb),
            grow_f_uninit(&mut self.fc, nc),
            grow_f_uninit(&mut self.fd, nd),
        )
    }

    /// Three `u32` buffers with **unspecified contents** — the SIMD
    /// EDR/LCSS wavefront's row pair plus its precomputed match rows.
    pub(crate) fn u3_uninit(
        &mut self,
        na: usize,
        nb: usize,
        nc: usize,
    ) -> (&mut [u32], &mut [u32], &mut [u32]) {
        (
            grow_u_uninit(&mut self.ua, na),
            grow_u_uninit(&mut self.ub, nb),
            grow_u_uninit(&mut self.uc, nc),
        )
    }

    /// Lane-interleaved batch column state (length `nl` lane groups) plus
    /// two `f64` rows, all with **unspecified contents** — the batched
    /// multi-candidate kernels' working set.
    pub(crate) fn batch_f(
        &mut self,
        nl: usize,
        na: usize,
        nb: usize,
    ) -> (&mut [Lane4], &mut [f64], &mut [f64]) {
        if self.lanes.len() < nl {
            self.lanes.resize(nl, Lane4::default());
        }
        (
            &mut self.lanes[..nl],
            grow_f_uninit(&mut self.fa, na),
            grow_f_uninit(&mut self.fb, nb),
        )
    }

    /// Total reserved capacity in bytes across all buffers.
    ///
    /// Stable across calls once the scratch is warm — tests assert this to
    /// prove a warm verification loop never grows (hence never allocates
    /// from) the scratch.
    pub fn footprint(&self) -> usize {
        (self.fa.capacity() + self.fb.capacity() + self.fc.capacity() + self.fd.capacity())
            * std::mem::size_of::<f64>()
            + (self.ua.capacity() + self.ub.capacity() + self.uc.capacity())
                * std::mem::size_of::<u32>()
            + self.lanes.capacity() * std::mem::size_of::<Lane4>()
    }

    /// Runs `f` with the calling thread's scratch — the per-worker-thread
    /// scratch every classic (non-`_in`) kernel entry point uses.
    ///
    /// Re-entrant calls (a classic kernel invoked from code already
    /// running inside another kernel's scratch scope — e.g. a
    /// `ThresholdSource` or refinement callback that recomputes a
    /// distance) fall back to a fresh temporary scratch: correct, just
    /// not allocation-free for that inner call. The `*_in` kernels never
    /// re-enter.
    pub fn with_thread<R>(f: impl FnOnce(&mut DistScratch) -> R) -> R {
        thread_local! {
            static SCRATCH: RefCell<DistScratch> = RefCell::new(DistScratch::new());
        }
        SCRATCH.with(|s| match s.try_borrow_mut() {
            Ok(mut scratch) => f(&mut scratch),
            Err(_) => f(&mut DistScratch::new()),
        })
    }

    /// The calling thread's current scratch footprint in bytes (see
    /// [`DistScratch::footprint`]).
    pub fn thread_footprint() -> usize {
        DistScratch::with_thread(|s| s.footprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_buffers_are_zeroed_and_sized() {
        let mut s = DistScratch::new();
        {
            let (u, v) = s.u2(3, 3);
            u[0] = 5;
            v[2] = 6;
        }
        // Reacquiring the zeroed accessor re-zeroes.
        let (u, v) = s.u2(3, 3);
        assert!(u.iter().all(|&x| x == 0));
        assert!(v.iter().all(|&x| x == 0));
        let (a, b, c) = s.f3_uninit(4, 7, 2);
        assert_eq!((a.len(), b.len(), c.len()), (4, 7, 2));
    }

    #[test]
    fn uninit_buffers_keep_capacity_and_contents() {
        let mut s = DistScratch::new();
        s.f1_uninit(8)[7] = 9.0;
        // Shrinking views reuse the same storage without clearing.
        assert_eq!(s.f1_uninit(4).len(), 4);
        assert_eq!(s.f1_uninit(8)[7], 9.0);
    }

    #[test]
    fn footprint_stabilizes() {
        let mut s = DistScratch::new();
        s.f3_uninit(16, 16, 16);
        s.u2(16, 16);
        let fp = s.footprint();
        assert!(fp > 0);
        // Smaller and equal requests never grow the footprint.
        s.f3_uninit(8, 16, 2);
        s.u2(1, 16);
        s.f1_uninit(16);
        s.u2_uninit(16, 4);
        assert_eq!(s.footprint(), fp);
    }

    #[test]
    fn thread_scratch_is_reused() {
        DistScratch::with_thread(|s| {
            s.f1_uninit(32);
        });
        let fp = DistScratch::thread_footprint();
        DistScratch::with_thread(|s| {
            s.f1_uninit(16);
        });
        assert_eq!(DistScratch::thread_footprint(), fp);
    }

    #[test]
    fn reentrant_use_falls_back_instead_of_panicking() {
        // A callback inside a kernel's scratch scope may call a classic
        // entry point; the inner call must get a (fresh) scratch, not a
        // RefCell panic.
        let outer_fp = DistScratch::with_thread(|outer| {
            outer.f1_uninit(8);
            let inner = DistScratch::with_thread(|inner| {
                inner.f1_uninit(4);
                inner.footprint()
            });
            assert!(inner > 0);
            outer.footprint()
        });
        assert!(outer_fp > 0);
    }
}
