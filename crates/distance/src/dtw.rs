use crate::DistScratch;
use repose_model::Point;

/// One DTW column transition (Eq. 15) over a caller-owned column buffer;
/// `ground(q)` is the ground distance of query point `q` to the new
/// reference element. Returns the new column's minimum.
///
/// This is the single implementation of the DTW recurrence: the
/// incremental [`DtwColumn`] and the batch/threshold kernels all route
/// through it, which is what keeps their results bit-identical. The DP
/// wavefront (`f_{i-1,j-1}`, `f_{i-1,j}`) is carried in registers and the
/// column is walked with a zipped iterator, so the inner loop has no
/// bounds checks.
#[inline]
pub(crate) fn dtw_advance<F: Fn(&Point) -> f64>(
    col: &mut [f64],
    first: bool,
    query: &[Point],
    ground: F,
) -> f64 {
    debug_assert_eq!(col.len(), query.len());
    let mut cmin = f64::INFINITY;
    if first {
        // First column: f_{i,1} = sum_{t<=i} d(q_t, p_1).
        let mut acc = 0.0;
        for (c, q) in col.iter_mut().zip(query) {
            acc += ground(q);
            *c = acc;
            if acc < cmin {
                cmin = acc;
            }
        }
    } else {
        // prev_im1 = f_{i-1,j-1} (old col value one row up), last_new =
        // f_{i-1,j} (this column's value one row up).
        let mut prev_im1 = f64::INFINITY;
        let mut last_new = f64::INFINITY;
        for (i, (c, q)) in col.iter_mut().zip(query).enumerate() {
            let d = ground(q);
            let old = *c;
            let best_pred = if i == 0 {
                old // f_{1,j} = d + f_{1,j-1}
            } else {
                prev_im1.min(old).min(last_new)
            };
            prev_im1 = old;
            let new = d + best_pred;
            *c = new;
            last_new = new;
            if new < cmin {
                cmin = new;
            }
        }
    }
    cmin
}

/// Two DTW column transitions in one pass over the column buffer: the
/// buffer holds column `j-1` on entry and column `j+1` on exit.
///
/// Each cell is computed from exactly the same operands in the same order
/// as two successive [`dtw_advance`] calls — results are bit-identical —
/// but the two columns' serial min-chains interleave in the pipeline, so
/// the chain-latency-bound DP runs substantially faster. Returns both
/// columns' minima (callers that abandon must check them in column
/// order).
#[inline]
pub(crate) fn dtw_advance2<F1: Fn(&Point) -> f64, F2: Fn(&Point) -> f64>(
    col: &mut [f64],
    query: &[Point],
    ground1: F1,
    ground2: F2,
) -> (f64, f64) {
    debug_assert_eq!(col.len(), query.len());
    let (mut cmin1, mut cmin2) = (f64::INFINITY, f64::INFINITY);
    // a = f_{i-1,j-1}, b = f_{i-1,j}, c2 = f_{i-1,j+1}.
    let (mut a, mut b, mut c2) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, (c, q)) in col.iter_mut().zip(query).enumerate() {
        let d1 = ground1(q);
        let d2 = ground2(q);
        let old = *c; // f_{i,j-1}
        let v1 = if i == 0 { d1 + old } else { d1 + a.min(old).min(b) };
        let v2 = if i == 0 { d2 + v1 } else { d2 + b.min(v1).min(c2) };
        a = old;
        b = v1;
        c2 = v2;
        *c = v2;
        if v1 < cmin1 {
            cmin1 = v1;
        }
        if v2 < cmin2 {
            cmin2 = v2;
        }
    }
    (cmin1, cmin2)
}

/// Dynamic time warping distance between two trajectories (Eq. 12),
/// with Euclidean ground distance and no warping window.
///
/// Borrows the calling thread's [`DistScratch`]; callers that own a
/// verification loop should prefer [`dtw_in`].
pub fn dtw(t1: &[Point], t2: &[Point]) -> f64 {
    DistScratch::with_thread(|s| dtw_in(t1, t2, s))
}

/// [`dtw`] against a caller-managed scratch: zero heap allocations once
/// `scratch` is warm. Dispatches to the active SIMD backend (packed
/// ground-distance precompute feeding the same column chain) or to the
/// scalar kernel — bit-identical either way (see [`crate::backend`]).
pub fn dtw_in(t1: &[Point], t2: &[Point], scratch: &mut DistScratch) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return if t1.is_empty() && t2.is_empty() { 0.0 } else { f64::INFINITY };
    }
    crate::backend::simd_dispatch!(dtw(t1, t2, scratch));
    dtw_scalar_in(t1, t2, scratch)
}

/// The scalar [`dtw_in`] body (the oracle the SIMD backends are tested
/// against): no re-zeroing — the first column fully initializes the buffer
/// — and reference points consumed in pairs so two columns' dependency
/// chains overlap in the pipeline.
pub(crate) fn dtw_scalar_in(t1: &[Point], t2: &[Point], scratch: &mut DistScratch) -> f64 {
    let col = scratch.f1_uninit(t1.len());
    let (p0, rest) = t2.split_first().expect("non-empty");
    dtw_advance(col, true, t1, |q| q.dist(p0));
    let mut pairs = rest.chunks_exact(2);
    for pair in &mut pairs {
        dtw_advance2(col, t1, |q| q.dist(&pair[0]), |q| q.dist(&pair[1]));
    }
    for p in pairs.remainder() {
        dtw_advance(col, false, t1, |q| q.dist(p));
    }
    col[col.len() - 1]
}

/// Incremental DTW column kernel (Section VI-B).
///
/// Maintains the last column of the DTW matrix between a fixed query (rows)
/// and a reference sequence growing one element at a time (columns), via
/// Eq. 15:
///
/// ```text
/// f_{i,j} = d'(q_i, p*_j) + min(f_{i-1,j-1}, f_{i-1,j}, f_{i,j-1})
/// ```
///
/// `cmin` of the newly added column is the one-side bound (Eq. 13) and
/// `last` (`f_{m,n}`) is the two-side bound (Eq. 14). The ground distance is
/// caller-supplied so the trie search can use the minimum distance from a
/// query point to a grid *cell* (`d'`), which the paper requires because DTW
/// does not obey the triangle inequality.
#[derive(Debug, Clone)]
pub struct DtwColumn {
    col: Vec<f64>,
    cmin: f64,
    len: usize,
}

impl DtwColumn {
    /// State for a query with `m` points, before any reference element.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "query must be non-empty");
        DtwColumn { col: vec![0.0; m], cmin: f64::INFINITY, len: 0 }
    }

    /// Number of reference elements consumed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no reference element has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes the next reference point with Euclidean ground distance.
    pub fn push(&mut self, query: &[Point], p: Point) {
        self.push_with(query, |q| q.dist(&p));
    }

    /// Pushes the next reference element with a caller-supplied ground
    /// distance.
    pub fn push_with<F: Fn(&Point) -> f64>(&mut self, query: &[Point], ground: F) {
        debug_assert_eq!(query.len(), self.col.len());
        self.cmin = dtw_advance(&mut self.col, self.len == 0, query, ground);
        self.len += 1;
    }

    /// Minimum of the most recently added column (Eq. 13).
    pub fn cmin(&self) -> f64 {
        self.cmin
    }

    /// `f_{m,n}`: DTW between the query and the consumed reference prefix
    /// (Eq. 14). Only meaningful when `len() > 0`.
    pub fn last(&self) -> f64 {
        *self.col.last().expect("non-empty query")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = pts(&[(0.0, 0.0), (1.0, 3.0), (2.0, 0.5)]);
        let b = pts(&[(0.0, 1.0), (2.0, 2.0), (4.0, 0.0), (5.0, 1.0)]);
        assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_small_case() {
        // 1-D points on the x axis: q = [0, 1], t = [0, 2].
        // matrix: f11=0, f21=1, f12=2+0=2, f22=|1-2|+min(0,1,2)=1
        let q = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let t = pts(&[(0.0, 0.0), (2.0, 0.0)]);
        assert_eq!(dtw(&q, &t), 1.0);
    }

    #[test]
    fn single_row_and_column_are_sums() {
        let q = pts(&[(0.0, 0.0)]);
        let t = pts(&[(1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        assert_eq!(dtw(&q, &t), 6.0); // sum of distances to q1
        assert_eq!(dtw(&t, &q), 6.0);
    }

    #[test]
    fn time_shift_cheaper_than_euclidean_alignment() {
        // DTW should align a shifted copy nearly for free.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        assert_eq!(dtw(&a, &b), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let a = pts(&[(0.0, 0.0)]);
        assert_eq!(dtw(&[], &[]), 0.0);
        assert_eq!(dtw(&a, &[]), f64::INFINITY);
    }

    #[test]
    fn column_kernel_matches_prefix_batch() {
        let q = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let t = pts(&[(0.5, 0.5), (1.0, 0.0), (2.5, 1.0), (3.0, 3.0)]);
        let mut col = DtwColumn::new(q.len());
        for (j, p) in t.iter().enumerate() {
            col.push(&q, *p);
            let batch = dtw(&q, &t[..=j]);
            assert!((col.last() - batch).abs() < 1e-12, "prefix {j}");
        }
    }

    #[test]
    fn optimistic_ground_distance_lower_bounds_exact() {
        // Using a ground distance that under-estimates d(q, p) must yield a
        // DTW value no larger than the exact one — the property the trie
        // lower bound relies on.
        let q = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let t = pts(&[(0.5, 0.5), (1.0, 0.0), (2.5, 1.0)]);
        let mut exact = DtwColumn::new(q.len());
        let mut optimistic = DtwColumn::new(q.len());
        for p in &t {
            exact.push(&q, *p);
            optimistic.push_with(&q, |a| (a.dist(p) - 0.3).max(0.0));
        }
        assert!(optimistic.last() <= exact.last());
        assert!(optimistic.cmin() <= exact.cmin());
    }
}
