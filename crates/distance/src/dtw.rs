use repose_model::Point;

/// Dynamic time warping distance between two trajectories (Eq. 12),
/// with Euclidean ground distance and no warping window.
pub fn dtw(t1: &[Point], t2: &[Point]) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return if t1.is_empty() && t2.is_empty() { 0.0 } else { f64::INFINITY };
    }
    let mut col = DtwColumn::new(t1.len());
    for p in t2 {
        col.push_with(t1, |q| q.dist(p));
    }
    col.last()
}

/// Incremental DTW column kernel (Section VI-B).
///
/// Maintains the last column of the DTW matrix between a fixed query (rows)
/// and a reference sequence growing one element at a time (columns), via
/// Eq. 15:
///
/// ```text
/// f_{i,j} = d'(q_i, p*_j) + min(f_{i-1,j-1}, f_{i-1,j}, f_{i,j-1})
/// ```
///
/// `cmin` of the newly added column is the one-side bound (Eq. 13) and
/// `last` (`f_{m,n}`) is the two-side bound (Eq. 14). The ground distance is
/// caller-supplied so the trie search can use the minimum distance from a
/// query point to a grid *cell* (`d'`), which the paper requires because DTW
/// does not obey the triangle inequality.
#[derive(Debug, Clone)]
pub struct DtwColumn {
    col: Vec<f64>,
    cmin: f64,
    len: usize,
}

impl DtwColumn {
    /// State for a query with `m` points, before any reference element.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "query must be non-empty");
        DtwColumn { col: vec![0.0; m], cmin: f64::INFINITY, len: 0 }
    }

    /// Number of reference elements consumed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no reference element has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes the next reference point with Euclidean ground distance.
    pub fn push(&mut self, query: &[Point], p: Point) {
        self.push_with(query, |q| q.dist(&p));
    }

    /// Pushes the next reference element with a caller-supplied ground
    /// distance.
    #[allow(clippy::needless_range_loop)] // i also indexes the DP column
    pub fn push_with<F: Fn(&Point) -> f64>(&mut self, query: &[Point], ground: F) {
        debug_assert_eq!(query.len(), self.col.len());
        let m = self.col.len();
        let mut cmin = f64::INFINITY;
        if self.len == 0 {
            // First column: f_{i,1} = sum_{t<=i} d(q_t, p_1).
            let mut acc = 0.0;
            for i in 0..m {
                acc += ground(&query[i]);
                self.col[i] = acc;
                if acc < cmin {
                    cmin = acc;
                }
            }
        } else {
            let mut prev_im1 = self.col[0];
            for i in 0..m {
                let d = ground(&query[i]);
                let best_pred = if i == 0 {
                    self.col[0] // f_{1,j} = d + f_{1,j-1}
                } else {
                    prev_im1.min(self.col[i]).min(self.col[i - 1])
                };
                prev_im1 = self.col[i];
                self.col[i] = d + best_pred;
                if self.col[i] < cmin {
                    cmin = self.col[i];
                }
            }
        }
        self.cmin = cmin;
        self.len += 1;
    }

    /// Minimum of the most recently added column (Eq. 13).
    pub fn cmin(&self) -> f64 {
        self.cmin
    }

    /// `f_{m,n}`: DTW between the query and the consumed reference prefix
    /// (Eq. 14). Only meaningful when `len() > 0`.
    pub fn last(&self) -> f64 {
        *self.col.last().expect("non-empty query")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = pts(&[(0.0, 0.0), (1.0, 3.0), (2.0, 0.5)]);
        let b = pts(&[(0.0, 1.0), (2.0, 2.0), (4.0, 0.0), (5.0, 1.0)]);
        assert!((dtw(&a, &b) - dtw(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_small_case() {
        // 1-D points on the x axis: q = [0, 1], t = [0, 2].
        // matrix: f11=0, f21=1, f12=2+0=2, f22=|1-2|+min(0,1,2)=1
        let q = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let t = pts(&[(0.0, 0.0), (2.0, 0.0)]);
        assert_eq!(dtw(&q, &t), 1.0);
    }

    #[test]
    fn single_row_and_column_are_sums() {
        let q = pts(&[(0.0, 0.0)]);
        let t = pts(&[(1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        assert_eq!(dtw(&q, &t), 6.0); // sum of distances to q1
        assert_eq!(dtw(&t, &q), 6.0);
    }

    #[test]
    fn time_shift_cheaper_than_euclidean_alignment() {
        // DTW should align a shifted copy nearly for free.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        assert_eq!(dtw(&a, &b), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let a = pts(&[(0.0, 0.0)]);
        assert_eq!(dtw(&[], &[]), 0.0);
        assert_eq!(dtw(&a, &[]), f64::INFINITY);
    }

    #[test]
    fn column_kernel_matches_prefix_batch() {
        let q = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let t = pts(&[(0.5, 0.5), (1.0, 0.0), (2.5, 1.0), (3.0, 3.0)]);
        let mut col = DtwColumn::new(q.len());
        for (j, p) in t.iter().enumerate() {
            col.push(&q, *p);
            let batch = dtw(&q, &t[..=j]);
            assert!((col.last() - batch).abs() < 1e-12, "prefix {j}");
        }
    }

    #[test]
    fn optimistic_ground_distance_lower_bounds_exact() {
        // Using a ground distance that under-estimates d(q, p) must yield a
        // DTW value no larger than the exact one — the property the trie
        // lower bound relies on.
        let q = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let t = pts(&[(0.5, 0.5), (1.0, 0.0), (2.5, 1.0)]);
        let mut exact = DtwColumn::new(q.len());
        let mut optimistic = DtwColumn::new(q.len());
        for p in &t {
            exact.push(&q, *p);
            optimistic.push_with(&q, |a| (a.dist(p) - 0.3).max(0.0));
        }
        assert!(optimistic.last() <= exact.last());
        assert!(optimistic.cmin() <= exact.cmin());
    }
}
