//! The six trajectory similarity measures REPOSE supports (Sections II and
//! VI of the paper): Hausdorff, Frechet, DTW, LCSS, EDR, and ERP.
//!
//! Besides the plain pairwise distances, this crate exposes the *incremental
//! column kernels* that the RP-Trie search uses to evaluate lower bounds in
//! `O(m)` per trie node (Section IV-C, Algorithm 1): when a reference
//! trajectory grows by one point, only one new column of the distance matrix
//! has to be computed, given the parent node's intermediate results.

#![warn(missing_docs)]

mod dtw;
mod edr;
mod erp;
mod frechet;
mod hausdorff;
mod lcss;
mod measure;

pub use dtw::{dtw, DtwColumn};
pub use edr::edr;
pub use erp::erp;
pub use frechet::{frechet, FrechetColumn};
pub use hausdorff::{directed_hausdorff, hausdorff, HausdorffState};
pub use lcss::{lcss_distance, lcss_length};
pub use measure::{Measure, MeasureParams};
