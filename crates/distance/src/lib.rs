//! The six trajectory similarity measures REPOSE supports (Sections II and
//! VI of the paper): Hausdorff, Frechet, DTW, LCSS, EDR, and ERP.
//!
//! Besides the plain pairwise distances, this crate exposes the *incremental
//! column kernels* that the RP-Trie search uses to evaluate lower bounds in
//! `O(m)` per trie node (Section IV-C, Algorithm 1): when a reference
//! trajectory grows by one point, only one new column of the distance matrix
//! has to be computed, given the parent node's intermediate results.
//!
//! ```
//! use repose_distance::{hausdorff, Measure, MeasureParams};
//! use repose_model::Point;
//!
//! let a = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
//! let b = vec![Point::new(0.0, 3.0), Point::new(1.0, 3.0)];
//! assert_eq!(hausdorff(&a, &b), 3.0);
//!
//! // The uniform entry point used by the index: measure + params.
//! let params = MeasureParams::with_eps(0.5);
//! assert_eq!(params.distance(Measure::Hausdorff, &a, &b), 3.0);
//! assert!(Measure::Hausdorff.is_metric());
//! assert!(!Measure::Dtw.is_metric());
//!
//! // Threshold-aware verification: the early-abandoning kernel returns the
//! // exact distance below the threshold and refutes the candidate (usually
//! // far cheaper than the full kernel) at or above it.
//! assert_eq!(params.distance_within(Measure::Hausdorff, &a, &b, 5.0), Some(3.0));
//! assert_eq!(params.distance_within(Measure::Hausdorff, &a, &b, 2.0), None);
//! ```

#![warn(missing_docs)]

pub mod backend;
mod dtw;
mod edr;
mod erp;
mod frechet;
mod hausdorff;
mod lcss;
mod measure;
pub mod reference;
mod scratch;
#[cfg(target_arch = "x86_64")]
pub(crate) mod simd;
mod summary;
pub mod within;

pub use backend::{active_backend, available_backends, force_backend, Backend};
pub use dtw::{dtw, dtw_in, DtwColumn};
pub use edr::{edr, edr_in};
pub use erp::{erp, erp_in};
pub use frechet::{frechet, frechet_in, FrechetColumn};
pub use hausdorff::{directed_hausdorff, hausdorff, hausdorff_in, HausdorffState};
pub use lcss::{lcss_distance, lcss_distance_in, lcss_length, lcss_length_in};
pub use measure::{Measure, MeasureParams, RefineEvent, BATCH_LANES};
pub use scratch::DistScratch;
pub use summary::TrajSummary;
pub use within::{
    bound_exceeds, dtw_within, dtw_within_in, edr_within, edr_within_in, erp_within,
    erp_within_in, frechet_within, frechet_within_in, hausdorff_within, hausdorff_within_in,
    just_above, lcss_distance_within, lcss_distance_within_in, RunningTopK, ThresholdSource,
};
