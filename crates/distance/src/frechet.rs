use crate::DistScratch;
use repose_model::Point;

/// One discrete-Fréchet column transition (Eq. 9) over a caller-owned
/// column; `ground(q)` is the ground distance of query point `q` to the
/// new reference element. Returns the new column's minimum.
///
/// The recurrence only ever takes `max`/`min` of ground distances, so it
/// is scale-monotone: running it on *squared* distances and taking one
/// square root at the end yields bit-identical results to running it on
/// distances (IEEE `sqrt` is correctly rounded and monotone, and every
/// cell value is itself one of the ground values). The batch kernels
/// below exploit exactly that; the incremental [`FrechetColumn`] keeps
/// linear-space values because the trie search reads its columns as
/// bounds.
#[inline]
pub(crate) fn frechet_advance<F: Fn(&Point) -> f64>(
    col: &mut [f64],
    first: bool,
    query: &[Point],
    ground: F,
) -> f64 {
    debug_assert_eq!(col.len(), query.len());
    let mut cmin = f64::INFINITY;
    if first {
        // First column: f_{i,1} = max(d(q_i, p_1), f_{i-1,1}).
        let mut acc = 0.0f64;
        for (i, (c, q)) in col.iter_mut().zip(query).enumerate() {
            let d = ground(q);
            acc = if i == 0 { d } else { acc.max(d) };
            *c = acc;
            if acc < cmin {
                cmin = acc;
            }
        }
    } else {
        // prev_im1 = f_{i-1,j-1} (old value one row up), last_new =
        // f_{i-1,j} (this column's value one row up); the wavefront lives
        // in registers and the zipped walk carries no bounds checks.
        let mut prev_im1 = f64::INFINITY;
        let mut last_new = f64::INFINITY;
        for (i, (c, q)) in col.iter_mut().zip(query).enumerate() {
            let d = ground(q);
            let old = *c;
            let best_pred = if i == 0 {
                old // f_{1,j} = max(d, f_{1,j-1})
            } else {
                prev_im1.min(old).min(last_new)
            };
            prev_im1 = old;
            let new = d.max(best_pred);
            *c = new;
            last_new = new;
            if new < cmin {
                cmin = new;
            }
        }
    }
    cmin
}

/// Two Fréchet column transitions in one pass (same blocking argument as
/// the DTW pair kernel): bit-identical per-cell operands/order, two
/// interleaved dependency chains.
#[inline]
pub(crate) fn frechet_advance2<F1: Fn(&Point) -> f64, F2: Fn(&Point) -> f64>(
    col: &mut [f64],
    query: &[Point],
    ground1: F1,
    ground2: F2,
) -> (f64, f64) {
    debug_assert_eq!(col.len(), query.len());
    let (mut cmin1, mut cmin2) = (f64::INFINITY, f64::INFINITY);
    // a = f_{i-1,j-1}, b = f_{i-1,j}, c2 = f_{i-1,j+1}.
    let (mut a, mut b, mut c2) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, (c, q)) in col.iter_mut().zip(query).enumerate() {
        let d1 = ground1(q);
        let d2 = ground2(q);
        let old = *c; // f_{i,j-1}
        let v1 = if i == 0 { d1.max(old) } else { d1.max(a.min(old).min(b)) };
        let v2 = if i == 0 { d2.max(v1) } else { d2.max(b.min(v1).min(c2)) };
        a = old;
        b = v1;
        c2 = v2;
        *c = v2;
        if v1 < cmin1 {
            cmin1 = v1;
        }
        if v2 < cmin2 {
            cmin2 = v2;
        }
    }
    (cmin1, cmin2)
}

/// Discrete Frechet distance between two trajectories (Eq. 6).
///
/// Borrows the calling thread's [`DistScratch`]; callers that own a
/// verification loop should prefer [`frechet_in`].
pub fn frechet(t1: &[Point], t2: &[Point]) -> f64 {
    DistScratch::with_thread(|s| frechet_in(t1, t2, s))
}

/// [`frechet`] against a caller-managed scratch: zero heap allocations
/// once `scratch` is warm. Dispatches to the active SIMD backend or the
/// scalar kernel — bit-identical either way (see [`crate::backend`]).
pub fn frechet_in(t1: &[Point], t2: &[Point], scratch: &mut DistScratch) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return if t1.is_empty() && t2.is_empty() { 0.0 } else { f64::INFINITY };
    }
    crate::backend::simd_dispatch!(frechet(t1, t2, scratch));
    frechet_scalar_in(t1, t2, scratch)
}

/// The scalar [`frechet_in`] body (the oracle the SIMD backends are tested
/// against). Runs the whole DP in *squared* distance space — one `sqrt` at
/// the end instead of one per matrix cell, bit-identical to the
/// linear-space kernel (sqrt is monotone and correctly rounded; see the
/// column-kernel docs) — consuming reference points in pairs so two
/// columns' dependency chains overlap.
pub(crate) fn frechet_scalar_in(t1: &[Point], t2: &[Point], scratch: &mut DistScratch) -> f64 {
    let col = scratch.f1_uninit(t1.len());
    let (p0, rest) = t2.split_first().expect("non-empty");
    frechet_advance(col, true, t1, |q| q.dist_sq(p0));
    let mut pairs = rest.chunks_exact(2);
    for pair in &mut pairs {
        frechet_advance2(col, t1, |q| q.dist_sq(&pair[0]), |q| q.dist_sq(&pair[1]));
    }
    for p in pairs.remainder() {
        frechet_advance(col, false, t1, |q| q.dist_sq(p));
    }
    col[col.len() - 1].sqrt()
}

/// Incremental discrete-Frechet column kernel (Section VI-A, Fig. 5).
///
/// Maintains the last column `f_{., j}` of the Frechet distance matrix
/// between a fixed query (rows) and a reference trajectory that grows one
/// point (column) at a time, via Eq. 9:
///
/// ```text
/// f_{i,j} = max( d(q_i, p*_j), min(f_{i-1,j-1}, f_{i-1,j}, f_{i,j-1}) )
/// ```
///
/// The trie search needs two things per node: `cmin` (minimum of the newly
/// added column, the one-side bound of Eq. 7) and `last` (`f_{m,n}`, the
/// two-side bound of Eq. 8).
#[derive(Debug, Clone)]
pub struct FrechetColumn {
    col: Vec<f64>,
    cmin: f64,
    len: usize,
}

impl FrechetColumn {
    /// State for a query with `m` points, before any reference point.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "query must be non-empty");
        FrechetColumn { col: vec![0.0; m], cmin: f64::INFINITY, len: 0 }
    }

    /// Number of reference points consumed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no reference point has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes the next reference point using plain Euclidean ground
    /// distances.
    pub fn push(&mut self, query: &[Point], p: Point) {
        self.push_with(query, |q| q.dist(&p));
    }

    /// Pushes the next reference element with a caller-supplied ground
    /// distance `d(q_i, ·)`.
    ///
    /// The RP-Trie uses this hook to evaluate lower bounds with the
    /// *minimum* distance from the query point to the reference point's grid
    /// cell instead of the exact point distance.
    pub fn push_with<F: Fn(&Point) -> f64>(&mut self, query: &[Point], ground: F) {
        debug_assert_eq!(query.len(), self.col.len());
        self.cmin = frechet_advance(&mut self.col, self.len == 0, query, ground);
        self.len += 1;
    }

    /// Minimum of the most recently added column (`cmin` in Eq. 7).
    pub fn cmin(&self) -> f64 {
        self.cmin
    }

    /// `f_{m,n}`: the Frechet distance between the query and the consumed
    /// reference prefix (Eq. 8). Only meaningful when `len() > 0`.
    pub fn last(&self) -> f64 {
        *self.col.last().expect("non-empty query")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hausdorff::hausdorff;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    /// Naive recursive Frechet for cross-checking, memoized in a single
    /// flat row-major buffer (`memo[i * n + j]`) rather than a nested
    /// `Vec<Vec<f64>>` — one allocation instead of `m + 1`.
    fn frechet_naive(a: &[Point], b: &[Point]) -> f64 {
        fn rec(a: &[Point], b: &[Point], i: usize, j: usize, memo: &mut [f64]) -> f64 {
            let n = b.len();
            if memo[i * n + j] >= 0.0 {
                return memo[i * n + j];
            }
            let d = a[i].dist(&b[j]);
            let v = if i == 0 && j == 0 {
                d
            } else if i == 0 {
                d.max(rec(a, b, 0, j - 1, memo))
            } else if j == 0 {
                d.max(rec(a, b, i - 1, 0, memo))
            } else {
                let m = rec(a, b, i - 1, j - 1, memo)
                    .min(rec(a, b, i - 1, j, memo))
                    .min(rec(a, b, i, j - 1, memo));
                d.max(m)
            };
            memo[i * n + j] = v;
            v
        }
        let mut memo = vec![-1.0; a.len() * b.len()];
        rec(a, b, a.len() - 1, b.len() - 1, &mut memo)
    }

    #[test]
    fn matches_naive_recursion() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, 2.0)]);
        let b = pts(&[(0.0, 1.0), (1.5, 1.5), (2.0, 1.0), (4.0, 2.0), (5.0, 2.0)]);
        assert!((frechet(&a, &b) - frechet_naive(&a, &b)).abs() < 1e-12);
        assert!((frechet(&b, &a) - frechet_naive(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn identity_and_symmetry() {
        let a = pts(&[(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)]);
        let b = pts(&[(0.5, 0.5), (2.0, 2.0)]);
        assert_eq!(frechet(&a, &a), 0.0);
        assert!((frechet(&a, &b) - frechet(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn frechet_upper_bounds_hausdorff() {
        // Well-known: DH <= DF for any pair of curves.
        let a = pts(&[(0.0, 0.0), (1.0, 3.0), (2.0, 0.5), (5.0, 1.0)]);
        let b = pts(&[(0.0, 1.0), (2.0, 2.0), (4.0, 0.0)]);
        assert!(hausdorff(&a, &b) <= frechet(&a, &b) + 1e-12);
    }

    #[test]
    fn single_point_cases() {
        // m = 1: max_j d(q1, p_j); n = 1: max_i d(q_i, p_1)  (Eq. 6)
        let q = pts(&[(0.0, 0.0)]);
        let t = pts(&[(1.0, 0.0), (3.0, 0.0), (2.0, 0.0)]);
        assert_eq!(frechet(&q, &t), 3.0);
        assert_eq!(frechet(&t, &q), 3.0);
    }

    #[test]
    fn empty_inputs() {
        let a = pts(&[(0.0, 0.0)]);
        assert_eq!(frechet(&[], &[]), 0.0);
        assert_eq!(frechet(&a, &[]), f64::INFINITY);
    }

    #[test]
    fn column_kernel_matches_prefix_batch() {
        let q = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let t = pts(&[(0.5, 0.5), (1.0, 0.0), (2.5, 1.0), (3.0, 3.0)]);
        let mut col = FrechetColumn::new(q.len());
        for (j, p) in t.iter().enumerate() {
            col.push(&q, *p);
            let batch = frechet(&q, &t[..=j]);
            assert!((col.last() - batch).abs() < 1e-12, "prefix {j}");
        }
    }

    #[test]
    fn cmin_monotone_nondecreasing() {
        // Lemma 3 property 2: the one-side bound never decreases down a path.
        let q = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let t = pts(&[(5.0, 5.0), (4.0, 4.0), (6.0, 6.0), (7.0, 2.0)]);
        let mut col = FrechetColumn::new(q.len());
        let mut prev = 0.0;
        for p in &t {
            col.push(&q, *p);
            assert!(col.cmin() >= prev - 1e-12);
            prev = col.cmin();
        }
    }

    #[test]
    #[should_panic(expected = "query must be non-empty")]
    fn empty_query_panics() {
        FrechetColumn::new(0);
    }
}
