use crate::DistScratch;
use repose_model::Point;

/// Edit Distance on Real sequences (Chen et al., SIGMOD'05).
///
/// Points match (substitution cost 0) when both coordinate differences are
/// at most `eps`; otherwise substitution, insertion and deletion all cost 1.
/// The result is an integer edit count returned as `f64` for measure
/// uniformity.
///
/// Borrows the calling thread's [`DistScratch`]; callers that own a
/// verification loop should prefer [`edr_in`].
pub fn edr(t1: &[Point], t2: &[Point], eps: f64) -> f64 {
    DistScratch::with_thread(|s| edr_in(t1, t2, eps, s))
}

/// [`edr`] against a caller-managed scratch: zero heap allocations once
/// `scratch` is warm.
pub fn edr_in(t1: &[Point], t2: &[Point], eps: f64, scratch: &mut DistScratch) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return (t1.len() + t2.len()) as f64;
    }
    crate::backend::simd_dispatch!(edr(t1, t2, eps, scratch));
    edr_scalar_in(t1, t2, eps, scratch)
}

/// The scalar [`edr_in`] body (the oracle the SIMD backends are tested
/// against).
pub(crate) fn edr_scalar_in(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    scratch: &mut DistScratch,
) -> f64 {
    let n = t2.len();
    let (mut prev, mut cur) = scratch.u2_uninit(n + 1, n + 1);
    for (j, p) in prev.iter_mut().enumerate() {
        *p = j as u32;
    }
    for (i, a) in t1.iter().enumerate() {
        // Register-carried cursors over zipped rows — no per-cell bounds
        // checks; integer recurrence unchanged.
        let mut left = i as u32 + 1;
        cur[0] = left;
        let mut diag = prev[0];
        for (b, (&up, c)) in t2.iter().zip(prev[1..].iter().zip(cur[1..].iter_mut())) {
            let subcost =
                u32::from(!((a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps));
            let v = (diag + subcost).min(up + 1).min(left + 1);
            *c = v;
            diag = up;
            left = v;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(edr(&a, &a, 0.1), 0.0);
    }

    #[test]
    fn empty_costs_length() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(edr(&a, &[], 0.1), 2.0);
        assert_eq!(edr(&[], &a, 0.1), 2.0);
        assert_eq!(edr(&[], &[], 0.1), 0.0);
    }

    #[test]
    fn one_substitution() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (9.0, 0.0), (2.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.1), 1.0);
    }

    #[test]
    fn one_insertion() {
        let a = pts(&[(0.0, 0.0), (2.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]);
        assert_eq!(edr(&a, &b, 0.1), 1.0);
        assert_eq!(edr(&b, &a, 0.1), 1.0); // symmetric
    }

    #[test]
    fn bounded_by_max_length() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        let b = pts(&[(50.0, 50.0), (60.0, 60.0)]);
        let d = edr(&a, &b, 0.1);
        assert!(d <= 4.0);
        assert!(d >= 2.0);
    }

    #[test]
    fn eps_controls_matching() {
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(0.3, 0.3)]);
        assert_eq!(edr(&a, &b, 0.1), 1.0);
        assert_eq!(edr(&a, &b, 0.5), 0.0);
    }

    #[test]
    fn triangle_inequality_can_fail() {
        // EDR is famously not a metric; just check it is non-negative and
        // symmetric on a few inputs.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 0.05), (1.0, 0.05), (2.0, 0.0)]);
        assert!(edr(&a, &b, 0.1) >= 0.0);
        assert_eq!(edr(&a, &b, 0.1), edr(&b, &a, 0.1));
    }
}
