use crate::{dtw, edr, erp, frechet, hausdorff, lcss_distance};
use repose_model::Point;

/// The similarity measures supported by REPOSE (Section I, contribution 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Measure {
    /// Hausdorff distance — metric, order-independent.
    Hausdorff,
    /// Discrete Frechet distance — metric, order-sensitive.
    Frechet,
    /// Dynamic time warping — non-metric, order-sensitive.
    Dtw,
    /// LCSS distance (`1 - LCSS/min(m,n)`) — non-metric.
    Lcss,
    /// Edit distance on real sequences — non-metric.
    Edr,
    /// Edit distance with real penalty — metric.
    Erp,
}

impl Measure {
    /// All six measures, in the paper's order.
    pub const ALL: [Measure; 6] = [
        Measure::Hausdorff,
        Measure::Frechet,
        Measure::Dtw,
        Measure::Lcss,
        Measure::Edr,
        Measure::Erp,
    ];

    /// Whether the measure satisfies the triangle inequality, enabling
    /// pivot-based pruning (Section IV-D / VI).
    pub fn is_metric(&self) -> bool {
        matches!(self, Measure::Hausdorff | Measure::Frechet | Measure::Erp)
    }

    /// Whether the measure ignores point order, enabling the z-value
    /// re-arrangement trie optimization (Section III-C: Hausdorff only).
    pub fn is_order_independent(&self) -> bool {
        matches!(self, Measure::Hausdorff)
    }

    /// Human-readable name, matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Hausdorff => "Hausdorff",
            Measure::Frechet => "Frechet",
            Measure::Dtw => "DTW",
            Measure::Lcss => "LCSS",
            Measure::Edr => "EDR",
            Measure::Erp => "ERP",
        }
    }
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Measure {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hausdorff" => Ok(Measure::Hausdorff),
            "frechet" | "fréchet" => Ok(Measure::Frechet),
            "dtw" => Ok(Measure::Dtw),
            "lcss" => Ok(Measure::Lcss),
            "edr" => Ok(Measure::Edr),
            "erp" => Ok(Measure::Erp),
            other => Err(format!("unknown measure: {other}")),
        }
    }
}

/// Per-measure parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeasureParams {
    /// Matching threshold for LCSS and EDR.
    pub eps: f64,
    /// Gap point for ERP.
    pub erp_gap: Point,
}

impl Default for MeasureParams {
    fn default() -> Self {
        MeasureParams { eps: 0.01, erp_gap: Point::new(0.0, 0.0) }
    }
}

impl MeasureParams {
    /// Parameters with a given LCSS/EDR threshold.
    pub fn with_eps(eps: f64) -> Self {
        MeasureParams { eps, ..Default::default() }
    }

    /// Computes the distance between two trajectories under `measure`.
    pub fn distance(&self, measure: Measure, t1: &[Point], t2: &[Point]) -> f64 {
        match measure {
            Measure::Hausdorff => hausdorff(t1, t2),
            Measure::Frechet => frechet(t1, t2),
            Measure::Dtw => dtw(t1, t2),
            Measure::Lcss => lcss_distance(t1, t2, self.eps),
            Measure::Edr => edr(t1, t2, self.eps),
            Measure::Erp => erp(t1, t2, self.erp_gap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn metric_and_order_flags_match_the_paper() {
        use Measure::*;
        assert!(Hausdorff.is_metric());
        assert!(Frechet.is_metric());
        assert!(Erp.is_metric());
        assert!(!Dtw.is_metric());
        assert!(!Lcss.is_metric());
        assert!(!Edr.is_metric());
        assert!(Hausdorff.is_order_independent());
        for m in [Frechet, Dtw, Lcss, Edr, Erp] {
            assert!(!m.is_order_independent(), "{m} should be order sensitive");
        }
    }

    #[test]
    fn dispatch_agrees_with_direct_calls() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let b = pts(&[(0.5, 0.5), (1.5, 1.5), (2.5, 0.5)]);
        let p = MeasureParams::with_eps(0.6);
        assert_eq!(p.distance(Measure::Hausdorff, &a, &b), hausdorff(&a, &b));
        assert_eq!(p.distance(Measure::Frechet, &a, &b), frechet(&a, &b));
        assert_eq!(p.distance(Measure::Dtw, &a, &b), dtw(&a, &b));
        assert_eq!(p.distance(Measure::Lcss, &a, &b), lcss_distance(&a, &b, 0.6));
        assert_eq!(p.distance(Measure::Edr, &a, &b), edr(&a, &b, 0.6));
        assert_eq!(
            p.distance(Measure::Erp, &a, &b),
            erp(&a, &b, Point::new(0.0, 0.0))
        );
    }

    #[test]
    fn identity_for_all_measures() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let p = MeasureParams::default();
        for m in Measure::ALL {
            assert_eq!(p.distance(m, &a, &a), 0.0, "{m}");
        }
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for m in Measure::ALL {
            let parsed: Measure = m.name().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("nope".parse::<Measure>().is_err());
    }
}
