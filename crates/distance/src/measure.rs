use crate::within::{
    bound_exceeds, dtw_lb, dtw_within_in, edr_lb, edr_within_in, erp_lb, erp_within_in,
    frechet_lb, frechet_within_in, hausdorff_lb, hausdorff_within_in, just_above,
    lcss_distance_within_in, lcss_lb, prefilter_rejects, RunningTopK,
};
use crate::{
    dtw_in, edr_in, erp_in, frechet_in, hausdorff_in, lcss_distance_in, DistScratch,
};
use repose_model::Point;

/// Maximum number of candidates [`MeasureParams::distance_within_batch_in`]
/// scores in one SIMD lane group (the AVX2 width; SSE4.1 groups 2, the
/// scalar backend scores one at a time). Callers sizing stack buffers for
/// batched verification should use this.
pub const BATCH_LANES: usize = 4;

/// What happened to one candidate inside [`MeasureParams::refine_by_bound`]
/// — the hook callers use to account for verification work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineEvent {
    /// The candidate reached the threshold-aware kernel; `abandoned` is
    /// `true` when the kernel refuted it before full cost.
    Scored {
        /// Whether the kernel returned `None` (candidate refuted).
        abandoned: bool,
    },
    /// The scan stopped: this many trailing candidates (sorted by lower
    /// bound) were refuted by their bounds alone, without scoring.
    SkippedRest(usize),
}

/// The similarity measures supported by REPOSE (Section I, contribution 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Measure {
    /// Hausdorff distance — metric, order-independent.
    Hausdorff,
    /// Discrete Frechet distance — metric, order-sensitive.
    Frechet,
    /// Dynamic time warping — non-metric, order-sensitive.
    Dtw,
    /// LCSS distance (`1 - LCSS/min(m,n)`) — non-metric.
    Lcss,
    /// Edit distance on real sequences — non-metric.
    Edr,
    /// Edit distance with real penalty — metric.
    Erp,
}

impl Measure {
    /// All six measures, in the paper's order.
    pub const ALL: [Measure; 6] = [
        Measure::Hausdorff,
        Measure::Frechet,
        Measure::Dtw,
        Measure::Lcss,
        Measure::Edr,
        Measure::Erp,
    ];

    /// Whether the measure satisfies the triangle inequality, enabling
    /// pivot-based pruning (Section IV-D / VI).
    pub fn is_metric(&self) -> bool {
        matches!(self, Measure::Hausdorff | Measure::Frechet | Measure::Erp)
    }

    /// Whether the measure ignores point order, enabling the z-value
    /// re-arrangement trie optimization (Section III-C: Hausdorff only).
    pub fn is_order_independent(&self) -> bool {
        matches!(self, Measure::Hausdorff)
    }

    /// Number of candidates the active backend's lane-batched verification
    /// path scores together for this measure — [`Backend::lanes`] for the
    /// measures with a batched kernel (DTW, Fréchet, ERP), 1 (sequential)
    /// for the rest. Group-collecting verification loops size their batches
    /// with this so the scalar backend keeps its candidate-at-a-time
    /// threshold cadence.
    ///
    /// [`Backend::lanes`]: crate::Backend::lanes
    pub fn batch_lanes(&self) -> usize {
        match self {
            #[cfg(target_arch = "x86_64")]
            Measure::Dtw | Measure::Frechet | Measure::Erp => {
                crate::backend::active_backend().lanes()
            }
            _ => 1,
        }
    }

    /// Human-readable name, matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Hausdorff => "Hausdorff",
            Measure::Frechet => "Frechet",
            Measure::Dtw => "DTW",
            Measure::Lcss => "LCSS",
            Measure::Edr => "EDR",
            Measure::Erp => "ERP",
        }
    }
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Measure {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hausdorff" => Ok(Measure::Hausdorff),
            "frechet" | "fréchet" => Ok(Measure::Frechet),
            "dtw" => Ok(Measure::Dtw),
            "lcss" => Ok(Measure::Lcss),
            "edr" => Ok(Measure::Edr),
            "erp" => Ok(Measure::Erp),
            other => Err(format!("unknown measure: {other}")),
        }
    }
}

/// Per-measure parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeasureParams {
    /// Matching threshold for LCSS and EDR.
    pub eps: f64,
    /// Gap point for ERP.
    pub erp_gap: Point,
}

impl Default for MeasureParams {
    fn default() -> Self {
        MeasureParams { eps: 0.01, erp_gap: Point::new(0.0, 0.0) }
    }
}

impl MeasureParams {
    /// Parameters with a given LCSS/EDR threshold.
    pub fn with_eps(eps: f64) -> Self {
        MeasureParams { eps, ..Default::default() }
    }

    /// Computes the distance between two trajectories under `measure`.
    ///
    /// Borrows the calling thread's [`DistScratch`]; loops that own a
    /// scratch should call [`MeasureParams::distance_in`].
    pub fn distance(&self, measure: Measure, t1: &[Point], t2: &[Point]) -> f64 {
        DistScratch::with_thread(|s| self.distance_in(measure, t1, t2, s))
    }

    /// [`MeasureParams::distance`] against a caller-managed scratch: zero
    /// heap allocations once `scratch` is warm.
    pub fn distance_in(
        &self,
        measure: Measure,
        t1: &[Point],
        t2: &[Point],
        scratch: &mut DistScratch,
    ) -> f64 {
        match measure {
            Measure::Hausdorff => hausdorff_in(t1, t2, scratch),
            Measure::Frechet => frechet_in(t1, t2, scratch),
            Measure::Dtw => dtw_in(t1, t2, scratch),
            Measure::Lcss => lcss_distance_in(t1, t2, self.eps, scratch),
            Measure::Edr => edr_in(t1, t2, self.eps, scratch),
            Measure::Erp => erp_in(t1, t2, self.erp_gap, scratch),
        }
    }

    /// Threshold-aware exact distance: `Some(d)` with `d` bit-identical to
    /// [`MeasureParams::distance`] when `d < threshold`, `None` when the
    /// distance is `>= threshold` — usually decided at a fraction of the
    /// full kernel cost (see [`crate::within`]-module docs).
    ///
    /// Substituting this for `distance` at any verification site that
    /// discards candidates at `threshold` leaves query results unchanged.
    pub fn distance_within(
        &self,
        measure: Measure,
        t1: &[Point],
        t2: &[Point],
        threshold: f64,
    ) -> Option<f64> {
        self.distance_within_from_lb(measure, t1, t2, threshold, self.lower_bound(measure, t1, t2))
    }

    /// [`MeasureParams::distance_within`] against a caller-managed
    /// scratch: zero heap allocations once `scratch` is warm.
    pub fn distance_within_in(
        &self,
        measure: Measure,
        t1: &[Point],
        t2: &[Point],
        threshold: f64,
        scratch: &mut DistScratch,
    ) -> Option<f64> {
        self.distance_within_from_lb_in(
            measure,
            t1,
            t2,
            threshold,
            self.lower_bound(measure, t1, t2),
            scratch,
        )
    }

    /// [`MeasureParams::distance_within`] for callers that already hold a
    /// lower bound on this pair's distance (typically
    /// [`MeasureParams::lower_bound`], computed as a sort key): the
    /// prefilter reuses it instead of recomputing the O(m+n) bound. `lb`
    /// must genuinely lower-bound the exact distance (up to the same
    /// floating-point slop the built-in bounds have — the safety margin
    /// absorbs it); passing anything larger voids the `Some`/`None`
    /// contract.
    pub fn distance_within_from_lb(
        &self,
        measure: Measure,
        t1: &[Point],
        t2: &[Point],
        threshold: f64,
        lb: f64,
    ) -> Option<f64> {
        DistScratch::with_thread(|s| {
            self.distance_within_from_lb_in(measure, t1, t2, threshold, lb, s)
        })
    }

    /// [`MeasureParams::distance_within_from_lb`] against a caller-managed
    /// scratch: zero heap allocations once `scratch` is warm. This is the
    /// kernel every steady-state verification site bottoms out in.
    pub fn distance_within_from_lb_in(
        &self,
        measure: Measure,
        t1: &[Point],
        t2: &[Point],
        threshold: f64,
        lb: f64,
        scratch: &mut DistScratch,
    ) -> Option<f64> {
        if prefilter_rejects(lb, threshold) {
            return None;
        }
        match measure {
            Measure::Hausdorff => hausdorff_within_in(t1, t2, threshold, scratch),
            Measure::Frechet => frechet_within_in(t1, t2, threshold, scratch),
            Measure::Dtw => dtw_within_in(t1, t2, threshold, scratch),
            Measure::Lcss => lcss_distance_within_in(t1, t2, self.eps, threshold, scratch),
            Measure::Edr => edr_within_in(t1, t2, self.eps, threshold, scratch),
            Measure::Erp => erp_within_in(t1, t2, self.erp_gap, threshold, scratch),
        }
    }

    /// Threshold-aware exact distances of several candidates against one
    /// query in one call: on return `out[i]` equals
    /// `distance_within_from_lb_in(measure, query, cands[i].1, threshold,
    /// cands[i].0, scratch)` — bit-identically, on every backend.
    ///
    /// When the active backend is SIMD and `measure` has a lane-batched
    /// kernel (DTW, Fréchet, ERP), candidates that survive the prefilter
    /// are verified in parallel vector lanes: the DP dependency chain —
    /// the scan bottleneck a single-pair kernel cannot break — advances
    /// once per cell for the whole lane group, and every query-side load
    /// is shared. Other measures, the scalar backend, and degenerate
    /// inputs are scored candidate by candidate with the sequential
    /// kernels.
    ///
    /// `cands` pairs each candidate's [`MeasureParams::lower_bound`] with
    /// its points (the bound contract of
    /// [`MeasureParams::distance_within_from_lb`] applies); `out` must be
    /// exactly as long as `cands`.
    pub fn distance_within_batch_in(
        &self,
        measure: Measure,
        query: &[Point],
        cands: &[(f64, &[Point])],
        threshold: f64,
        scratch: &mut DistScratch,
        out: &mut [Option<f64>],
    ) {
        assert_eq!(cands.len(), out.len(), "one output slot per candidate");
        #[cfg(target_arch = "x86_64")]
        {
            let backend = crate::backend::active_backend();
            let lanes = backend.lanes();
            if lanes > 1
                && matches!(measure, Measure::Dtw | Measure::Frechet | Measure::Erp)
                && !query.is_empty()
                && threshold > 0.0
            {
                for (c, o) in cands.chunks(lanes).zip(out.chunks_mut(lanes)) {
                    self.batch_lane_group(backend, measure, query, c, threshold, scratch, o);
                }
                return;
            }
        }
        for (&(lb, pts), o) in cands.iter().zip(out.iter_mut()) {
            *o = self.distance_within_from_lb_in(measure, query, pts, threshold, lb, scratch);
        }
    }

    /// Scores one lane group: prefilter-rejected and empty candidates are
    /// settled without touching a kernel, survivors go through the
    /// backend's batched kernel (or the sequential kernel when only one
    /// survives — a one-lane vector would waste the whole group's gathers).
    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    fn batch_lane_group(
        &self,
        backend: crate::Backend,
        measure: Measure,
        query: &[Point],
        cands: &[(f64, &[Point])],
        threshold: f64,
        scratch: &mut DistScratch,
        out: &mut [Option<f64>],
    ) {
        debug_assert!(cands.len() <= BATCH_LANES);
        let mut group: [&[Point]; BATCH_LANES] = [&[]; BATCH_LANES];
        let mut slot = [0usize; BATCH_LANES];
        let mut nl = 0;
        for (i, &(lb, pts)) in cands.iter().enumerate() {
            if prefilter_rejects(lb, threshold) {
                out[i] = None;
            } else if pts.is_empty() {
                out[i] =
                    self.distance_within_from_lb_in(measure, query, pts, threshold, lb, scratch);
            } else {
                group[nl] = pts;
                slot[nl] = i;
                nl += 1;
            }
        }
        if nl == 0 {
            return;
        }
        if nl == 1 {
            let (lb, pts) = cands[slot[0]];
            out[slot[0]] =
                self.distance_within_from_lb_in(measure, query, pts, threshold, lb, scratch);
            return;
        }
        let mut lane_out = [None; BATCH_LANES];
        // SAFETY: `backend.lanes() > 1` means a SIMD backend selected by
        // `active_backend`, whose CPU feature `is_supported` verified.
        // `nl <= backend.lanes()`, the query and every grouped candidate
        // are non-empty, and `threshold > 0.0` and non-NaN — the batch
        // kernels' documented requirements.
        unsafe {
            use crate::simd::{avx2, sse41};
            let (g, o) = (&group[..nl], &mut lane_out[..nl]);
            match (backend, measure) {
                (crate::Backend::Avx2, Measure::Dtw) => {
                    avx2::batch_dtw(query, g, threshold, scratch, o)
                }
                (crate::Backend::Avx2, Measure::Frechet) => {
                    avx2::batch_frechet(query, g, threshold, scratch, o)
                }
                (crate::Backend::Avx2, Measure::Erp) => {
                    avx2::batch_erp(query, g, self.erp_gap, threshold, scratch, o)
                }
                (crate::Backend::Sse41, Measure::Dtw) => {
                    sse41::batch_dtw(query, g, threshold, scratch, o)
                }
                (crate::Backend::Sse41, Measure::Frechet) => {
                    sse41::batch_frechet(query, g, threshold, scratch, o)
                }
                (crate::Backend::Sse41, Measure::Erp) => {
                    sse41::batch_erp(query, g, self.erp_gap, threshold, scratch, o)
                }
                _ => unreachable!("lane-batched path requires a SIMD backend and kernel"),
            }
        }
        for (l, &s) in slot[..nl].iter().enumerate() {
            out[s] = lane_out[l];
        }
    }

    /// Exact top-k refinement of `(lower_bound, id, points)` candidates
    /// under a running threshold — the early-abandoning replacement for
    /// "score every candidate, sort, truncate to k", shared by the serving
    /// layer's delta scan and the DITA/DFT refinement passes.
    ///
    /// Sorts candidates by `(bound, id)` so the k-th distance tightens on
    /// the likely-closest ones first, scores each with the threshold-aware
    /// kernel at the *successor* of the current cutoff (equal-distance
    /// ties still get scored and resolve by id exactly as a full sort
    /// would), and stops at the first candidate whose bound proves it —
    /// and hence the sorted remainder — cannot beat the cutoff
    /// ([`bound_exceeds`], fp-safety margin included). `cap` bounds useful
    /// distances inclusively (`dist == cap` is kept); pass
    /// [`f64::INFINITY`] for plain top-k. `on_event` observes every
    /// candidate's fate for work accounting.
    ///
    /// Returns up to `k` `(distance, id)` pairs ascending — exactly the k
    /// smallest such pairs among candidates with `dist <= cap`, identical
    /// to what exhaustive exact scoring would keep.
    pub fn refine_by_bound(
        &self,
        measure: Measure,
        query: &[Point],
        k: usize,
        cap: f64,
        cands: Vec<(f64, u64, &[Point])>,
        on_event: impl FnMut(RefineEvent),
    ) -> Vec<(f64, u64)> {
        self.refine_by_bound_shared(measure, query, k, cap, None, cands, on_event)
    }

    /// [`MeasureParams::refine_by_bound`] against a *live* shared threshold:
    /// every candidate's cutoff is additionally clamped by
    /// [`crate::ThresholdSource::bound`] (re-read per candidate, so a hit another
    /// search publishes mid-scan tightens this one immediately), and every
    /// accepted hit is published back so this scan tightens the others.
    ///
    /// With `shared` = `None` this is exactly `refine_by_bound`. The shared
    /// bound is an upper bound on the *global* k-th distance, so clamping
    /// with it never discards a candidate that could still appear in the
    /// merged global top-k (ties at the bound are kept: the cutoff is
    /// applied through [`just_above`], i.e. inclusively).
    #[allow(clippy::too_many_arguments)]
    pub fn refine_by_bound_shared(
        &self,
        measure: Measure,
        query: &[Point],
        k: usize,
        cap: f64,
        shared: Option<&dyn crate::ThresholdSource>,
        cands: Vec<(f64, u64, &[Point])>,
        on_event: impl FnMut(RefineEvent),
    ) -> Vec<(f64, u64)> {
        DistScratch::with_thread(|s| {
            self.refine_by_bound_shared_in(measure, query, k, cap, shared, cands, on_event, s)
        })
    }

    /// [`MeasureParams::refine_by_bound_shared`] against a caller-managed
    /// scratch: with `scratch` warm, the only allocation left in the scan
    /// is the candidate sort itself.
    #[allow(clippy::too_many_arguments)]
    pub fn refine_by_bound_shared_in(
        &self,
        measure: Measure,
        query: &[Point],
        k: usize,
        cap: f64,
        shared: Option<&dyn crate::ThresholdSource>,
        mut cands: Vec<(f64, u64, &[Point])>,
        mut on_event: impl FnMut(RefineEvent),
        scratch: &mut DistScratch,
    ) -> Vec<(f64, u64)> {
        if k == 0 {
            return Vec::new();
        }
        cands.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let total = cands.len();
        // Lane-batched measures collect a vector's worth of candidates per
        // cutoff refresh; everything else keeps the candidate-at-a-time
        // cadence (a group of one degenerates to exactly the old loop).
        let group_len = measure.batch_lanes();
        let mut best = RunningTopK::new(k);
        let mut group = [(0.0f64, [].as_slice()); BATCH_LANES];
        let mut ids = [0u64; BATCH_LANES];
        let mut scored = [None; BATCH_LANES];
        let mut idx = 0;
        while idx < total {
            // The cutoff is refreshed per group; within one it goes stale,
            // but stale means only *larger* than the live value (cutoffs
            // tighten monotonically), so group members can be scored where
            // the sequential scan would have skipped them — never the
            // reverse. The extra `Some`s carry distances above the final
            // k-th and fall back out of the top-k heap, so the returned
            // results are identical.
            let mut cutoff = best.kth().map_or(cap, |kth| cap.min(kth));
            if let Some(s) = shared {
                cutoff = cutoff.min(s.bound());
            }
            let mut nb = 0;
            let mut stopped = false;
            while idx < total && nb < group_len {
                let (lb, id, points) = cands[idx];
                if bound_exceeds(lb, cutoff) {
                    stopped = true;
                    break;
                }
                group[nb] = (lb, points);
                ids[nb] = id;
                nb += 1;
                idx += 1;
            }
            self.distance_within_batch_in(
                measure,
                query,
                &group[..nb],
                just_above(cutoff),
                scratch,
                &mut scored[..nb],
            );
            for (&d, &id) in scored[..nb].iter().zip(&ids[..nb]) {
                on_event(RefineEvent::Scored { abandoned: d.is_none() });
                if let Some(d) = d {
                    best.push(d, id);
                    if let Some(s) = shared {
                        s.publish(d, id);
                    }
                }
            }
            if stopped {
                on_event(RefineEvent::SkippedRest(total - idx));
                break;
            }
        }
        best.into_sorted()
    }

    /// Cheap `O(m + n)` lower bound on the exact distance under `measure`
    /// (MBR, endpoint, and gap-sum arguments — the `distance_within`
    /// prefilter). Useful for ordering candidates so that a running top-k
    /// threshold tightens as fast as possible before exact scoring.
    pub fn lower_bound(&self, measure: Measure, t1: &[Point], t2: &[Point]) -> f64 {
        match measure {
            Measure::Hausdorff => hausdorff_lb(t1, t2),
            Measure::Frechet => frechet_lb(t1, t2),
            Measure::Dtw => dtw_lb(t1, t2),
            Measure::Lcss => lcss_lb(t1, t2, self.eps),
            Measure::Edr => edr_lb(t1, t2, self.eps),
            Measure::Erp => erp_lb(t1, t2, self.erp_gap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dtw, edr, erp, frechet, hausdorff, lcss_distance};

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn metric_and_order_flags_match_the_paper() {
        use Measure::*;
        assert!(Hausdorff.is_metric());
        assert!(Frechet.is_metric());
        assert!(Erp.is_metric());
        assert!(!Dtw.is_metric());
        assert!(!Lcss.is_metric());
        assert!(!Edr.is_metric());
        assert!(Hausdorff.is_order_independent());
        for m in [Frechet, Dtw, Lcss, Edr, Erp] {
            assert!(!m.is_order_independent(), "{m} should be order sensitive");
        }
    }

    #[test]
    fn dispatch_agrees_with_direct_calls() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let b = pts(&[(0.5, 0.5), (1.5, 1.5), (2.5, 0.5)]);
        let p = MeasureParams::with_eps(0.6);
        assert_eq!(p.distance(Measure::Hausdorff, &a, &b), hausdorff(&a, &b));
        assert_eq!(p.distance(Measure::Frechet, &a, &b), frechet(&a, &b));
        assert_eq!(p.distance(Measure::Dtw, &a, &b), dtw(&a, &b));
        assert_eq!(p.distance(Measure::Lcss, &a, &b), lcss_distance(&a, &b, 0.6));
        assert_eq!(p.distance(Measure::Edr, &a, &b), edr(&a, &b, 0.6));
        assert_eq!(
            p.distance(Measure::Erp, &a, &b),
            erp(&a, &b, Point::new(0.0, 0.0))
        );
    }

    #[test]
    fn identity_for_all_measures() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let p = MeasureParams::default();
        for m in Measure::ALL {
            assert_eq!(p.distance(m, &a, &a), 0.0, "{m}");
        }
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for m in Measure::ALL {
            let parsed: Measure = m.name().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("nope".parse::<Measure>().is_err());
    }
}
