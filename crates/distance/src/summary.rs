//! Precomputed per-trajectory prefilter summaries: `O(1)`-per-candidate
//! lower bounds at verification sites.
//!
//! [`crate::MeasureParams::lower_bound`] walks both trajectories — `O(m+n)`
//! per candidate — which is cheap next to a DP kernel but adds up when an
//! index verifies thousands of leaf members per query. A [`TrajSummary`]
//! captures, *once at index-build (or delta-insert) time*, exactly the
//! aggregates those bounds need: the bounding rectangle, the two endpoints,
//! the ERP gap-distance sum, and the point count. Two summaries then yield
//! a sound (weaker, but constant-time) lower bound for every measure via
//! [`crate::MeasureParams::summary_lower_bound`] — no per-point work at
//! query time beyond summarizing the query itself once.

use crate::{Measure, MeasureParams};
use repose_model::{Mbr, Point};

/// The prefilter aggregates of one trajectory (see module docs).
///
/// `gap_sum` is parameter-dependent (it is `Σ d(p, erp_gap)`): a summary
/// must be built and consumed under the same [`MeasureParams`].
/// `repr(C)` with an explicit tail filler so the 80-byte record has no
/// compiler-inserted padding: summary tables are archived and checksummed
/// byte-for-byte, and uninitialized padding would make that both undefined
/// behaviour and nondeterministic.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[repr(C)]
pub struct TrajSummary {
    /// Bounding rectangle (degenerate at the origin for empty inputs).
    pub mbr: Mbr,
    /// First point (origin for empty inputs).
    pub first: Point,
    /// Last point (origin for empty inputs).
    pub last: Point,
    /// `Σ d(p, erp_gap)` — the ERP distance to the empty trajectory.
    pub gap_sum: f64,
    /// Number of points.
    pub len: u32,
    /// Explicit tail filler (always 0) in place of compiler padding, so
    /// every byte of an archived record is initialized and deterministic.
    pub pad: u32,
}

// SAFETY: `repr(C)`; fields are f64/u32 records with the tail padding made
// explicit (asserted in tests), so there are no uninitialized bytes and
// any bit pattern is a valid value.
unsafe impl repose_succinct::Pod for TrajSummary {}

/// Whether no point of `a` can `ε`-match any point of `b` under the
/// per-dimension test LCSS and EDR use (their expanded boxes are disjoint
/// in some dimension).
fn boxes_cannot_match(a: &Mbr, b: &Mbr, eps: f64) -> bool {
    a.min.x - b.max.x > eps
        || b.min.x - a.max.x > eps
        || a.min.y - b.max.y > eps
        || b.min.y - a.max.y > eps
}

impl MeasureParams {
    /// Builds the prefilter summary of `t` (see [`TrajSummary`]).
    pub fn summary_of(&self, t: &[Point]) -> TrajSummary {
        match Mbr::from_points(t) {
            Some(mbr) => TrajSummary {
                mbr,
                first: t[0],
                last: *t.last().expect("non-empty"),
                gap_sum: t.iter().map(|p| p.dist(&self.erp_gap)).sum(),
                len: t.len() as u32,
                pad: 0,
            },
            None => {
                let o = Point::new(0.0, 0.0);
                TrajSummary { mbr: Mbr::new(o, o), first: o, last: o, gap_sum: 0.0, len: 0, pad: 0 }
            }
        }
    }

    /// `O(1)` lower bound on the exact distance between the two summarized
    /// trajectories under `measure`.
    ///
    /// Every term is a relaxation of the corresponding
    /// [`MeasureParams::lower_bound`] argument, so the result never exceeds
    /// it — it is a weaker bound bought at constant cost. Feed it to
    /// [`MeasureParams::distance_within_from_lb`] (never to a site that
    /// needs the tighter per-point bound for exactness — there is none; all
    /// callers only require *some* sound lower bound).
    pub fn summary_lower_bound(&self, measure: Measure, a: &TrajSummary, b: &TrajSummary) -> f64 {
        if a.len == 0 || b.len == 0 {
            // Match the conservative empty-input behaviour of the O(m+n)
            // bounds: only the measures defined through lengths/sums can
            // say anything without points.
            return match measure {
                Measure::Erp => (a.gap_sum - b.gap_sum).abs(),
                Measure::Edr => a.len.abs_diff(b.len) as f64,
                _ => 0.0,
            };
        }
        match measure {
            // Each endpoint is a real point of its trajectory, and every
            // point of the other trajectory lies inside the other MBR, so
            // each directed `min` term is at least the point-to-rectangle
            // distance.
            Measure::Hausdorff => endpoint_mbr_bound(a, b),
            // Frechet dominates Hausdorff and must align start with start
            // and end with end.
            Measure::Frechet => endpoint_mbr_bound(a, b)
                .max(a.first.dist(&b.first))
                .max(a.last.dist(&b.last)),
            // A warping path visits every point of the longer trajectory
            // at least once, each pairing costing at least the
            // rectangle-to-rectangle distance; it also pairs the two
            // starts and the two ends.
            Measure::Dtw => {
                let rect = a.mbr.min_dist_mbr(&b.mbr);
                (a.len.max(b.len) as f64 * rect)
                    .max(a.first.dist(&b.first))
                    .max(a.last.dist(&b.last))
            }
            // Triangle inequality through the empty trajectory (Chen & Ng).
            Measure::Erp => (a.gap_sum - b.gap_sum).abs(),
            // If the ε-expanded rectangles are disjoint in a dimension, no
            // pair of points can match: LCSS length 0, distance 1.
            Measure::Lcss => {
                if boxes_cannot_match(&a.mbr, &b.mbr, self.eps) {
                    1.0
                } else {
                    0.0
                }
            }
            // Length difference always; with disjoint ε-boxes every point
            // of either trajectory costs one edit.
            Measure::Edr => {
                let len_diff = a.len.abs_diff(b.len) as f64;
                if boxes_cannot_match(&a.mbr, &b.mbr, self.eps) {
                    len_diff.max(a.len.max(b.len) as f64)
                } else {
                    len_diff
                }
            }
        }
    }
}

/// `max` over the four endpoint-to-rectangle distances — a lower bound on
/// the (symmetric) Hausdorff distance between the summarized trajectories.
fn endpoint_mbr_bound(a: &TrajSummary, b: &TrajSummary) -> f64 {
    b.mbr
        .min_dist(a.first)
        .max(b.mbr.min_dist(a.last))
        .max(a.mbr.min_dist(b.first))
        .max(a.mbr.min_dist(b.last))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_layout_has_no_hidden_padding() {
        // mbr (4 f64) + first + last (2 f64 each) + gap_sum + len + pad.
        assert_eq!(std::mem::size_of::<TrajSummary>(), 8 * 9 + 4 + 4);
        assert_eq!(std::mem::align_of::<TrajSummary>(), 8);
    }

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn fixtures() -> Vec<(Vec<Point>, Vec<Point>)> {
        vec![
            (
                pts(&[(0.5, 6.5), (2.5, 6.5), (4.5, 6.5)]),
                pts(&[(0.5, 7.5), (2.5, 7.5), (6.5, 7.5), (6.5, 4.5)]),
            ),
            (
                pts(&[(0.0, 0.0), (1.0, 1.0)]),
                pts(&[(10.0, 10.0), (11.0, 10.0), (12.0, 11.0)]),
            ),
            (pts(&[(3.0, 3.0)]), pts(&[(3.0, 3.0)])),
            (
                pts(&[(0.0, 0.0), (5.0, 0.0), (5.0, 5.0)]),
                pts(&[(0.1, 0.1), (5.1, 0.1), (5.1, 5.1)]),
            ),
            (pts(&[(2.0, 2.0)]), pts(&[(2.5, 2.0), (7.0, 7.0)])),
        ]
    }

    #[test]
    fn summary_bound_never_exceeds_exact_distance() {
        for eps in [0.2, 1.5] {
            let params = MeasureParams::with_eps(eps);
            for (a, b) in fixtures() {
                let sa = params.summary_of(&a);
                let sb = params.summary_of(&b);
                for m in Measure::ALL {
                    let lb = params.summary_lower_bound(m, &sa, &sb);
                    let d = params.distance(m, &a, &b);
                    assert!(lb <= d + 1e-9, "{m} eps={eps}: summary lb {lb} > exact {d}");
                }
            }
        }
    }

    #[test]
    fn summary_bound_never_exceeds_full_bound_usefulness() {
        // Not a soundness requirement, but the summary bound should still
        // separate far-apart trajectories (the case it exists for).
        let params = MeasureParams::with_eps(0.3);
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(100.0, 100.0), (101.0, 100.0)]);
        let (sa, sb) = (params.summary_of(&a), params.summary_of(&b));
        for m in Measure::ALL {
            let lb = params.summary_lower_bound(m, &sa, &sb);
            assert!(lb > 0.0, "{m}: separated trajectories got zero bound");
        }
    }

    #[test]
    fn empty_inputs_are_conservative() {
        let params = MeasureParams::with_eps(0.5);
        let empty = params.summary_of(&[]);
        let one = params.summary_of(&pts(&[(3.0, 4.0)]));
        assert_eq!(empty.len, 0);
        assert_eq!(params.summary_lower_bound(Measure::Hausdorff, &empty, &one), 0.0);
        assert_eq!(params.summary_lower_bound(Measure::Edr, &empty, &one), 1.0);
        // ERP to the empty trajectory is exactly the gap sum.
        assert_eq!(params.summary_lower_bound(Measure::Erp, &empty, &one), 5.0);
    }

    #[test]
    fn gap_sum_tracks_params() {
        let params = MeasureParams { erp_gap: Point::new(1.0, 0.0), ..Default::default() };
        let s = params.summary_of(&pts(&[(1.0, 3.0), (1.0, 4.0)]));
        assert_eq!(s.gap_sum, 7.0);
        assert_eq!(s.first, Point::new(1.0, 3.0));
        assert_eq!(s.last, Point::new(1.0, 4.0));
        assert_eq!(s.len, 2);
    }
}
