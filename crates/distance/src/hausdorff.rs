use crate::DistScratch;
use repose_model::Point;

/// Directed Hausdorff distance `max_{a in from} min_{b in to} d(a, b)`.
///
/// Both slices must be non-empty.
pub fn directed_hausdorff(from: &[Point], to: &[Point]) -> f64 {
    debug_assert!(!from.is_empty() && !to.is_empty());
    let mut worst = 0.0f64;
    for a in from {
        let mut best = f64::INFINITY;
        for b in to {
            let d = a.dist_sq(b);
            if d < best {
                best = d;
                if best == 0.0 {
                    break;
                }
            }
        }
        if best > worst {
            worst = best;
        }
    }
    worst.sqrt()
}

/// The (symmetric) Hausdorff distance between two trajectories
/// (Definition 2, Eq. 1).
///
/// Borrows the calling thread's [`DistScratch`]; callers that own a
/// verification loop should prefer [`hausdorff_in`].
pub fn hausdorff(t1: &[Point], t2: &[Point]) -> f64 {
    DistScratch::with_thread(|s| hausdorff_in(t1, t2, s))
}

/// [`hausdorff`] against a caller-managed scratch (which holds the
/// column-minima row): zero heap allocations once `scratch` is warm. The
/// whole pass stays in squared-distance space; the single `sqrt` happens
/// at the end.
pub fn hausdorff_in(t1: &[Point], t2: &[Point], scratch: &mut DistScratch) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return if t1.is_empty() && t2.is_empty() { 0.0 } else { f64::INFINITY };
    }
    crate::backend::simd_dispatch!(hausdorff(t1, t2, scratch));
    hausdorff_scalar_in(t1, t2, scratch)
}

/// The scalar [`hausdorff_in`] body (the oracle the SIMD backends are
/// tested against).
pub(crate) fn hausdorff_scalar_in(t1: &[Point], t2: &[Point], scratch: &mut DistScratch) -> f64 {
    // Single pass over the m x n matrix keeping row minima for one direction
    // and column minima for the other (this is what Fig. 4 of the paper
    // depicts).
    let col_min = scratch.f1_uninit(t2.len());
    col_min.fill(f64::INFINITY);
    let mut worst_row = 0.0f64;
    for a in t1 {
        let mut row_min = f64::INFINITY;
        for (b, cm) in t2.iter().zip(col_min.iter_mut()) {
            let d = a.dist_sq(b);
            if d < row_min {
                row_min = d;
            }
            if d < *cm {
                *cm = d;
            }
        }
        if row_min > worst_row {
            worst_row = row_min;
        }
    }
    let worst_col = col_min.iter().cloned().fold(0.0f64, f64::max);
    worst_row.max(worst_col).sqrt()
}

/// Incremental Hausdorff state for growing reference trajectories
/// (Section IV-C / Algorithm 1 `CompLB`).
///
/// For a fixed query `τq` with `m` points and a reference trajectory that is
/// extended one point at a time (as the best-first search descends the trie),
/// the state keeps:
///
/// * `r[i]` — the minimum distance from query point `q_i` to any reference
///   point seen so far (row minima of the distance matrix),
/// * `cmax` — the maximum over reference points of the minimum distance from
///   that reference point to any query point (max of column minima).
///
/// Pushing one more reference point costs `O(m)`. At any time:
///
/// * `DH(τq, τ*) = max(rmax, cmax)` where `rmax = max_i r[i]`, and
/// * the one-side term of Eq. 2 is exactly `cmax`.
#[derive(Debug, Clone)]
pub struct HausdorffState {
    /// Row minima `r[i] = min_j d(q_i, p*_j)` (squared distances internally).
    r_sq: Vec<f64>,
    /// `max_i r[i]` (squared), maintained incrementally inside `push` so
    /// `full()` is O(1) in the search hot loop instead of an O(m) fold.
    rmax_sq: f64,
    /// Max over columns of the column minimum (squared).
    cmax_sq: f64,
    /// Number of reference points pushed so far.
    len: usize,
}

impl HausdorffState {
    /// Creates the state for a query of `m` points with no reference points
    /// consumed yet.
    pub fn new(m: usize) -> Self {
        HausdorffState {
            r_sq: vec![f64::INFINITY; m],
            rmax_sq: if m == 0 { 0.0 } else { f64::INFINITY },
            cmax_sq: 0.0,
            len: 0,
        }
    }

    /// Number of reference points pushed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no reference point has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Consumes the next reference point, updating all intermediate results
    /// in `O(m)` (the body of Algorithm 1).
    pub fn push(&mut self, query: &[Point], p: Point) {
        debug_assert_eq!(query.len(), self.r_sq.len());
        let mut col_min = f64::INFINITY;
        // Row minima only ever decrease, so the new rmax is recomputed as a
        // running max inside the O(m) pass this method already makes.
        let mut rmax = 0.0f64;
        for (i, q) in query.iter().enumerate() {
            let d = q.dist_sq(&p);
            if d < self.r_sq[i] {
                self.r_sq[i] = d;
            }
            if self.r_sq[i] > rmax {
                rmax = self.r_sq[i];
            }
            if d < col_min {
                col_min = d;
            }
        }
        self.rmax_sq = rmax;
        if col_min > self.cmax_sq {
            self.cmax_sq = col_min;
        }
        self.len += 1;
    }

    /// `cmax`: the directed (reference -> query) Hausdorff distance, i.e. the
    /// quantity inside Eq. 2's one-side lower bound.
    pub fn cmax(&self) -> f64 {
        self.cmax_sq.sqrt()
    }

    /// `max(rmax, cmax)`: the full Hausdorff distance between the query and
    /// the reference prefix consumed so far, in O(1). Only meaningful once
    /// at least one point was pushed.
    pub fn full(&self) -> f64 {
        self.rmax_sq.max(self.cmax_sq).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    /// The running example of the paper (Table II / Example 1).
    fn paper_data() -> (Vec<Point>, Vec<Vec<Point>>) {
        let tq = pts(&[(0.5, 6.5), (2.5, 6.5), (4.5, 6.5)]);
        let ts = vec![
            pts(&[(0.5, 7.5), (2.5, 7.5), (6.5, 7.5), (6.5, 4.5)]),
            pts(&[(1.5, 0.5), (2.5, 0.5), (2.5, 4.5), (4.5, 4.5)]),
            pts(&[(4.5, 0.5), (7.5, 0.5), (7.5, 2.5), (4.5, 2.5), (4.5, 1.5)]),
            pts(&[(0.5, 7.5), (2.5, 7.5), (5.5, 7.5), (5.5, 3.5)]),
            pts(&[(1.5, 0.5), (2.5, 0.5), (2.5, 5.5), (0.5, 5.5), (0.5, 2.5)]),
        ];
        (tq, ts)
    }

    #[test]
    fn example_1_of_the_paper() {
        let (tq, ts) = paper_data();
        let expected = [2.83, 6.08, 6.71, 3.16, 6.08];
        for (t, e) in ts.iter().zip(expected) {
            assert!((hausdorff(&tq, t) - e).abs() < 0.01, "expected {e}");
        }
    }

    #[test]
    fn symmetric() {
        let (tq, ts) = paper_data();
        for t in &ts {
            assert_eq!(hausdorff(&tq, t), hausdorff(t, &tq));
        }
    }

    #[test]
    fn identity() {
        let (tq, _) = paper_data();
        assert_eq!(hausdorff(&tq, &tq), 0.0);
    }

    #[test]
    fn directed_vs_symmetric() {
        let (tq, ts) = paper_data();
        for t in &ts {
            let d = hausdorff(&tq, t);
            let f = directed_hausdorff(&tq, t);
            let b = directed_hausdorff(t, &tq);
            assert!((d - f.max(b)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_inputs() {
        let a = pts(&[(0.0, 0.0)]);
        assert_eq!(hausdorff(&[], &[]), 0.0);
        assert_eq!(hausdorff(&a, &[]), f64::INFINITY);
        assert_eq!(hausdorff(&[], &a), f64::INFINITY);
    }

    #[test]
    fn order_independence() {
        // Hausdorff ignores point order (Section III-C).
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]);
        let mut b = a.clone();
        b.reverse();
        let q = pts(&[(0.5, 0.5), (1.5, 0.5)]);
        assert_eq!(hausdorff(&q, &a), hausdorff(&q, &b));
    }

    #[test]
    fn incremental_state_matches_batch() {
        let (tq, ts) = paper_data();
        for t in &ts {
            let mut st = HausdorffState::new(tq.len());
            for (j, p) in t.iter().enumerate() {
                st.push(&tq, *p);
                let prefix = &t[..=j];
                let batch = hausdorff(&tq, prefix);
                assert!(
                    (st.full() - batch).abs() < 1e-9,
                    "prefix {} full mismatch: {} vs {}",
                    j,
                    st.full(),
                    batch
                );
                let directed = directed_hausdorff(prefix, &tq);
                assert!(
                    (st.cmax() - directed).abs() < 1e-9,
                    "prefix {j} cmax mismatch"
                );
            }
            assert_eq!(st.len(), t.len());
        }
    }

    #[test]
    fn cmax_monotone_in_prefix_length() {
        // Lemma 2 rests on cmax never decreasing as the reference grows.
        let (tq, ts) = paper_data();
        for t in &ts {
            let mut st = HausdorffState::new(tq.len());
            let mut prev = 0.0;
            for p in t {
                st.push(&tq, *p);
                assert!(st.cmax() >= prev - 1e-12);
                prev = st.cmax();
            }
        }
    }
}
