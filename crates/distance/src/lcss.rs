use crate::DistScratch;
use repose_model::Point;

/// Length of the longest common subsequence of two trajectories under a
/// spatial matching threshold `eps` (Vlachos et al., ICDE'02).
///
/// Two points match when both coordinate differences are at most `eps`
/// (the per-dimension formulation of the original paper).
///
/// Borrows the calling thread's [`DistScratch`]; callers that own a
/// verification loop should prefer [`lcss_length_in`].
pub fn lcss_length(t1: &[Point], t2: &[Point], eps: f64) -> usize {
    DistScratch::with_thread(|s| lcss_length_in(t1, t2, eps, s))
}

/// [`lcss_length`] against a caller-managed scratch: zero heap
/// allocations once `scratch` is warm.
pub fn lcss_length_in(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    scratch: &mut DistScratch,
) -> usize {
    if t1.is_empty() || t2.is_empty() {
        return 0;
    }
    crate::backend::simd_dispatch!(lcss_length(t1, t2, eps, scratch));
    lcss_length_scalar_in(t1, t2, eps, scratch)
}

/// The scalar [`lcss_length_in`] body (the oracle the SIMD backends are
/// tested against).
pub(crate) fn lcss_length_scalar_in(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    scratch: &mut DistScratch,
) -> usize {
    let n = t2.len();
    let (mut prev, mut cur) = scratch.u2(n + 1, n + 1);
    for a in t1 {
        // Register-carried cursors over zipped rows — no per-cell bounds
        // checks; integer recurrence unchanged. Row slot 0 stays 0 (the
        // zeroed-buffer invariant the scratch accessor provides).
        let mut left = 0u32;
        let mut diag = prev[0];
        for (b, (&up, c)) in t2.iter().zip(prev[1..].iter().zip(cur[1..].iter_mut())) {
            let v = if (a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps {
                diag + 1
            } else {
                up.max(left)
            };
            *c = v;
            diag = up;
            left = v;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n] as usize
}

/// LCSS *distance*: `1 - LCSS(τ1, τ2) / min(|τ1|, |τ2|)`.
///
/// Zero when one trajectory's points all match a common subsequence of the
/// other; one when nothing matches. This is the standard distance form used
/// so that top-k "most similar" becomes top-k "smallest distance" uniformly
/// across measures.
pub fn lcss_distance(t1: &[Point], t2: &[Point], eps: f64) -> f64 {
    DistScratch::with_thread(|s| lcss_distance_in(t1, t2, eps, s))
}

/// [`lcss_distance`] against a caller-managed scratch: zero heap
/// allocations once `scratch` is warm.
pub fn lcss_distance_in(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    scratch: &mut DistScratch,
) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return if t1.is_empty() && t2.is_empty() { 0.0 } else { 1.0 };
    }
    let l = lcss_length_in(t1, t2, eps, scratch) as f64;
    1.0 - l / t1.len().min(t2.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_full_match() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(lcss_length(&a, &a, 0.1), 3);
        assert_eq!(lcss_distance(&a, &a, 0.1), 0.0);
    }

    #[test]
    fn disjoint_no_match() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(10.0, 10.0), (11.0, 10.0)]);
        assert_eq!(lcss_length(&a, &b, 0.5), 0);
        assert_eq!(lcss_distance(&a, &b, 0.5), 1.0);
    }

    #[test]
    fn partial_match() {
        let a = pts(&[(0.0, 0.0), (5.0, 5.0), (1.0, 0.0)]);
        let b = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(lcss_length(&a, &b, 0.1), 2);
        assert_eq!(lcss_distance(&a, &b, 0.1), 0.0); // min len = 2, both match
    }

    #[test]
    fn respects_order() {
        // common subsequence must be order-preserving
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(1.0, 0.0), (0.0, 0.0)]);
        assert_eq!(lcss_length(&a, &b, 0.1), 1);
    }

    #[test]
    fn threshold_widens_matches() {
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(0.4, 0.4)]);
        assert_eq!(lcss_length(&a, &b, 0.1), 0);
        assert_eq!(lcss_length(&a, &b, 0.5), 1);
    }

    #[test]
    fn per_dimension_threshold_not_euclidean() {
        // dx = dy = 0.9 <= 1.0 matches even though Euclidean dist > 1.
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(0.9, 0.9)]);
        assert_eq!(lcss_length(&a, &b, 1.0), 1);
    }

    #[test]
    fn empty_inputs() {
        let a = pts(&[(0.0, 0.0)]);
        assert_eq!(lcss_length(&[], &a, 0.1), 0);
        assert_eq!(lcss_distance(&[], &[], 0.1), 0.0);
        assert_eq!(lcss_distance(&a, &[], 0.1), 1.0);
    }

    #[test]
    fn symmetric() {
        let a = pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, 1.0)]);
        let b = pts(&[(0.1, 0.1), (2.1, 0.1), (3.0, 0.9)]);
        assert_eq!(lcss_length(&a, &b, 0.2), lcss_length(&b, &a, 0.2));
    }
}
