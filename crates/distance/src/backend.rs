//! Runtime-selectable SIMD backends for the verification kernels.
//!
//! The six exact kernels each exist in up to three implementations: the
//! scalar code (the oracle — unchanged from the pre-SIMD tree), an SSE4.1
//! variant (128-bit lanes) and an AVX2 variant (256-bit lanes). All three
//! produce **bit-identical** results (see the `simd` module docs for the
//! argument), so which one runs is purely a performance decision — made
//! once per process from CPU feature detection, and overridable so tests,
//! benches and CI can pin a backend regardless of the host CPU:
//!
//! 1. [`force_backend`] — explicit programmatic override (also reachable
//!    through `ServiceConfig::backend` in the serving layer); panics with a
//!    clear message when the host cannot run the requested backend.
//! 2. The `REPOSE_BACKEND` environment variable (`scalar`, `sse4.1`,
//!    `avx2`, or `auto`), consulted once on first use.
//! 3. Auto-detection: the widest backend the CPU supports.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation family executes verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable scalar kernels — always available, and the oracle the SIMD
    /// backends are differentially tested against.
    Scalar,
    /// 128-bit `std::arch` kernels (requires SSE4.1; x86-64 only).
    Sse41,
    /// 256-bit `std::arch` kernels (requires AVX2; x86-64 only).
    Avx2,
}

impl Backend {
    /// All backends, narrowest to widest.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Sse41, Backend::Avx2];

    /// Canonical lowercase name (`scalar`, `sse4.1`, `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse41 => "sse4.1",
            Backend::Avx2 => "avx2",
        }
    }

    /// Number of candidates the lane-batched verification path scores per
    /// vector with this backend (1 = no lane batching).
    pub fn lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Sse41 => 2,
            Backend::Avx2 => 4,
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse41 => std::arch::is_x86_feature_detected!("sse4.1"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(Backend::Scalar),
            "sse4.1" | "sse41" | "sse" => Ok(Backend::Sse41),
            "avx2" | "avx" => Ok(Backend::Avx2),
            other => Err(format!(
                "unknown backend `{other}` (expected scalar, sse4.1, avx2, or auto)"
            )),
        }
    }
}

/// Every backend the running CPU supports, narrowest to widest.
pub fn available_backends() -> Vec<Backend> {
    Backend::ALL.into_iter().filter(|b| b.is_supported()).collect()
}

// Encoding for the atomic: 0 = uninitialized, otherwise 1 + index in ALL.
const UNSET: u8 = 0;

static ACTIVE: AtomicU8 = AtomicU8::new(UNSET);

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 1,
        Backend::Sse41 => 2,
        Backend::Avx2 => 3,
    }
}

fn decode(v: u8) -> Backend {
    match v {
        1 => Backend::Scalar,
        2 => Backend::Sse41,
        _ => Backend::Avx2,
    }
}

fn widest_supported() -> Backend {
    if Backend::Avx2.is_supported() {
        Backend::Avx2
    } else if Backend::Sse41.is_supported() {
        Backend::Sse41
    } else {
        Backend::Scalar
    }
}

#[cold]
fn init_from_env() -> Backend {
    let chosen = match std::env::var("REPOSE_BACKEND") {
        Ok(v) if !v.is_empty() && !v.eq_ignore_ascii_case("auto") => {
            let b: Backend = v
                .parse()
                .unwrap_or_else(|e| panic!("REPOSE_BACKEND: {e}"));
            assert!(
                b.is_supported(),
                "REPOSE_BACKEND={v}: backend {b} is not supported by this CPU \
                 (available: {:?})",
                available_backends()
            );
            b
        }
        _ => widest_supported(),
    };
    ACTIVE.store(encode(chosen), Ordering::Relaxed);
    chosen
}

/// The backend the kernels currently dispatch to.
///
/// Initialized lazily from `REPOSE_BACKEND` (or auto-detection) on first
/// call; [`force_backend`] changes it at any time. Because every backend is
/// bit-identical, reading a stale value from another thread is harmless.
#[inline]
pub fn active_backend() -> Backend {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v == UNSET {
        init_from_env()
    } else {
        decode(v)
    }
}

/// Forces every subsequent kernel call (process-wide) onto `backend`.
///
/// # Panics
/// When the running CPU does not support `backend` — a forced backend must
/// never silently fall back, or a CI matrix entry would quietly test the
/// wrong code.
pub fn force_backend(backend: Backend) {
    assert!(
        backend.is_supported(),
        "cannot force backend {backend}: not supported by this CPU (available: {:?})",
        available_backends()
    );
    ACTIVE.store(encode(backend), Ordering::Relaxed);
}

/// Dispatches a kernel call to the active backend's wrapper and `return`s
/// its result; falls through (no-op) when the scalar backend is active or
/// the architecture has no SIMD backends.
///
/// Usage, from inside a public kernel entry point after its degenerate-case
/// guards: `simd_dispatch!(dtw(t1, t2, scratch));`.
macro_rules! simd_dispatch {
    ($func:ident($($arg:expr),* $(,)?)) => {
        #[cfg(target_arch = "x86_64")]
        {
            match $crate::backend::active_backend() {
                // SAFETY: `active_backend`/`force_backend` only ever select
                // a backend whose CPU feature `is_supported` verified.
                $crate::backend::Backend::Avx2 => {
                    return unsafe { $crate::simd::avx2::$func($($arg),*) };
                }
                $crate::backend::Backend::Sse41 => {
                    return unsafe { $crate::simd::sse41::$func($($arg),*) };
                }
                $crate::backend::Backend::Scalar => {}
            }
        }
    };
}
pub(crate) use simd_dispatch;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
        }
        assert_eq!("SSE41".parse::<Backend>().unwrap(), Backend::Sse41);
        assert!("neon".parse::<Backend>().is_err());
    }

    #[test]
    fn scalar_always_available_and_forcible() {
        assert!(Backend::Scalar.is_supported());
        assert!(available_backends().contains(&Backend::Scalar));
        // Forcing any available backend must stick; leave the widest one
        // active so other tests in this binary see the default behaviour.
        for b in available_backends() {
            force_backend(b);
            assert_eq!(active_backend(), b);
        }
        force_backend(widest_supported());
    }

    #[test]
    fn available_is_prefix_closed() {
        // If AVX2 is available SSE4.1 must be too: the matrix never has
        // holes on real hardware.
        if Backend::Avx2.is_supported() {
            assert!(Backend::Sse41.is_supported());
        }
    }
}
