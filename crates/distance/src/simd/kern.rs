//! Generic single-pair SIMD kernels, monomorphized per backend width.
//!
//! Strategy per measure (every cell is computed with the same scalar
//! expressions in the same order as the scalar kernels, so results are
//! bit-identical; see the module docs of [`super`] for the full argument):
//!
//! * **DTW / Fréchet** — the DP's serial min-chain cannot be lane-split
//!   without changing evaluation order, but the ground distances feeding it
//!   can: [`dists_to`]/[`dists2_to`] compute a whole column of packed
//!   `d(q_i, p_j)` (with packed `sqrt` for DTW), then the scalar
//!   [`dp_advance_pre`]/[`dp_advance2_pre`] recurrences — the exact shape of
//!   `dtw_advance`/`dtw_advance2` — consume the precomputed slices.
//! * **ERP** — packed gap-distance row and packed per-row ground distances,
//!   plus a two-row register-staggered recurrence ([`erp_rows2_pre`]) that
//!   interleaves two rows' serial chains.
//! * **EDR / LCSS** — a genuine 4-lane anti-diagonal integer wavefront
//!   ([`wavefront4`]): four DP rows advance per step in `__m128i` lanes,
//!   with the eps-match predicates precomputed per strip by the packed
//!   [`match_row`].
//! * **Hausdorff** — packed squared-distance rows with vector row-minima and
//!   column-minima updates (`f64` min/max of non-NaN values is
//!   order-independent, so any reduction order gives the same bits).
//!
//! Early-abandon (`*_within`) variants share one soundness rule: an abandon
//! may fire only when the check proves the final distance is `>= threshold`,
//! and every survivor ends with the same `(d < threshold).then_some(d)`
//! gate — so the `Some`/`None` outcome depends only on the true distance,
//! never on *where* a particular backend chose to abandon.
//!
//! All kernels assume non-empty inputs, finite coordinates and (for the
//! `within` variants) a positive non-NaN threshold; the public dispatchers
//! in the kernel files handle the degenerate cases before dispatching.

use super::ops::F64s;
use crate::DistScratch;
use core::arch::x86_64::*;
use repose_model::Point;

// ---------------------------------------------------------------------------
// Packed ground-distance precompute
// ---------------------------------------------------------------------------

/// `out[i] = d(pts[i], p)` (squared when `!SQRT`), packed `W` at a time with
/// a scalar tail. Same operation order as `Point::dist`/`dist_sq`:
/// `dx*dx + dy*dy` then one correctly-rounded `sqrt` — bit-identical lanes.
#[inline(always)]
pub(crate) unsafe fn dists_to<V: F64s, const SQRT: bool>(
    pts: &[Point],
    p: Point,
    out: &mut [f64],
) {
    let (px, py) = (V::splat(p.x), V::splat(p.y));
    let n = pts.len();
    let mut i = 0;
    while i + V::W <= n {
        let (xs, ys) = V::load_points(pts.as_ptr().add(i));
        let dx = xs.sub(px);
        let dy = ys.sub(py);
        let mut d = dx.mul(dx).add(dy.mul(dy));
        if SQRT {
            d = d.sqrt();
        }
        d.storeu(out.as_mut_ptr().add(i));
        i += V::W;
    }
    while i < n {
        let q = pts[i];
        out[i] = if SQRT { q.dist(&p) } else { q.dist_sq(&p) };
        i += 1;
    }
}

/// Two [`dists_to`] columns sharing every query-point load.
#[inline(always)]
pub(crate) unsafe fn dists2_to<V: F64s, const SQRT: bool>(
    pts: &[Point],
    p1: Point,
    p2: Point,
    o1: &mut [f64],
    o2: &mut [f64],
) {
    let (p1x, p1y) = (V::splat(p1.x), V::splat(p1.y));
    let (p2x, p2y) = (V::splat(p2.x), V::splat(p2.y));
    let n = pts.len();
    let mut i = 0;
    while i + V::W <= n {
        let (xs, ys) = V::load_points(pts.as_ptr().add(i));
        let dx1 = xs.sub(p1x);
        let dy1 = ys.sub(p1y);
        let dx2 = xs.sub(p2x);
        let dy2 = ys.sub(p2y);
        let mut d1 = dx1.mul(dx1).add(dy1.mul(dy1));
        let mut d2 = dx2.mul(dx2).add(dy2.mul(dy2));
        if SQRT {
            d1 = d1.sqrt();
            d2 = d2.sqrt();
        }
        d1.storeu(o1.as_mut_ptr().add(i));
        d2.storeu(o2.as_mut_ptr().add(i));
        i += V::W;
    }
    while i < n {
        let q = pts[i];
        if SQRT {
            o1[i] = q.dist(&p1);
            o2[i] = q.dist(&p2);
        } else {
            o1[i] = q.dist_sq(&p1);
            o2[i] = q.dist_sq(&p2);
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// DTW / Fréchet: scalar chain over precomputed distances
// ---------------------------------------------------------------------------

/// One column transition over precomputed ground distances `d` — the exact
/// cell expressions of `dtw_advance` (`MAX = false`) or `frechet_advance`
/// (`MAX = true`). Returns the column minimum.
#[inline(always)]
fn dp_advance_pre<const MAX: bool>(col: &mut [f64], first: bool, d: &[f64]) -> f64 {
    let mut cmin = f64::INFINITY;
    if first {
        let mut acc = 0.0f64;
        for (i, (c, &dv)) in col.iter_mut().zip(d).enumerate() {
            if MAX {
                acc = if i == 0 { dv } else { acc.max(dv) };
            } else {
                acc += dv;
            }
            *c = acc;
            if acc < cmin {
                cmin = acc;
            }
        }
    } else {
        let (mut prev_im1, mut last_new) = (f64::INFINITY, f64::INFINITY);
        for (i, (c, &dv)) in col.iter_mut().zip(d).enumerate() {
            let old = *c;
            let best_pred = if i == 0 { old } else { prev_im1.min(old).min(last_new) };
            prev_im1 = old;
            let new = if MAX { dv.max(best_pred) } else { dv + best_pred };
            *c = new;
            last_new = new;
            if new < cmin {
                cmin = new;
            }
        }
    }
    cmin
}

/// Two column transitions over precomputed distances — the exact cell
/// expressions of `dtw_advance2`/`frechet_advance2` (two interleaved serial
/// chains). Returns both columns' minima (check them in order).
#[inline(always)]
fn dp_advance2_pre<const MAX: bool>(col: &mut [f64], d1: &[f64], d2: &[f64]) -> (f64, f64) {
    let (mut cmin1, mut cmin2) = (f64::INFINITY, f64::INFINITY);
    let (mut a, mut b, mut c2) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, ((c, &dv1), &dv2)) in col.iter_mut().zip(d1).zip(d2).enumerate() {
        let old = *c;
        let v1 = if MAX {
            if i == 0 { dv1.max(old) } else { dv1.max(a.min(old).min(b)) }
        } else if i == 0 {
            dv1 + old
        } else {
            dv1 + a.min(old).min(b)
        };
        let v2 = if MAX {
            if i == 0 { dv2.max(v1) } else { dv2.max(b.min(v1).min(c2)) }
        } else if i == 0 {
            dv2 + v1
        } else {
            dv2 + b.min(v1).min(c2)
        };
        a = old;
        b = v1;
        c2 = v2;
        *c = v2;
        if v1 < cmin1 {
            cmin1 = v1;
        }
        if v2 < cmin2 {
            cmin2 = v2;
        }
    }
    (cmin1, cmin2)
}

/// DTW with packed ground-distance precompute (see module docs).
#[inline(always)]
pub(crate) unsafe fn dtw<V: F64s>(t1: &[Point], t2: &[Point], scratch: &mut DistScratch) -> f64 {
    let m = t1.len();
    let (col, d1, d2) = scratch.f3_uninit(m, m, m);
    let (p0, rest) = t2.split_first().expect("non-empty");
    dists_to::<V, true>(t1, *p0, d1);
    dp_advance_pre::<false>(col, true, d1);
    let mut pairs = rest.chunks_exact(2);
    for pair in &mut pairs {
        dists2_to::<V, true>(t1, pair[0], pair[1], d1, d2);
        dp_advance2_pre::<false>(col, d1, d2);
    }
    for p in pairs.remainder() {
        dists_to::<V, true>(t1, *p, d1);
        dp_advance_pre::<false>(col, false, d1);
    }
    col[m - 1]
}

/// Early-abandoning DTW: same abandon schedule as the scalar
/// `dtw_within_in` (column minima checked in column order).
#[inline(always)]
pub(crate) unsafe fn dtw_within<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let m = t1.len();
    let (col, d1, d2) = scratch.f3_uninit(m, m, m);
    let (p0, rest) = t2.split_first().expect("non-empty");
    dists_to::<V, true>(t1, *p0, d1);
    if dp_advance_pre::<false>(col, true, d1) >= threshold {
        return None;
    }
    let mut pairs = rest.chunks_exact(2);
    for pair in &mut pairs {
        dists2_to::<V, true>(t1, pair[0], pair[1], d1, d2);
        let (c1, c2) = dp_advance2_pre::<false>(col, d1, d2);
        if c1 >= threshold || c2 >= threshold {
            return None;
        }
    }
    for p in pairs.remainder() {
        dists_to::<V, true>(t1, *p, d1);
        if dp_advance_pre::<false>(col, false, d1) >= threshold {
            return None;
        }
    }
    let d = col[m - 1];
    (d < threshold).then_some(d)
}

/// Discrete Fréchet in squared space with packed precompute.
#[inline(always)]
pub(crate) unsafe fn frechet<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    scratch: &mut DistScratch,
) -> f64 {
    let m = t1.len();
    let (col, d1, d2) = scratch.f3_uninit(m, m, m);
    let (p0, rest) = t2.split_first().expect("non-empty");
    dists_to::<V, false>(t1, *p0, d1);
    dp_advance_pre::<true>(col, true, d1);
    let mut pairs = rest.chunks_exact(2);
    for pair in &mut pairs {
        dists2_to::<V, false>(t1, pair[0], pair[1], d1, d2);
        dp_advance2_pre::<true>(col, d1, d2);
    }
    for p in pairs.remainder() {
        dists_to::<V, false>(t1, *p, d1);
        dp_advance_pre::<true>(col, false, d1);
    }
    col[m - 1].sqrt()
}

/// Early-abandoning Fréchet (squared space; abandon compares
/// `cmin_sq.sqrt()` exactly like the scalar kernel).
#[inline(always)]
pub(crate) unsafe fn frechet_within<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let m = t1.len();
    let (col, d1, d2) = scratch.f3_uninit(m, m, m);
    let (p0, rest) = t2.split_first().expect("non-empty");
    dists_to::<V, false>(t1, *p0, d1);
    if dp_advance_pre::<true>(col, true, d1).sqrt() >= threshold {
        return None;
    }
    let mut pairs = rest.chunks_exact(2);
    for pair in &mut pairs {
        dists2_to::<V, false>(t1, pair[0], pair[1], d1, d2);
        let (c1, c2) = dp_advance2_pre::<true>(col, d1, d2);
        if c1.sqrt() >= threshold || c2.sqrt() >= threshold {
            return None;
        }
    }
    for p in pairs.remainder() {
        dists_to::<V, false>(t1, *p, d1);
        if dp_advance_pre::<true>(col, false, d1).sqrt() >= threshold {
            return None;
        }
    }
    let d = col[m - 1].sqrt();
    (d < threshold).then_some(d)
}

// ---------------------------------------------------------------------------
// ERP: packed precompute + two-row register stagger
// ---------------------------------------------------------------------------

/// Two ERP row transitions with row B's predecessors (row A) carried in
/// registers: each cell uses the exact scalar expression
/// `(diag + d(a,b)).min(up + gap_a).min(left + gap_b)`. Returns both rows'
/// minima (check in row order).
#[inline(always)]
fn erp_rows2_pre(
    prev: &[f64],
    cur: &mut [f64],
    gap_b: &[f64],
    dab1: &[f64],
    dab2: &[f64],
    ga1: f64,
    ga2: f64,
) -> (f64, f64) {
    let mut left_a = prev[0] + ga1;
    let mut diag_a = prev[0];
    let mut diag_b = left_a;
    let mut left_b = left_a + ga2;
    cur[0] = left_b;
    let (mut rm_a, mut rm_b) = (left_a, left_b);
    for ((&up_a, c), ((&d1, &d2), &gb)) in prev[1..]
        .iter()
        .zip(cur[1..].iter_mut())
        .zip(dab1.iter().zip(dab2.iter()).zip(gap_b.iter()))
    {
        let va = (diag_a + d1).min(up_a + ga1).min(left_a + gb);
        let vb = (diag_b + d2).min(va + ga2).min(left_b + gb);
        diag_a = up_a;
        left_a = va;
        diag_b = va;
        left_b = vb;
        *c = vb;
        if va < rm_a {
            rm_a = va;
        }
        if vb < rm_b {
            rm_b = vb;
        }
    }
    (rm_a, rm_b)
}

/// One ERP row transition over precomputed distances. Returns the row min.
#[inline(always)]
fn erp_row_pre(prev: &[f64], cur: &mut [f64], gap_b: &[f64], dab: &[f64], ga: f64) -> f64 {
    let mut left = prev[0] + ga;
    cur[0] = left;
    let mut diag = prev[0];
    let mut rm = left;
    for ((&up, c), (&d, &gb)) in prev[1..]
        .iter()
        .zip(cur[1..].iter_mut())
        .zip(dab.iter().zip(gap_b.iter()))
    {
        let v = (diag + d).min(up + ga).min(left + gb);
        diag = up;
        left = v;
        *c = v;
        if v < rm {
            rm = v;
        }
    }
    rm
}

/// Early-abandoning ERP (pass `f64::INFINITY` for the unbounded kernel —
/// finite row minima never abandon and the final gate always passes).
#[inline(always)]
pub(crate) unsafe fn erp_within<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    gap: Point,
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let n = t2.len();
    let (mut prev, mut cur, gap_b, dab) = scratch.f4_uninit(n + 1, n + 1, n, 2 * n);
    dists_to::<V, true>(t2, gap, gap_b);
    prev[0] = 0.0;
    for j in 0..n {
        prev[j + 1] = prev[j] + gap_b[j];
    }
    let (dab1, dab2) = dab.split_at_mut(n);
    let mut rows = t1.chunks_exact(2);
    for pair in &mut rows {
        dists2_to::<V, true>(t2, pair[0], pair[1], dab1, dab2);
        let ga1 = pair[0].dist(&gap);
        let ga2 = pair[1].dist(&gap);
        let (rm_a, rm_b) = erp_rows2_pre(prev, cur, gap_b, dab1, dab2, ga1, ga2);
        if rm_a >= threshold || rm_b >= threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    for a in rows.remainder() {
        dists_to::<V, true>(t2, *a, dab1);
        if erp_row_pre(prev, cur, gap_b, dab1, a.dist(&gap)) >= threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[n];
    (d < threshold).then_some(d)
}

/// Unbounded ERP via [`erp_within`] at an infinite threshold.
#[inline(always)]
pub(crate) unsafe fn erp<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    gap: Point,
    scratch: &mut DistScratch,
) -> f64 {
    erp_within::<V>(t1, t2, gap, f64::INFINITY, scratch)
        .expect("finite ERP cannot abandon at an infinite threshold")
}

// ---------------------------------------------------------------------------
// Hausdorff: packed rows
// ---------------------------------------------------------------------------

/// Hausdorff in squared space with packed row/column minima — identical
/// values to the scalar single-pass kernel (min/max of non-NaN squared
/// distances is order-independent).
#[inline(always)]
pub(crate) unsafe fn hausdorff<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    scratch: &mut DistScratch,
) -> f64 {
    let n = t2.len();
    let col_min = scratch.f1_uninit(n);
    col_min.fill(f64::INFINITY);
    let mut worst_row = 0.0f64;
    for a in t1 {
        let (ax, ay) = (V::splat(a.x), V::splat(a.y));
        let mut rmv = V::splat(f64::INFINITY);
        let mut j = 0;
        while j + V::W <= n {
            let (xs, ys) = V::load_points(t2.as_ptr().add(j));
            let dx = ax.sub(xs);
            let dy = ay.sub(ys);
            let d = dx.mul(dx).add(dy.mul(dy));
            rmv = rmv.min(d);
            let cm = V::loadu(col_min.as_ptr().add(j));
            cm.min(d).storeu(col_min.as_mut_ptr().add(j));
            j += V::W;
        }
        let mut row_min = rmv.hmin();
        while j < n {
            let d = a.dist_sq(&t2[j]);
            if d < row_min {
                row_min = d;
            }
            if d < col_min[j] {
                col_min[j] = d;
            }
            j += 1;
        }
        if row_min > worst_row {
            worst_row = row_min;
        }
    }
    let worst_col = col_min.iter().cloned().fold(0.0f64, f64::max);
    worst_row.max(worst_col).sqrt()
}

/// One directed threshold pass (see scalar `directed_within_sq`): chunks of
/// 8 with packed minima and the same row-irrelevance / threshold abandons.
/// Chunk granularity and reduction order don't affect values or decisions
/// (documented value-neutrality of the scalar kernel's chunking).
#[inline(always)]
unsafe fn directed_within_sq<V: F64s>(from: &[Point], to: &[Point], thr_sq: f64) -> Option<f64> {
    let mut worst = 0.0f64;
    for a in from {
        let (ax, ay) = (V::splat(a.x), V::splat(a.y));
        let mut best = f64::INFINITY;
        for chunk in to.chunks(8) {
            let mut m = f64::INFINITY;
            let cn = chunk.len();
            let mut j = 0;
            if cn >= V::W {
                let mut mv = V::splat(f64::INFINITY);
                while j + V::W <= cn {
                    let (xs, ys) = V::load_points(chunk.as_ptr().add(j));
                    let dx = ax.sub(xs);
                    let dy = ay.sub(ys);
                    mv = mv.min(dx.mul(dx).add(dy.mul(dy)));
                    j += V::W;
                }
                m = mv.hmin();
            }
            while j < cn {
                let d = a.dist_sq(&chunk[j]);
                if d < m {
                    m = d;
                }
                j += 1;
            }
            if m < best {
                best = m;
            }
            if best <= worst {
                break;
            }
        }
        if best > worst {
            if best >= thr_sq {
                return None;
            }
            worst = best;
        }
    }
    Some(worst)
}

/// Early-abandoning Hausdorff (guards handled by the dispatcher).
#[inline(always)]
pub(crate) unsafe fn hausdorff_within<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
) -> Option<f64> {
    let thr_sq = if threshold < f64::MAX.sqrt() {
        threshold * threshold
    } else {
        f64::INFINITY
    };
    let a = directed_within_sq::<V>(t1, t2, thr_sq)?;
    let b = directed_within_sq::<V>(t2, t1, thr_sq)?;
    let d = a.max(b).sqrt();
    (d < threshold).then_some(d)
}

// ---------------------------------------------------------------------------
// EDR / LCSS: 4-lane anti-diagonal integer wavefront
// ---------------------------------------------------------------------------

/// `out[3 + j] = yes/no` match flags of `a` against every point of `pts`
/// (the per-dimension eps test), packed `W` at a time. `out` is one padded
/// match row (3 pad slots each side); the pads are filled with `no` so every
/// gather reads defined, harmless values.
#[inline(always)]
unsafe fn match_row<V: F64s>(
    a: Point,
    pts: &[Point],
    eps: f64,
    yes: u32,
    no: u32,
    out: &mut [u32],
) {
    let n = pts.len();
    out[..3].fill(no);
    out[3 + n..].fill(no);
    let (ax, ay, ev) = (V::splat(a.x), V::splat(a.y), V::splat(eps));
    let mut j = 0;
    while j + V::W <= n {
        let (xs, ys) = V::load_points(pts.as_ptr().add(j));
        // |b - a| == |a - b| bit-for-bit (IEEE subtraction of swapped
        // operands is the exact negation; abs clears the sign).
        let mx = xs.sub(ax).abs().le(ev);
        let my = ys.sub(ay).abs().le(ev);
        let bits = mx.and(my).movemask();
        for l in 0..V::W {
            out[3 + j + l] = if bits & (1 << l) != 0 { yes } else { no };
        }
        j += V::W;
    }
    while j < n {
        let b = pts[j];
        out[3 + j] =
            if (a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps { yes } else { no };
        j += 1;
    }
}

/// Advances four DP rows (`r0+1 ..= r0+4`) across all `n` columns in one
/// anti-diagonal sweep: at step `t`, lane `l` computes DP column
/// `j = t - l + 1`.
///
/// * `prev` holds DP row `r0` in `[0..=n]` (length `n + 4`; the pad is read
///   only by out-of-range lanes whose values are masked away),
/// * `next` receives DP row `r0 + 4` in `[1..=n]` (slot 0 is the caller's),
/// * `mrows` holds four padded match rows of stride `n + 6` (lane `l` reads
///   `mrows[3 + t + l*(stride-1)]`),
/// * `boundary` lane `l` = cell `(r0+1+l, 0)`,
/// * `cell(diag, up, left, sub)` is the measure's per-cell recurrence.
///
/// The `up`/`diag` operands come from the previous one/two wavefronts via a
/// one-lane shift with the `prev`-row value inserted at lane 0 — exactly the
/// predecessors the row-major scalar kernel reads, so every in-range cell
/// gets identical operand values (integer ops: no rounding anywhere).
/// Returns the four rows' minima over columns `0..=n` (initialized at the
/// boundary cell, matching the scalar row-min seed).
#[inline(always)]
unsafe fn wavefront4(
    prev: &[u32],
    next: &mut [u32],
    mrows: &[u32],
    n: usize,
    boundary: __m128i,
    cell: impl Fn(__m128i, __m128i, __m128i, __m128i) -> __m128i,
) -> [u32; 4] {
    let stride = n + 6;
    let lane_idx = _mm_set_epi32(3, 2, 1, 0);
    let maxv = _mm_set1_epi32(-1);
    let ni = n as i32;
    let mut vprev = boundary; // wavefront t-1
    let mut vpp = boundary; // wavefront t-2
    let mut rowmin = boundary;
    for t in 0..(n + 3) {
        let ti = t as i32;
        let up = _mm_insert_epi32::<0>(_mm_slli_si128::<4>(vprev), prev[t + 1] as i32);
        let diag = _mm_insert_epi32::<0>(_mm_slli_si128::<4>(vpp), prev[t] as i32);
        let left = vprev;
        let base = 3 + t;
        let sub = _mm_set_epi32(
            mrows[base + 3 * (stride - 1)] as i32,
            mrows[base + 2 * (stride - 1)] as i32,
            mrows[base + (stride - 1)] as i32,
            mrows[base] as i32,
        );
        let mut v = cell(diag, up, left, sub);
        let tv = _mm_set1_epi32(ti);
        if t < 3 {
            // Lanes that have not reached column 1 yet keep their boundary
            // value so later steps read cell(i, 0) from them.
            v = _mm_blendv_epi8(v, boundary, _mm_cmpgt_epi32(lane_idx, tv));
        }
        // Lane l is in range iff l <= t (started) and l > t - n (not past
        // column n).
        let valid = _mm_andnot_si128(
            _mm_cmpgt_epi32(lane_idx, tv),
            _mm_cmpgt_epi32(lane_idx, _mm_set1_epi32(ti - ni)),
        );
        rowmin = _mm_min_epu32(rowmin, _mm_blendv_epi8(maxv, v, valid));
        if t >= 3 {
            // Lane 3 computes column t - 2 of DP row r0 + 4.
            next[t - 2] = _mm_extract_epi32::<3>(v) as u32;
        }
        vpp = vprev;
        vprev = v;
    }
    let mut rm = [0u32; 4];
    _mm_storeu_si128(rm.as_mut_ptr() as *mut __m128i, rowmin);
    rm
}

/// Early-abandoning EDR on the wavefront (pass `f64::INFINITY` for the
/// unbounded kernel). Full 4-row strips run the wavefront; the `m % 4`
/// remainder rows run the scalar row recurrence.
#[inline(always)]
pub(crate) unsafe fn edr_within<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let (m, n) = (t1.len(), t2.len());
    let stride = n + 6;
    let (mut prev, mut next, mrows) = scratch.u3_uninit(n + 4, n + 4, 4 * stride);
    for (j, p) in prev.iter_mut().enumerate().take(n + 1) {
        *p = j as u32;
    }
    let one = _mm_set1_epi32(1);
    let strips = m / 4;
    for s in 0..strips {
        let r0 = 4 * s;
        for l in 0..4 {
            match_row::<V>(t1[r0 + l], t2, eps, 0, 1, &mut mrows[l * stride..(l + 1) * stride]);
        }
        let r = r0 as i32;
        let boundary = _mm_set_epi32(r + 4, r + 3, r + 2, r + 1);
        let rm = wavefront4(prev, next, mrows, n, boundary, |d, u, l2, sub| {
            _mm_min_epu32(
                _mm_add_epi32(d, sub),
                _mm_min_epu32(_mm_add_epi32(u, one), _mm_add_epi32(l2, one)),
            )
        });
        next[0] = r0 as u32 + 4;
        for r in rm {
            if f64::from(r) >= threshold {
                return None;
            }
        }
        std::mem::swap(&mut prev, &mut next);
    }
    for (i, a) in t1.iter().enumerate().skip(strips * 4) {
        let mut left = i as u32 + 1;
        next[0] = left;
        let mut diag = prev[0];
        let mut row_min = left;
        for (j, b) in t2.iter().enumerate() {
            let up = prev[j + 1];
            let subcost =
                u32::from(!((a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps));
            let v = (diag + subcost).min(up + 1).min(left + 1);
            next[j + 1] = v;
            diag = up;
            left = v;
            row_min = row_min.min(v);
        }
        if f64::from(row_min) >= threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut next);
    }
    let d = f64::from(prev[n]);
    (d < threshold).then_some(d)
}

/// Unbounded EDR via [`edr_within`] at an infinite threshold.
#[inline(always)]
pub(crate) unsafe fn edr<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    scratch: &mut DistScratch,
) -> f64 {
    edr_within::<V>(t1, t2, eps, f64::INFINITY, scratch)
        .expect("finite EDR cannot abandon at an infinite threshold")
}

/// LCSS length on the wavefront, with the optional per-strip achievability
/// abandon (`Some((threshold, minlen))`). The achievable-match bound is
/// non-increasing in the row index, so checking it once per strip abandons
/// whenever the scalar per-row check would (possibly a few rows later) —
/// `Some`/`None` is unchanged.
#[inline(always)]
unsafe fn lcss_core<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    abandon: Option<(f64, usize)>,
    scratch: &mut DistScratch,
) -> Option<u32> {
    let (m, n) = (t1.len(), t2.len());
    let stride = n + 6;
    let (mut prev, mut next, mrows) = scratch.u3_uninit(n + 4, n + 4, 4 * stride);
    for p in prev.iter_mut().take(n + 1) {
        *p = 0;
    }
    let one = _mm_set1_epi32(1);
    let boundary = _mm_setzero_si128();
    let strips = m / 4;
    for s in 0..strips {
        let r0 = 4 * s;
        for l in 0..4 {
            match_row::<V>(
                t1[r0 + l],
                t2,
                eps,
                u32::MAX,
                0,
                &mut mrows[l * stride..(l + 1) * stride],
            );
        }
        wavefront4(prev, next, mrows, n, boundary, |d, u, l2, sub| {
            _mm_blendv_epi8(_mm_max_epu32(u, l2), _mm_add_epi32(d, one), sub)
        });
        next[0] = 0;
        if let Some((threshold, minlen)) = abandon {
            let i = r0 + 3;
            let achievable = (next[n] as usize + (m - 1 - i)).min(minlen);
            if 1.0 - achievable as f64 / minlen as f64 >= threshold {
                return None;
            }
        }
        std::mem::swap(&mut prev, &mut next);
    }
    for (i, a) in t1.iter().enumerate().skip(strips * 4) {
        let mut left = 0u32;
        next[0] = 0;
        let mut diag = prev[0];
        for (j, b) in t2.iter().enumerate() {
            let up = prev[j + 1];
            let v = if (a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps {
                diag + 1
            } else {
                up.max(left)
            };
            next[j + 1] = v;
            diag = up;
            left = v;
        }
        if let Some((threshold, minlen)) = abandon {
            let achievable = (next[n] as usize + (m - 1 - i)).min(minlen);
            if 1.0 - achievable as f64 / minlen as f64 >= threshold {
                return None;
            }
        }
        std::mem::swap(&mut prev, &mut next);
    }
    Some(prev[n])
}

/// LCSS match length (unbounded).
#[inline(always)]
pub(crate) unsafe fn lcss_length<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    scratch: &mut DistScratch,
) -> usize {
    lcss_core::<V>(t1, t2, eps, None, scratch).expect("unbounded LCSS cannot abandon") as usize
}

/// Early-abandoning LCSS distance.
#[inline(always)]
pub(crate) unsafe fn lcss_within<V: F64s>(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let minlen = t1.len().min(t2.len());
    let l = lcss_core::<V>(t1, t2, eps, Some((threshold, minlen)), scratch)?;
    let d = 1.0 - f64::from(l) / minlen as f64;
    (d < threshold).then_some(d)
}
