//! Explicit `std::arch` SIMD implementations of the verification kernels
//! (x86-64 only), selected at runtime by [`crate::backend`].
//!
//! # Layout
//!
//! * [`ops`] — the [`ops::F64s`] packed-`f64` trait (`__m128d` = SSE4.1,
//!   `__m256d` = AVX2) every generic kernel is monomorphized over.
//! * [`kern`] — single-pair kernels: packed ground-distance precompute
//!   feeding the scalar-shaped DP chains (DTW/Fréchet/ERP), a 4-lane
//!   `__m128i` anti-diagonal wavefront (EDR/LCSS), packed rows (Hausdorff).
//! * [`batch`] — multi-candidate batched verification: up to `W` leaf
//!   candidates verified against one query in parallel lanes.
//! * [`sse41`] / [`avx2`] — thin `#[target_feature]` wrappers that
//!   monomorphize the generics at each width. Inlining the `inline(always)`
//!   generic bodies *into* the `#[target_feature]` wrapper is what lets
//!   rustc emit the wide instructions while the crate itself stays
//!   baseline-compatible; the wrappers are `unsafe fn` and the dispatcher
//!   only calls one whose feature [`crate::backend::Backend::is_supported`]
//!   verified.
//!
//! # Why every backend is bit-identical
//!
//! 1. Every lane operation is the elementwise IEEE-754 double operation —
//!    identical bits to the scalar operator. There is **no FMA** anywhere
//!    (and Rust never auto-contracts `a*b + c`).
//! 2. DP cells are pure functions of their predecessor cells, computed with
//!    the same expressions in the same operand order as the scalar kernels
//!    — so any evaluation schedule (column pairs, row stagger, anti-diagonal
//!    wavefront, lane-batched candidates) reproduces the same cell values.
//! 3. Reductions only use `f64` min/max of non-NaN values, which are
//!    associative/commutative (no rounding), so vector-then-horizontal
//!    reduction order does not change the result; EDR/LCSS are pure `u32`
//!    arithmetic with no rounding at all.
//! 4. Squared-space kernels (Fréchet, Hausdorff) take one final IEEE `sqrt`,
//!    which is correctly rounded and monotone — the same argument the
//!    scalar kernels already rely on.
//! 5. Early abandons may fire at backend-specific points, but only when the
//!    final distance provably reaches the threshold, and every survivor
//!    passes the same final `(d < threshold)` gate — so the `Some`/`None`
//!    contract of `*_within` depends only on the true distance.
//!
//! The `scratch_agreement` and `backend_edge_cases` test suites enforce all
//! of this differentially against the scalar oracle on every backend the
//! host CPU supports.

pub(crate) mod batch;
pub(crate) mod kern;
pub(crate) mod ops;

macro_rules! backend_impls {
    ($modname:ident, $doc:literal, $feat:literal, $vec:ty) => {
        #[doc = $doc]
        pub(crate) mod $modname {
            use super::{batch, kern};
            use crate::DistScratch;
            use repose_model::Point;

            type V = $vec;

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn dtw(
                t1: &[Point],
                t2: &[Point],
                s: &mut DistScratch,
            ) -> f64 {
                kern::dtw::<V>(t1, t2, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn dtw_within(
                t1: &[Point],
                t2: &[Point],
                threshold: f64,
                s: &mut DistScratch,
            ) -> Option<f64> {
                kern::dtw_within::<V>(t1, t2, threshold, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn frechet(
                t1: &[Point],
                t2: &[Point],
                s: &mut DistScratch,
            ) -> f64 {
                kern::frechet::<V>(t1, t2, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn frechet_within(
                t1: &[Point],
                t2: &[Point],
                threshold: f64,
                s: &mut DistScratch,
            ) -> Option<f64> {
                kern::frechet_within::<V>(t1, t2, threshold, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn erp(
                t1: &[Point],
                t2: &[Point],
                gap: Point,
                s: &mut DistScratch,
            ) -> f64 {
                kern::erp::<V>(t1, t2, gap, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn erp_within(
                t1: &[Point],
                t2: &[Point],
                gap: Point,
                threshold: f64,
                s: &mut DistScratch,
            ) -> Option<f64> {
                kern::erp_within::<V>(t1, t2, gap, threshold, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn edr(
                t1: &[Point],
                t2: &[Point],
                eps: f64,
                s: &mut DistScratch,
            ) -> f64 {
                kern::edr::<V>(t1, t2, eps, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn edr_within(
                t1: &[Point],
                t2: &[Point],
                eps: f64,
                threshold: f64,
                s: &mut DistScratch,
            ) -> Option<f64> {
                kern::edr_within::<V>(t1, t2, eps, threshold, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn lcss_length(
                t1: &[Point],
                t2: &[Point],
                eps: f64,
                s: &mut DistScratch,
            ) -> usize {
                kern::lcss_length::<V>(t1, t2, eps, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn lcss_within(
                t1: &[Point],
                t2: &[Point],
                eps: f64,
                threshold: f64,
                s: &mut DistScratch,
            ) -> Option<f64> {
                kern::lcss_within::<V>(t1, t2, eps, threshold, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn hausdorff(
                t1: &[Point],
                t2: &[Point],
                s: &mut DistScratch,
            ) -> f64 {
                kern::hausdorff::<V>(t1, t2, s)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn hausdorff_within(
                t1: &[Point],
                t2: &[Point],
                threshold: f64,
            ) -> Option<f64> {
                kern::hausdorff_within::<V>(t1, t2, threshold)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn batch_dtw(
                query: &[Point],
                cands: &[&[Point]],
                threshold: f64,
                s: &mut DistScratch,
                out: &mut [Option<f64>],
            ) {
                batch::batch_dp::<V, false, true>(query, cands, threshold, s, out)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn batch_frechet(
                query: &[Point],
                cands: &[&[Point]],
                threshold: f64,
                s: &mut DistScratch,
                out: &mut [Option<f64>],
            ) {
                batch::batch_dp::<V, true, false>(query, cands, threshold, s, out)
            }

            #[target_feature(enable = $feat)]
            pub(crate) unsafe fn batch_erp(
                query: &[Point],
                cands: &[&[Point]],
                gap: Point,
                threshold: f64,
                s: &mut DistScratch,
                out: &mut [Option<f64>],
            ) {
                batch::batch_erp::<V>(query, cands, gap, threshold, s, out)
            }
        }
    };
}

backend_impls!(
    sse41,
    "128-bit (SSE4.1) instantiations of the generic kernels.",
    "sse4.1",
    core::arch::x86_64::__m128d
);
backend_impls!(
    avx2,
    "256-bit (AVX2) instantiations of the generic kernels.",
    "avx2",
    core::arch::x86_64::__m256d
);
