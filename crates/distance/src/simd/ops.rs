//! Packed-`f64` abstraction over the x86-64 `std::arch` intrinsics.
//!
//! One trait, two widths: [`F64s`] is implemented for `__m128d` (SSE4.1,
//! 2 lanes) and `__m256d` (AVX2, 4 lanes), and every generic kernel in
//! this module tree is monomorphized over it from inside a
//! `#[target_feature]` wrapper, so each method compiles to exactly one
//! instruction in context.
//!
//! Bit-identity ground rules the trait encodes:
//!
//! * every arithmetic method maps to the elementwise IEEE-754 operation —
//!   identical bits per lane to the scalar operator sequence;
//! * there is deliberately **no fused multiply-add** (FMA contracts
//!   `a*b+c` into one differently-rounded operation, which would break
//!   bit-identity with the scalar kernels);
//! * `min`/`max` use the SSE semantics (second operand returned on equal
//!   or NaN inputs) — equivalent to `f64::min`/`f64::max` here because
//!   kernel operands are never NaN and comparisons of equal non-NaN
//!   values are value-identical either way (the kernels only ever min/max
//!   non-negative distances, where `+0.0`/`-0.0` asymmetry cannot arise).

use core::arch::x86_64::*;
use repose_model::Point;

/// A pack of `W` `f64` lanes (see module docs).
///
/// Every method is `unsafe`: callers must prove the corresponding CPU
/// feature is available, which the `#[target_feature]` backend wrappers
/// in `simd::sse41` / `simd::avx2` do once per kernel invocation.
pub(crate) trait F64s: Copy {
    /// Lane count.
    const W: usize;

    unsafe fn splat(x: f64) -> Self;
    unsafe fn loadu(p: *const f64) -> Self;
    unsafe fn storeu(self, p: *mut f64);
    unsafe fn add(self, o: Self) -> Self;
    unsafe fn sub(self, o: Self) -> Self;
    unsafe fn mul(self, o: Self) -> Self;
    unsafe fn sqrt(self) -> Self;
    unsafe fn min(self, o: Self) -> Self;
    unsafe fn max(self, o: Self) -> Self;
    /// All-ones lanes where `self <= o`, zero lanes elsewhere.
    unsafe fn le(self, o: Self) -> Self;
    unsafe fn and(self, o: Self) -> Self;
    /// Lanewise `mask ? a : b` (mask lanes must be all-ones or zero).
    unsafe fn select(mask: Self, a: Self, b: Self) -> Self;
    /// One bit per lane (lane's sign/mask bit), lane 0 in bit 0.
    unsafe fn movemask(self) -> u32;
    /// Horizontal minimum across lanes. `f64` min of non-NaN values is
    /// associative and commutative (no rounding), so the reduction order
    /// does not affect the result bits.
    unsafe fn hmin(self) -> f64;
    /// `x` and `y` coordinates of `W` consecutive points, in index order.
    /// Sound because [`Point`] is `repr(C)` with `x` before `y`.
    unsafe fn load_points(p: *const Point) -> (Self, Self);

    /// `|self|` lanewise (clears the sign bit — identical to `f64::abs`).
    #[inline(always)]
    unsafe fn abs(self) -> Self {
        // andnot(sign_mask, self): keep everything but the sign bit.
        Self::and_not_sign(self)
    }
    unsafe fn and_not_sign(v: Self) -> Self;

    /// Gathers `W` lanes from a closure (stack round-trip; used on cold
    /// edges and per-step batch point loads, never in per-cell loops).
    #[inline(always)]
    unsafe fn from_fn(mut f: impl FnMut(usize) -> f64) -> Self {
        let mut buf = [0.0f64; 8];
        for (l, slot) in buf.iter_mut().enumerate().take(Self::W) {
            *slot = f(l);
        }
        Self::loadu(buf.as_ptr())
    }
}

impl F64s for __m128d {
    const W: usize = 2;

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        _mm_set1_pd(x)
    }
    #[inline(always)]
    unsafe fn loadu(p: *const f64) -> Self {
        _mm_loadu_pd(p)
    }
    #[inline(always)]
    unsafe fn storeu(self, p: *mut f64) {
        _mm_storeu_pd(p, self)
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        _mm_add_pd(self, o)
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        _mm_sub_pd(self, o)
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        _mm_mul_pd(self, o)
    }
    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        _mm_sqrt_pd(self)
    }
    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        _mm_min_pd(self, o)
    }
    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        _mm_max_pd(self, o)
    }
    #[inline(always)]
    unsafe fn le(self, o: Self) -> Self {
        _mm_cmple_pd(self, o)
    }
    #[inline(always)]
    unsafe fn and(self, o: Self) -> Self {
        _mm_and_pd(self, o)
    }
    #[inline(always)]
    unsafe fn select(mask: Self, a: Self, b: Self) -> Self {
        _mm_blendv_pd(b, a, mask)
    }
    #[inline(always)]
    unsafe fn movemask(self) -> u32 {
        _mm_movemask_pd(self) as u32
    }
    #[inline(always)]
    unsafe fn hmin(self) -> f64 {
        let hi = _mm_unpackhi_pd(self, self);
        _mm_cvtsd_f64(_mm_min_sd(self, hi))
    }
    #[inline(always)]
    unsafe fn load_points(p: *const Point) -> (Self, Self) {
        let f = p as *const f64;
        let a = _mm_loadu_pd(f); // x0 y0
        let b = _mm_loadu_pd(f.add(2)); // x1 y1
        (_mm_unpacklo_pd(a, b), _mm_unpackhi_pd(a, b))
    }
    #[inline(always)]
    unsafe fn and_not_sign(v: Self) -> Self {
        _mm_andnot_pd(_mm_set1_pd(-0.0), v)
    }
}

impl F64s for __m256d {
    const W: usize = 4;

    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        _mm256_set1_pd(x)
    }
    #[inline(always)]
    unsafe fn loadu(p: *const f64) -> Self {
        _mm256_loadu_pd(p)
    }
    #[inline(always)]
    unsafe fn storeu(self, p: *mut f64) {
        _mm256_storeu_pd(p, self)
    }
    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        _mm256_add_pd(self, o)
    }
    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        _mm256_sub_pd(self, o)
    }
    #[inline(always)]
    unsafe fn mul(self, o: Self) -> Self {
        _mm256_mul_pd(self, o)
    }
    #[inline(always)]
    unsafe fn sqrt(self) -> Self {
        _mm256_sqrt_pd(self)
    }
    #[inline(always)]
    unsafe fn min(self, o: Self) -> Self {
        _mm256_min_pd(self, o)
    }
    #[inline(always)]
    unsafe fn max(self, o: Self) -> Self {
        _mm256_max_pd(self, o)
    }
    #[inline(always)]
    unsafe fn le(self, o: Self) -> Self {
        _mm256_cmp_pd::<_CMP_LE_OQ>(self, o)
    }
    #[inline(always)]
    unsafe fn and(self, o: Self) -> Self {
        _mm256_and_pd(self, o)
    }
    #[inline(always)]
    unsafe fn select(mask: Self, a: Self, b: Self) -> Self {
        _mm256_blendv_pd(b, a, mask)
    }
    #[inline(always)]
    unsafe fn movemask(self) -> u32 {
        _mm256_movemask_pd(self) as u32
    }
    #[inline(always)]
    unsafe fn hmin(self) -> f64 {
        let lo = _mm256_castpd256_pd128(self);
        let hi = _mm256_extractf128_pd::<1>(self);
        let m = _mm_min_pd(lo, hi);
        let s = _mm_unpackhi_pd(m, m);
        _mm_cvtsd_f64(_mm_min_sd(m, s))
    }
    #[inline(always)]
    unsafe fn load_points(p: *const Point) -> (Self, Self) {
        let f = p as *const f64;
        let a = _mm256_loadu_pd(f); // x0 y0 x1 y1
        let b = _mm256_loadu_pd(f.add(4)); // x2 y2 x3 y3
        // unpack within 128-bit halves: (x0 x2 x1 x3) / (y0 y2 y1 y3),
        // then one permute restores index order.
        let xs = _mm256_unpacklo_pd(a, b);
        let ys = _mm256_unpackhi_pd(a, b);
        (
            _mm256_permute4x64_pd::<0b11011000>(xs),
            _mm256_permute4x64_pd::<0b11011000>(ys),
        )
    }
    #[inline(always)]
    unsafe fn and_not_sign(v: Self) -> Self {
        _mm256_andnot_pd(_mm256_set1_pd(-0.0), v)
    }
}
