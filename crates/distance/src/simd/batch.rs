//! Batched multi-candidate verification: up to `W` candidates verified
//! against one query in parallel SIMD lanes.
//!
//! The serial dependency chain of the DTW/Fréchet/ERP dynamic programs is
//! the scan bottleneck a single-pair kernel cannot break. Verifying `W`
//! *different* candidates in the lanes of one vector sidesteps it entirely:
//! the chain advances once per DP cell but `W` candidates' cells at a time,
//! and every query-side load (coordinates, gap distances) is shared.
//!
//! Lane `l` computes candidate `l`'s DP with the exact scalar expressions
//! in the scalar evaluation order — elementwise IEEE lane arithmetic makes
//! each lane's value sequence identical to a standalone scalar run, so each
//! returned `Option<f64>` is bit-identical to what the sequential
//! `*_within_in` kernel returns for that candidate at the same threshold
//! (abandon schedules may differ — ERP abandons on column instead of row
//! minima — but any sound schedule yields the same `Some`/`None`: abandons
//! only fire when the final distance provably reaches the threshold, and
//! survivors all end at the same `(d < threshold)` gate).
//!
//! Candidates have independent lengths: a lane goes *inactive* once its
//! candidate's points are exhausted (its column state is frozen via a
//! blend, its result extracted) or once its column minimum proves its
//! distance `>= threshold` (abandon, result `None`). Column state lives in
//! the scratch's 32-byte-aligned [`crate::scratch::Lane4`] groups — one
//! group per DP row, one vector load/store each.
//!
//! EDR, LCSS and Hausdorff are not lane-batched: the integer wavefront and
//! the packed Hausdorff rows already vectorize *within* one pair, and their
//! cells are too cheap for cross-candidate gathers to pay; the dispatcher
//! scores those measures sequentially.

use super::ops::F64s;
use crate::DistScratch;
use repose_model::Point;

/// All-ones lane mask bits as an `f64` (blend selector for active lanes).
const MASK_ON: f64 = f64::from_bits(u64::MAX);

/// Builds a lane mask vector from per-lane active bits.
#[inline(always)]
unsafe fn mask_from_bits<V: F64s>(bits: u32) -> V {
    V::from_fn(|l| if bits & (1 << l) != 0 { MASK_ON } else { 0.0 })
}

/// Packed `d(query_point, cand_l[j])` (squared when `!SQRT`) against the
/// pre-gathered lane coordinates — `Point::dist`'s exact operation order.
#[inline(always)]
unsafe fn lane_dists<V: F64s, const SQRT: bool>(q: Point, pxs: V, pys: V) -> V {
    let dx = V::splat(q.x).sub(pxs);
    let dy = V::splat(q.y).sub(pys);
    let d = dx.mul(dx).add(dy.mul(dy));
    if SQRT {
        d.sqrt()
    } else {
        d
    }
}

/// Gathers lane points `cand_l[min(j, len_l - 1)]`: the clamp keeps loads in
/// bounds for finished lanes, whose values never reach an active cell.
/// Lanes past `cands.len()` read zeros and are never active.
#[inline(always)]
unsafe fn gather_points<V: F64s>(cands: &[&[Point]], j: usize) -> (V, V) {
    let xs = V::from_fn(|l| cands.get(l).map_or(0.0, |c| c[j.min(c.len() - 1)].x));
    let ys = V::from_fn(|l| cands.get(l).map_or(0.0, |c| c[j.min(c.len() - 1)].y));
    (xs, ys)
}

/// Records `None` for abandoned lanes / extracts finished lanes, clearing
/// them from `active`; returns the rebuilt mask (or `None` when done).
#[inline(always)]
unsafe fn retire_lanes<V: F64s>(active: &mut u32, cleared: u32) -> Option<V> {
    *active &= !cleared;
    if *active == 0 {
        None
    } else {
        Some(mask_from_bits::<V>(*active))
    }
}

/// Batched DTW (`MAX = false, SQRT = true`) / Fréchet (`MAX = true,
/// SQRT = false`, squared space) early-abandoning verification: `out[l]` is
/// bit-identical to `dtw_within_in` / `frechet_within_in` of
/// `(query, cands[l])` at `threshold`.
///
/// Requirements (the dispatcher guarantees them): `1 <= cands.len() <=
/// V::W`, every candidate non-empty, query non-empty, `threshold > 0.0`
/// and non-NaN, `out.len() >= cands.len()`.
#[inline(always)]
pub(crate) unsafe fn batch_dp<V: F64s, const MAX: bool, const SQRT: bool>(
    query: &[Point],
    cands: &[&[Point]],
    threshold: f64,
    scratch: &mut DistScratch,
    out: &mut [Option<f64>],
) {
    let m = query.len();
    let (colv, _, _) = scratch.batch_f(m, 0, 0);
    let thr = V::splat(threshold);
    let inf = V::splat(f64::INFINITY);
    let max_len = cands.iter().map(|c| c.len()).max().expect("non-empty batch");
    let mut active: u32 = (1 << cands.len()) - 1;
    let mut maskv: V = mask_from_bits::<V>(active);
    for j in 0..max_len {
        let (pxs, pys) = gather_points::<V>(cands, j);
        let mut cminv = inf;
        if j == 0 {
            // First column: per-lane prefix sum (DTW) / running max
            // (Fréchet) — the scalar first-column recurrence in lanes. All
            // lanes are still active here, so stores are unconditional.
            let mut acc = V::splat(0.0);
            for (i, q) in query.iter().enumerate() {
                let d = lane_dists::<V, SQRT>(*q, pxs, pys);
                acc = if MAX {
                    if i == 0 {
                        d
                    } else {
                        acc.max(d)
                    }
                } else {
                    acc.add(d)
                };
                acc.storeu(colv[i].0.as_mut_ptr());
                cminv = cminv.min(acc);
            }
        } else {
            let mut prev_im1 = inf;
            let mut last_new = inf;
            for (i, q) in query.iter().enumerate() {
                let d = lane_dists::<V, SQRT>(*q, pxs, pys);
                let ptr = colv[i].0.as_mut_ptr();
                let old = V::loadu(ptr);
                let best_pred =
                    if i == 0 { old } else { prev_im1.min(old).min(last_new) };
                prev_im1 = old;
                let new = if MAX { d.max(best_pred) } else { d.add(best_pred) };
                // Inactive lanes keep their frozen final column.
                V::select(maskv, new, old).storeu(ptr);
                last_new = new;
                cminv = cminv.min(V::select(maskv, new, inf));
            }
        }
        // Column-minimum abandon, exactly the scalar check (Fréchet
        // compares cmin_sq.sqrt() in linear space like the scalar kernel).
        let cmin_cmp = if MAX { cminv.sqrt() } else { cminv };
        let abandoned = thr.le(cmin_cmp).movemask() & active;
        if abandoned != 0 {
            for (l, o) in out.iter_mut().enumerate() {
                if abandoned & (1 << l) != 0 {
                    *o = None;
                }
            }
            match retire_lanes::<V>(&mut active, abandoned) {
                Some(mk) => maskv = mk,
                None => return,
            }
        }
        let mut finished = 0u32;
        for (l, c) in cands.iter().enumerate() {
            if active & (1 << l) != 0 && j + 1 == c.len() {
                let v = colv[m - 1].0[l];
                let d = if MAX { v.sqrt() } else { v };
                out[l] = (d < threshold).then_some(d);
                finished |= 1 << l;
            }
        }
        if finished != 0 {
            match retire_lanes::<V>(&mut active, finished) {
                Some(mk) => maskv = mk,
                None => return,
            }
        }
    }
}

/// Batched early-abandoning ERP: `out[l]` bit-identical to `erp_within_in`
/// of `(query, cands[l])` at `threshold`. Same requirements as
/// [`batch_dp`].
///
/// The DP walks candidate points (columns) outermost with the column state
/// over query rows, so all lanes share the query's gap-distance column and
/// the row-0 boundary prefix. Cell values are walk-order independent (pure
/// functions of their predecessors); the abandon is the *column* minimum —
/// sound because an optimal path crosses every column, so the final value
/// dominates each column's minimum, including the row-0 boundary cell.
#[inline(always)]
pub(crate) unsafe fn batch_erp<V: F64s>(
    query: &[Point],
    cands: &[&[Point]],
    gap: Point,
    threshold: f64,
    scratch: &mut DistScratch,
    out: &mut [Option<f64>],
) {
    let m = query.len();
    let (colv, ga, gapref) = scratch.batch_f(m + 1, m, m + 1);
    // d(q_i, gap) and the row-0 boundary prefix erp(i, 0), shared by all
    // lanes — the same scalar expressions, accumulated in the same order,
    // as `erp_within_in`'s gap_a and first-row cursor.
    for (g, q) in ga.iter_mut().zip(query) {
        *g = q.dist(&gap);
    }
    gapref[0] = 0.0;
    for i in 0..m {
        gapref[i + 1] = gapref[i] + ga[i];
    }
    for (cv, &b) in colv.iter_mut().zip(gapref.iter()) {
        V::splat(b).storeu(cv.0.as_mut_ptr());
    }
    let thr = V::splat(threshold);
    let inf = V::splat(f64::INFINITY);
    let (gx, gy) = (V::splat(gap.x), V::splat(gap.y));
    let max_len = cands.iter().map(|c| c.len()).max().expect("non-empty batch");
    let mut active: u32 = (1 << cands.len()) - 1;
    let mut maskv: V = mask_from_bits::<V>(active);
    for j in 0..max_len {
        let (pxs, pys) = gather_points::<V>(cands, j);
        // gb = d(p_j, gap) per lane (`Point::dist` operand order: p − gap).
        let gb = {
            let dx = pxs.sub(gx);
            let dy = pys.sub(gy);
            dx.mul(dx).add(dy.mul(dy)).sqrt()
        };
        // Row 0: erp(0, j+1) = erp(0, j) + gb — the scalar row-0 prefix.
        let ptr0 = colv[0].0.as_mut_ptr();
        let old0 = V::loadu(ptr0);
        let new0 = old0.add(gb);
        V::select(maskv, new0, old0).storeu(ptr0);
        let mut diag = old0; // erp(i, j) of the row below, pre-update
        let mut last_new = new0; // erp(i, j+1) of the row below
        let mut cminv = V::select(maskv, new0, inf);
        for (i, q) in query.iter().enumerate() {
            let dab = lane_dists::<V, true>(*q, pxs, pys);
            let ptr = colv[i + 1].0.as_mut_ptr();
            let old = V::loadu(ptr); // erp(i+1, j)
            // Scalar cell: (diag + d(a,b)).min(up + gap_a).min(left + gb).
            let v = diag
                .add(dab)
                .min(last_new.add(V::splat(ga[i])))
                .min(old.add(gb));
            V::select(maskv, v, old).storeu(ptr);
            diag = old;
            last_new = v;
            cminv = cminv.min(V::select(maskv, v, inf));
        }
        let abandoned = thr.le(cminv).movemask() & active;
        if abandoned != 0 {
            for (l, o) in out.iter_mut().enumerate() {
                if abandoned & (1 << l) != 0 {
                    *o = None;
                }
            }
            match retire_lanes::<V>(&mut active, abandoned) {
                Some(mk) => maskv = mk,
                None => return,
            }
        }
        let mut finished = 0u32;
        for (l, c) in cands.iter().enumerate() {
            if active & (1 << l) != 0 && j + 1 == c.len() {
                let d = colv[m].0[l];
                out[l] = (d < threshold).then_some(d);
                finished |= 1 << l;
            }
        }
        if finished != 0 {
            match retire_lanes::<V>(&mut active, finished) {
                Some(mk) => maskv = mk,
                None => return,
            }
        }
    }
}
