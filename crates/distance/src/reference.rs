//! The seed (pre-scratch) kernel implementations, preserved verbatim.
//!
//! The scratch-threaded kernels in the sibling modules are required to be
//! **bit-identical** to these: every value they return must equal, bit for
//! bit, what the original per-call-allocating kernels computed. This
//! module keeps those originals alive for two purposes only:
//!
//! * the bitwise-agreement property tests
//!   (`tests/scratch_agreement.rs`), which pit every scratch kernel
//!   against its original here, and
//! * the `kernels` experiment / `bench_kernels` benchmark, whose "seed
//!   path" arm measures exactly what the code did before the
//!   zero-allocation refactor (per-call `vec!` DP state, per-cell gap
//!   square roots, linear-space Fréchet).
//!
//! Production code must not call into this module.

use crate::within::prefilter_rejects;
use crate::{Measure, MeasureParams};
use repose_model::Point;

/// Verbatim copy of the seed `FrechetColumn` (owned `vec!` column,
/// linear-space values, indexed inner loop) — the current
/// [`crate::FrechetColumn`] shares the refactor's fused recurrence, so the
/// seed loop shape is preserved here instead.
struct SeedFrechetColumn {
    col: Vec<f64>,
    cmin: f64,
    len: usize,
}

impl SeedFrechetColumn {
    fn new(m: usize) -> Self {
        SeedFrechetColumn { col: vec![0.0; m], cmin: f64::INFINITY, len: 0 }
    }

    #[allow(clippy::needless_range_loop)] // i also indexes the DP column
    fn push_with<F: Fn(&Point) -> f64>(&mut self, query: &[Point], ground: F) {
        let m = self.col.len();
        let mut cmin = f64::INFINITY;
        if self.len == 0 {
            let mut acc = 0.0f64;
            for i in 0..m {
                let d = ground(&query[i]);
                acc = if i == 0 { d } else { acc.max(d) };
                self.col[i] = acc;
                if acc < cmin {
                    cmin = acc;
                }
            }
        } else {
            let mut prev_im1 = self.col[0];
            for i in 0..m {
                let d = ground(&query[i]);
                let best_pred = if i == 0 {
                    self.col[0]
                } else {
                    prev_im1.min(self.col[i]).min(self.col[i - 1])
                };
                prev_im1 = self.col[i];
                self.col[i] = d.max(best_pred);
                if self.col[i] < cmin {
                    cmin = self.col[i];
                }
            }
        }
        self.cmin = cmin;
        self.len += 1;
    }

    fn cmin(&self) -> f64 {
        self.cmin
    }

    fn last(&self) -> f64 {
        *self.col.last().expect("non-empty query")
    }
}

/// Verbatim copy of the seed `DtwColumn` (see [`SeedFrechetColumn`]).
struct SeedDtwColumn {
    col: Vec<f64>,
    cmin: f64,
    len: usize,
}

impl SeedDtwColumn {
    fn new(m: usize) -> Self {
        SeedDtwColumn { col: vec![0.0; m], cmin: f64::INFINITY, len: 0 }
    }

    #[allow(clippy::needless_range_loop)] // i also indexes the DP column
    fn push_with<F: Fn(&Point) -> f64>(&mut self, query: &[Point], ground: F) {
        let m = self.col.len();
        let mut cmin = f64::INFINITY;
        if self.len == 0 {
            let mut acc = 0.0;
            for i in 0..m {
                acc += ground(&query[i]);
                self.col[i] = acc;
                if acc < cmin {
                    cmin = acc;
                }
            }
        } else {
            let mut prev_im1 = self.col[0];
            for i in 0..m {
                let d = ground(&query[i]);
                let best_pred = if i == 0 {
                    self.col[0]
                } else {
                    prev_im1.min(self.col[i]).min(self.col[i - 1])
                };
                prev_im1 = self.col[i];
                self.col[i] = d + best_pred;
                if self.col[i] < cmin {
                    cmin = self.col[i];
                }
            }
        }
        self.cmin = cmin;
        self.len += 1;
    }

    fn cmin(&self) -> f64 {
        self.cmin
    }

    fn last(&self) -> f64 {
        *self.col.last().expect("non-empty query")
    }
}

/// Verbatim copy of the seed directed-Hausdorff threshold pass (branchy
/// point-at-a-time inner loop; the current kernel uses a chunked,
/// vectorizable min instead).
fn seed_directed_within_sq(from: &[Point], to: &[Point], thr_sq: f64) -> Option<f64> {
    let mut worst = 0.0f64;
    for a in from {
        let mut best = f64::INFINITY;
        for b in to {
            let d = a.dist_sq(b);
            if d < best {
                best = d;
                if best <= worst {
                    break;
                }
            }
        }
        if best > worst {
            if best >= thr_sq {
                return None;
            }
            worst = best;
        }
    }
    Some(worst)
}

/// Seed threshold-aware Hausdorff (point-at-a-time directed passes).
pub fn hausdorff_within(t1: &[Point], t2: &[Point], threshold: f64) -> Option<f64> {
    if t1.is_empty() || t2.is_empty() {
        return empty_case(t1.is_empty() && t2.is_empty(), threshold);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    let thr_sq = if threshold < f64::MAX.sqrt() {
        threshold * threshold
    } else {
        f64::INFINITY
    };
    let a = seed_directed_within_sq(t1, t2, thr_sq)?;
    let b = seed_directed_within_sq(t2, t1, thr_sq)?;
    let d = a.max(b).sqrt();
    (d < threshold).then_some(d)
}

/// Seed Hausdorff: per-call `vec!` of column minima.
pub fn hausdorff(t1: &[Point], t2: &[Point]) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return if t1.is_empty() && t2.is_empty() { 0.0 } else { f64::INFINITY };
    }
    let mut col_min = vec![f64::INFINITY; t2.len()];
    let mut worst_row = 0.0f64;
    for a in t1 {
        let mut row_min = f64::INFINITY;
        for (j, b) in t2.iter().enumerate() {
            let d = a.dist_sq(b);
            if d < row_min {
                row_min = d;
            }
            if d < col_min[j] {
                col_min[j] = d;
            }
        }
        if row_min > worst_row {
            worst_row = row_min;
        }
    }
    let worst_col = col_min.iter().cloned().fold(0.0f64, f64::max);
    worst_row.max(worst_col).sqrt()
}

/// Seed Fréchet: linear-space values (one `sqrt` per matrix cell) through
/// a freshly allocated column.
pub fn frechet(t1: &[Point], t2: &[Point]) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return if t1.is_empty() && t2.is_empty() { 0.0 } else { f64::INFINITY };
    }
    let mut col = SeedFrechetColumn::new(t1.len());
    for p in t2 {
        col.push_with(t1, |q| q.dist(p));
    }
    col.last()
}

/// Seed DTW: a freshly allocated column per call.
pub fn dtw(t1: &[Point], t2: &[Point]) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return if t1.is_empty() && t2.is_empty() { 0.0 } else { f64::INFINITY };
    }
    let mut col = SeedDtwColumn::new(t1.len());
    for p in t2 {
        col.push_with(t1, |q| q.dist(p));
    }
    col.last()
}

/// Seed ERP: two `vec!` rows per call, and `d(p_j, gap)` recomputed in
/// every cell of the inner loop.
pub fn erp(t1: &[Point], t2: &[Point], gap: Point) -> f64 {
    let (m, n) = (t1.len(), t2.len());
    if m == 0 {
        return t2.iter().map(|p| p.dist(&gap)).sum();
    }
    if n == 0 {
        return t1.iter().map(|p| p.dist(&gap)).sum();
    }
    let mut prev = Vec::with_capacity(n + 1);
    prev.push(0.0);
    for p in t2 {
        prev.push(prev.last().unwrap() + p.dist(&gap));
    }
    let mut cur = vec![0.0f64; n + 1];
    for a in t1 {
        let gap_a = a.dist(&gap);
        cur[0] = prev[0] + gap_a;
        for (j, b) in t2.iter().enumerate() {
            cur[j + 1] = (prev[j] + a.dist(b))
                .min(prev[j + 1] + gap_a)
                .min(cur[j] + b.dist(&gap));
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Seed EDR: two `vec!` rows per call.
pub fn edr(t1: &[Point], t2: &[Point], eps: f64) -> f64 {
    let (m, n) = (t1.len(), t2.len());
    if m == 0 || n == 0 {
        return (m + n) as f64;
    }
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for (i, a) in t1.iter().enumerate() {
        cur[0] = i as u32 + 1;
        for (j, b) in t2.iter().enumerate() {
            let subcost =
                u32::from(!((a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps));
            cur[j + 1] = (prev[j] + subcost)
                .min(prev[j + 1] + 1)
                .min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n] as f64
}

/// Seed LCSS distance: two `vec!` rows per call.
pub fn lcss_distance(t1: &[Point], t2: &[Point], eps: f64) -> f64 {
    if t1.is_empty() || t2.is_empty() {
        return if t1.is_empty() && t2.is_empty() { 0.0 } else { 1.0 };
    }
    let n = t2.len();
    let mut prev = vec![0usize; n + 1];
    let mut cur = vec![0usize; n + 1];
    for a in t1 {
        for (j, b) in t2.iter().enumerate() {
            cur[j + 1] = if (a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let l = prev[n] as f64;
    1.0 - l / t1.len().min(t2.len()) as f64
}

/// Seed measure dispatch (the pre-refactor
/// [`MeasureParams::distance`]).
pub fn distance(params: &MeasureParams, measure: Measure, t1: &[Point], t2: &[Point]) -> f64 {
    match measure {
        Measure::Hausdorff => hausdorff(t1, t2),
        Measure::Frechet => frechet(t1, t2),
        Measure::Dtw => dtw(t1, t2),
        Measure::Lcss => lcss_distance(t1, t2, params.eps),
        Measure::Edr => edr(t1, t2, params.eps),
        Measure::Erp => erp(t1, t2, params.erp_gap),
    }
}

fn empty_case(both_zero: bool, threshold: f64) -> Option<f64> {
    let d = if both_zero { 0.0 } else { f64::INFINITY };
    (d < threshold).then_some(d)
}

/// Seed threshold-aware Fréchet (allocating column, linear-space values).
pub fn frechet_within(t1: &[Point], t2: &[Point], threshold: f64) -> Option<f64> {
    if t1.is_empty() || t2.is_empty() {
        return empty_case(t1.is_empty() && t2.is_empty(), threshold);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    let mut col = SeedFrechetColumn::new(t1.len());
    for p in t2 {
        col.push_with(t1, |q| q.dist(p));
        if col.cmin() >= threshold {
            return None;
        }
    }
    let d = col.last();
    (d < threshold).then_some(d)
}

/// Seed threshold-aware DTW (allocating column).
pub fn dtw_within(t1: &[Point], t2: &[Point], threshold: f64) -> Option<f64> {
    if t1.is_empty() || t2.is_empty() {
        return empty_case(t1.is_empty() && t2.is_empty(), threshold);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    let mut col = SeedDtwColumn::new(t1.len());
    for p in t2 {
        col.push_with(t1, |q| q.dist(p));
        if col.cmin() >= threshold {
            return None;
        }
    }
    let d = col.last();
    (d < threshold).then_some(d)
}

/// Seed threshold-aware ERP (allocating rows, per-cell gap distances).
pub fn erp_within(t1: &[Point], t2: &[Point], gap: Point, threshold: f64) -> Option<f64> {
    let (m, n) = (t1.len(), t2.len());
    if m == 0 {
        let d: f64 = t2.iter().map(|p| p.dist(&gap)).sum();
        return (d < threshold).then_some(d);
    }
    if n == 0 {
        let d: f64 = t1.iter().map(|p| p.dist(&gap)).sum();
        return (d < threshold).then_some(d);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    let mut prev = Vec::with_capacity(n + 1);
    prev.push(0.0);
    for p in t2 {
        prev.push(prev.last().unwrap() + p.dist(&gap));
    }
    let mut cur = vec![0.0f64; n + 1];
    for a in t1 {
        let gap_a = a.dist(&gap);
        cur[0] = prev[0] + gap_a;
        let mut row_min = cur[0];
        for (j, b) in t2.iter().enumerate() {
            cur[j + 1] = (prev[j] + a.dist(b))
                .min(prev[j + 1] + gap_a)
                .min(cur[j] + b.dist(&gap));
            if cur[j + 1] < row_min {
                row_min = cur[j + 1];
            }
        }
        if row_min >= threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[n];
    (d < threshold).then_some(d)
}

/// Seed threshold-aware EDR (allocating rows).
pub fn edr_within(t1: &[Point], t2: &[Point], eps: f64, threshold: f64) -> Option<f64> {
    let (m, n) = (t1.len(), t2.len());
    if m == 0 || n == 0 {
        let d = (m + n) as f64;
        return (d < threshold).then_some(d);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for (i, a) in t1.iter().enumerate() {
        cur[0] = i as u32 + 1;
        let mut row_min = cur[0];
        for (j, b) in t2.iter().enumerate() {
            let subcost =
                u32::from(!((a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps));
            cur[j + 1] = (prev[j] + subcost)
                .min(prev[j + 1] + 1)
                .min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if f64::from(row_min) >= threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = f64::from(prev[n]);
    (d < threshold).then_some(d)
}

/// Seed threshold-aware LCSS (allocating rows).
pub fn lcss_distance_within(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    threshold: f64,
) -> Option<f64> {
    if t1.is_empty() || t2.is_empty() {
        let d = if t1.is_empty() && t2.is_empty() { 0.0 } else { 1.0 };
        return (d < threshold).then_some(d);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    let (m, n) = (t1.len(), t2.len());
    let minlen = m.min(n);
    let mut prev = vec![0u32; n + 1];
    let mut cur = vec![0u32; n + 1];
    for (i, a) in t1.iter().enumerate() {
        for (j, b) in t2.iter().enumerate() {
            cur[j + 1] = if (a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        let achievable = (cur[n] as usize + (m - 1 - i)).min(minlen);
        if 1.0 - achievable as f64 / minlen as f64 >= threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let l = prev[n] as f64;
    let d = 1.0 - l / t1.len().min(t2.len()) as f64;
    (d < threshold).then_some(d)
}

/// Seed threshold-aware dispatch with a caller-held lower bound (the
/// pre-refactor [`MeasureParams::distance_within_from_lb`] — what leaf
/// verification called before the scratch refactor).
pub fn distance_within_from_lb(
    params: &MeasureParams,
    measure: Measure,
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
    lb: f64,
) -> Option<f64> {
    if prefilter_rejects(lb, threshold) {
        return None;
    }
    match measure {
        Measure::Hausdorff => hausdorff_within(t1, t2, threshold),
        Measure::Frechet => frechet_within(t1, t2, threshold),
        Measure::Dtw => dtw_within(t1, t2, threshold),
        Measure::Lcss => lcss_distance_within(t1, t2, params.eps, threshold),
        Measure::Edr => edr_within(t1, t2, params.eps, threshold),
        Measure::Erp => erp_within(t1, t2, params.erp_gap, threshold),
    }
}
