use crate::DistScratch;
use repose_model::Point;

/// Edit distance with Real Penalty (Chen & Ng, VLDB'04) with gap point `g`.
///
/// ```text
/// erp(i,j) = min( erp(i-1,j-1) + d(q_i, p_j),
///                 erp(i-1,j)   + d(q_i, g),
///                 erp(i,j-1)   + d(p_j, g) )
/// ```
///
/// ERP is a metric (it satisfies the triangle inequality), which is why the
/// paper groups it with Hausdorff and Frechet for pivot-based pruning.
///
/// Borrows the calling thread's [`DistScratch`]; callers that own a
/// verification loop should prefer [`erp_in`].
pub fn erp(t1: &[Point], t2: &[Point], gap: Point) -> f64 {
    DistScratch::with_thread(|s| erp_in(t1, t2, gap, s))
}

/// [`erp`] against a caller-managed scratch: zero heap allocations once
/// `scratch` is warm.
///
/// The gap distances `d(p_j, g)` are evaluated once into a scratch row (a
/// single vectorizable pass over the contiguous reference slice) instead
/// of once per DP cell — the values, and hence the result, are
/// bit-identical; the `O(m·n)` square roots the seed kernel spent on them
/// are not.
pub fn erp_in(t1: &[Point], t2: &[Point], gap: Point, scratch: &mut DistScratch) -> f64 {
    if t1.is_empty() {
        return t2.iter().map(|p| p.dist(&gap)).sum();
    }
    if t2.is_empty() {
        return t1.iter().map(|p| p.dist(&gap)).sum();
    }
    crate::backend::simd_dispatch!(erp(t1, t2, gap, scratch));
    erp_scalar_in(t1, t2, gap, scratch)
}

/// The scalar [`erp_in`] body (the oracle the SIMD backends are tested
/// against).
pub(crate) fn erp_scalar_in(
    t1: &[Point],
    t2: &[Point],
    gap: Point,
    scratch: &mut DistScratch,
) -> f64 {
    let n = t2.len();
    let (mut prev, mut cur, gap_b) = scratch.f3_uninit(n + 1, n + 1, n);
    for (g, p) in gap_b.iter_mut().zip(t2) {
        *g = p.dist(&gap);
    }
    // prev[j] = erp(i-1, j); row 0: erp(0, j) = sum of gap costs of t2[..j].
    prev[0] = 0.0;
    for j in 0..n {
        prev[j + 1] = prev[j] + gap_b[j];
    }
    for a in t1 {
        let gap_a = a.dist(&gap);
        // Register-carried DP cursors (`diag` = erp(i-1,j), `left` =
        // erp(i,j)) over zipped rows: no per-cell bounds checks, same
        // expressions in the same order as the seed kernel.
        let mut left = prev[0] + gap_a;
        cur[0] = left;
        let mut diag = prev[0];
        for ((b, gb), (&up, c)) in t2
            .iter()
            .zip(gap_b.iter())
            .zip(prev[1..].iter().zip(cur[1..].iter_mut()))
        {
            let v = (diag + a.dist(b)).min(up + gap_a).min(left + gb);
            *c = v;
            diag = up;
            left = v;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const G: Point = Point::new(0.0, 0.0);

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_is_zero() {
        let a = pts(&[(1.0, 1.0), (2.0, 2.0), (3.0, 1.0)]);
        assert_eq!(erp(&a, &a, G), 0.0);
    }

    #[test]
    fn empty_costs_gap_sums() {
        let a = pts(&[(3.0, 4.0), (0.0, 5.0)]);
        assert_eq!(erp(&a, &[], G), 10.0);
        assert_eq!(erp(&[], &a, G), 10.0);
        assert_eq!(erp(&[], &[], G), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = pts(&[(0.0, 0.0), (1.0, 3.0), (2.0, 0.5)]);
        let b = pts(&[(0.0, 1.0), (2.0, 2.0), (4.0, 0.0), (5.0, 1.0)]);
        assert!((erp(&a, &b, G) - erp(&b, &a, G)).abs() < 1e-12);
    }

    #[test]
    fn single_substitution_cost() {
        let a = pts(&[(1.0, 0.0)]);
        let b = pts(&[(2.0, 0.0)]);
        // match: |1-2| = 1; or two gaps: 1 + 2 = 3 -> match wins
        assert_eq!(erp(&a, &b, G), 1.0);
    }

    #[test]
    fn gap_alignment_when_cheaper() {
        // aligning (10,0) against gap at origin costs 10; against (-10,0)
        // costs 20. With b = [(-10,0),(10,0)] and a = [(10,0)], ERP should
    // drop the (-10,0) element (cost 10) and match (10,0) exactly.
        let a = pts(&[(10.0, 0.0)]);
        let b = pts(&[(-10.0, 0.0), (10.0, 0.0)]);
        assert_eq!(erp(&a, &b, G), 10.0);
    }

    proptest! {
        #[test]
        fn triangle_inequality(
            xs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..6),
            ys in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..6),
            zs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..6),
        ) {
            let a = pts(&xs);
            let b = pts(&ys);
            let c = pts(&zs);
            let ab = erp(&a, &b, G);
            let bc = erp(&b, &c, G);
            let ac = erp(&a, &c, G);
            prop_assert!(ac <= ab + bc + 1e-9);
        }

        #[test]
        fn non_negative_and_symmetric(
            xs in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..6),
            ys in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..6),
        ) {
            let a = pts(&xs);
            let b = pts(&ys);
            let d1 = erp(&a, &b, G);
            let d2 = erp(&b, &a, G);
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-9);
        }
    }
}
