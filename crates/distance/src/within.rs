//! Threshold-aware early-abandoning exact kernels.
//!
//! REPOSE's lower bounds decide *which* candidates to verify; these kernels
//! make each verification itself threshold-aware. Every `*_within(t1, t2,
//! threshold)` function returns
//!
//! * `Some(d)` with `d` **identical** (bit-for-bit) to the unbounded kernel
//!   whenever the true distance `d < threshold`, and
//! * `None` whenever the true distance is `>= threshold`,
//!
//! so a caller holding a running top-k threshold `dk` can substitute
//! `distance_within(.., dk)` for `distance(..)` without changing any query
//! result — while paying far less than the full `O(m·n)` cost on candidates
//! that were never going to make the top-k.
//!
//! Two mechanisms provide the savings:
//!
//! 1. A cheap `O(m + n)` **prefilter** ([`crate::MeasureParams::lower_bound`]):
//!    MBR/endpoint/gap-sum lower bounds that skip the dynamic program
//!    entirely for far-away candidates.
//! 2. **Row-wise abandoning** inside the exact computation: Hausdorff stops
//!    as soon as any point's nearest-neighbour distance reaches the
//!    threshold; Frechet/DTW/ERP/EDR stop when an entire DP row/column
//!    minimum reaches it (sound because their per-row minima never decrease
//!    as more rows are added — costs are max-monotone or additive
//!    non-negative); LCSS stops when the best still-achievable match count
//!    cannot beat the threshold.

use crate::dtw::{dtw_advance, dtw_advance2};
use crate::frechet::{frechet_advance, frechet_advance2};
use crate::DistScratch;
use repose_model::{Mbr, Point};

/// Safety factor applied to prefilter bounds before they may reject a
/// candidate. The geometric/triangle-inequality bounds are exact in real
/// arithmetic but may exceed the DP's value by a few ulps in floating
/// point; shrinking them by one part in 10⁹ keeps the `Some`/`None`
/// contract airtight at any realistic coordinate magnitude.
const LB_SAFETY: f64 = 1.0 - 1e-9;

/// The smallest `f64` strictly greater than `x`, for non-negative `x`
/// (`x.next_up()`, with infinity and NaN passed through).
///
/// Callers that need *inclusive* semantics — "keep every candidate with
/// `d <= dk`", as the baselines' final range passes do — get them by
/// passing `just_above(dk)` as the strict `distance_within` threshold.
pub fn just_above(x: f64) -> f64 {
    debug_assert!(x >= 0.0 || x.is_nan(), "just_above is for non-negative thresholds");
    x.next_up()
}

/// Distance between two empty-or-not slices following the convention every
/// unbounded kernel uses for empty inputs, filtered by the threshold.
fn empty_case(both_zero: bool, threshold: f64) -> Option<f64> {
    let d = if both_zero { 0.0 } else { f64::INFINITY };
    (d < threshold).then_some(d)
}

/// A live, monotonically tightening source of a top-k pruning threshold,
/// shared between concurrently executing local searches.
///
/// The contract every implementation must keep, because searchers prune
/// with whatever [`ThresholdSource::bound`] returns:
///
/// * `bound()` is always a **sound upper bound on the global k-th
///   distance** over everything published so far (and hence over the final
///   answer — adding candidates only lowers the k-th distance);
/// * `bound()` is **monotone non-increasing** across calls;
/// * `publish` accepts only **exact** distances of real candidates (never
///   lower bounds), and publishing the same candidate id twice must not
///   tighten the bound further (one trajectory occupies one result slot).
///
/// `repose_rptrie::SharedTopK` is the canonical implementation; the
/// refinement loop below and the trie search both consult one through this
/// trait so a hit found anywhere prunes everywhere.
pub trait ThresholdSource: Sync {
    /// Current upper bound on the global k-th distance. Reading a stale
    /// value is sound (bounds only ever tighten).
    fn bound(&self) -> f64;
    /// Publishes the exact distance of candidate `id`.
    fn publish(&self, dist: f64, id: u64);
}

/// A bounded result heap maintaining the running top-k cutoff that every
/// threshold-aware verification site shares: a max-heap over the current
/// best `k` `(distance, id)` pairs, worst on top, ties evicting the larger
/// id — the order the canonical ascending `(distance, id)` sort implies.
///
/// The serving layer's delta scan and the baselines' refinement passes both
/// drive `distance_within` off this structure: score a candidate with
/// threshold [`just_above`]`(kth())` (so equal-distance ties still get
/// scored and resolve by id exactly as a full sort would), `push` on
/// `Some`, and stop early once even a candidate's lower bound exceeds
/// `kth()`.
#[derive(Debug)]
pub struct RunningTopK {
    k: usize,
    heap: std::collections::BinaryHeap<WorstEntry>,
}

#[derive(Debug)]
struct WorstEntry {
    dist: f64,
    id: u64,
}
impl PartialEq for WorstEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.id == other.id
    }
}
impl Eq for WorstEntry {}
impl PartialOrd for WorstEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist.total_cmp(&other.dist).then_with(|| self.id.cmp(&other.id))
    }
}

impl RunningTopK {
    /// An empty heap that will retain the best `k` entries.
    pub fn new(k: usize) -> Self {
        RunningTopK { k, heap: std::collections::BinaryHeap::with_capacity(k + 1) }
    }

    /// Number of entries currently held (at most `k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entry has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The k-th (worst retained) distance once `k` entries are held —
    /// the running cutoff. `None` while the heap is still filling (every
    /// candidate must still be scored exactly).
    pub fn kth(&self) -> Option<f64> {
        (self.heap.len() == self.k).then(|| self.heap.peek().expect("full heap").dist)
    }

    /// Offers an exactly-scored entry, evicting the worst when over `k`.
    pub fn push(&mut self, dist: f64, id: u64) {
        if self.k == 0 {
            return;
        }
        self.heap.push(WorstEntry { dist, id });
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Consumes the heap, ascending by `(distance, id)`.
    pub fn into_sorted(self) -> Vec<(f64, u64)> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|w| (w.dist, w.id))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Hausdorff
// ---------------------------------------------------------------------------

/// One directed pass `max_{a in from} min_{b in to} d²(a, b)` with two
/// abandons:
///
/// * **row irrelevance** — once a row's running minimum drops to the
///   current max (`worst`), the row cannot raise the max; stop scanning it
///   (the classic early-break directed Hausdorff).
/// * **threshold abandon** — a completed row minimum `>= thr_sq` proves the
///   directed (hence the symmetric) distance is `>= threshold`.
///
/// The inner row is consumed in chunks of 8 contiguous points with a
/// branch-free running minimum, so the distance loop vectorizes; the
/// irrelevance break is re-checked at chunk granularity. Decisions and
/// values are identical to the point-at-a-time loop: a chunk only ever
/// *extends* a row past where the early break would have fired, and an
/// extended scan can only lower `best` further below `worst` — the
/// skip/abandon outcome and the recorded row minima are unchanged
/// (`f64` min is order-independent for the non-NaN distances here).
fn directed_within_sq(from: &[Point], to: &[Point], thr_sq: f64) -> Option<f64> {
    let mut worst = 0.0f64;
    for a in from {
        let mut best = f64::INFINITY;
        for chunk in to.chunks(8) {
            let mut m = f64::INFINITY;
            for b in chunk {
                let d = a.dist_sq(b);
                m = if d < m { d } else { m };
            }
            if m < best {
                best = m;
            }
            if best <= worst {
                break; // row can no longer raise the max
            }
        }
        if best > worst {
            if best >= thr_sq {
                return None;
            }
            worst = best;
        }
    }
    Some(worst)
}

/// Early-abandoning Hausdorff distance (see module docs for the contract).
pub fn hausdorff_within(t1: &[Point], t2: &[Point], threshold: f64) -> Option<f64> {
    if t1.is_empty() || t2.is_empty() {
        return empty_case(t1.is_empty() && t2.is_empty(), threshold);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None; // distances are non-negative
    }
    crate::backend::simd_dispatch!(hausdorff_within(t1, t2, threshold));
    hausdorff_within_scalar(t1, t2, threshold)
}

/// The scalar [`hausdorff_within`] body (the oracle the SIMD backends are
/// tested against).
pub(crate) fn hausdorff_within_scalar(
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
) -> Option<f64> {
    let thr_sq = if threshold < f64::MAX.sqrt() {
        threshold * threshold
    } else {
        f64::INFINITY
    };
    let a = directed_within_sq(t1, t2, thr_sq)?;
    let b = directed_within_sq(t2, t1, thr_sq)?;
    let d = a.max(b).sqrt();
    (d < threshold).then_some(d)
}

/// [`hausdorff_within`] with the uniform scratch-threaded signature. The
/// directed passes keep only O(1) state, so the scratch is unused — the
/// kernel was already allocation-free.
pub fn hausdorff_within_in(
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
    _scratch: &mut DistScratch,
) -> Option<f64> {
    hausdorff_within(t1, t2, threshold)
}

// ---------------------------------------------------------------------------
// Frechet / DTW — shared column-kernel shape
// ---------------------------------------------------------------------------

/// Early-abandoning discrete Frechet distance.
///
/// Sound because the column minimum `cmin` never decreases as reference
/// points are appended (each new entry takes a `max` with a predecessor
/// minimum) and the final `f_{m,n}` is an element of the last column.
pub fn frechet_within(t1: &[Point], t2: &[Point], threshold: f64) -> Option<f64> {
    DistScratch::with_thread(|s| frechet_within_in(t1, t2, threshold, s))
}

/// [`frechet_within`] against a caller-managed scratch: zero heap
/// allocations once `scratch` is warm.
///
/// Like [`crate::frechet_in`], the DP runs in squared-distance space; the
/// per-column abandon check takes one square root (of the column minimum)
/// instead of one per cell, and decides identically to the linear-space
/// kernel because IEEE `sqrt` is monotone and correctly rounded.
pub fn frechet_within_in(
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    if t1.is_empty() || t2.is_empty() {
        return empty_case(t1.is_empty() && t2.is_empty(), threshold);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    crate::backend::simd_dispatch!(frechet_within(t1, t2, threshold, scratch));
    frechet_within_scalar_in(t1, t2, threshold, scratch)
}

/// The scalar [`frechet_within_in`] body (the oracle the SIMD backends are
/// tested against).
pub(crate) fn frechet_within_scalar_in(
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let col = scratch.f1_uninit(t1.len());
    let (p0, rest) = t2.split_first().expect("non-empty");
    let cmin_sq = frechet_advance(col, true, t1, |q| q.dist_sq(p0));
    if cmin_sq.sqrt() >= threshold {
        return None;
    }
    // Pairs of columns (two interleaved chains, bit-identical cells);
    // the two column minima are checked in column order, so the abandon
    // decision matches the one-column-at-a-time kernel exactly.
    let mut pairs = rest.chunks_exact(2);
    for pair in &mut pairs {
        let (c1, c2) =
            frechet_advance2(col, t1, |q| q.dist_sq(&pair[0]), |q| q.dist_sq(&pair[1]));
        if c1.sqrt() >= threshold || c2.sqrt() >= threshold {
            return None;
        }
    }
    for p in pairs.remainder() {
        let cmin_sq = frechet_advance(col, false, t1, |q| q.dist_sq(p));
        if cmin_sq.sqrt() >= threshold {
            return None;
        }
    }
    let d = col[col.len() - 1].sqrt();
    (d < threshold).then_some(d)
}

/// Early-abandoning DTW.
///
/// Sound because ground costs are non-negative: every entry of column
/// `j + 1` is `cost + min(three column-j/j+1 predecessors)`, so the column
/// minimum never decreases and the final `f_{m,n}` is at least every
/// column's minimum.
pub fn dtw_within(t1: &[Point], t2: &[Point], threshold: f64) -> Option<f64> {
    DistScratch::with_thread(|s| dtw_within_in(t1, t2, threshold, s))
}

/// [`dtw_within`] against a caller-managed scratch: zero heap allocations
/// once `scratch` is warm.
pub fn dtw_within_in(
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    if t1.is_empty() || t2.is_empty() {
        return empty_case(t1.is_empty() && t2.is_empty(), threshold);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    crate::backend::simd_dispatch!(dtw_within(t1, t2, threshold, scratch));
    dtw_within_scalar_in(t1, t2, threshold, scratch)
}

/// The scalar [`dtw_within_in`] body (the oracle the SIMD backends are
/// tested against).
pub(crate) fn dtw_within_scalar_in(
    t1: &[Point],
    t2: &[Point],
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let col = scratch.f1_uninit(t1.len());
    let (p0, rest) = t2.split_first().expect("non-empty");
    let cmin = dtw_advance(col, true, t1, |q| q.dist(p0));
    if cmin >= threshold {
        return None;
    }
    // See `frechet_within_in`: paired columns, abandon checks in order.
    let mut pairs = rest.chunks_exact(2);
    for pair in &mut pairs {
        let (c1, c2) = dtw_advance2(col, t1, |q| q.dist(&pair[0]), |q| q.dist(&pair[1]));
        if c1 >= threshold || c2 >= threshold {
            return None;
        }
    }
    for p in pairs.remainder() {
        let cmin = dtw_advance(col, false, t1, |q| q.dist(p));
        if cmin >= threshold {
            return None;
        }
    }
    let d = col[col.len() - 1];
    (d < threshold).then_some(d)
}

// ---------------------------------------------------------------------------
// ERP
// ---------------------------------------------------------------------------

/// Early-abandoning ERP with gap point `gap`.
///
/// The DP mirrors [`crate::erp`] exactly (same expressions, same order, so
/// surviving values are bit-identical); after each row the running row
/// minimum is checked. All edit costs are non-negative, so row minima are
/// non-decreasing and the final value dominates every row minimum.
pub fn erp_within(t1: &[Point], t2: &[Point], gap: Point, threshold: f64) -> Option<f64> {
    DistScratch::with_thread(|s| erp_within_in(t1, t2, gap, threshold, s))
}

/// [`erp_within`] against a caller-managed scratch: zero heap allocations
/// once `scratch` is warm (and, like [`crate::erp_in`], the gap distances
/// are evaluated once per call instead of once per cell).
pub fn erp_within_in(
    t1: &[Point],
    t2: &[Point],
    gap: Point,
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let (m, n) = (t1.len(), t2.len());
    if m == 0 {
        let d: f64 = t2.iter().map(|p| p.dist(&gap)).sum();
        return (d < threshold).then_some(d);
    }
    if n == 0 {
        let d: f64 = t1.iter().map(|p| p.dist(&gap)).sum();
        return (d < threshold).then_some(d);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    crate::backend::simd_dispatch!(erp_within(t1, t2, gap, threshold, scratch));
    erp_within_scalar_in(t1, t2, gap, threshold, scratch)
}

/// The scalar [`erp_within_in`] body (the oracle the SIMD backends are
/// tested against).
pub(crate) fn erp_within_scalar_in(
    t1: &[Point],
    t2: &[Point],
    gap: Point,
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let n = t2.len();
    let (mut prev, mut cur, gap_b) = scratch.f3_uninit(n + 1, n + 1, n);
    for (g, p) in gap_b.iter_mut().zip(t2) {
        *g = p.dist(&gap);
    }
    prev[0] = 0.0;
    for j in 0..n {
        prev[j + 1] = prev[j] + gap_b[j];
    }
    for a in t1 {
        let gap_a = a.dist(&gap);
        // Register-carried cursors over zipped rows (see `erp_in`).
        let mut left = prev[0] + gap_a;
        cur[0] = left;
        let mut diag = prev[0];
        let mut row_min = left;
        for ((b, gb), (&up, c)) in t2
            .iter()
            .zip(gap_b.iter())
            .zip(prev[1..].iter().zip(cur[1..].iter_mut()))
        {
            let v = (diag + a.dist(b)).min(up + gap_a).min(left + gb);
            *c = v;
            diag = up;
            left = v;
            if v < row_min {
                row_min = v;
            }
        }
        if row_min >= threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[n];
    (d < threshold).then_some(d)
}

// ---------------------------------------------------------------------------
// EDR
// ---------------------------------------------------------------------------

/// Early-abandoning EDR with matching threshold `eps`.
///
/// Same row-minimum argument as ERP (unit edit costs are non-negative).
pub fn edr_within(t1: &[Point], t2: &[Point], eps: f64, threshold: f64) -> Option<f64> {
    DistScratch::with_thread(|s| edr_within_in(t1, t2, eps, threshold, s))
}

/// [`edr_within`] against a caller-managed scratch: zero heap allocations
/// once `scratch` is warm.
pub fn edr_within_in(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let (m, n) = (t1.len(), t2.len());
    if m == 0 || n == 0 {
        let d = (m + n) as f64;
        return (d < threshold).then_some(d);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    crate::backend::simd_dispatch!(edr_within(t1, t2, eps, threshold, scratch));
    edr_within_scalar_in(t1, t2, eps, threshold, scratch)
}

/// The scalar [`edr_within_in`] body (the oracle the SIMD backends are
/// tested against).
pub(crate) fn edr_within_scalar_in(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let n = t2.len();
    let (mut prev, mut cur) = scratch.u2_uninit(n + 1, n + 1);
    for (j, p) in prev.iter_mut().enumerate() {
        *p = j as u32;
    }
    for (i, a) in t1.iter().enumerate() {
        // Register-carried cursors over zipped rows (see `edr_in`).
        let mut left = i as u32 + 1;
        cur[0] = left;
        let mut diag = prev[0];
        let mut row_min = left;
        for (b, (&up, c)) in t2.iter().zip(prev[1..].iter().zip(cur[1..].iter_mut())) {
            let subcost =
                u32::from(!((a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps));
            let v = (diag + subcost).min(up + 1).min(left + 1);
            *c = v;
            diag = up;
            left = v;
            row_min = row_min.min(v);
        }
        if f64::from(row_min) >= threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = f64::from(prev[n]);
    (d < threshold).then_some(d)
}

// ---------------------------------------------------------------------------
// LCSS
// ---------------------------------------------------------------------------

/// Early-abandoning LCSS distance with matching threshold `eps`.
///
/// After consuming `i + 1` of `m` rows, the final match count is at most
/// `cur[n] + (m - 1 - i)` (appending one point grows an LCS by at most
/// one), so the best achievable distance is known mid-DP; abandon when even
/// that cannot beat the threshold.
pub fn lcss_distance_within(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    threshold: f64,
) -> Option<f64> {
    DistScratch::with_thread(|s| lcss_distance_within_in(t1, t2, eps, threshold, s))
}

/// [`lcss_distance_within`] against a caller-managed scratch: zero heap
/// allocations once `scratch` is warm.
pub fn lcss_distance_within_in(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    if t1.is_empty() || t2.is_empty() {
        let d = if t1.is_empty() && t2.is_empty() { 0.0 } else { 1.0 };
        return (d < threshold).then_some(d);
    }
    if threshold.is_nan() || threshold <= 0.0 {
        return None;
    }
    crate::backend::simd_dispatch!(lcss_within(t1, t2, eps, threshold, scratch));
    lcss_distance_within_scalar_in(t1, t2, eps, threshold, scratch)
}

/// The scalar [`lcss_distance_within_in`] body (the oracle the SIMD
/// backends are tested against).
pub(crate) fn lcss_distance_within_scalar_in(
    t1: &[Point],
    t2: &[Point],
    eps: f64,
    threshold: f64,
    scratch: &mut DistScratch,
) -> Option<f64> {
    let (m, n) = (t1.len(), t2.len());
    let minlen = m.min(n);
    let (mut prev, mut cur) = scratch.u2(n + 1, n + 1);
    for (i, a) in t1.iter().enumerate() {
        // Register-carried cursors over zipped rows (see `lcss_length_in`).
        let mut left = 0u32;
        let mut diag = prev[0];
        for (b, (&up, c)) in t2.iter().zip(prev[1..].iter().zip(cur[1..].iter_mut())) {
            let v = if (a.x - b.x).abs() <= eps && (a.y - b.y).abs() <= eps {
                diag + 1
            } else {
                up.max(left)
            };
            *c = v;
            diag = up;
            left = v;
        }
        // LCS rows are non-decreasing left-to-right, so cur[n] is the row
        // maximum; each remaining row can add at most one match.
        let achievable = (cur[n] as usize + (m - 1 - i)).min(minlen);
        if 1.0 - achievable as f64 / minlen as f64 >= threshold {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let l = prev[n] as f64;
    let d = 1.0 - l / t1.len().min(t2.len()) as f64;
    (d < threshold).then_some(d)
}

// ---------------------------------------------------------------------------
// O(m + n) prefilter lower bounds
// ---------------------------------------------------------------------------

/// `max_{a in from} minDist(a, mbr)` — lower-bounds the directed Hausdorff
/// term `max_a min_b d(a, b)` because every point of the other trajectory
/// lies inside `mbr`.
fn max_min_dist(from: &[Point], mbr: &Mbr) -> f64 {
    from.iter()
        .map(|a| mbr.min_dist(*a))
        .fold(0.0f64, f64::max)
}

/// MBR lower bound for Hausdorff: both directed terms, each against the
/// other trajectory's bounding rectangle.
pub(crate) fn hausdorff_lb(t1: &[Point], t2: &[Point]) -> f64 {
    let (Some(m1), Some(m2)) = (Mbr::from_points(t1), Mbr::from_points(t2)) else {
        return 0.0;
    };
    max_min_dist(t1, &m2).max(max_min_dist(t2, &m1))
}

/// Frechet lower bound: Frechet dominates Hausdorff, and it must align the
/// two start points and the two end points.
pub(crate) fn frechet_lb(t1: &[Point], t2: &[Point]) -> f64 {
    let (Some(a1), Some(b1)) = (t1.first(), t2.first()) else {
        return 0.0;
    };
    let (a2, b2) = (t1.last().expect("non-empty"), t2.last().expect("non-empty"));
    hausdorff_lb(t1, t2).max(a1.dist(b1)).max(a2.dist(b2))
}

/// DTW lower bound: a warping path visits every row and every column at
/// least once, so DTW is at least the sum over either trajectory's points
/// of the minimum distance to the other's bounding rectangle.
pub(crate) fn dtw_lb(t1: &[Point], t2: &[Point]) -> f64 {
    let (Some(m1), Some(m2)) = (Mbr::from_points(t1), Mbr::from_points(t2)) else {
        return 0.0;
    };
    let s1: f64 = t1.iter().map(|a| m2.min_dist(*a)).sum();
    let s2: f64 = t2.iter().map(|b| m1.min_dist(*b)).sum();
    s1.max(s2)
}

/// ERP lower bound (Chen & Ng): ERP is a metric and `erp(t, []) = Σ d(p, g)`,
/// so by the triangle inequality `erp(t1, t2) >= |Σ d(a, g) − Σ d(b, g)|`.
pub(crate) fn erp_lb(t1: &[Point], t2: &[Point], gap: Point) -> f64 {
    let s1: f64 = t1.iter().map(|p| p.dist(&gap)).sum();
    let s2: f64 = t2.iter().map(|p| p.dist(&gap)).sum();
    (s1 - s2).abs()
}

/// Whether `p` could match *any* point inside `mbr` under the per-dimension
/// `eps` test used by LCSS and EDR.
fn could_match(p: Point, mbr: &Mbr, eps: f64) -> bool {
    p.x >= mbr.min.x - eps
        && p.x <= mbr.max.x + eps
        && p.y >= mbr.min.y - eps
        && p.y <= mbr.max.y + eps
}

/// LCSS lower bound: a point outside the other trajectory's `eps`-expanded
/// MBR can never participate in a match, which caps the achievable LCS
/// length from both sides.
pub(crate) fn lcss_lb(t1: &[Point], t2: &[Point], eps: f64) -> f64 {
    let (Some(m1), Some(m2)) = (Mbr::from_points(t1), Mbr::from_points(t2)) else {
        return 0.0;
    };
    let c1 = t1.iter().filter(|p| could_match(**p, &m2, eps)).count();
    let c2 = t2.iter().filter(|p| could_match(**p, &m1, eps)).count();
    let minlen = t1.len().min(t2.len());
    1.0 - c1.min(c2).min(minlen) as f64 / minlen as f64
}

/// EDR lower bound: length difference, plus one guaranteed edit per point
/// that cannot match anything in the other trajectory.
pub(crate) fn edr_lb(t1: &[Point], t2: &[Point], eps: f64) -> f64 {
    let len_diff = t1.len().abs_diff(t2.len()) as f64;
    let (Some(m1), Some(m2)) = (Mbr::from_points(t1), Mbr::from_points(t2)) else {
        return len_diff;
    };
    let u1 = t1.iter().filter(|p| !could_match(**p, &m2, eps)).count();
    let u2 = t2.iter().filter(|p| !could_match(**p, &m1, eps)).count();
    len_diff.max(u1 as f64).max(u2 as f64)
}

/// Applies the prefilter: `true` when the cheap lower bound (shrunk by the
/// floating-point safety margin) already proves the distance is at or above
/// the threshold.
pub(crate) fn prefilter_rejects(lb: f64, threshold: f64) -> bool {
    lb * LB_SAFETY >= threshold
}

/// Whether a [`crate::MeasureParams::lower_bound`] value proves the exact
/// distance is *strictly above* `cutoff` — with the same floating-point
/// safety margin the `distance_within` prefilter applies, so an
/// ulp-overshooting bound can never disqualify a candidate whose true
/// distance is at or below the cutoff.
///
/// This is the correct test for skipping candidates in a scan that keeps
/// everything with `distance <= cutoff` (the running-top-k loops of the
/// serving layer and the baselines): sorted by lower bound, the scan may
/// stop at the first candidate for which this returns `true`.
pub fn bound_exceeds(lb: f64, cutoff: f64) -> bool {
    lb * LB_SAFETY > cutoff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dtw, edr, erp, frechet, hausdorff, lcss_distance};

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    const G: Point = Point::new(0.0, 0.0);

    fn fixtures() -> Vec<(Vec<Point>, Vec<Point>)> {
        vec![
            (
                pts(&[(0.5, 6.5), (2.5, 6.5), (4.5, 6.5)]),
                pts(&[(0.5, 7.5), (2.5, 7.5), (6.5, 7.5), (6.5, 4.5)]),
            ),
            (
                pts(&[(0.0, 0.0), (1.0, 1.0)]),
                pts(&[(10.0, 10.0), (11.0, 10.0), (12.0, 11.0)]),
            ),
            (pts(&[(3.0, 3.0)]), pts(&[(3.0, 3.0)])),
            (
                pts(&[(0.0, 0.0), (5.0, 0.0), (5.0, 5.0)]),
                pts(&[(0.1, 0.1), (5.1, 0.1), (5.1, 5.1)]),
            ),
        ]
    }

    #[test]
    fn hausdorff_within_agrees_bitwise() {
        for (a, b) in fixtures() {
            let d = hausdorff(&a, &b);
            for thr in [d * 0.5, d, d * 1.5 + 0.1, f64::INFINITY] {
                let got = hausdorff_within(&a, &b, thr);
                if d < thr {
                    assert_eq!(got.map(f64::to_bits), Some(d.to_bits()));
                } else {
                    assert_eq!(got, None);
                }
            }
        }
    }

    type WithinFn = fn(&[Point], &[Point], f64) -> Option<f64>;

    #[test]
    fn dp_kernels_agree_bitwise() {
        for (a, b) in fixtures() {
            let cases: [(f64, WithinFn); 2] = [
                (frechet(&a, &b), frechet_within),
                (dtw(&a, &b), dtw_within),
            ];
            for (d, f) in cases {
                for thr in [d * 0.5, d, d * 2.0 + 0.1, f64::INFINITY] {
                    let got = f(&a, &b, thr);
                    if d < thr {
                        assert_eq!(got.map(f64::to_bits), Some(d.to_bits()));
                    } else {
                        assert_eq!(got, None);
                    }
                }
            }
            let d = erp(&a, &b, G);
            assert_eq!(
                erp_within(&a, &b, G, f64::INFINITY).map(f64::to_bits),
                Some(d.to_bits())
            );
            assert_eq!(erp_within(&a, &b, G, d), None);
            for eps in [0.2, 1.5] {
                let d = edr(&a, &b, eps);
                assert_eq!(
                    edr_within(&a, &b, eps, d + 0.5).map(f64::to_bits),
                    Some(d.to_bits())
                );
                assert_eq!(edr_within(&a, &b, eps, d), None);
                let d = lcss_distance(&a, &b, eps);
                assert_eq!(
                    lcss_distance_within(&a, &b, eps, d.next_up()).map(f64::to_bits),
                    Some(d.to_bits())
                );
                assert_eq!(lcss_distance_within(&a, &b, eps, d), None);
            }
        }
    }

    #[test]
    fn empty_inputs_follow_unbounded_conventions() {
        let a = pts(&[(1.0, 2.0)]);
        assert_eq!(hausdorff_within(&[], &[], 0.5), Some(0.0));
        assert_eq!(hausdorff_within(&a, &[], 1e300), None); // infinity never beats
        assert_eq!(frechet_within(&[], &a, f64::INFINITY), None);
        assert_eq!(dtw_within(&[], &[], 0.1), Some(0.0));
        assert_eq!(erp_within(&a, &[], G, 3.0), Some(a[0].dist(&G)));
        assert_eq!(edr_within(&a, &[], 0.1, 2.0), Some(1.0));
        assert_eq!(edr_within(&a, &[], 0.1, 1.0), None);
        assert_eq!(lcss_distance_within(&a, &[], 0.1, 2.0), Some(1.0));
        assert_eq!(lcss_distance_within(&[], &[], 0.1, 0.5), Some(0.0));
    }

    #[test]
    fn non_positive_thresholds_reject_everything() {
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(hausdorff_within(&a, &a, 0.0), None);
        assert_eq!(dtw_within(&a, &a, -1.0), None);
        assert_eq!(frechet_within(&a, &a, f64::NAN), None);
        assert_eq!(erp_within(&a, &a, G, 0.0), None);
        assert_eq!(edr_within(&a, &a, 0.1, 0.0), None);
        assert_eq!(lcss_distance_within(&a, &a, 0.1, 0.0), None);
    }

    #[test]
    fn just_above_is_the_successor() {
        assert!(just_above(0.0) > 0.0);
        let x = 3.75f64;
        assert!(just_above(x) > x);
        assert_eq!(just_above(x).next_down(), x);
        assert_eq!(just_above(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn prefilters_lower_bound_the_exact_distances() {
        for (a, b) in fixtures() {
            assert!(hausdorff_lb(&a, &b) <= hausdorff(&a, &b) + 1e-9);
            assert!(frechet_lb(&a, &b) <= frechet(&a, &b) + 1e-9);
            assert!(dtw_lb(&a, &b) <= dtw(&a, &b) + 1e-9);
            assert!(erp_lb(&a, &b, G) <= erp(&a, &b, G) + 1e-9);
            for eps in [0.2, 1.5] {
                assert!(lcss_lb(&a, &b, eps) <= lcss_distance(&a, &b, eps) + 1e-9);
                assert!(edr_lb(&a, &b, eps) <= edr(&a, &b, eps) + 1e-9);
            }
        }
    }

    #[test]
    fn prefilter_separated_trajectories_without_dp() {
        // Far apart: the MBR bound alone proves the distance exceeds 1.0.
        let a = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let b = pts(&[(100.0, 100.0), (101.0, 100.0)]);
        assert!(hausdorff_lb(&a, &b) > 100.0);
        assert!(prefilter_rejects(hausdorff_lb(&a, &b), 1.0));
        assert!(!prefilter_rejects(hausdorff_lb(&a, &b), 1e6));
    }
}
