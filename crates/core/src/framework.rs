use crate::{partition::partition_slots, ReposeConfig};
use repose_cluster::{Cluster, DistDataset, JobStats};
use repose_model::{Dataset, Mbr, Point, TrajId, TrajStore};
use repose_rptrie::{Hit, RpTrie, SearchStats, SharedTopK};
use repose_zorder::Grid;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One partition's package of data + local index — the paper's
/// `RpTraj(trajectory: Array, Index: RP-Trie)` (Section V-C). The data
/// half is a flat [`TrajStore`] arena: leaf verification and full scans
/// read one contiguous point array per partition.
#[derive(Debug, Clone)]
pub(crate) struct LocalPartition {
    pub(crate) store: TrajStore,
    pub(crate) trie: RpTrie,
}

/// The outcome of one distributed top-k query.
///
/// Every [`Repose`] query variant ([`Repose::query`],
/// [`Repose::query_independent`], [`Repose::query_two_phase`],
/// [`Repose::query_batch`]) returns one of these. The three fields answer the three questions the paper's
/// evaluation asks of a query: *what* was found (`hits`), *how long* the
/// simulated cluster took (`job`, whose makespan is the paper's QT metric),
/// and *how much work* the local indexes did (`search`, the pruning-power
/// counters behind Tables V and VI).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Global top-k hits, ascending by distance with ties broken by
    /// trajectory id. May hold fewer than `k` entries when the dataset
    /// (or the filtered subset) is smaller than `k`.
    pub hits: Vec<Hit>,
    /// Distributed scheduling stats; `job.makespan` is the simulated
    /// distributed query time (the paper's QT).
    pub job: JobStats,
    /// Local-search work counters summed over partitions: trie nodes
    /// visited/pruned, leaves visited/pruned, and exact distance
    /// computations.
    pub search: SearchStats,
}

impl QueryOutcome {
    /// Simulated distributed query time (the paper's QT): the makespan of
    /// the per-partition local searches scheduled onto the modeled
    /// cluster, *not* host wall time.
    pub fn query_time(&self) -> Duration {
        self.job.makespan
    }
}

/// A borrowed view of one partition's data and local index — the hook the
/// online serving layer (`repose-service`) uses to search frozen
/// partitions directly, outside the simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct PartitionView<'a> {
    /// The partition's trajectory arena, in the order the index was built
    /// over.
    pub store: &'a TrajStore,
    /// The partition's RP-Trie.
    pub trie: &'a RpTrie,
}

/// A built REPOSE deployment: partitioned trajectories, one RP-Trie per
/// partition, and the simulated cluster that executes queries.
///
/// Partitions live behind `Arc` so a selective rebuild
/// ([`Repose::rebuild_partitions`] — the serving layer's incremental
/// compaction) can share untouched partitions' arenas and tries with the
/// previous deployment instead of deep-copying them.
#[derive(Debug)]
pub struct Repose {
    config: ReposeConfig,
    cluster: Cluster,
    data: DistDataset<Arc<LocalPartition>>,
    region: Mbr,
    build_stats: JobStats,
    partition_wall: Duration,
}

impl Repose {
    /// Partitions `dataset` and builds every local index.
    ///
    /// The paper's index-construction time (IT) covers "converting
    /// trajectories to reference trajectories, clustering the trajectories,
    /// and building the trie" — here: the master-side partitioning wall
    /// time plus the simulated makespan of the parallel per-partition
    /// builds.
    pub fn build(dataset: &Dataset, config: ReposeConfig) -> Self {
        let region = dataset
            .enclosing_square()
            .unwrap_or_else(|| Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let t0 = Instant::now();
        // Deal slots over the dataset in place (no transient master
        // arena); each partition's arena is filled straight from the
        // dataset's point slices.
        let trajs = dataset.trajectories();
        let slot_parts = crate::partition::partition_slots_by(
            trajs.len(),
            &|i| trajs[i].points.as_slice(),
            &|i| trajs[i].id,
            &region,
            config.strategy,
            config.num_partitions,
            config.seed,
        );
        let parts: Vec<TrajStore> = slot_parts
            .into_iter()
            .map(|slots| {
                let points: usize = slots.iter().map(|&s| trajs[s].len()).sum();
                let mut part = TrajStore::with_capacity(slots.len(), points);
                for s in slots {
                    part.push(trajs[s].id, &trajs[s].points);
                }
                part
            })
            .collect();
        Repose::build_from_parts(parts, region, t0.elapsed(), config)
    }

    /// [`Repose::build`] over a flat [`TrajStore`] arena — the
    /// allocation-light build path. Partitioning deals out *slots*; each
    /// partition's arena is then filled with contiguous arena-to-arena
    /// range copies (no intermediate `Trajectory` clones). The serving
    /// layer's compaction rebuilds through this entry point.
    pub fn build_from_store(store: &TrajStore, config: ReposeConfig) -> Self {
        let region = store
            .enclosing_square()
            .unwrap_or_else(|| Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        let t0 = Instant::now();
        let slot_parts = partition_slots(
            store,
            &region,
            config.strategy,
            config.num_partitions,
            config.seed,
        );
        let parts: Vec<TrajStore> = slot_parts
            .into_iter()
            .map(|slots| {
                let points: usize = slots.iter().map(|&s| store.points(s).len()).sum();
                let mut part = TrajStore::with_capacity(slots.len(), points);
                for s in slots {
                    part.push_from(store, s);
                }
                part
            })
            .collect();
        Repose::build_from_parts(parts, region, t0.elapsed(), config)
    }

    /// The shared tail of [`Repose::build`] / [`Repose::build_from_store`]:
    /// per-partition trie builds on the simulated cluster + deployment
    /// assembly.
    fn build_from_parts(
        parts: Vec<TrajStore>,
        region: Mbr,
        partition_wall: Duration,
        config: ReposeConfig,
    ) -> Self {
        let cluster = Cluster::new(config.cluster);
        let raw = DistDataset::from_partitions(
            parts.into_iter().map(|p| vec![p]).collect(),
        );
        let grid = Grid::with_delta(region, config.delta);
        let trie_cfg = config.trie;
        let (built, times, wall) = cluster.run_partitions(&raw, |pi, chunk| {
            let store = chunk[0].clone();
            let trie = RpTrie::build(
                &store,
                grid.clone(),
                trie_cfg.with_seed(trie_cfg.seed ^ pi as u64),
            );
            Arc::new(LocalPartition { store, trie })
        });
        let build_stats = JobStats::simulate(
            times,
            (0..config.num_partitions).collect(),
            config.cluster.workers,
            config.cluster.cores_per_worker,
            wall,
        );
        let data = DistDataset::from_partitions(built.into_iter().map(|p| vec![p]).collect());
        Repose { config, cluster, data, region, build_stats, partition_wall }
    }

    /// Reassembles a deployment from already-built partitions — the
    /// archive attach path, which must not re-partition or re-freeze
    /// anything. Each `(store, trie)` pair becomes one partition verbatim
    /// (the trie must have been built over exactly that store; `RpTrie`
    /// asserts the store length on every query). `region` and `config`
    /// must be the ones the deployment was originally built with, or
    /// later incremental rebuilds would use a different grid.
    ///
    /// Build stats are zero: nothing was built.
    pub fn from_built_partitions(
        partitions: Vec<(TrajStore, RpTrie)>,
        region: Mbr,
        config: ReposeConfig,
    ) -> Self {
        assert_eq!(
            partitions.len(),
            config.num_partitions,
            "partition count must match the config it was built with"
        );
        let n = partitions.len();
        let cluster = Cluster::new(config.cluster);
        let built: Vec<Arc<LocalPartition>> = partitions
            .into_iter()
            .map(|(store, trie)| Arc::new(LocalPartition { store, trie }))
            .collect();
        let data = DistDataset::from_partitions(built.into_iter().map(|p| vec![p]).collect());
        let build_stats = JobStats::simulate(
            vec![Duration::ZERO; n],
            (0..n).collect(),
            config.cluster.workers,
            config.cluster.cores_per_worker,
            Duration::ZERO,
        );
        Repose { config, cluster, data, region, build_stats, partition_wall: Duration::ZERO }
    }

    /// Rebuilds *only* the given partitions, sharing every other
    /// partition's arena and trie with `self` (an `Arc` clone — no copy).
    /// This is the selective-rebuild entry point behind the serving
    /// layer's incremental compaction: a deployment with `n` partitions
    /// and one dirty partition pays one trie build, not `n`.
    ///
    /// Each replacement `(pi, store)` becomes partition `pi`'s new data;
    /// its trie is built with the *same* grid (region + `delta`) and the
    /// same per-partition seed as the original build, so reused and
    /// rebuilt partitions stay mutually consistent. Replacement builds run
    /// on the simulated cluster like [`Repose::build`]'s; the returned
    /// deployment's [`Repose::build_stats`] describe the selective job
    /// only.
    ///
    /// Every point of every replacement store must lie within
    /// [`Repose::region`] — reference-point discretization clamps to the
    /// region, so out-of-region data would get unsound lower bounds. The
    /// caller is responsible for falling back to a full rebuild in that
    /// case (debug builds assert it).
    ///
    /// # Panics
    /// If a replacement index is out of range or duplicated.
    pub fn rebuild_partitions(&self, replacements: Vec<(usize, TrajStore)>) -> Repose {
        let n = self.config.num_partitions;
        let t0 = Instant::now();
        let mut seen = vec![false; n];
        for &(pi, ref store) in &replacements {
            assert!(pi < n, "replacement partition {pi} out of range ({n} partitions)");
            assert!(!seen[pi], "replacement partition {pi} given twice");
            seen[pi] = true;
            debug_assert!(
                store
                    .enclosing_square()
                    .is_none_or(|sq| self.region.contains_mbr(&sq) || {
                        // `enclosing_square` pads the tight bbox up to a
                        // square; only the raw points must be in-region.
                        store.iter().all(|(_, pts)| {
                            pts.iter().all(|p| self.region.contains(*p))
                        })
                    }),
                "replacement stores must stay within the deployment region"
            );
        }
        let grid = Grid::with_delta(self.region, self.config.delta);
        let trie_cfg = self.config.trie;
        let raw = DistDataset::from_partitions(
            replacements.into_iter().map(|r| vec![r]).collect(),
        );
        let (tries, times, wall) = self.cluster.run_partitions(&raw, |_, chunk| {
            let (pi, store) = &chunk[0];
            RpTrie::build(store, grid.clone(), trie_cfg.with_seed(trie_cfg.seed ^ *pi as u64))
        });
        let assignment: Vec<usize> = raw
            .partitions()
            .iter()
            .map(|chunk| chunk[0].0)
            .collect();
        let mut rebuilt: std::collections::HashMap<usize, Arc<LocalPartition>> = raw
            .into_partitions()
            .into_iter()
            .zip(tries)
            .map(|(mut chunk, trie)| {
                let (pi, store) = chunk.pop().expect("one store per replacement");
                (pi, Arc::new(LocalPartition { store, trie }))
            })
            .collect();
        let parts: Vec<Vec<Arc<LocalPartition>>> = (0..n)
            .map(|pi| {
                vec![rebuilt
                    .remove(&pi)
                    .unwrap_or_else(|| Arc::clone(&self.data.partition(pi)[0]))]
            })
            .collect();
        let build_stats = JobStats::simulate(
            times,
            assignment,
            self.config.cluster.workers,
            self.config.cluster.cores_per_worker,
            wall,
        );
        Repose {
            config: self.config,
            cluster: self.cluster.clone(),
            data: DistDataset::from_partitions(parts),
            region: self.region,
            build_stats,
            partition_wall: t0.elapsed(),
        }
    }

    /// Runs a distributed top-k query with **cross-partition shared-
    /// threshold execution**: every partition's local search runs
    /// concurrently against one live [`SharedTopK`] collector, publishing
    /// each accepted hit and re-reading the collector's global k-th-
    /// distance bound at every pruning decision — so partition 7 stops
    /// verifying candidates partition 0 already proved hopeless, while the
    /// results stay exact (identical distance multiset to
    /// [`Repose::query_independent`]; ties may resolve per Definition 3).
    ///
    /// Never performs more exact distance computations than the
    /// independent path on any interleaving: the shared bound only ever
    /// tightens each local search's own threshold, so each partition's
    /// work is a subset of its independent-run work.
    pub fn query(&self, query: &[Point], k: usize) -> QueryOutcome {
        self.query_with_collector(query, k, None)
    }

    /// The pre-shared-threshold execution: every partition searches
    /// independently under an infinite initial threshold and results merge
    /// only at the end (`mapPartitions` + `collect` with no cross-task
    /// communication — exactly the paper's execution model).
    ///
    /// Kept as the verification baseline for [`Repose::query`] and as the
    /// comparison arm of the `scale` experiment; prefer `query`.
    pub fn query_independent(&self, query: &[Point], k: usize) -> QueryOutcome {
        let (locals, times, wall) = self.cluster.run_partitions(&self.data, |_, chunk| {
            let part = &chunk[0];
            part.trie.top_k(&part.store, query, k)
        });
        let job = JobStats::simulate(
            times,
            (0..self.config.num_partitions).collect(),
            self.config.cluster.workers,
            self.config.cluster.cores_per_worker,
            wall,
        );
        let mut search = SearchStats::default();
        let mut hits: Vec<Hit> = Vec::with_capacity(k * locals.len().min(8));
        for l in &locals {
            search.merge(&l.stats);
            hits.extend_from_slice(&l.hits);
        }
        hits.sort_by(Hit::cmp_by_dist_then_id);
        hits.truncate(k);
        QueryOutcome { hits, job, search }
    }

    /// Two-phase distributed top-k: a degenerate configuration of the
    /// shared-threshold execution in which one *seed partition* completes
    /// its local search first (sequentially), pre-tightening the shared
    /// collector before every other partition starts; the remaining
    /// partitions then run concurrently against the same collector and
    /// keep tightening each other as in [`Repose::query`].
    ///
    /// The seed is the partition whose trie root bound is closest to the
    /// query (cheap one-cell `LBo` over the root's children — no exact
    /// kernels), so the initial threshold starts as tight as a single
    /// partition can make it. Exact like `query` up to tie resolution.
    /// Most effective with heterogeneous partitioning, where every
    /// partition is a representative sample and the seed threshold is
    /// already near the global k-th distance.
    pub fn query_two_phase(&self, query: &[Point], k: usize) -> QueryOutcome {
        if self.config.num_partitions <= 1 || k == 0 {
            return self.query(query, k);
        }
        let seed = self.best_seed_partition(query);
        self.query_with_collector(query, k, Some(seed))
    }

    /// Shared-threshold execution, optionally with a sequential seed phase
    /// (see [`Repose::query`] / [`Repose::query_two_phase`]).
    ///
    /// Always timed as a single cold run
    /// ([`Cluster::run_partitions_cold`]): a timing re-run would execute
    /// against the already-tightened collector and under-report the job's
    /// true cost.
    fn query_with_collector(
        &self,
        query: &[Point],
        k: usize,
        seed: Option<usize>,
    ) -> QueryOutcome {
        let collector = SharedTopK::new(k);

        // Optional phase 1: the seed partition answers alone, publishing
        // its hits so phase 2 starts from its local k-th distance.
        let mut seed_time = Duration::ZERO;
        let seed_result = seed.map(|si| {
            let part = &self.data.partition(si)[0];
            let t0 = Instant::now();
            let r = part.trie.top_k_shared(&part.store, query, k, &[], None, &collector);
            seed_time = t0.elapsed();
            r
        });

        let (locals, mut times, wall) = self.cluster.run_partitions_cold(&self.data, |pi, chunk| {
            if Some(pi) == seed {
                return None;
            }
            let part = &chunk[0];
            Some(part.trie.top_k_shared(&part.store, query, k, &[], None, &collector))
        });
        if let Some(si) = seed {
            // The seed partition's cost happened in phase 1; schedule it as
            // a task so the makespan accounts for both phases honestly.
            times[si] = seed_time;
        }
        let job = JobStats::simulate(
            times,
            (0..self.config.num_partitions).collect(),
            self.config.cluster.workers,
            self.config.cluster.cores_per_worker,
            wall + seed_time,
        );
        let mut search = SearchStats::default();
        let mut hits: Vec<Hit> = Vec::with_capacity(k * (locals.len() + 1).min(8));
        for l in seed_result.iter().chain(locals.iter().flatten()) {
            search.merge(&l.stats);
            hits.extend_from_slice(&l.hits);
        }
        hits.sort_by(Hit::cmp_by_dist_then_id);
        hits.truncate(k);
        QueryOutcome { hits, job, search }
    }

    /// The partition with the smallest root-level lower bound on its
    /// distance to `query` — the most promising two-phase seed. Falls back
    /// to partition 0 on ties (including the LCSS all-zero-bound case) and
    /// for empty partitions (whose bound is infinite).
    fn best_seed_partition(&self, query: &[Point]) -> usize {
        let mut best = 0usize;
        let mut best_bound = f64::INFINITY;
        for pi in 0..self.config.num_partitions {
            let b = self.data.partition(pi)[0].trie.root_bound(query);
            if b < best_bound {
                best_bound = b;
                best = pi;
            }
        }
        best
    }

    /// Executes a *batch* of queries as one distributed job — the paper's
    /// motivating analytics workload ("ride-hailing companies tend to
    /// issue a batch of analysis queries", Section V-A).
    ///
    /// Each partition answers every query in one pass over its local index,
    /// so the simulated makespan reflects batch amortization: one task per
    /// partition rather than one job per query. Every query gets its own
    /// [`SharedTopK`] collector, shared by all concurrently executing
    /// partition tasks, so the cross-partition threshold pruning of
    /// [`Repose::query`] applies to every query of the batch.
    pub fn query_batch(&self, queries: &[Vec<Point>], k: usize) -> Vec<QueryOutcome> {
        if queries.is_empty() {
            return Vec::new();
        }
        let collectors: Vec<SharedTopK> = queries.iter().map(|_| SharedTopK::new(k)).collect();
        // Cold-run timing: re-runs would see already-tightened collectors.
        let (locals, times, wall) = self.cluster.run_partitions_cold(&self.data, |_, chunk| {
            let part = &chunk[0];
            queries
                .iter()
                .zip(&collectors)
                .map(|(q, c)| part.trie.top_k_shared(&part.store, q, k, &[], None, c))
                .collect::<Vec<_>>()
        });
        let job = JobStats::simulate(
            times,
            (0..self.config.num_partitions).collect(),
            self.config.cluster.workers,
            self.config.cluster.cores_per_worker,
            wall,
        );
        (0..queries.len())
            .map(|qi| {
                let mut search = SearchStats::default();
                let mut hits: Vec<Hit> = Vec::new();
                for part_results in &locals {
                    let l = &part_results[qi];
                    search.merge(&l.stats);
                    hits.extend_from_slice(&l.hits);
                }
                hits.sort_by(Hit::cmp_by_dist_then_id);
                hits.truncate(k);
                // The batch shares one schedule; report it on every outcome.
                QueryOutcome { hits, job: job.clone(), search }
            })
            .collect()
    }

    /// Runs a closure on every local partition with timing — shared by the
    /// query variants (plain, bounded, filtered).
    pub(crate) fn run_local<R: Send>(
        &self,
        f: impl Fn(&LocalPartition) -> R + Sync,
    ) -> (Vec<R>, Vec<Duration>, Duration) {
        self.cluster.run_partitions(&self.data, |_, chunk| f(&chunk[0]))
    }

    /// The configuration the deployment was built with.
    pub fn config(&self) -> &ReposeConfig {
        &self.config
    }

    /// The enclosing square region `A`.
    pub fn region(&self) -> Mbr {
        self.region
    }

    /// Simulated index construction time (the paper's IT): master-side
    /// clustering + simulated parallel build makespan.
    pub fn index_time(&self) -> Duration {
        self.partition_wall + self.build_stats.makespan
    }

    /// Scheduling stats of the build job.
    pub fn build_stats(&self) -> &JobStats {
        &self.build_stats
    }

    /// Total index size in bytes across partitions (the paper's IS).
    pub fn index_bytes(&self) -> usize {
        self.data
            .partitions()
            .iter()
            .map(|p| p[0].trie.mem_bytes())
            .sum()
    }

    /// Total trie nodes across partitions (Fig. 7's metric).
    pub fn trie_nodes(&self) -> usize {
        self.data
            .partitions()
            .iter()
            .map(|p| p[0].trie.node_count())
            .sum()
    }

    /// Borrowed view of partition `pi`'s trajectories and local index.
    ///
    /// # Panics
    /// If `pi >= self.num_partitions()`.
    pub fn partition_view(&self, pi: usize) -> PartitionView<'_> {
        let part = &self.data.partition(pi)[0];
        PartitionView { store: &part.store, trie: &part.trie }
    }

    /// Iterates every indexed trajectory across all partitions as
    /// `(id, points)` pairs borrowed from the partition arenas (used by
    /// `repose-service` for live-set accounting; compaction copies point
    /// ranges arena-to-arena through [`Repose::partition_view`]).
    pub fn all_trajectories(&self) -> impl Iterator<Item = (TrajId, &[Point])> {
        self.data
            .partitions()
            .iter()
            .flat_map(|p| p[0].store.iter())
    }

    /// Per-partition trajectory counts.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.data
            .partitions()
            .iter()
            .map(|p| p[0].store.len())
            .collect()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.config.num_partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionStrategy;
    use repose_distance::{Measure, MeasureParams};
    use repose_model::Trajectory;

    fn dataset() -> Dataset {
        // 200 trajectories in 20 groups of 10 near-duplicates.
        let mut trajs = Vec::new();
        for g in 0..20u64 {
            let gx = (g % 5) as f64 * 10.0;
            let gy = (g / 5) as f64 * 10.0;
            for j in 0..10u64 {
                let id = g * 10 + j;
                let jit = j as f64 * 0.05;
                trajs.push(Trajectory::new(
                    id,
                    (0..12)
                        .map(|s| Point::new(gx + s as f64 * 0.3 + jit, gy + jit))
                        .collect(),
                ));
            }
        }
        Dataset::from_trajectories(trajs)
    }

    fn brute_force(d: &Dataset, q: &[Point], k: usize, m: Measure, p: MeasureParams) -> Vec<u64> {
        let mut v: Vec<(f64, u64)> = d
            .trajectories()
            .iter()
            .map(|t| (p.distance(m, q, &t.points), t.id))
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        v.truncate(k);
        v.into_iter().map(|e| e.1).collect()
    }

    #[test]
    fn distributed_matches_brute_force_all_measures() {
        let d = dataset();
        let q: Vec<Point> = (0..12).map(|s| Point::new(s as f64 * 0.3, 0.1)).collect();
        let params = MeasureParams::with_eps(0.5);
        for measure in Measure::ALL {
            let cfg = ReposeConfig::new(measure)
                .with_partitions(8)
                .with_delta(0.7)
                .with_params(params);
            let r = Repose::build(&d, cfg);
            let got: Vec<u64> = r.query(&q, 10).hits.iter().map(|h| h.id).collect();
            let expect = brute_force(&d, &q, 10, measure, params);
            assert_eq!(got, expect, "{measure}");
        }
    }

    #[test]
    fn strategies_return_identical_results() {
        let d = dataset();
        let q: Vec<Point> = (0..12).map(|s| Point::new(s as f64 * 0.3, 10.2)).collect();
        let mut all = Vec::new();
        for s in [
            PartitionStrategy::Heterogeneous,
            PartitionStrategy::Homogeneous,
            PartitionStrategy::Random,
        ] {
            let cfg = ReposeConfig::new(Measure::Hausdorff)
                .with_partitions(6)
                .with_delta(0.7)
                .with_strategy(s);
            let r = Repose::build(&d, cfg);
            all.push(r.query(&q, 7).hits.iter().map(|h| h.id).collect::<Vec<_>>());
        }
        assert_eq!(all[0], all[1]);
        assert_eq!(all[0], all[2]);
    }

    #[test]
    fn heterogeneous_partitions_are_balanced() {
        let d = dataset();
        let cfg = ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(8)
            .with_delta(0.7);
        let r = Repose::build(&d, cfg);
        let sizes = r.partition_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), d.len());
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn stats_are_populated() {
        let d = dataset();
        let cfg = ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(4)
            .with_delta(0.7);
        let r = Repose::build(&d, cfg);
        assert!(r.index_bytes() > 0);
        assert!(r.trie_nodes() > 4);
        assert!(r.index_time() > Duration::ZERO);
        let q: Vec<Point> = (0..12).map(|s| Point::new(s as f64 * 0.3, 0.1)).collect();
        let out = r.query(&q, 5);
        assert_eq!(out.hits.len(), 5);
        assert!(out.search.exact_computations > 0);
        assert_eq!(out.job.partition_times.len(), 4);
        assert!(out.query_time() >= Duration::ZERO);
    }

    #[test]
    fn two_phase_matches_single_phase_distances() {
        let d = dataset();
        let params = MeasureParams::with_eps(0.5);
        for measure in [Measure::Hausdorff, Measure::Frechet, Measure::Dtw] {
            let cfg = ReposeConfig::new(measure)
                .with_partitions(8)
                .with_delta(0.7)
                .with_params(params);
            let r = Repose::build(&d, cfg);
            for qy in [0.1, 5.3, 19.7] {
                let q: Vec<Point> =
                    (0..12).map(|s| Point::new(s as f64 * 0.3, qy)).collect();
                let indep = r.query_independent(&q, 10);
                let one = r.query(&q, 10);
                let two = r.query_two_phase(&q, 10);
                assert_eq!(one.hits.len(), two.hits.len(), "{measure}");
                assert_eq!(one.hits.len(), indep.hits.len(), "{measure}");
                for ((a, b), c) in one.hits.iter().zip(&two.hits).zip(&indep.hits) {
                    assert!(
                        (a.dist - b.dist).abs() < 1e-9,
                        "{measure}: {} vs {}",
                        a.dist,
                        b.dist
                    );
                    assert!((a.dist - c.dist).abs() < 1e-9, "{measure}");
                }
                // shared thresholds must help, never hurt, total pruning
                // work — regardless of how the partition tasks interleave
                assert!(one.search.exact_computations <= indep.search.exact_computations);
                assert!(two.search.exact_computations <= indep.search.exact_computations);
            }
        }
    }

    #[test]
    fn batch_queries_match_individual_queries() {
        let d = dataset();
        let cfg = ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(6)
            .with_delta(0.7);
        let r = Repose::build(&d, cfg);
        let queries: Vec<Vec<Point>> = [0.1, 5.3, 12.7]
            .iter()
            .map(|&qy| (0..12).map(|s| Point::new(s as f64 * 0.3, qy)).collect())
            .collect();
        let batch = r.query_batch(&queries, 7);
        assert_eq!(batch.len(), 3);
        for (q, b) in queries.iter().zip(&batch) {
            let single = r.query(q, 7);
            assert_eq!(
                single.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
                b.hits.iter().map(|h| h.id).collect::<Vec<_>>()
            );
        }
        assert!(r.query_batch(&[], 5).is_empty());
    }

    #[test]
    fn two_phase_k_exceeding_partition_size() {
        let d = dataset(); // 200 trajectories over 8 partitions = 25 each
        let cfg = ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(8)
            .with_delta(0.7);
        let r = Repose::build(&d, cfg);
        let q: Vec<Point> = (0..12).map(|s| Point::new(s as f64 * 0.3, 0.1)).collect();
        // k = 60 > 25: phase 1 cannot fill k, threshold stays infinite,
        // but the result must still be the exact top-60.
        let one = r.query(&q, 60);
        let two = r.query_two_phase(&q, 60);
        assert_eq!(
            one.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            two.hits.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rebuild_partitions_shares_untouched_and_replaces_dirty() {
        let d = dataset();
        let cfg = ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(4)
            .with_delta(0.7);
        let r = Repose::build(&d, cfg);
        let q: Vec<Point> = (0..12).map(|s| Point::new(s as f64 * 0.3, 0.1)).collect();
        let before = r.query(&q, 8);

        // Identity rebuild: replace partition 2 with its own data.
        let view = r.partition_view(2);
        let mut same = TrajStore::new();
        for slot in 0..view.store.len() {
            same.push_from(view.store, slot);
        }
        let r2 = r.rebuild_partitions(vec![(2, same)]);
        let after = r2.query(&q, 8);
        assert_eq!(
            before.hits.iter().map(|h| (h.dist.to_bits(), h.id)).collect::<Vec<_>>(),
            after.hits.iter().map(|h| (h.dist.to_bits(), h.id)).collect::<Vec<_>>(),
        );
        // Untouched partitions share the original arenas (no copy).
        for pi in [0usize, 1, 3] {
            assert!(std::ptr::eq(
                r.partition_view(pi).store,
                r2.partition_view(pi).store
            ));
        }
        assert!(!std::ptr::eq(r.partition_view(2).store, r2.partition_view(2).store));

        // Real replacement: drop one trajectory from partition 2; the
        // result must match a scratch rebuild over the reduced live set.
        let victim = r.partition_view(2).store.id(0);
        let mut reduced = TrajStore::new();
        for slot in 0..view.store.len() {
            if view.store.id(slot) != victim {
                reduced.push_from(view.store, slot);
            }
        }
        let r3 = r.rebuild_partitions(vec![(2, reduced)]);
        let got: Vec<u64> = r3.query(&q, 8).hits.iter().map(|h| h.id).collect();
        let live: Vec<Trajectory> = d
            .trajectories()
            .iter()
            .filter(|t| t.id != victim)
            .cloned()
            .collect();
        let fresh = Repose::build(&Dataset::from_trajectories(live), cfg);
        let expect: Vec<u64> = fresh.query(&q, 8).hits.iter().map(|h| h.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rebuild_partitions_rejects_bad_index() {
        let d = dataset();
        let cfg = ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(4)
            .with_delta(0.7);
        Repose::build(&d, cfg).rebuild_partitions(vec![(9, TrajStore::new())]);
    }

    #[test]
    fn query_on_empty_dataset() {
        let d = Dataset::new();
        let cfg = ReposeConfig::new(Measure::Hausdorff).with_partitions(4);
        let r = Repose::build(&d, cfg);
        let out = r.query(&[Point::new(0.0, 0.0)], 3);
        assert!(out.hits.is_empty());
    }

    #[test]
    fn k_exceeding_dataset() {
        let d = dataset();
        let cfg = ReposeConfig::new(Measure::Hausdorff)
            .with_partitions(4)
            .with_delta(0.7);
        let r = Repose::build(&d, cfg);
        let q: Vec<Point> = (0..12).map(|s| Point::new(s as f64 * 0.3, 0.1)).collect();
        let out = r.query(&q, 1000);
        assert_eq!(out.hits.len(), d.len());
    }
}
