//! Spatio-temporal top-k search — the extension the paper's Section IX
//! names as future work ("take the temporal dimension into account to
//! enable top-k spatial-temporal trajectory similarity search in
//! distributed settings").
//!
//! Design: each trajectory carries a time span `[start, end]`. A
//! spatio-temporal query adds a [`TimeWindow`]; only trajectories whose
//! span overlaps the window qualify. The spatial RP-Trie machinery is
//! reused unchanged through the filtered search hook
//! (`RpTrie::top_k_where`): temporal selection composes with — and never
//! weakens — the spatial pruning bounds.

use crate::{QueryOutcome, Repose, ReposeConfig};
use repose_cluster::JobStats;
use repose_model::{Dataset, Point, TrajId};
use repose_rptrie::{Hit, SearchStats};
use std::collections::HashMap;

/// A closed time interval (units are the application's choice — epoch
/// seconds in the examples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWindow {
    /// Window start (inclusive).
    pub start: f64,
    /// Window end (inclusive).
    pub end: f64,
}

impl TimeWindow {
    /// Creates a window; `start` must not exceed `end`.
    pub fn new(start: f64, end: f64) -> Self {
        assert!(start <= end, "window start after end");
        TimeWindow { start, end }
    }

    /// Whether `[a, b]` overlaps this window.
    pub fn overlaps(&self, a: f64, b: f64) -> bool {
        a <= self.end && b >= self.start
    }
}

/// A REPOSE deployment whose trajectories carry time spans, answering
/// top-k queries restricted to a [`TimeWindow`].
#[derive(Debug)]
pub struct TemporalRepose {
    inner: Repose,
    spans: HashMap<TrajId, (f64, f64)>,
}

impl TemporalRepose {
    /// Builds over `dataset` with a span per trajectory id.
    ///
    /// # Panics
    /// When a trajectory id has no span, or a span is inverted.
    pub fn build(
        dataset: &Dataset,
        spans: HashMap<TrajId, (f64, f64)>,
        config: ReposeConfig,
    ) -> Self {
        for t in dataset.trajectories() {
            let (a, b) = spans
                .get(&t.id)
                .unwrap_or_else(|| panic!("missing time span for trajectory {}", t.id));
            assert!(a <= b, "inverted time span for trajectory {}", t.id);
        }
        TemporalRepose { inner: Repose::build(dataset, config), spans }
    }

    /// The underlying spatial deployment.
    pub fn spatial(&self) -> &Repose {
        &self.inner
    }

    /// Distributed top-k among trajectories whose span overlaps `window`.
    pub fn query(&self, query: &[Point], window: TimeWindow, k: usize) -> QueryOutcome {
        let spans = &self.spans;
        self.inner.query_where(query, k, &move |id: TrajId| {
            let (a, b) = spans[&id];
            window.overlaps(a, b)
        })
    }
}

impl Repose {
    /// Distributed top-k restricted to trajectory ids accepted by `filter`
    /// (exposed for attribute predicates; `TemporalRepose` builds on it).
    ///
    /// `filter` runs inside the search's per-thread scratch scope:
    /// id/side-table predicates are the intended shape, and a filter that
    /// does invoke a distance kernel still works but pays a temporary
    /// scratch for that call.
    pub fn query_where(
        &self,
        query: &[Point],
        k: usize,
        filter: &(dyn Fn(TrajId) -> bool + Sync),
    ) -> QueryOutcome {
        let (locals, times, wall) = self.run_local(|part| {
            part.trie.top_k_where(&part.store, query, k, filter)
        });
        let job = JobStats::simulate(
            times,
            (0..self.num_partitions()).collect(),
            self.config().cluster.workers,
            self.config().cluster.cores_per_worker,
            wall,
        );
        let mut search = SearchStats::default();
        let mut hits: Vec<Hit> = Vec::new();
        for l in &locals {
            search.merge(&l.stats);
            hits.extend_from_slice(&l.hits);
        }
        hits.sort_by(Hit::cmp_by_dist_then_id);
        hits.truncate(k);
        QueryOutcome { hits, job, search }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_distance::Measure;
    use repose_model::Trajectory;

    fn dataset_with_spans() -> (Dataset, HashMap<TrajId, (f64, f64)>) {
        // 60 trajectories; trajectory i is active in [i, i + 10].
        let mut spans = HashMap::new();
        let mut trajs = Vec::new();
        for i in 0..60u64 {
            let y = (i % 12) as f64;
            trajs.push(Trajectory::new(
                i,
                (0..12).map(|s| Point::new(s as f64 * 0.4, y)).collect(),
            ));
            spans.insert(i, (i as f64, i as f64 + 10.0));
        }
        (Dataset::from_trajectories(trajs), spans)
    }

    fn build(k_parts: usize) -> TemporalRepose {
        let (d, spans) = dataset_with_spans();
        TemporalRepose::build(
            &d,
            spans,
            ReposeConfig::new(Measure::Hausdorff)
                .with_partitions(k_parts)
                .with_delta(0.7),
        )
    }

    #[test]
    fn window_restricts_results() {
        let tr = build(4);
        let q: Vec<Point> = (0..12).map(|s| Point::new(s as f64 * 0.4, 0.1)).collect();
        // Only trajectories 0..=15 overlap [5, 15].
        let out = tr.query(&q, TimeWindow::new(5.0, 15.0), 10);
        assert!(!out.hits.is_empty());
        for h in &out.hits {
            assert!(h.id <= 15, "trajectory {} outside the window", h.id);
        }
        // The unrestricted query must rank trajectory 0 (exact y match)
        // first; windowed away from it, the winner changes.
        let far = tr.query(&q, TimeWindow::new(40.0, 45.0), 3);
        assert!(far.hits.iter().all(|h| h.id >= 30));
    }

    #[test]
    fn windowed_matches_filtered_brute_force() {
        let (d, spans) = dataset_with_spans();
        let tr = build(6);
        let q: Vec<Point> = (0..12).map(|s| Point::new(s as f64 * 0.4, 6.3)).collect();
        let w = TimeWindow::new(20.0, 33.0);
        let got: Vec<u64> = tr.query(&q, w, 8).hits.iter().map(|h| h.id).collect();
        let params = repose_distance::MeasureParams::default();
        let mut expect: Vec<(f64, u64)> = d
            .trajectories()
            .iter()
            .filter(|t| {
                let (a, b) = spans[&t.id];
                w.overlaps(a, b)
            })
            .map(|t| (params.distance(Measure::Hausdorff, &q, &t.points), t.id))
            .collect();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        expect.truncate(8);
        assert_eq!(got, expect.into_iter().map(|e| e.1).collect::<Vec<_>>());
    }

    #[test]
    fn empty_window_yields_nothing() {
        let tr = build(4);
        let q = vec![Point::new(0.0, 0.0)];
        let out = tr.query(&q, TimeWindow::new(1000.0, 2000.0), 5);
        assert!(out.hits.is_empty());
    }

    #[test]
    fn window_overlap_semantics() {
        let w = TimeWindow::new(5.0, 10.0);
        assert!(w.overlaps(0.0, 5.0)); // touching counts
        assert!(w.overlaps(10.0, 20.0));
        assert!(w.overlaps(6.0, 7.0));
        assert!(w.overlaps(0.0, 20.0));
        assert!(!w.overlaps(0.0, 4.9));
        assert!(!w.overlaps(10.1, 12.0));
    }

    #[test]
    #[should_panic(expected = "missing time span")]
    fn missing_span_panics() {
        let (d, mut spans) = dataset_with_spans();
        spans.remove(&3);
        TemporalRepose::build(
            &d,
            spans,
            ReposeConfig::new(Measure::Hausdorff).with_partitions(2).with_delta(0.7),
        );
    }

    #[test]
    #[should_panic(expected = "window start after end")]
    fn inverted_window_panics() {
        TimeWindow::new(5.0, 1.0);
    }
}
