//! Global partitioning strategies (Section V of the paper).
//!
//! The heterogeneous strategy is REPOSE's: cluster similar trajectories
//! (geohash key equality at a granularity coarsened until about `N / NG`
//! clusters remain — the SOM-TC style loop of Section V-B), sort by
//! (cluster id, trajectory id), then deal round-robin so every partition
//! receives a slice of *every* cluster. Homogeneous (DITA/DFT-style
//! similar-together placement) and random are the Table VII baselines.

use repose_model::{Dataset, Mbr, TrajStore, Trajectory};
use repose_zorder::geohash_key;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// The three strategies of Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PartitionStrategy {
    /// REPOSE: similar trajectories spread across partitions.
    Heterogeneous,
    /// Baseline: similar trajectories kept together (DITA/DFT style).
    Homogeneous,
    /// Baseline: uniform random placement.
    Random,
}

impl PartitionStrategy {
    /// Display name matching Table VII.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionStrategy::Heterogeneous => "Heterogeneous",
            PartitionStrategy::Homogeneous => "Homogeneous",
            PartitionStrategy::Random => "Random",
        }
    }
}

/// Splits the trajectories of `store` into `n_partitions` slot lists
/// according to `strategy` — the allocation-light core of partitioning:
/// no points are copied, only slot indices are dealt out. The caller
/// materializes per-partition [`TrajStore`]s with arena-to-arena range
/// copies.
///
/// Returns the partitions in order; the caller assigns partition `p` to
/// worker `p % workers` (Spark-style placement).
pub fn partition_slots(
    store: &TrajStore,
    region: &Mbr,
    strategy: PartitionStrategy,
    n_partitions: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    partition_slots_by(
        store.len(),
        &|slot| store.points(slot),
        &|slot| store.id(slot),
        region,
        strategy,
        n_partitions,
        seed,
    )
}

/// Splits `dataset` into `n_partitions` of owned [`Trajectory`] values —
/// the I/O-edge form of [`partition_slots`], kept for callers that want
/// `Trajectory` partitions. Reads the dataset in place (no transient
/// arena copy).
pub fn partition_dataset(
    dataset: &Dataset,
    region: &Mbr,
    strategy: PartitionStrategy,
    n_partitions: usize,
    seed: u64,
) -> Vec<Vec<Trajectory>> {
    let trajs = dataset.trajectories();
    partition_slots_by(
        trajs.len(),
        &|i| trajs[i].points.as_slice(),
        &|i| trajs[i].id,
        region,
        strategy,
        n_partitions,
        seed,
    )
    .into_iter()
    .map(|slots| slots.into_iter().map(|s| trajs[s].clone()).collect())
    .collect()
}

/// The strategy dispatch over an `(points, id)` accessor pair — one
/// implementation serves the arena ([`partition_slots`]), `Dataset`
/// ([`partition_dataset`]), and framework-build fronts, so the deal-out
/// rules cannot drift between them.
pub(crate) fn partition_slots_by<'a>(
    n: usize,
    points_of: &dyn Fn(usize) -> &'a [repose_model::Point],
    id_of: &dyn Fn(usize) -> repose_model::TrajId,
    region: &Mbr,
    strategy: PartitionStrategy,
    n_partitions: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(n_partitions > 0, "need at least one partition");
    let mut parts: Vec<Vec<usize>> = (0..n_partitions).map(|_| Vec::new()).collect();
    if n == 0 {
        return parts;
    }
    match strategy {
        PartitionStrategy::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            for slot in 0..n {
                parts[rng.random_range(0..n_partitions)].push(slot);
            }
        }
        PartitionStrategy::Heterogeneous => {
            let order = cluster_sorted_order(n, points_of, id_of, region, n_partitions);
            for (i, ti) in order.into_iter().enumerate() {
                parts[i % n_partitions].push(ti);
            }
        }
        PartitionStrategy::Homogeneous => {
            // Same cluster-sorted order, but contiguous chunks: whole
            // clusters land in the same partition.
            let order = cluster_sorted_order(n, points_of, id_of, region, n_partitions);
            let chunk = order.len().div_ceil(n_partitions);
            for (i, ti) in order.into_iter().enumerate() {
                parts[(i / chunk).min(n_partitions - 1)].push(ti);
            }
        }
    }
    parts
}

/// The SOM-TC style clustering loop: find the finest geohash granularity
/// that yields at most ~`N / NG` clusters, then emit trajectory slots
/// sorted by (cluster id, trajectory id).
fn cluster_sorted_order<'a>(
    n: usize,
    points_of: &dyn Fn(usize) -> &'a [repose_model::Point],
    id_of: &dyn Fn(usize) -> repose_model::TrajId,
    region: &Mbr,
    n_partitions: usize,
) -> Vec<usize> {
    let target = (n / n_partitions).max(1);
    let mut chosen: Option<Vec<u64>> = None;
    // Start fine (each trajectory its own cluster) and coarsen.
    for bits in (1..=12u8).rev() {
        let keys: Vec<Vec<u64>> = (0..n)
            .map(|slot| geohash_key(points_of(slot), region, bits))
            .collect();
        let distinct = {
            let mut set: HashMap<&[u64], ()> = HashMap::with_capacity(n);
            for k in &keys {
                set.insert(k.as_slice(), ());
            }
            set.len()
        };
        if distinct <= target || bits == 1 {
            // Assign dense cluster ids in key-sorted order.
            let mut ids: HashMap<&[u64], u64> = HashMap::with_capacity(distinct);
            let mut sorted: Vec<&[u64]> = keys.iter().map(Vec::as_slice).collect();
            sorted.sort_unstable();
            sorted.dedup();
            for (cid, k) in sorted.into_iter().enumerate() {
                ids.insert(k, cid as u64);
            }
            chosen = Some(keys.iter().map(|k| ids[k.as_slice()]).collect());
            break;
        }
    }
    let cluster_of = chosen.expect("loop always terminates at bits == 1");
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (cluster_of[i], id_of(i)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_model::Point;

    /// Ten clusters of ten near-identical trajectories each.
    fn clustered_dataset() -> (Dataset, Mbr) {
        let mut trajs = Vec::new();
        let mut id = 0;
        for c in 0..10 {
            let cx = (c % 5) as f64 * 20.0;
            let cy = (c / 5) as f64 * 40.0;
            for j in 0..10 {
                let jitter = j as f64 * 0.01;
                trajs.push(Trajectory::new(
                    id,
                    (0..10)
                        .map(|s| Point::new(cx + s as f64 * 0.5 + jitter, cy + jitter))
                        .collect(),
                ));
                id += 1;
            }
        }
        let d = Dataset::from_trajectories(trajs);
        let region = d.enclosing_square().unwrap();
        (d, region)
    }

    #[test]
    fn all_strategies_conserve_items() {
        let (d, region) = clustered_dataset();
        for s in [
            PartitionStrategy::Heterogeneous,
            PartitionStrategy::Homogeneous,
            PartitionStrategy::Random,
        ] {
            let parts = partition_dataset(&d, &region, s, 4, 1);
            assert_eq!(parts.len(), 4);
            let total: usize = parts.iter().map(Vec::len).sum();
            assert_eq!(total, d.len(), "{s:?}");
            let mut ids: Vec<u64> = parts.iter().flatten().map(|t| t.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..d.len() as u64).collect::<Vec<_>>(), "{s:?}");
        }
    }

    #[test]
    fn heterogeneous_spreads_clusters() {
        let (d, region) = clustered_dataset();
        let parts = partition_dataset(&d, &region, PartitionStrategy::Heterogeneous, 5, 1);
        // Every partition should hold trajectories from most clusters
        // (cluster = id / 10 in this construction).
        for (pi, p) in parts.iter().enumerate() {
            let clusters: std::collections::HashSet<u64> =
                p.iter().map(|t| t.id / 10).collect();
            assert!(
                clusters.len() >= 8,
                "partition {pi} covers only {} clusters",
                clusters.len()
            );
        }
        // Balanced sizes (round-robin guarantees ±1).
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn homogeneous_keeps_clusters_together() {
        let (d, region) = clustered_dataset();
        let parts = partition_dataset(&d, &region, PartitionStrategy::Homogeneous, 5, 1);
        // Most partitions should see few distinct clusters.
        let avg_clusters: f64 = parts
            .iter()
            .map(|p| {
                p.iter()
                    .map(|t| t.id / 10)
                    .collect::<std::collections::HashSet<_>>()
                    .len() as f64
            })
            .sum::<f64>()
            / parts.len() as f64;
        assert!(
            avg_clusters <= 4.0,
            "homogeneous partitions too mixed: {avg_clusters}"
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let (d, region) = clustered_dataset();
        let a = partition_dataset(&d, &region, PartitionStrategy::Random, 4, 5);
        let b = partition_dataset(&d, &region, PartitionStrategy::Random, 4, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.iter().map(|t| t.id).collect::<Vec<_>>(),
                y.iter().map(|t| t.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_dataset_yields_empty_partitions() {
        let d = Dataset::new();
        let region = Mbr::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let parts = partition_dataset(&d, &region, PartitionStrategy::Heterogeneous, 3, 1);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(Vec::is_empty));
    }

    #[test]
    fn single_partition_gets_everything() {
        let (d, region) = clustered_dataset();
        let parts = partition_dataset(&d, &region, PartitionStrategy::Heterogeneous, 1, 1);
        assert_eq!(parts[0].len(), d.len());
    }
}
