//! REPOSE: distributed top-k trajectory similarity search with local
//! reference point tries — the paper's end-to-end framework (Section V).
//!
//! ```
//! use repose::{Repose, ReposeConfig, PartitionStrategy};
//! use repose_distance::Measure;
//! use repose_model::{Dataset, Point, Trajectory};
//!
//! // A toy dataset: straight trips at different offsets.
//! let trajs: Vec<Trajectory> = (0..100)
//!     .map(|i| {
//!         let y = (i % 10) as f64;
//!         Trajectory::new(i, (0..12).map(|j| Point::new(j as f64, y)).collect())
//!     })
//!     .collect();
//! let dataset = Dataset::from_trajectories(trajs);
//!
//! let config = ReposeConfig::new(Measure::Hausdorff)
//!     .with_partitions(4)
//!     .with_delta(0.5);
//! let repose = Repose::build(&dataset, config);
//!
//! let query: Vec<Point> = (0..12).map(|j| Point::new(j as f64, 0.2)).collect();
//! let outcome = repose.query(&query, 3);
//! assert_eq!(outcome.hits.len(), 3);
//! assert_eq!(outcome.hits[0].id, 0); // the y = 0 trip is closest
//! ```

#![warn(missing_docs)]

mod config;
mod framework;
mod partition;
pub mod temporal;

pub use config::ReposeConfig;
pub use framework::{PartitionView, QueryOutcome, Repose};
pub use partition::{partition_dataset, partition_slots, PartitionStrategy};
pub use repose_rptrie::Hit;
pub use temporal::{TemporalRepose, TimeWindow};
