use crate::PartitionStrategy;
use repose_cluster::ClusterConfig;
use repose_distance::{Measure, MeasureParams};
use repose_rptrie::RpTrieConfig;

/// Configuration of a REPOSE deployment.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReposeConfig {
    /// Simulated cluster topology (paper: 16 workers × 4 cores).
    pub cluster: ClusterConfig,
    /// Number of data partitions (paper default: 64, one per core).
    pub num_partitions: usize,
    /// Global partitioning strategy (paper: heterogeneous).
    pub strategy: PartitionStrategy,
    /// Grid cell side `δ` (per-dataset tuning in Section VII-A).
    pub delta: f64,
    /// Local RP-Trie configuration (measure, `Np`, optimization, ...).
    pub trie: RpTrieConfig,
    /// Seed for partitioning and pivot sampling.
    pub seed: u64,
}

impl ReposeConfig {
    /// The paper's defaults for a measure: 16×4 cluster, 64 partitions,
    /// heterogeneous partitioning, `Np = 5`.
    pub fn new(measure: Measure) -> Self {
        ReposeConfig {
            cluster: ClusterConfig::paper_default(),
            num_partitions: ClusterConfig::paper_default().total_cores(),
            strategy: PartitionStrategy::Heterogeneous,
            delta: 0.05,
            trie: RpTrieConfig::for_measure(measure),
            seed: 0xC0FFEE,
        }
    }

    /// Overrides the cluster topology (keeps `num_partitions`).
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Overrides the number of partitions.
    pub fn with_partitions(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one partition");
        self.num_partitions = n;
        self
    }

    /// Overrides the partitioning strategy.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the grid cell side.
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        self.delta = delta;
        self
    }

    /// Overrides the measure parameters (LCSS/EDR `ε`, ERP gap).
    pub fn with_params(mut self, params: MeasureParams) -> Self {
        self.trie = self.trie.with_params(params);
        self
    }

    /// Overrides the trie configuration wholesale.
    pub fn with_trie(mut self, trie: RpTrieConfig) -> Self {
        self.trie = trie;
        self
    }

    /// Overrides the number of pivots.
    pub fn with_np(mut self, np: usize) -> Self {
        self.trie = self.trie.with_np(np);
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured measure.
    pub fn measure(&self) -> Measure {
        self.trie.measure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ReposeConfig::new(Measure::Hausdorff);
        assert_eq!(c.cluster.workers, 16);
        assert_eq!(c.num_partitions, 64);
        assert_eq!(c.strategy, PartitionStrategy::Heterogeneous);
        assert_eq!(c.trie.np, 5);
        assert_eq!(c.measure(), Measure::Hausdorff);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        ReposeConfig::new(Measure::Dtw).with_partitions(0);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn non_positive_delta_rejected() {
        ReposeConfig::new(Measure::Dtw).with_delta(0.0);
    }
}
