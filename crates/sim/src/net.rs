//! The simulated network: a [`Transport`] whose message motion and fault
//! schedule are a pure function of the calls made into it — no threads,
//! no wall clock.
//!
//! # How it replaces [`repose_shard::Loopback`]
//!
//! The production loopback gives every node a channel and a thread;
//! concurrency comes from the OS scheduler, and a `Delay` fault spawns a
//! real timer thread. Here the whole cluster runs on **one** thread: the
//! coordinator executes on the simulation's main thread, and every worker
//! is registered as a *pump* ([`SimNode`]) that the network drives
//! inline. A send delivers eagerly — the receiving pump runs its
//! handler before the send returns — so causality is a deterministic
//! depth-first traversal of the message graph, bounded by
//! [`MAX_PUMP_DEPTH`] (messages past the bound stay queued and drain on
//! the next tick).
//!
//! Time is a shared [`SimClock`]. A blocking [`Transport::recv_timeout`]
//! *advances virtual time*: it steps the clock toward its deadline one
//! quantum at a time, firing due delayed messages and running every
//! pump's [`SimNode::on_tick`] (heartbeats, promotions) at each step.
//! `Delay` faults park envelopes in a binary heap ordered by
//! `(due, insertion sequence)` — the tie-break makes simultaneous
//! deliveries replay in one canonical order.
//!
//! Faults come from the same [`NetFaultPlan`] grammar as the loopback,
//! and site resolution mirrors [`Loopback`]'s order exactly
//! (`from.tx`, `to.rx`, `from`, `to`): a fault spec means the same thing
//! under simulation as in the threaded fault-matrix tests.
//!
//! [`Loopback`]: repose_shard::Loopback

use repose_cluster::{Clock, SimClock};
use repose_shard::{Message, NetFault, NetFaultPlan, NodeId, Transport};
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Deepest chain of nested eager deliveries (A's handler sends to B whose
/// handler sends to C, ...) before further deliveries are parked in the
/// inbox for the next tick. A backstop against handler ping-pong
/// recursing the stack away; real schedules sit far below it.
const MAX_PUMP_DEPTH: usize = 16;

/// A simulated node the network drives inline: `on_message` handles one
/// decoded frame (returning `false` to stop — a `Shutdown`), `on_tick`
/// runs the node's timer edge after virtual time moves.
pub trait SimNode: Send {
    /// Handle one frame; `false` stops the node for good.
    fn on_message(&mut self, from: NodeId, msg: Message) -> bool;
    /// Timer edge, called after every virtual-time step.
    fn on_tick(&mut self);
}

#[derive(Clone)]
struct Envelope {
    from: NodeId,
    bytes: Vec<u8>,
}

/// A `Delay`-faulted envelope parked until its due time.
struct Delayed {
    due: Duration,
    /// Insertion sequence: ties on `due` deliver in send order.
    seq: u64,
    to: NodeId,
    env: Envelope,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    /// Inverted on `(due, seq)` so the std max-heap pops the *earliest*.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// Message-motion counters, mirroring [`repose_shard::NetStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimNetStats {
    /// Frames handed to [`Transport::send`].
    pub sent: u64,
    /// Frames that reached an inbox.
    pub delivered: u64,
    /// Frames lost (faults, severed or crashed endpoints).
    pub dropped: u64,
    /// Extra copies delivered by `dup` faults.
    pub duplicated: u64,
    /// Frames parked by `delay` faults.
    pub delayed: u64,
    /// Frames held back by `reorder` faults.
    pub reordered: u64,
}

struct NetState {
    inboxes: Vec<VecDeque<Envelope>>,
    delayed: BinaryHeap<Delayed>,
    /// One held-back message per link (reorder fault), delivered after
    /// the link's next message.
    reorder_pending: HashMap<(NodeId, NodeId), Envelope>,
    severed: HashSet<NodeId>,
    crashed: HashSet<NodeId>,
    delay_seq: u64,
    stats: SimNetStats,
}

struct Inner {
    labels: Vec<String>,
    faults: NetFaultPlan,
    clock: Arc<SimClock>,
    /// Largest virtual-time step a blocking receive takes at once.
    quantum: Duration,
    state: Mutex<NetState>,
    /// One slot per node. `None` while the node's handler is on the stack
    /// (natural re-entrancy guard: a delivery to a busy node parks in its
    /// inbox), and permanently `None` for pumpless nodes (the
    /// coordinator, which receives via [`Transport::recv_timeout`]).
    pumps: Vec<Mutex<Option<Box<dyn SimNode>>>>,
    /// Current eager-delivery nesting depth (single-threaded stack depth).
    depth: AtomicUsize,
    shutdown: AtomicBool,
}

/// The deterministic simulated network (see module docs). Cloning shares
/// the network.
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<Inner>,
}

impl SimNet {
    /// A network of `labels.len()` nodes on `clock`, with `faults` applied
    /// at the link layer. `labels[n]` names node `n` for fault sites,
    /// conventionally `coord`, `shard0`…, `replica0`….
    pub fn new(
        labels: Vec<String>,
        faults: NetFaultPlan,
        clock: Arc<SimClock>,
        quantum: Duration,
    ) -> Self {
        assert!(quantum > Duration::ZERO, "a zero quantum cannot advance time");
        let n = labels.len();
        SimNet {
            inner: Arc::new(Inner {
                labels,
                faults,
                clock,
                quantum,
                state: Mutex::new(NetState {
                    inboxes: (0..n).map(|_| VecDeque::new()).collect(),
                    delayed: BinaryHeap::new(),
                    reorder_pending: HashMap::new(),
                    severed: HashSet::new(),
                    crashed: HashSet::new(),
                    delay_seq: 0,
                    stats: SimNetStats::default(),
                }),
                pumps: (0..n).map(|_| Mutex::new(None)).collect(),
                depth: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Installs `node`'s message pump. Nodes without one (the
    /// coordinator) receive via [`Transport::recv_timeout`] instead.
    pub fn register_pump(&self, node: NodeId, pump: Box<dyn SimNode>) {
        let mut slot = self.lock_pump(node);
        assert!(slot.is_none(), "node {node} already has a pump");
        *slot = Some(pump);
    }

    /// The fault-site label of `node`.
    pub fn label(&self, node: NodeId) -> &str {
        &self.inner.labels[node as usize]
    }

    /// Snapshot of the message-motion counters.
    pub fn stats(&self) -> SimNetStats {
        self.lock_state().stats
    }

    /// The network's virtual clock.
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.inner.clock
    }

    /// Runs everything that became due: fires delayed deliveries whose
    /// time has come and gives every pump a timer edge plus a drain of
    /// its parked inbox. Drivers call this after advancing the clock
    /// outside a blocking receive (e.g. an `AdvanceTime` op).
    pub fn kick(&self) {
        self.fire_due();
        self.run_ticks();
    }

    fn lock_state(&self) -> MutexGuard<'_, NetState> {
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_pump(&self, node: NodeId) -> MutexGuard<'_, Option<Box<dyn SimNode>>> {
        self.inner.pumps[node as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// The first fault armed on any site this (from, to) exchange touches
    /// — same resolution order as [`repose_shard::Loopback`].
    fn fault_for(&self, from: NodeId, to: NodeId) -> Option<(NetFault, NodeId)> {
        let faults = &self.inner.faults;
        let from_label = self.label(from);
        let to_label = self.label(to);
        if let Some(f) = faults.hit(&format!("{from_label}.tx")) {
            return Some((f, from));
        }
        if let Some(f) = faults.hit(&format!("{to_label}.rx")) {
            return Some((f, to));
        }
        if let Some(f) = faults.hit(from_label) {
            return Some((f, from));
        }
        if let Some(f) = faults.hit(to_label) {
            return Some((f, to));
        }
        None
    }

    /// Parks `env` in `to`'s inbox unless an endpoint is dead or cut off.
    /// Returns whether it was enqueued.
    fn enqueue(&self, to: NodeId, env: Envelope) -> bool {
        let mut st = self.lock_state();
        if st.severed.contains(&to) || st.severed.contains(&env.from) || st.crashed.contains(&to)
        {
            st.stats.dropped += 1;
            return false;
        }
        st.inboxes[to as usize].push_back(env);
        st.stats.delivered += 1;
        true
    }

    /// Delivers `env` to `to` and runs `to`'s pump (if it has one and the
    /// delivery chain is not already too deep).
    fn deliver(&self, to: NodeId, env: Envelope) {
        if self.enqueue(to, env) {
            self.pump(to);
        }
    }

    /// Delivers `env`, then flushes any reorder-held message on the link.
    fn deliver_and_flush(&self, from: NodeId, to: NodeId, env: Envelope) {
        self.deliver(to, env);
        let held = self.lock_state().reorder_pending.remove(&(from, to));
        if let Some(h) = held {
            self.deliver(to, h);
        }
    }

    /// Drains `node`'s inbox through its pump, one frame per loop so
    /// frames a handler sends to *itself* are seen, re-entrantly safe
    /// (the slot holds `None` while the handler runs, so a nested
    /// delivery to the same node parks instead of recursing).
    fn pump(&self, node: NodeId) {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if self.inner.depth.load(Ordering::Relaxed) >= MAX_PUMP_DEPTH {
            return;
        }
        self.inner.depth.fetch_add(1, Ordering::Relaxed);
        loop {
            let taken = self.lock_pump(node).take();
            let Some(mut pump) = taken else { break };
            let popped = {
                let mut st = self.lock_state();
                if st.crashed.contains(&node) {
                    None
                } else {
                    st.inboxes[node as usize].pop_front()
                }
            };
            let Some(env) = popped else {
                *self.lock_pump(node) = Some(pump);
                break;
            };
            let keep = match decode(env) {
                Some((from, msg)) => pump.on_message(from, msg),
                None => true,
            };
            *self.lock_pump(node) = Some(pump);
            if !keep {
                // The node asked to stop (Shutdown): no more deliveries.
                self.lock_state().crashed.insert(node);
                break;
            }
        }
        self.inner.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Fires every delayed delivery whose due time has passed, in
    /// `(due, seq)` order.
    fn fire_due(&self) {
        loop {
            let next = {
                let mut st = self.lock_state();
                let now = self.inner.clock.now();
                match st.delayed.peek() {
                    Some(d) if d.due <= now => st.delayed.pop().map(|d| (d.to, d.env)),
                    _ => None,
                }
            };
            let Some((to, env)) = next else { break };
            self.deliver(to, env);
        }
    }

    /// The due time of the earliest parked delivery, if any.
    fn next_due(&self) -> Option<Duration> {
        self.lock_state().delayed.peek().map(|d| d.due)
    }

    /// Gives every pump a timer edge (in node order — canonical) and a
    /// chance to drain frames parked while it was busy.
    fn run_ticks(&self) {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        for node in 0..self.inner.labels.len() as NodeId {
            if self.is_crashed(node) {
                continue;
            }
            // A `None` slot is the coordinator, a stopped node, or a pump
            // already running lower on this same stack — skip, never wait.
            let taken = self.lock_pump(node).take();
            if let Some(mut pump) = taken {
                pump.on_tick();
                *self.lock_pump(node) = Some(pump);
                self.pump(node);
            }
        }
    }

    fn pop(&self, node: NodeId) -> Option<Envelope> {
        let mut st = self.lock_state();
        if st.crashed.contains(&node) {
            None
        } else {
            st.inboxes[node as usize].pop_front()
        }
    }
}

fn decode(env: Envelope) -> Option<(NodeId, Message)> {
    let mut cur = env.bytes.as_slice();
    match Message::decode_frame(&mut cur) {
        Ok(Some(msg)) => Some((env.from, msg)),
        // In-process frames are never torn; drop anything undecodable.
        Ok(None) | Err(_) => None,
    }
}

/// Whether `REPOSE_SIM_TRACE` is set: dumps every send and receive-step
/// to stderr. For debugging stuck or mis-ordered schedules only.
fn tracing() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("REPOSE_SIM_TRACE").is_some())
}

impl Transport for SimNet {
    fn send(&self, from: NodeId, to: NodeId, msg: &Message) {
        if tracing() {
            eprintln!(
                "sim[{:?}] send {}->{} {:?}",
                self.inner.clock.now(),
                self.label(from),
                self.label(to),
                std::mem::discriminant(msg)
            );
        }
        {
            let mut st = self.lock_state();
            st.stats.sent += 1;
            if st.crashed.contains(&from) || st.severed.contains(&from) {
                st.stats.dropped += 1;
                return;
            }
        }
        let env = Envelope { from, bytes: msg.encode_frame() };
        match self.fault_for(from, to) {
            None => self.deliver_and_flush(from, to, env),
            Some((NetFault::Drop, _)) => {
                self.lock_state().stats.dropped += 1;
            }
            Some((NetFault::Duplicate, _)) => {
                self.lock_state().stats.duplicated += 1;
                self.deliver(to, env.clone());
                self.deliver_and_flush(from, to, env);
            }
            Some((NetFault::Delay(d), _)) => {
                let mut st = self.lock_state();
                st.stats.delayed += 1;
                let seq = st.delay_seq;
                st.delay_seq += 1;
                let due = self.inner.clock.now() + d;
                st.delayed.push(Delayed { due, seq, to, env });
                // Fires from fire_due once virtual time reaches `due`.
            }
            Some((NetFault::Reorder, _)) => {
                let prev = {
                    let mut st = self.lock_state();
                    st.stats.reordered += 1;
                    st.reorder_pending.insert((from, to), env)
                };
                // Two reorder faults on one link: the first held message
                // gives way, not disappears.
                if let Some(p) = prev {
                    self.deliver(to, p);
                }
            }
            Some((NetFault::Partition, node)) => {
                let mut st = self.lock_state();
                st.severed.insert(node);
                st.stats.dropped += 1;
            }
            Some((NetFault::Crash, node)) => {
                let mut st = self.lock_state();
                st.crashed.insert(node);
                st.stats.dropped += 1;
            }
        }
    }

    /// Blocks *virtually*: steps the clock toward the deadline (capped by
    /// the quantum and the next delayed delivery), firing due messages
    /// and running timer edges at each step, until a frame arrives for
    /// `node` or the timeout elapses.
    fn recv_timeout(&self, node: NodeId, timeout: Duration) -> Option<(NodeId, Message)> {
        let clock = &self.inner.clock;
        let deadline = clock.now() + timeout;
        loop {
            self.fire_due();
            if let Some(got) = self.pop(node).and_then(decode) {
                return Some(got);
            }
            if self.is_shutdown() {
                return None;
            }
            // A crashed receiver gets no early return: a real blocking
            // receive on a dead node burns the whole timeout, and callers
            // (e.g. a replication wait) rely on `None` meaning "the
            // deadline passed". The loop below advances virtual time to
            // the deadline — with every *other* node still ticking — and
            // `pop` above stays empty for the dead node.
            let now = clock.now();
            if now >= deadline {
                return None;
            }
            let mut step = (now + self.inner.quantum).min(deadline);
            if let Some(due) = self.next_due() {
                if due > now {
                    step = step.min(due);
                }
            }
            // Guarantee progress even against a pathological quantum.
            clock.advance_to(step.max(now + Duration::from_nanos(1)));
            self.run_ticks();
        }
    }

    fn try_recv(&self, node: NodeId) -> Option<(NodeId, Message)> {
        self.pop(node).and_then(decode)
    }

    fn is_crashed(&self, node: NodeId) -> bool {
        self.lock_state().crashed.contains(&node)
    }

    fn is_shutdown(&self) -> bool {
        self.inner.shutdown.load(Ordering::Acquire)
    }

    fn shutdown_all(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("nodes", &self.inner.labels)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every frame back to node 0.
    struct Echo {
        net: SimNet,
        node: NodeId,
        ticks: u64,
    }

    impl SimNode for Echo {
        fn on_message(&mut self, from: NodeId, msg: Message) -> bool {
            if matches!(msg, Message::Shutdown) {
                return false;
            }
            self.net.send(self.node, from, &msg);
            true
        }
        fn on_tick(&mut self) {
            self.ticks += 1;
        }
    }

    fn two_nodes(faults: NetFaultPlan) -> (SimNet, Arc<SimClock>) {
        let clock = Arc::new(SimClock::new());
        let net = SimNet::new(
            vec!["coord".into(), "shard0".into()],
            faults,
            Arc::clone(&clock),
            Duration::from_millis(1),
        );
        let echo = Echo { net: net.clone(), node: 1, ticks: 0 };
        net.register_pump(1, Box::new(echo));
        (net, clock)
    }

    #[test]
    fn eager_delivery_echoes_within_the_send() {
        let (net, _clock) = two_nodes(NetFaultPlan::new());
        net.send(0, 1, &Message::Heartbeat { seq: 7 });
        // The echo already happened: no time passed, the reply is queued.
        let (from, msg) = net.try_recv(0).expect("echo delivered eagerly");
        assert_eq!(from, 1);
        assert!(matches!(msg, Message::Heartbeat { seq: 7 }));
    }

    #[test]
    fn delay_fault_parks_until_virtual_time_reaches_it() {
        let plan = NetFaultPlan::new();
        plan.arm("shard0.rx", NetFault::Delay(Duration::from_millis(5)), 0);
        let (net, clock) = two_nodes(plan);
        net.send(0, 1, &Message::Heartbeat { seq: 1 });
        assert!(net.try_recv(0).is_none(), "parked, not delivered");
        let got = net.recv_timeout(0, Duration::from_millis(50));
        assert!(got.is_some(), "fired once the clock reached the due time");
        assert!(clock.now() >= Duration::from_millis(5));
        assert!(clock.now() < Duration::from_millis(10), "no overshoot past the echo");
    }

    #[test]
    fn recv_timeout_advances_exactly_to_the_deadline_when_idle() {
        let (net, clock) = two_nodes(NetFaultPlan::new());
        assert!(net.recv_timeout(0, Duration::from_millis(12)).is_none());
        assert_eq!(clock.now(), Duration::from_millis(12));
    }

    #[test]
    fn crash_fault_silences_the_node() {
        let plan = NetFaultPlan::new();
        plan.arm("shard0", NetFault::Crash, 0);
        let (net, _clock) = two_nodes(plan);
        net.send(0, 1, &Message::Heartbeat { seq: 1 }); // fires the crash
        assert!(net.is_crashed(1));
        net.send(0, 1, &Message::Heartbeat { seq: 2 });
        assert!(net.recv_timeout(0, Duration::from_millis(5)).is_none());
    }

    #[test]
    fn identical_call_sequences_produce_identical_stats() {
        let run = || {
            let plan = NetFaultPlan::new();
            plan.arm("shard0.rx", NetFault::Duplicate, 1);
            let (net, _clock) = two_nodes(plan);
            for seq in 0..5 {
                net.send(0, 1, &Message::Heartbeat { seq });
            }
            let mut echoes = 0;
            while net.try_recv(0).is_some() {
                echoes += 1;
            }
            (net.stats(), echoes)
        };
        assert_eq!(run(), run());
    }
}
