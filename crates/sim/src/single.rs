//! The single-node driver: one durable [`ReposeService`] (WAL with
//! `fsync`-always, persistent archives) driven through a [`Scenario`]'s
//! op stream, with `wal.*` / `arc.*` fail points armed mid-run and every
//! failure answered the way an operator would — crash the process and
//! recover from disk.
//!
//! # Write-failure certainty
//!
//! Durability fail points are exactly-once and `fsync` is `Always`, so a
//! *failed* write here is not ambiguous the way a sharded one is: the
//! driver crash-restarts and retries the same idempotent write until it
//! acknowledges, and only then tells the oracle. Acknowledged state is
//! therefore always **certain** in this mode, which arms the oracle's
//! strictest check: every non-degraded answer must match the brute-force
//! top-k bitwise.

use crate::oracle::ShadowOracle;
use crate::scenario::{Scenario, SimOp};
use crate::{PlantedBug, SimReport, Verdict};
use repose::{Repose, ReposeConfig};
use repose_cluster::{Clock, SimClock};
use repose_distance::MeasureParams;
use repose_durability::{DurabilityConfig, FailAction, FailPlan, FsyncPolicy};
use repose_model::{Dataset, Trajectory};
use repose_service::{ReposeService, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

/// Crash-restart cycles one op may trigger before the driver declares
/// the write (or the recovery) wedged. Fail points are exactly-once, so
/// any honest run converges well below this.
const MAX_RESTARTS_PER_OP: u32 = 8;

/// Replaces the dead service with one recovered from disk. Retries the
/// recovery itself (a pending fail point can kill a recovery attempt,
/// and arms are exactly-once, so retrying makes progress).
fn restart(
    svc: &mut Option<ReposeService>,
    rcfg: &ReposeConfig,
    mk_cfg: &dyn Fn() -> ServiceConfig,
    events: &mut Vec<String>,
    i: usize,
) -> Result<(), String> {
    drop(svc.take());
    for _ in 0..MAX_RESTARTS_PER_OP {
        match ReposeService::recover(*rcfg, mk_cfg()) {
            Ok((s, rep)) => {
                events.push(format!(
                    "[{i}] recovered replayed={} from_archive={} torn={}",
                    rep.replayed_records, rep.from_archive, rep.torn_bytes
                ));
                *svc = Some(s);
                return Ok(());
            }
            Err(_) => events.push(format!("[{i}] recovery attempt failed; retrying")),
        }
    }
    Err("recovery did not succeed within the restart budget".into())
}

pub(crate) fn run_single(sc: &Scenario, planted: Option<PlantedBug>) -> SimReport {
    let dir = crate::fresh_dir("single");
    let clock = Arc::new(SimClock::new());
    let plan = FailPlan::new();
    let params = MeasureParams::with_eps(0.5);
    let rcfg = ReposeConfig::new(sc.measure)
        .with_partitions(2)
        .with_delta(0.7)
        .with_params(params)
        .with_seed(sc.seed);
    let mk_cfg = {
        let dir = dir.clone();
        let plan = plan.clone();
        let clock = Arc::clone(&clock);
        move || ServiceConfig {
            cache_capacity: 32,
            pool_threads: 1,
            backend: None,
            query_deadline: None,
            max_inflight_queries: 0,
            durability: Some(
                DurabilityConfig::new(dir.join("wal"))
                    .with_fsync(FsyncPolicy::Always)
                    .with_failpoints(plan.clone()),
            ),
            archive: Some(dir.join("arc")),
            clock: Arc::clone(&clock) as Arc<dyn Clock>,
        }
    };

    let mut events: Vec<String> = Vec::new();
    let mut verdict = Verdict::Ok;
    let fail = |op: usize, reason: String| Verdict::Failed { op, reason };

    let trajs: Vec<Trajectory> = sc
        .initial
        .iter()
        .map(|(id, pts)| Trajectory::new(*id, pts.clone()))
        .collect();
    let repose = Repose::build(&Dataset::from_trajectories(trajs), rcfg);
    let mut svc = match ReposeService::try_with_config(repose, mk_cfg()) {
        Ok(s) => Some(s),
        Err(_) => {
            let _ = std::fs::remove_dir_all(&dir);
            return SimReport {
                seed: sc.seed,
                events,
                verdict: fail(0, "service construction failed with no faults armed".into()),
            };
        }
    };
    let mut oracle = ShadowOracle::new(sc.measure, params, &sc.initial);

    'ops: for (i, op) in sc.ops.iter().enumerate() {
        match op {
            SimOp::ArmFault { site, action, after } => {
                let parsed = match action.as_str() {
                    "io" => Some(FailAction::IoError),
                    "short" => Some(FailAction::ShortWrite),
                    "crash" => Some(FailAction::Crash),
                    _ => None,
                };
                match parsed {
                    Some(a) if repose_durability::POINTS.contains(&site.as_str()) => {
                        plan.arm(site, a, *after);
                        events.push(format!("[{i}] arm {site}={action}:{after}"));
                    }
                    _ => events.push(format!(
                        "[{i}] skip fault {site}={action} (not a single-node site)"
                    )),
                }
            }
            SimOp::Upsert { id, points } => {
                let mut restarts = 0;
                loop {
                    let s = svc.as_ref().expect("service is live between ops");
                    match s.insert_acked(Trajectory::new(*id, points.clone())) {
                        Ok(seq) => {
                            oracle.committed_upsert(*id, points);
                            events.push(format!("[{i}] upsert id={id} seq={seq}"));
                            break;
                        }
                        Err(_) => {
                            events.push(format!("[{i}] upsert id={id} refused; crash-restart"));
                            restarts += 1;
                            if restarts > MAX_RESTARTS_PER_OP {
                                verdict = fail(i, "upsert wedged past the restart budget".into());
                                break 'ops;
                            }
                            if let Err(e) = restart(&mut svc, &rcfg, &mk_cfg, &mut events, i) {
                                verdict = fail(i, e);
                                break 'ops;
                            }
                        }
                    }
                }
            }
            SimOp::Delete { id } => {
                let mut restarts = 0;
                loop {
                    let s = svc.as_ref().expect("service is live between ops");
                    match s.remove_acked(*id) {
                        Ok(seq) => {
                            oracle.committed_delete(*id);
                            events.push(format!("[{i}] delete id={id} seq={seq}"));
                            break;
                        }
                        Err(_) => {
                            events.push(format!("[{i}] delete id={id} refused; crash-restart"));
                            restarts += 1;
                            if restarts > MAX_RESTARTS_PER_OP {
                                verdict = fail(i, "delete wedged past the restart budget".into());
                                break 'ops;
                            }
                            if let Err(e) = restart(&mut svc, &rcfg, &mk_cfg, &mut events, i) {
                                verdict = fail(i, e);
                                break 'ops;
                            }
                        }
                    }
                }
            }
            SimOp::Query { k, points } => {
                let s = svc.as_ref().expect("service is live between ops");
                match s.query(points, *k) {
                    Err(e) => {
                        verdict = fail(i, format!("query errored: {e:?}"));
                        break 'ops;
                    }
                    Ok(out) => {
                        let mut hits = out.hits;
                        if matches!(planted, Some(PlantedBug::TruncateTopK)) {
                            hits.pop();
                        }
                        let rendered: Vec<String> = hits
                            .iter()
                            .map(|h| format!("{}:{:016x}", h.id, h.dist.to_bits()))
                            .collect();
                        events.push(format!(
                            "[{i}] query k={k} degraded={} cache={} hits=[{}]",
                            out.degraded,
                            out.cache_hit,
                            rendered.join(",")
                        ));
                        if let Err(reason) = oracle.verify(points, *k, &hits, out.degraded) {
                            verdict = fail(i, reason);
                            break 'ops;
                        }
                    }
                }
            }
            SimOp::Compact => {
                let s = svc.as_ref().expect("service is live between ops");
                match s.compact() {
                    Ok(rebuilt) => events.push(format!("[{i}] compact rebuilt={rebuilt}")),
                    Err(_) => {
                        // A failed checkpoint can leave the WAL dead;
                        // recover exactly like an operator would.
                        events.push(format!("[{i}] compact failed; crash-restart"));
                        if let Err(e) = restart(&mut svc, &rcfg, &mk_cfg, &mut events, i) {
                            verdict = fail(i, e);
                            break 'ops;
                        }
                    }
                }
            }
            SimOp::Restart => {
                events.push(format!("[{i}] crash-restart"));
                if let Err(e) = restart(&mut svc, &rcfg, &mk_cfg, &mut events, i) {
                    verdict = fail(i, e);
                    break 'ops;
                }
            }
            SimOp::AdvanceTime { micros } => {
                clock.advance(Duration::from_micros(*micros));
                events.push(format!("[{i}] advance {micros}us"));
            }
        }
    }

    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    SimReport { seed: sc.seed, events, verdict }
}
