//! The shadow oracle: a brute-force model of *acknowledged* state that
//! every simulated query answer is checked against.
//!
//! The oracle tracks, per trajectory id, what the system has promised:
//!
//! * **Certain** — the write was acknowledged (or the delete confirmed),
//!   so the id's state is exactly known.
//! * **Uncertain** — a write failed *ambiguously* (e.g. a sharded write
//!   that timed out after the leader may have logged it: at-least-once
//!   semantics). The oracle keeps every admissible state the id could be
//!   in; the system is allowed to answer from any one of them, but from
//!   nothing else.
//!
//! Verification is **exact-or-honestly-degraded**: a non-degraded answer
//! must be bitwise right — when no id is uncertain, the returned distance
//! multiset must equal the brute-force top-k's, computed with the same
//! [`MeasureParams::distance`] kernels the index uses, for all six
//! measures. With uncertainty in play the rules relax only as far as the
//! uncertainty forces:
//!
//! 1. every returned hit's distance must bitwise match some admissible
//!    state of its id (no invented answers, ever — this one holds even
//!    for degraded answers);
//! 2. every *certainly present* id closer than the returned k-th must be
//!    in the answer (no silent omissions);
//! 3. the answer must not be short while certain matches remain.
//!
//! A `degraded` answer (the system *said* it failed shards or ran out of
//! deadline) is checked against rule 1 plus well-formedness only: honest
//! degradation is a contract, not a bug.

use repose_distance::{Measure, MeasureParams};
use repose_model::Point;
use repose_rptrie::Hit;
use std::collections::{BTreeMap, HashSet};

/// What the oracle knows about one trajectory id.
#[derive(Debug, Clone)]
enum IdState {
    /// Acknowledged present with exactly these points.
    Present(Vec<Point>),
    /// Acknowledged absent (deleted, or never written).
    Absent,
    /// Ambiguous: any one of these states is admissible (`None` =
    /// absent). Accumulates across consecutive failed writes.
    Uncertain(Vec<Option<Vec<Point>>>),
}

/// The acknowledged-state model and answer checker (see module docs).
#[derive(Debug)]
pub struct ShadowOracle {
    measure: Measure,
    params: MeasureParams,
    /// BTreeMap for deterministic iteration (event logs and error
    /// messages must be byte-stable run-to-run).
    states: BTreeMap<u64, IdState>,
}

impl ShadowOracle {
    /// An oracle over the deployment's initial dataset, scoring with the
    /// same measure and parameters as the system under test.
    pub fn new(measure: Measure, params: MeasureParams, initial: &[(u64, Vec<Point>)]) -> Self {
        let states = initial
            .iter()
            .map(|(id, pts)| (*id, IdState::Present(pts.clone())))
            .collect();
        ShadowOracle { measure, params, states }
    }

    /// An acknowledged upsert: the id is certainly `points` now.
    pub fn committed_upsert(&mut self, id: u64, points: &[Point]) {
        self.states.insert(id, IdState::Present(points.to_vec()));
    }

    /// An acknowledged delete: the id is certainly absent now.
    pub fn committed_delete(&mut self, id: u64) {
        self.states.insert(id, IdState::Absent);
    }

    /// A failed upsert that may still have been applied: the id is now
    /// either whatever it was before, or `points`.
    pub fn uncertain_upsert(&mut self, id: u64, points: &[Point]) {
        let mut options = self.admissible(id);
        options.push(Some(points.to_vec()));
        self.states.insert(id, IdState::Uncertain(options));
    }

    /// A failed delete that may still have been applied.
    pub fn uncertain_delete(&mut self, id: u64) {
        let mut options = self.admissible(id);
        options.push(None);
        self.states.insert(id, IdState::Uncertain(options));
    }

    /// Whether any id is currently in an uncertain state.
    pub fn has_uncertainty(&self) -> bool {
        self.states
            .values()
            .any(|s| matches!(s, IdState::Uncertain(_)))
    }

    /// Every state `id` could admissibly be in right now.
    fn admissible(&self, id: u64) -> Vec<Option<Vec<Point>>> {
        match self.states.get(&id) {
            None | Some(IdState::Absent) => vec![None],
            Some(IdState::Present(p)) => vec![Some(p.clone())],
            Some(IdState::Uncertain(opts)) => opts.clone(),
        }
    }

    /// Checks one answer against the model (see module docs for the
    /// rules). `degraded` is the system's own honesty flag.
    pub fn verify(
        &self,
        query: &[Point],
        k: usize,
        hits: &[Hit],
        degraded: bool,
    ) -> Result<(), String> {
        if hits.len() > k {
            return Err(format!("{} hits returned for k={k}", hits.len()));
        }
        for w in hits.windows(2) {
            if Hit::cmp_by_dist_then_id(&w[0], &w[1]) != std::cmp::Ordering::Less {
                return Err(format!(
                    "hits out of order or duplicated: ({}, {:?}) then ({}, {:?})",
                    w[0].id, w[0].dist, w[1].id, w[1].dist
                ));
            }
        }
        let dist = |pts: &[Point]| self.params.distance(self.measure, query, pts);

        // Rule 1: every hit must bitwise match an admissible state.
        for h in hits {
            let admissible = match self.states.get(&h.id) {
                None | Some(IdState::Absent) => false,
                Some(IdState::Present(p)) => dist(p).to_bits() == h.dist.to_bits(),
                Some(IdState::Uncertain(opts)) => opts.iter().any(|o| {
                    o.as_ref()
                        .is_some_and(|p| dist(p).to_bits() == h.dist.to_bits())
                }),
            };
            if !admissible {
                return Err(format!(
                    "hit id={} dist={:?} matches no acknowledged state",
                    h.id, h.dist
                ));
            }
        }
        if degraded {
            // The system admitted the answer is partial; rule 1 plus
            // well-formedness is the whole contract.
            return Ok(());
        }

        let certain: Vec<(u64, f64)> = self
            .states
            .iter()
            .filter_map(|(id, s)| match s {
                IdState::Present(p) => Some((*id, dist(p))),
                _ => None,
            })
            .collect();

        if !self.has_uncertainty() {
            // Fully determined state: the answer must be the brute-force
            // top-k, bitwise (distance multiset — the repo's exactness
            // criterion; ties may legally resolve to either id).
            let mut expected: Vec<f64> = certain.iter().map(|(_, d)| *d).collect();
            expected.sort_by(f64::total_cmp);
            expected.truncate(k);
            let expected_bits: Vec<u64> = expected.iter().map(|d| d.to_bits()).collect();
            let got_bits: Vec<u64> = hits.iter().map(|h| h.dist.to_bits()).collect();
            if got_bits != expected_bits {
                return Err(format!(
                    "distance multiset mismatch: got {:x?}, brute force says {:x?}",
                    got_bits, expected_bits
                ));
            }
            return Ok(());
        }

        // Rules 2 and 3 under uncertainty.
        let kth = if hits.len() < k {
            f64::INFINITY
        } else {
            hits.last().map_or(f64::INFINITY, |h| h.dist)
        };
        let returned: HashSet<u64> = hits.iter().map(|h| h.id).collect();
        for (id, d) in &certain {
            if *d < kth && !returned.contains(id) {
                return Err(format!(
                    "certainly present id={id} (dist {d}) is closer than the \
                     returned k-th ({kth}) but missing"
                ));
            }
        }
        if hits.len() < k.min(certain.len()) {
            return Err(format!(
                "{} hits returned but {} certain matches exist for k={k}",
                hits.len(),
                certain.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(y: f64) -> Vec<Point> {
        (0..4).map(|i| Point::new(i as f64, y)).collect()
    }

    fn oracle() -> ShadowOracle {
        ShadowOracle::new(
            Measure::Hausdorff,
            MeasureParams::default(),
            &[(1, line(1.0)), (2, line(2.0)), (3, line(3.0))],
        )
    }

    fn brute(o: &ShadowOracle, q: &[Point], id: u64) -> f64 {
        match o.states.get(&id) {
            Some(IdState::Present(p)) => o.params.distance(o.measure, q, p),
            _ => panic!("id {id} not certainly present"),
        }
    }

    #[test]
    fn exact_answer_passes_and_truncation_fails() {
        let o = oracle();
        let q = line(0.0);
        let hits: Vec<Hit> = [1u64, 2, 3]
            .iter()
            .map(|&id| Hit { id, dist: brute(&o, &q, id) })
            .collect();
        o.verify(&q, 3, &hits, false).expect("exact answer");
        // Dropping the k-th (a truncating merge bug) must be caught.
        let err = o.verify(&q, 3, &hits[..2], false).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn invented_distances_are_rejected_even_degraded() {
        let o = oracle();
        let q = line(0.0);
        let fake = vec![Hit { id: 1, dist: 0.123456 }];
        assert!(o.verify(&q, 1, &fake, false).is_err());
        assert!(o.verify(&q, 1, &fake, true).is_err(), "degraded is not a license to invent");
    }

    #[test]
    fn degraded_subset_is_accepted() {
        let o = oracle();
        let q = line(0.0);
        // Only the second-best: dishonest as exact, fine as degraded.
        let partial = vec![Hit { id: 2, dist: brute(&o, &q, 2) }];
        assert!(o.verify(&q, 2, &partial, false).is_err());
        o.verify(&q, 2, &partial, true).expect("honest degradation");
    }

    #[test]
    fn uncertain_write_admits_both_worlds() {
        let mut o = oracle();
        let q = line(0.0);
        o.uncertain_upsert(1, &line(0.5));
        // World A: the failed write never applied.
        let old = vec![
            Hit { id: 1, dist: o.params.distance(o.measure, &q, &line(1.0)) },
        ];
        // World B: it applied after all.
        let new = vec![
            Hit { id: 1, dist: o.params.distance(o.measure, &q, &line(0.5)) },
        ];
        o.verify(&q, 1, &old, false).expect("pre-write world admissible");
        o.verify(&q, 1, &new, false).expect("post-write world admissible");
        // World C: neither — still a bug.
        let neither = vec![Hit { id: 1, dist: 0.321 }];
        assert!(o.verify(&q, 1, &neither, false).is_err());
    }

    #[test]
    fn certain_closer_id_cannot_be_omitted_under_uncertainty() {
        let mut o = oracle();
        let q = line(0.0);
        o.uncertain_upsert(9, &line(9.0)); // unrelated uncertainty
        let missing_best = vec![
            Hit { id: 2, dist: brute(&o, &q, 2) },
            Hit { id: 3, dist: brute(&o, &q, 3) },
        ];
        let err = o.verify(&q, 2, &missing_best, false).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn delete_then_return_is_rejected() {
        let mut o = oracle();
        let q = line(0.0);
        let d1 = brute(&o, &q, 1);
        o.committed_delete(1);
        let ghost = vec![Hit { id: 1, dist: d1 }];
        assert!(o.verify(&q, 1, &ghost, false).is_err(), "deleted ids must not return");
    }
}
