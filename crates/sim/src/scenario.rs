//! The simulated world as data: one [`Scenario`] is the *complete* input
//! of a simulation run — topology, initial dataset, and a single ordered
//! op stream that interleaves workload (upserts, deletes, queries,
//! compactions, restarts) with chaos (fault armings and virtual-time
//! jumps).
//!
//! Keeping the fault schedule *inline* in the op list (rather than as a
//! separate plan) is what makes shrinking trivial: a failing run minimizes
//! by plain subsequence selection over one list, and the shrunk repro
//! serializes to a small JSON file a human can read and re-run.
//!
//! Scenarios are generated from a seed ([`Scenario::generate`]) — the
//! same seed always yields the same scenario — or loaded from a repro
//! file ([`Scenario::from_json`]). Coordinates travel through JSON as
//! IEEE-754 bit patterns so a repro replays *bitwise* identically.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use repose_distance::Measure;
use repose_model::Point;
use serde_json::{Map, Number, Value};

/// Which stack a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// One durable [`repose_service::ReposeService`] (WAL + archives) with
    /// `wal.*` / `arc.*` fail points and crash-restart ops.
    SingleNode,
    /// A [`repose_shard::ShardCluster`] topology over the simulated
    /// network with net faults (drop/delay/dup/reorder/partition/crash).
    Sharded,
}

/// One step of the simulated workload-plus-chaos schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOp {
    /// Insert or replace trajectory `id`.
    Upsert {
        /// Trajectory id (ids collide deliberately: upsert-over-upsert and
        /// delete-then-upsert orders are part of the search space).
        id: u64,
        /// Sample points.
        points: Vec<Point>,
    },
    /// Delete trajectory `id` (deleting an absent id is a valid op).
    Delete {
        /// Trajectory id.
        id: u64,
    },
    /// Top-k query, answer checked against the shadow oracle.
    Query {
        /// Result size.
        k: usize,
        /// Query polyline.
        points: Vec<Point>,
    },
    /// Fold the delta into rebuilt tries (single-node; no-op sharded).
    Compact,
    /// Crash the process and recover from disk (single-node; no-op
    /// sharded — sharded crashes come from `crash` net faults).
    Restart,
    /// Jump virtual time forward — lets heartbeat timeouts, promotions,
    /// retries and hedges fire between ops.
    AdvanceTime {
        /// Microseconds of virtual time to add.
        micros: u64,
    },
    /// Arm one fault at one site of the unified registry: `wal.*` /
    /// `arc.*` durability fail points (single-node) or
    /// `coord|shard<N>|replica<N>[.tx|.rx]` net sites (sharded). Sites
    /// from the wrong mode are skipped with a logged event, so a repro
    /// file edited by hand can never panic the driver.
    ArmFault {
        /// Fail-point or net-fault site name.
        site: String,
        /// Action spec (`io`/`short`/`crash` or
        /// `drop`/`dup`/`reorder`/`partition`/`crash`/`delay<ms>`).
        action: String,
        /// Hits to let pass before firing (exactly-once after that).
        after: u32,
    },
}

/// A complete simulation input; a pure function of its seed.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed this scenario was generated from (0 for loaded repros
    /// unless the file says otherwise).
    pub seed: u64,
    /// Which stack to drive.
    pub mode: SimMode,
    /// Distance measure of the deployment (all six are exercised).
    pub measure: Measure,
    /// Shard count (sharded mode).
    pub shards: usize,
    /// Whether every shard gets a follower replica (sharded mode).
    pub replicate: bool,
    /// Trajectories the deployment is built over.
    pub initial: Vec<(u64, Vec<Point>)>,
    /// The interleaved workload + chaos schedule.
    pub ops: Vec<SimOp>,
}

/// Ids are drawn from a small universe so writes collide: re-upserts,
/// delete-then-reinsert and cross-shard routing all happen by chance.
const ID_SPACE: u64 = 24;

/// All durability fail-point sites, with the actions that make sense at
/// each (every action is valid at every site).
fn durability_sites() -> Vec<(String, Vec<String>)> {
    repose_durability::POINTS
        .iter()
        .map(|p| {
            (
                p.to_string(),
                vec!["io".to_string(), "short".to_string(), "crash".to_string()],
            )
        })
        .collect()
}

/// All net-fault sites of a `shards`/`replicate` topology. Coordinator
/// links only get link-level faults (drop/dup/reorder/delay): crashing or
/// partitioning the coordinator makes every answer trivially degraded,
/// which tests nothing the per-shard variants don't.
fn net_sites(shards: usize, replicate: bool) -> Vec<(String, Vec<String>)> {
    let link = ["drop", "dup", "reorder", "delay3"];
    let node = ["drop", "dup", "reorder", "delay3", "partition", "crash"];
    let mut sites = Vec::new();
    for suffix in [".tx", ".rx"] {
        sites.push((
            format!("coord{suffix}"),
            link.iter().map(|s| s.to_string()).collect(),
        ));
    }
    let mut node_labels = Vec::new();
    for i in 0..shards {
        node_labels.push(format!("shard{i}"));
        if replicate {
            node_labels.push(format!("replica{i}"));
        }
    }
    for label in node_labels {
        for suffix in ["", ".tx", ".rx"] {
            sites.push((
                format!("{label}{suffix}"),
                node.iter().map(|s| s.to_string()).collect(),
            ));
        }
    }
    sites
}

fn gen_points(rng: &mut StdRng) -> Vec<Point> {
    let n = rng.random_range(2usize..8);
    (0..n)
        .map(|_| Point::new(rng.random_range(0.0..32.0), rng.random_range(0.0..32.0)))
        .collect()
}

impl Scenario {
    /// The scenario for `seed` — topology, dataset, and the interleaved
    /// workload/chaos schedule, all drawn from one [`StdRng`].
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let mode = if rng.random_range(0u32..2) == 0 {
            SimMode::SingleNode
        } else {
            SimMode::Sharded
        };
        let measure = Measure::ALL[rng.random_range(0usize..Measure::ALL.len())];
        let shards = rng.random_range(1usize..4);
        let replicate = rng.random_range(0u32..2) == 0;

        let n_initial = rng.random_range(8u64..20);
        let initial: Vec<(u64, Vec<Point>)> =
            (0..n_initial).map(|id| (id, gen_points(&mut rng))).collect();

        let sites = match mode {
            SimMode::SingleNode => durability_sites(),
            SimMode::Sharded => net_sites(shards, replicate),
        };

        let n_ops = rng.random_range(24usize..56);
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let roll = rng.random_range(0u32..100);
            let op = match roll {
                0..=29 => SimOp::Upsert {
                    id: rng.random_range(0..ID_SPACE),
                    points: gen_points(&mut rng),
                },
                30..=41 => SimOp::Delete { id: rng.random_range(0..ID_SPACE) },
                42..=71 => SimOp::Query {
                    k: rng.random_range(1usize..8),
                    points: gen_points(&mut rng),
                },
                72..=77 if mode == SimMode::SingleNode => SimOp::Compact,
                78..=85 => {
                    let (site, actions) = &sites[rng.random_range(0usize..sites.len())];
                    SimOp::ArmFault {
                        site: site.clone(),
                        action: actions[rng.random_range(0usize..actions.len())].clone(),
                        after: rng.random_range(0u32..3),
                    }
                }
                94..=99 if mode == SimMode::SingleNode => SimOp::Restart,
                _ => SimOp::AdvanceTime { micros: rng.random_range(500u64..400_000) },
            };
            ops.push(op);
        }

        Scenario { seed, mode, measure, shards, replicate, initial, ops }
    }

    /// Serializes the scenario as a pretty-printed repro file. Coordinates
    /// are written as `f64::to_bits` integers: the replay is bitwise.
    pub fn to_json(&self) -> String {
        let mut root = Map::new();
        root.insert("seed".into(), Value::Number(Number::U(self.seed)));
        root.insert(
            "mode".into(),
            Value::String(
                match self.mode {
                    SimMode::SingleNode => "single",
                    SimMode::Sharded => "sharded",
                }
                .into(),
            ),
        );
        root.insert("measure".into(), Value::String(self.measure.name().into()));
        root.insert("shards".into(), Value::Number(Number::U(self.shards as u64)));
        root.insert("replicate".into(), Value::Bool(self.replicate));
        root.insert(
            "initial".into(),
            Value::Array(
                self.initial
                    .iter()
                    .map(|(id, pts)| {
                        Value::Array(vec![
                            Value::Number(Number::U(*id)),
                            points_to_value(pts),
                        ])
                    })
                    .collect(),
            ),
        );
        root.insert(
            "ops".into(),
            Value::Array(self.ops.iter().map(op_to_value).collect()),
        );
        serde_json::to_string_pretty(&Value::Object(root)).expect("value trees always serialize")
    }

    /// Parses a repro file written by [`Scenario::to_json`] (or by hand).
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        let root: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let seed = get_u64(&root, "seed")?;
        let mode = match get_str(&root, "mode")? {
            "single" => SimMode::SingleNode,
            "sharded" => SimMode::Sharded,
            other => return Err(format!("unknown mode `{other}`")),
        };
        let measure: Measure = get_str(&root, "measure")?
            .parse()
            .map_err(|e: String| e)?;
        let shards = get_u64(&root, "shards")? as usize;
        if shards == 0 {
            return Err("shards must be >= 1".into());
        }
        let replicate = root
            .get("replicate")
            .and_then(Value::as_bool)
            .ok_or("missing bool `replicate`")?;
        let mut initial = Vec::new();
        for entry in get_array(&root, "initial")? {
            let pair = entry.as_array().ok_or("initial entries are [id, points]")?;
            if pair.len() != 2 {
                return Err("initial entries are [id, points]".into());
            }
            let id = pair[0].as_u64().ok_or("trajectory id must be u64")?;
            initial.push((id, points_from_value(&pair[1])?));
        }
        let mut ops = Vec::new();
        for entry in get_array(&root, "ops")? {
            ops.push(op_from_value(entry)?);
        }
        Ok(Scenario { seed, mode, measure, shards, replicate, initial, ops })
    }
}

fn points_to_value(pts: &[Point]) -> Value {
    Value::Array(
        pts.iter()
            .map(|p| {
                Value::Array(vec![
                    Value::Number(Number::U(p.x.to_bits())),
                    Value::Number(Number::U(p.y.to_bits())),
                ])
            })
            .collect(),
    )
}

fn points_from_value(v: &Value) -> Result<Vec<Point>, String> {
    let arr = v.as_array().ok_or("points must be an array")?;
    let mut pts = Vec::with_capacity(arr.len());
    for p in arr {
        let xy = p.as_array().ok_or("a point is [xbits, ybits]")?;
        if xy.len() != 2 {
            return Err("a point is [xbits, ybits]".into());
        }
        let x = xy[0].as_u64().ok_or("coordinate bits must be u64")?;
        let y = xy[1].as_u64().ok_or("coordinate bits must be u64")?;
        pts.push(Point::new(f64::from_bits(x), f64::from_bits(y)));
    }
    Ok(pts)
}

fn op_to_value(op: &SimOp) -> Value {
    let mut m = Map::new();
    match op {
        SimOp::Upsert { id, points } => {
            m.insert("op".into(), Value::String("upsert".into()));
            m.insert("id".into(), Value::Number(Number::U(*id)));
            m.insert("points".into(), points_to_value(points));
        }
        SimOp::Delete { id } => {
            m.insert("op".into(), Value::String("delete".into()));
            m.insert("id".into(), Value::Number(Number::U(*id)));
        }
        SimOp::Query { k, points } => {
            m.insert("op".into(), Value::String("query".into()));
            m.insert("k".into(), Value::Number(Number::U(*k as u64)));
            m.insert("points".into(), points_to_value(points));
        }
        SimOp::Compact => {
            m.insert("op".into(), Value::String("compact".into()));
        }
        SimOp::Restart => {
            m.insert("op".into(), Value::String("restart".into()));
        }
        SimOp::AdvanceTime { micros } => {
            m.insert("op".into(), Value::String("advance".into()));
            m.insert("micros".into(), Value::Number(Number::U(*micros)));
        }
        SimOp::ArmFault { site, action, after } => {
            m.insert("op".into(), Value::String("fault".into()));
            m.insert("site".into(), Value::String(site.clone()));
            m.insert("action".into(), Value::String(action.clone()));
            m.insert("after".into(), Value::Number(Number::U(*after as u64)));
        }
    }
    Value::Object(m)
}

fn op_from_value(v: &Value) -> Result<SimOp, String> {
    Ok(match get_str(v, "op")? {
        "upsert" => SimOp::Upsert {
            id: get_u64(v, "id")?,
            points: points_from_value(v.get("points").ok_or("upsert needs points")?)?,
        },
        "delete" => SimOp::Delete { id: get_u64(v, "id")? },
        "query" => SimOp::Query {
            k: get_u64(v, "k")? as usize,
            points: points_from_value(v.get("points").ok_or("query needs points")?)?,
        },
        "compact" => SimOp::Compact,
        "restart" => SimOp::Restart,
        "advance" => SimOp::AdvanceTime { micros: get_u64(v, "micros")? },
        "fault" => SimOp::ArmFault {
            site: get_str(v, "site")?.to_string(),
            action: get_str(v, "action")?.to_string(),
            after: get_u64(v, "after")? as u32,
        },
        other => return Err(format!("unknown op `{other}`")),
    })
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing u64 `{key}`"))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn get_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        let a = Scenario::generate(7);
        let b = Scenario::generate(7);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.mode, b.mode);
        assert_eq!(a.measure, b.measure);
    }

    #[test]
    fn different_seeds_diverge() {
        // Not a tautology: a buggy generator that ignores its rng would
        // pass same_seed_same_scenario and fail here.
        let a = Scenario::generate(1);
        let b = Scenario::generate(2);
        assert!(a.ops != b.ops || a.initial != b.initial);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        for seed in [0, 1, 42, 0xDEAD] {
            let sc = Scenario::generate(seed);
            let text = sc.to_json();
            let back = Scenario::from_json(&text).unwrap();
            assert_eq!(back.seed, sc.seed);
            assert_eq!(back.mode, sc.mode);
            assert_eq!(back.measure, sc.measure);
            assert_eq!(back.shards, sc.shards);
            assert_eq!(back.replicate, sc.replicate);
            assert_eq!(back.initial, sc.initial);
            assert_eq!(back.ops, sc.ops);
        }
    }

    #[test]
    fn coordinate_bits_survive_nonfinite_and_negative() {
        let sc = Scenario {
            seed: 0,
            mode: SimMode::SingleNode,
            measure: Measure::Hausdorff,
            shards: 1,
            replicate: false,
            initial: vec![(3, vec![Point::new(-1.5, f64::NAN)])],
            ops: vec![],
        };
        let back = Scenario::from_json(&sc.to_json()).unwrap();
        let p = &back.initial[0].1[0];
        assert_eq!(p.x.to_bits(), (-1.5f64).to_bits());
        assert_eq!(p.y.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn generated_fault_sites_parse_in_their_registries() {
        use repose_durability::FailPlan;
        use repose_shard::NetFaultPlan;
        for seed in 0..40u64 {
            let sc = Scenario::generate(seed);
            for op in &sc.ops {
                if let SimOp::ArmFault { site, action, after } = op {
                    let spec = format!("{site}={action}:{after}");
                    match sc.mode {
                        SimMode::SingleNode => {
                            FailPlan::parse(&spec).unwrap_or_else(|e| {
                                panic!("bad durability spec `{spec}`: {e:?}")
                            });
                        }
                        SimMode::Sharded => {
                            NetFaultPlan::parse(&spec).unwrap_or_else(|e| {
                                panic!("bad net spec `{spec}`: {e:?}")
                            });
                        }
                    }
                }
            }
        }
    }
}
