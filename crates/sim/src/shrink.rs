//! Auto-shrinking of failing schedules.
//!
//! A failing seed is a haystack: dozens of ops, several armed faults, big
//! time jumps. Because faults live *inline* in the op stream, shrinking is
//! pure subsequence selection — no cross-list coordination. The shrinker
//! runs delta debugging (ddmin) over the op list, then over the initial
//! dataset, then bisects `AdvanceTime` magnitudes, re-running the full
//! simulation after every candidate edit and keeping only edits that still
//! fail. The result is typically a handful of ops that reproduce the bug
//! deterministically from `Scenario::from_json`.

use crate::scenario::{Scenario, SimOp};
use crate::{run_scenario, PlantedBug, Verdict};

/// Outcome of a shrink: the smallest still-failing scenario found, and
/// how many simulation runs it took to get there.
#[derive(Debug)]
pub struct Shrunk {
    pub scenario: Scenario,
    pub runs: usize,
}

fn fails(sc: &Scenario, planted: Option<PlantedBug>, runs: &mut usize) -> bool {
    *runs += 1;
    matches!(run_scenario(sc, planted).verdict, Verdict::Failed { .. })
}

/// ddmin over one list: try dropping chunks (halving the chunk size down
/// to 1), keeping any drop after which `still_fails` holds.
fn ddmin<T: Clone>(
    items: &mut Vec<T>,
    budget: usize,
    runs: &mut usize,
    mut still_fails: impl FnMut(&[T], &mut usize) -> bool,
) {
    let mut chunk = items.len().div_ceil(2).max(1);
    loop {
        let mut start = 0;
        while start < items.len() {
            if *runs >= budget {
                return;
            }
            let end = (start + chunk).min(items.len());
            let mut candidate = items.clone();
            candidate.drain(start..end);
            if still_fails(&candidate, runs) {
                *items = candidate;
                // Re-test from the same index: the list shifted left.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            return;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Minimizes `sc` while it keeps failing (with `planted` active, if any).
/// `budget` caps the number of simulation runs spent; the input scenario
/// is returned unchanged if it does not fail in the first place.
pub fn shrink(sc: &Scenario, planted: Option<PlantedBug>, budget: usize) -> Shrunk {
    let mut runs = 0;
    let mut best = sc.clone();
    if !fails(&best, planted, &mut runs) {
        return Shrunk { scenario: best, runs };
    }

    // Pass 1: drop ops.
    let mut ops = best.ops.clone();
    ddmin(&mut ops, budget, &mut runs, |candidate, runs| {
        let mut trial = best.clone();
        trial.ops = candidate.to_vec();
        fails(&trial, planted, runs)
    });
    best.ops = ops;

    // Pass 2: drop initial trajectories.
    let mut initial = best.initial.clone();
    ddmin(&mut initial, budget, &mut runs, |candidate, runs| {
        let mut trial = best.clone();
        trial.initial = candidate.to_vec();
        fails(&trial, planted, runs)
    });
    best.initial = initial;

    // Pass 3: bisect time jumps toward zero (smaller repros read better
    // and rule the jump out as causal when it shrinks to nothing).
    for idx in 0..best.ops.len() {
        let SimOp::AdvanceTime { micros } = best.ops[idx] else { continue };
        let mut current = micros;
        while current > 0 && runs < budget {
            let smaller = current / 2;
            let mut trial = best.clone();
            trial.ops[idx] = SimOp::AdvanceTime { micros: smaller };
            if fails(&trial, planted, &mut runs) {
                best = trial;
                current = smaller;
            } else {
                break;
            }
        }
    }

    // Pass 4: one more op sweep — time shrinking may have unlocked drops.
    let mut ops = best.ops.clone();
    ddmin(&mut ops, budget, &mut runs, |candidate, runs| {
        let mut trial = best.clone();
        trial.ops = candidate.to_vec();
        fails(&trial, planted, runs)
    });
    best.ops = ops;

    Shrunk { scenario: best, runs }
}
