//! The sharded driver: the full coordinator/worker/replica topology from
//! [`repose_shard`] built over the simulated network ([`SimNet`]) and a
//! virtual clock, every worker running as an inline message pump on the
//! simulation's single thread.
//!
//! Timeouts are scaled down (milliseconds of *virtual* time) so retries,
//! hedges, heartbeat timeouts and follower promotions all fire within a
//! scenario's time horizon; the code paths exercised are exactly the
//! production ones — same coordinator, same workers, same wire frames.
//!
//! # Write-failure uncertainty
//!
//! A sharded write that fails may still have been applied (the leader
//! logs before it replicates; at-least-once with idempotent upserts), so
//! the driver reports failed writes to the oracle as *uncertain* — the
//! answer checker then admits either world but nothing else. Acknowledged
//! writes are certain, and the oracle insists they are never lost.

use crate::net::{SimNet, SimNode};
use crate::oracle::ShadowOracle;
use crate::scenario::{Scenario, SimOp};
use crate::{PlantedBug, SimReport, Verdict};
use repose_cluster::{BackoffConfig, Clock, SimClock};
use repose_distance::MeasureParams;
use repose_model::{Dataset, Trajectory};
use repose_shard::{
    Message, NetFault, NetFaultPlan, NodeId, ShardCluster, ShardClusterConfig, Transport,
    WorkerConfig,
};
use std::sync::Arc;
use std::time::Duration;

/// A [`repose_shard::ShardWorker`] adapted to the pump interface: each
/// delivered frame runs the worker's real handler, then replays any
/// frames the handler stashed mid-query.
struct WorkerPump(repose_shard::ShardWorker);

impl SimNode for WorkerPump {
    fn on_message(&mut self, from: NodeId, msg: Message) -> bool {
        self.0.on_message(from, msg) && self.0.drain_pending()
    }
    fn on_tick(&mut self) {
        self.0.on_tick();
    }
}

fn parse_net_action(action: &str) -> Option<NetFault> {
    match action {
        "drop" => Some(NetFault::Drop),
        "dup" => Some(NetFault::Duplicate),
        "reorder" => Some(NetFault::Reorder),
        "partition" => Some(NetFault::Partition),
        "crash" => Some(NetFault::Crash),
        _ => action
            .strip_prefix("delay")
            .and_then(|ms| ms.parse::<u64>().ok())
            .map(|ms| NetFault::Delay(Duration::from_millis(ms))),
    }
}

/// Whether `site` names a node that exists in this scenario's topology
/// (hand-edited repro files can name nodes that don't).
fn site_in_topology(site: &str, shards: usize, replicate: bool) -> bool {
    let base = site
        .strip_suffix(".tx")
        .or_else(|| site.strip_suffix(".rx"))
        .unwrap_or(site);
    if base == "coord" {
        return true;
    }
    if let Some(n) = base.strip_prefix("shard").and_then(|s| s.parse::<usize>().ok()) {
        return n < shards;
    }
    if let Some(n) = base.strip_prefix("replica").and_then(|s| s.parse::<usize>().ok()) {
        return replicate && n < shards;
    }
    false
}

/// Virtual-time tuning: everything in low milliseconds so a scenario's
/// `AdvanceTime` jumps (up to ~400ms) cross every timer threshold.
fn sim_cluster_config(sc: &Scenario) -> ShardClusterConfig {
    ShardClusterConfig {
        shards: sc.shards,
        replicate: sc.replicate,
        attempt_timeout: Duration::from_millis(40),
        max_retries: 2,
        backoff: BackoffConfig {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(20),
            factor: 2.0,
            jitter: 0.5,
        },
        hedge_percentile: 0.95,
        hedge_floor: Duration::from_millis(10),
        write_timeout: Duration::from_millis(40),
        write_retries: 4,
        cache_capacity: 32,
        tick: Duration::from_millis(1),
        seed: sc.seed,
        worker: WorkerConfig {
            heartbeat_every: Duration::from_millis(5),
            heartbeat_timeout: Duration::from_millis(30),
            ack_timeout: Duration::from_millis(15),
            replication_retries: 3,
            backoff: BackoffConfig {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(10),
                factor: 2.0,
                jitter: 0.5,
            },
            tick: Duration::from_millis(1),
            seed: sc.seed ^ 0x77,
        },
    }
}

pub(crate) fn run_sharded(sc: &Scenario, planted: Option<PlantedBug>) -> SimReport {
    let clock = Arc::new(SimClock::new());
    let faults = NetFaultPlan::new();
    let mut labels = vec!["coord".to_string()];
    labels.extend((0..sc.shards).map(|i| format!("shard{i}")));
    if sc.replicate {
        labels.extend((0..sc.shards).map(|i| format!("replica{i}")));
    }
    let net = SimNet::new(
        labels,
        faults.clone(),
        Arc::clone(&clock),
        Duration::from_millis(1),
    );

    let params = MeasureParams::with_eps(0.5);
    let rcfg = repose::ReposeConfig::new(sc.measure)
        .with_partitions(2)
        .with_delta(0.7)
        .with_params(params)
        .with_seed(sc.seed);
    let trajs: Vec<Trajectory> = sc
        .initial
        .iter()
        .map(|(id, pts)| Trajectory::new(*id, pts.clone()))
        .collect();
    let (mut cluster, workers) = ShardCluster::build_nodes(
        Dataset::from_trajectories(trajs),
        rcfg,
        sim_cluster_config(sc),
        None,
        Arc::new(net.clone()) as Arc<dyn Transport>,
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    for worker in workers {
        let node = worker.node();
        net.register_pump(node, Box::new(WorkerPump(worker)));
    }

    let mut oracle = ShadowOracle::new(sc.measure, params, &sc.initial);
    let mut events: Vec<String> = Vec::new();
    let mut verdict = Verdict::Ok;

    'ops: for (i, op) in sc.ops.iter().enumerate() {
        match op {
            SimOp::ArmFault { site, action, after } => {
                match parse_net_action(action) {
                    Some(f) if site_in_topology(site, sc.shards, sc.replicate) => {
                        faults.arm(site, f, *after);
                        events.push(format!("[{i}] arm {site}={action}:{after}"));
                    }
                    _ => events.push(format!(
                        "[{i}] skip fault {site}={action} (not a sharded site here)"
                    )),
                }
            }
            SimOp::Upsert { id, points } => {
                match cluster.insert(Trajectory::new(*id, points.clone())) {
                    Ok(out) => {
                        oracle.committed_upsert(*id, points);
                        events.push(format!(
                            "[{i}] upsert id={id} seq={} attempts={} promoted={}",
                            out.seq, out.attempts, out.promoted
                        ));
                    }
                    Err(failed) => {
                        // May or may not have applied: at-least-once.
                        oracle.uncertain_upsert(*id, points);
                        events.push(format!(
                            "[{i}] upsert id={id} FAILED attempts={}",
                            failed.attempts
                        ));
                    }
                }
            }
            SimOp::Delete { id } => match cluster.remove(*id) {
                Ok(out) => {
                    oracle.committed_delete(*id);
                    events.push(format!(
                        "[{i}] delete id={id} seq={} attempts={} promoted={}",
                        out.seq, out.attempts, out.promoted
                    ));
                }
                Err(failed) => {
                    oracle.uncertain_delete(*id);
                    events.push(format!(
                        "[{i}] delete id={id} FAILED attempts={}",
                        failed.attempts
                    ));
                }
            },
            SimOp::Query { k, points } => {
                let out = cluster.query(points, *k);
                let mut hits = out.hits;
                if matches!(planted, Some(PlantedBug::TruncateTopK)) {
                    hits.pop();
                }
                let rendered: Vec<String> = hits
                    .iter()
                    .map(|h| format!("{}:{:016x}", h.id, h.dist.to_bits()))
                    .collect();
                events.push(format!(
                    "[{i}] query k={k} degraded={} failed={} retries={} hedges={} cache={} \
                     hits=[{}]",
                    out.degraded,
                    out.shards_failed,
                    out.retries,
                    out.hedges,
                    out.cache_hit,
                    rendered.join(",")
                ));
                if let Err(reason) = oracle.verify(points, *k, &hits, out.degraded) {
                    verdict = Verdict::Failed { op: i, reason };
                    break 'ops;
                }
            }
            // Single-node ops: nothing to do here, but the op index must
            // stay aligned with the scenario for shrinking and logs.
            SimOp::Compact => events.push(format!("[{i}] compact (no-op sharded)")),
            SimOp::Restart => events.push(format!("[{i}] restart (no-op sharded)")),
            SimOp::AdvanceTime { micros } => {
                clock.advance(Duration::from_micros(*micros));
                net.kick();
                events.push(format!("[{i}] advance {micros}us"));
            }
        }
    }

    cluster.shutdown();
    SimReport { seed: sc.seed, events, verdict }
}
