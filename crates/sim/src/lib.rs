//! Deterministic whole-system simulation for REPOSE.
//!
//! One seed drives everything: the workload (upserts, deletes, queries,
//! compactions, crash-restarts), the fault schedule (durability fail
//! points and network faults from the same registries the fault-injection
//! tests use), and the passage of time (a virtual [`SimClock`] that only
//! moves when the simulation moves it). Running the same seed twice
//! produces byte-identical event logs and verdicts, so any failure is a
//! repro by construction.
//!
//! Two deployment shapes are simulated, chosen by the seed:
//!
//! * **Single-node durable** — a full [`repose_service::ReposeService`]
//!   with a WAL (`fsync` always) and persistent archives, crash-restarted
//!   through real recovery whenever a fail point bites.
//! * **Sharded volatile** — the real coordinator/worker/replica stack
//!   from [`repose_shard`] over a simulated [`Transport`](repose_shard::Transport)
//!   that delivers, drops, delays, duplicates, reorders, partitions and
//!   crashes according to the schedule — in virtual time, on one thread.
//!
//! Every query answer is checked against a [`ShadowOracle`] of
//! acknowledged writes: answers must be exact (bitwise, for all six
//! distance measures) or honestly flagged as degraded. Failing schedules
//! are minimized by [`shrink`] into small serializable repros.
//!
//! [`SimClock`]: repose_cluster::SimClock

mod net;
mod oracle;
mod scenario;
mod sharded;
mod shrink;
mod single;

pub use net::{SimNet, SimNetStats, SimNode};
pub use oracle::ShadowOracle;
pub use scenario::{Scenario, SimMode, SimOp};
pub use shrink::{shrink, Shrunk};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A deliberately introduced bug, used to prove the harness *can* catch
/// and shrink real failures (a simulator that never fails proves
/// nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlantedBug {
    /// Silently drop the last hit of every query answer — the classic
    /// truncating-merge bug.
    TruncateTopK,
}

/// Did the scenario uphold the oracle's contract?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every answer was exact or honestly degraded.
    Ok,
    /// Op `op` produced an answer the oracle rejected (or the system
    /// wedged); `reason` is the oracle's explanation.
    Failed { op: usize, reason: String },
}

/// The outcome of one simulation run. `events` is a deterministic log —
/// the same seed always yields the same bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    pub seed: u64,
    pub events: Vec<String>,
    pub verdict: Verdict,
}

impl SimReport {
    pub fn failed(&self) -> bool {
        matches!(self.verdict, Verdict::Failed { .. })
    }
}

/// Runs one scenario to completion and reports the verdict.
pub fn run_scenario(sc: &Scenario, planted: Option<PlantedBug>) -> SimReport {
    match sc.mode {
        SimMode::SingleNode => single::run_single(sc, planted),
        SimMode::Sharded => sharded::run_sharded(sc, planted),
    }
}

/// Generates the scenario for `seed` and runs it.
pub fn run_seed(seed: u64, planted: Option<PlantedBug>) -> SimReport {
    run_scenario(&Scenario::generate(seed), planted)
}

/// A unique scratch directory for one simulated deployment's WAL and
/// archives. Collision-proof across processes and runs within a process.
pub(crate) fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "repose-sim-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create sim scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_twice_is_byte_identical() {
        for seed in [3u64, 11] {
            let a = run_seed(seed, None);
            let b = run_seed(seed, None);
            assert_eq!(a, b, "seed {seed} diverged between runs");
        }
    }

    #[test]
    fn clean_seeds_pass_the_oracle() {
        for seed in 0..6u64 {
            let r = run_seed(seed, None);
            assert_eq!(
                r.verdict,
                Verdict::Ok,
                "seed {seed} failed:\n{}",
                r.events.join("\n")
            );
        }
    }

    #[test]
    fn planted_truncation_is_caught_and_shrinks() {
        // Find a seed the planted bug trips on (any seed whose scenario
        // queries with k small enough that dropping a hit is wrong).
        let seed = (0..64u64)
            .find(|&s| run_seed(s, Some(PlantedBug::TruncateTopK)).failed())
            .expect("some seed within 64 must trip the planted bug");
        let sc = Scenario::generate(seed);
        let shrunk = shrink(&sc, Some(PlantedBug::TruncateTopK), 300);
        assert!(
            run_scenario(&shrunk.scenario, Some(PlantedBug::TruncateTopK)).failed(),
            "shrunk scenario must still fail"
        );
        assert!(
            shrunk.scenario.ops.len() <= 20,
            "repro did not shrink: {} ops",
            shrunk.scenario.ops.len()
        );
        // And the repro survives serialization.
        let round = Scenario::from_json(&shrunk.scenario.to_json()).expect("repro parses");
        assert!(run_scenario(&round, Some(PlantedBug::TruncateTopK)).failed());
    }
}
