//! Ablation (beyond the paper): single-phase distributed query vs the
//! two-phase threshold-propagated variant (`Repose::query_two_phase`).

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::Xian);
    let r = Repose::build(
        &data,
        ReposeConfig::new(Measure::Hausdorff)
            .with_cluster(cfg.cluster)
            .with_partitions(cfg.partitions)
            .with_delta(PaperDataset::Xian.paper_delta(Measure::Hausdorff)),
    );
    let mut group = c.benchmark_group("twophase_threshold");
    group.sample_size(10);
    group.bench_function("single_phase", |b| {
        b.iter(|| black_box(r.query(&queries[0].points, cfg.k)))
    });
    group.bench_function("two_phase", |b| {
        b.iter(|| black_box(r.query_two_phase(&queries[0].points, cfg.k)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
