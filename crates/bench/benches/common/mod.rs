//! Shared setup for the criterion benches: a tiny, fixed-seed workload so
//! `cargo bench --workspace` finishes quickly while still exercising the
//! exact code paths of each table/figure.

use repose_bench::runner::ExpConfig;
use repose_cluster::ClusterConfig;
use repose_datagen::{sample_queries, PaperDataset};
use repose_model::{Dataset, Trajectory};

/// Small experiment config for benches.
pub fn bench_cfg() -> ExpConfig {
    ExpConfig {
        scale: 0.05,
        queries: 1,
        k: 10,
        partitions: 4,
        cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
        seed: 0xBE7C,
        readers: 2,
        writers: 1,
        write_burst: 20,
        pool_threads: 4,
        shards: 2,
        sim_seeds: 2,
        sim_repro: None,
    }
}

/// A small fixed dataset + one query.
#[allow(dead_code)] // not every bench target uses every helper
pub fn small_workload(ds: PaperDataset) -> (Dataset, Vec<Trajectory>) {
    let cfg = bench_cfg();
    let data = ds.generate(cfg.scale, cfg.seed);
    let queries = sample_queries(&data, cfg.queries, cfg.seed ^ 0xABCD);
    (data, queries)
}
