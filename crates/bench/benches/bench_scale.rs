//! Shared-threshold execution vs independent per-partition search
//! (`Repose::query` vs `Repose::query_independent`), plus the seed-first
//! two-phase variant — the wall-clock view of the `scale` experiment.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::TDrive);
    let r = Repose::build(
        &data,
        ReposeConfig::new(Measure::Hausdorff)
            .with_cluster(cfg.cluster)
            .with_partitions(cfg.partitions)
            .with_delta(PaperDataset::TDrive.paper_delta(Measure::Hausdorff)),
    );
    let q = &queries[0].points;
    let mut group = c.benchmark_group("shared_threshold_scale");
    group.sample_size(10);
    group.bench_function("independent", |b| {
        b.iter(|| black_box(r.query_independent(q, cfg.k)))
    });
    group.bench_function("shared", |b| b.iter(|| black_box(r.query(q, cfg.k))));
    group.bench_function("shared_seeded", |b| {
        b.iter(|| black_box(r.query_two_phase(q, cfg.k)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
