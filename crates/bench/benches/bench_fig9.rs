//! Criterion companion to Fig. 9: REPOSE query latency vs partition count.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::Osm);
    let mut group = c.benchmark_group("fig9_partitions");
    group.sample_size(10);
    for parts in [4usize, 8, 16] {
        let r = Repose::build(
            &data,
            ReposeConfig::new(Measure::Hausdorff)
                .with_cluster(cfg.cluster)
                .with_partitions(parts)
                .with_delta(PaperDataset::Osm.paper_delta(Measure::Hausdorff)),
        );
        group.bench_with_input(BenchmarkId::from_parameter(parts), &parts, |b, _| {
            b.iter(|| black_box(r.query_independent(&queries[0].points, cfg.k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
