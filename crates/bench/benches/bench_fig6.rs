//! Criterion companion to Fig. 6: REPOSE query latency as k grows.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::TDrive);
    let r = Repose::build(
        &data,
        ReposeConfig::new(Measure::Hausdorff)
            .with_cluster(cfg.cluster)
            .with_partitions(cfg.partitions)
            .with_delta(PaperDataset::TDrive.paper_delta(Measure::Hausdorff)),
    );
    let mut group = c.benchmark_group("fig6_vary_k");
    group.sample_size(10);
    for k in [1usize, 10, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(r.query_independent(&queries[0].points, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
