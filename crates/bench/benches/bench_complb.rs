//! Ablation (Section IV-C): the O(m) incremental `CompLB` versus naive
//! O(mn) recomputation of the Hausdorff bounds along a trie path.

use criterion::{criterion_group, criterion_main, Criterion};
use repose_distance::{hausdorff, HausdorffState};
use repose_model::Point;
use std::hint::black_box;

fn path(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(i as f64 * 0.1, ((i * 7) % 13) as f64 * 0.05))
        .collect()
}

fn bench(c: &mut Criterion) {
    let query = path(64);
    let reference = path(48);
    let mut group = c.benchmark_group("complb");

    group.bench_function("incremental_o_m", |b| {
        b.iter(|| {
            // One push per trie level, as the search descends.
            let mut st = HausdorffState::new(query.len());
            let mut acc = 0.0;
            for p in &reference {
                st.push(&query, *p);
                acc += st.cmax();
            }
            black_box(acc)
        })
    });

    group.bench_function("naive_o_mn", |b| {
        b.iter(|| {
            // Recompute the full prefix distance at every level.
            let mut acc = 0.0;
            for j in 1..=reference.len() {
                acc += hausdorff(&query, &reference[..j]);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
