//! Ablation (Section III-B "Succinct trie structure"): bitmap-encoded
//! upper levels (dense) versus byte-sequence-only encoding — build, query
//! and memory.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_model::TrajStore;
use repose_rptrie::{RpTrie, RpTrieConfig};
use repose_zorder::Grid;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::TDrive);
    let store = TrajStore::from_trajectories(data.trajectories());
    let grid = Grid::with_delta(
        data.enclosing_square().expect("non-empty"),
        PaperDataset::TDrive.paper_delta(Measure::Hausdorff),
    );
    let mut group = c.benchmark_group("succinct_layout");
    group.sample_size(10);
    for (label, dense_levels) in [("dense2", 2u8), ("dense4", 4u8), ("sparse_only", 0u8)] {
        let trie_cfg =
            RpTrieConfig::for_measure(Measure::Hausdorff).with_dense_levels(dense_levels);
        let trie = RpTrie::build(&store, grid.clone(), trie_cfg);
        eprintln!(
            "{label}: {} nodes ({} dense), {} bytes",
            trie.node_count(),
            trie.frozen().dense_count(),
            trie.mem_bytes()
        );
        group.bench_function(format!("query_{label}"), |b| {
            b.iter(|| black_box(trie.top_k(&store, &queries[0].points, cfg.k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
