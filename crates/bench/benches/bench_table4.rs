//! Criterion companion to Table IV: query latency of the four algorithms
//! on the same (small) dataset and measure.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use repose::PartitionStrategy;
use repose_baselines::BaselinePlacement;
use repose_bench::runner::build_algo;
use repose_datagen::PaperDataset;
use repose_distance::{Measure, MeasureParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::TDrive);
    let measure = Measure::Frechet;
    let params = MeasureParams::default();
    let delta = PaperDataset::TDrive.paper_delta(measure);
    let mut group = c.benchmark_group("table4_query");
    group.sample_size(10);
    for name in ["REPOSE", "DITA", "DFT", "LS"] {
        let algo = build_algo(
            name,
            &data,
            measure,
            params,
            delta,
            BaselinePlacement::Homogeneous,
            PartitionStrategy::Heterogeneous,
            &cfg,
        )
        .expect("Frechet supported everywhere");
        group.bench_function(name, |b| {
            b.iter(|| black_box(algo.query_secs(&queries[0].points, cfg.k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
