//! Micro-benchmarks of the zero-allocation verification path: the
//! scratch-threaded kernels against the preserved seed kernels
//! (`repose_distance::reference`), and an arena leaf-scan against the
//! seed's `Vec<Trajectory>` heap-island scan. Counterpart of the
//! `kernels` experiment (which reports the checked-in
//! `results/BENCH_kernels.json` numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repose_distance::{reference, DistScratch, Measure, MeasureParams};
use repose_model::{Point, TrajStore, Trajectory};
use std::hint::black_box;

fn traj(n: usize, phase: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.1 + phase;
            Point::new(t, (t * 1.7).sin())
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let params = MeasureParams::with_eps(0.2);

    // Kernel level: per-call-allocating seed vs warm scratch.
    let mut group = c.benchmark_group("kernel_scratch_vs_alloc");
    let mut scratch = DistScratch::new();
    for n in [32usize, 128] {
        let a = traj(n, 0.0);
        let b = traj(n, 0.35);
        for m in Measure::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_seed", m.name()), n),
                &n,
                |bch, _| bch.iter(|| black_box(reference::distance(&params, m, &a, &b))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}_scratch", m.name()), n),
                &n,
                |bch, _| bch.iter(|| black_box(params.distance_in(m, &a, &b, &mut scratch))),
            );
        }
    }
    group.finish();

    // Leaf-scan level: Vec<Trajectory> islands + seed threshold kernels vs
    // one arena + warm scratch, under a selective threshold.
    let mut group = c.benchmark_group("leaf_scan_arena_vs_vec");
    let trajs: Vec<Trajectory> = (0..256u64)
        .map(|i| Trajectory::new(i, traj(64, i as f64 * 0.21)))
        .collect();
    let store = TrajStore::from_trajectories(&trajs);
    let query = traj(64, 13.37);
    let mut scratch = DistScratch::new();
    for m in [Measure::Hausdorff, Measure::Dtw, Measure::Erp] {
        let mut dists: Vec<f64> = trajs
            .iter()
            .map(|t| params.distance(m, &query, &t.points))
            .collect();
        dists.sort_by(f64::total_cmp);
        let dk = dists[15]; // a top-16-selective cutoff
        group.bench_function(BenchmarkId::new(format!("{}_seed", m.name()), 256), |bch| {
            bch.iter(|| {
                let mut kept = 0usize;
                for t in &trajs {
                    if black_box(reference::distance_within_from_lb(
                        &params, m, &query, &t.points, dk, 0.0,
                    ))
                    .is_some()
                    {
                        kept += 1;
                    }
                }
                kept
            })
        });
        group.bench_function(BenchmarkId::new(format!("{}_arena", m.name()), 256), |bch| {
            bch.iter(|| {
                let mut kept = 0usize;
                for s in 0..store.len() {
                    if black_box(params.distance_within_from_lb_in(
                        m,
                        &query,
                        store.points(s),
                        dk,
                        0.0,
                        &mut scratch,
                    ))
                    .is_some()
                    {
                        kept += 1;
                    }
                }
                kept
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
