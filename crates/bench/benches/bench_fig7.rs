//! Criterion companion to Fig. 7: optimized vs unoptimized trie — build
//! time and query latency.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_rptrie::RpTrieConfig;
use std::hint::black_box;

fn config(optimize: bool) -> ReposeConfig {
    let cfg = bench_cfg();
    ReposeConfig::new(Measure::Hausdorff)
        .with_cluster(cfg.cluster)
        .with_partitions(cfg.partitions)
        .with_delta(PaperDataset::TDrive.paper_delta(Measure::Hausdorff))
        .with_trie(RpTrieConfig::for_measure(Measure::Hausdorff).with_optimize(optimize))
}

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::TDrive);
    let mut group = c.benchmark_group("fig7_trie_opt");
    group.sample_size(10);
    for (label, optimize) in [("optimized", true), ("unoptimized", false)] {
        group.bench_function(format!("build_{label}"), |b| {
            b.iter(|| black_box(Repose::build(&data, config(optimize))))
        });
        let r = Repose::build(&data, config(optimize));
        group.bench_function(format!("query_{label}"), |b| {
            b.iter(|| black_box(r.query_independent(&queries[0].points, cfg.k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
