//! Criterion companion to Table IX: DFT vs Heter-DFT query latency.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use repose_baselines::{BaselinePlacement, Dft, DftConfig};
use repose_datagen::PaperDataset;
use repose_distance::{Measure, MeasureParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::TDrive);
    let mut group = c.benchmark_group("table9_heter_dft");
    group.sample_size(10);
    for (label, placement) in [
        ("DFT", BaselinePlacement::Homogeneous),
        ("Heter-DFT", BaselinePlacement::Heterogeneous),
    ] {
        let dft = Dft::build(
            &data,
            DftConfig {
                cluster: cfg.cluster,
                num_partitions: cfg.partitions,
                sample_factor: 5,
                placement,
                seed: cfg.seed,
            },
            Measure::Hausdorff,
            MeasureParams::default(),
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(dft.query(&queries[0].points, cfg.k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
