//! Micro-benchmarks of the six distance kernels — the refinement cost every
//! algorithm in Table IV ultimately pays — and of their threshold-aware
//! early-abandoning counterparts under a selective threshold (half the true
//! distance: the candidate loses, and the kernel should discover that at a
//! fraction of the full-DP cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repose_distance::{Measure, MeasureParams};
use repose_model::Point;
use std::hint::black_box;

fn traj(n: usize, phase: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.1 + phase;
            Point::new(t, (t * 1.7).sin())
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let params = MeasureParams::with_eps(0.2);
    let mut group = c.benchmark_group("distance_kernels");
    for n in [32usize, 128] {
        let a = traj(n, 0.0);
        let b = traj(n, 0.35);
        for m in Measure::ALL {
            group.bench_with_input(
                BenchmarkId::new(m.name(), n),
                &n,
                |bch, _| bch.iter(|| black_box(params.distance(m, &a, &b))),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("distance_within");
    for n in [32usize, 128] {
        let a = traj(n, 0.0);
        let b = traj(n, 0.35);
        // A trajectory far from `a`: the common case a selective query
        // threshold refutes, ideally via the O(m+n) prefilter alone.
        let far: Vec<Point> = traj(n, 0.35)
            .into_iter()
            .map(|p| Point::new(p.x + 100.0, p.y + 100.0))
            .collect();
        for m in Measure::ALL {
            let exact = params.distance(m, &a, &b);
            let thr = (exact * 0.5).max(f64::MIN_POSITIVE);
            group.bench_with_input(BenchmarkId::new(format!("{}_abandon", m.name()), n), &n, |bch, _| {
                bch.iter(|| black_box(params.distance_within(m, &a, &b, thr)))
            });
            group.bench_with_input(BenchmarkId::new(format!("{}_prefilter", m.name()), n), &n, |bch, _| {
                bch.iter(|| black_box(params.distance_within(m, &a, &far, thr)))
            });
            // Threshold above the true distance: the full DP runs and
            // returns the exact value — the overhead-measuring case.
            group.bench_with_input(BenchmarkId::new(format!("{}_pass", m.name()), n), &n, |bch, _| {
                bch.iter(|| {
                    black_box(params.distance_within(m, &a, &b, exact * 2.0 + 1.0))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
