//! Micro-benchmarks of the six distance kernels — the refinement cost every
//! algorithm in Table IV ultimately pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repose_distance::{Measure, MeasureParams};
use repose_model::Point;
use std::hint::black_box;

fn traj(n: usize, phase: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.1 + phase;
            Point::new(t, (t * 1.7).sin())
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let params = MeasureParams::with_eps(0.2);
    let mut group = c.benchmark_group("distance_kernels");
    for n in [32usize, 128] {
        let a = traj(n, 0.0);
        let b = traj(n, 0.35);
        for m in Measure::ALL {
            group.bench_with_input(
                BenchmarkId::new(m.name(), n),
                &n,
                |bch, _| bch.iter(|| black_box(params.distance(m, &a, &b))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
