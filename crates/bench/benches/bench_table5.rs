//! Criterion companion to Table V: REPOSE query latency across grid sides.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::TDrive);
    let mut group = c.benchmark_group("table5_delta");
    group.sample_size(10);
    for delta in [0.01f64, 0.05, 0.15, 0.30] {
        let r = Repose::build(
            &data,
            ReposeConfig::new(Measure::Hausdorff)
                .with_cluster(cfg.cluster)
                .with_partitions(cfg.partitions)
                .with_delta(delta),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(delta),
            &delta,
            |b, _| b.iter(|| black_box(r.query_independent(&queries[0].points, cfg.k))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
