//! Criterion companion to the `serve` experiment: single-call latencies of
//! the serving layer — cold query (sequential and pooled), cached query,
//! query with a populated delta buffer, insert, and incremental vs full
//! compaction.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_model::{Point, Trajectory};
use repose_service::{ReposeService, ServiceConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::TDrive);
    let build = || {
        Repose::build(
            &data,
            ReposeConfig::new(Measure::Hausdorff)
                .with_cluster(cfg.cluster)
                .with_partitions(cfg.partitions)
                .with_delta(PaperDataset::TDrive.paper_delta(Measure::Hausdorff)),
        )
    };
    let q = &queries[0].points;
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Sequential path: the scaling baseline of the serve_pool experiment.
    let uncached = ReposeService::with_config(
        build(),
        ServiceConfig { cache_capacity: 0, pool_threads: 1, ..ServiceConfig::default() },
    );
    group.bench_function("query_uncached", |b| {
        b.iter(|| black_box(uncached.query(q, cfg.k)))
    });

    // Bound-ordered pooled execution on 4 workers.
    let pooled = ReposeService::with_config(
        build(),
        ServiceConfig { cache_capacity: 0, pool_threads: 4, ..ServiceConfig::default() },
    );
    group.bench_function("query_pooled_4t", |b| {
        b.iter(|| black_box(pooled.query(q, cfg.k)))
    });

    let cached = ReposeService::new(build());
    cached.query(q, cfg.k).expect("query"); // prime
    group.bench_function("query_cached", |b| {
        b.iter(|| black_box(cached.query(q, cfg.k)))
    });

    let with_delta = ReposeService::with_config(
        build(),
        ServiceConfig { cache_capacity: 0, ..ServiceConfig::default() },
    );
    for i in 0..200u64 {
        let jit = i as f64 * 1e-5;
        with_delta
            .insert(Trajectory::new(
                5_000_000 + i,
                q.iter().map(|p| Point::new(p.x + jit, p.y + jit)).collect(),
            ))
            .expect("insert");
    }
    group.bench_function("query_with_200_delta", |b| {
        b.iter(|| black_box(with_delta.query(q, cfg.k)))
    });

    let sink = ReposeService::new(build());
    let mut next_id = 9_000_000u64;
    group.bench_function("insert", |b| {
        b.iter(|| {
            next_id += 1;
            sink.insert(Trajectory::new(next_id, q.clone())).expect("insert");
        })
    });

    // Compaction: one dirty partition, incremental vs forced-full. Each
    // iteration inserts one trajectory (so exactly one partition is
    // dirty) and compacts; the insert cost is negligible vs the rebuild.
    let compacting = ReposeService::new(build());
    compacting.compact().expect("compact");
    let mut cid = 7_000_000u64;
    group.bench_function("compact_incremental_one_dirty", |b| {
        b.iter(|| {
            cid += 1;
            compacting.insert(Trajectory::new(cid, q.clone())).expect("insert");
            black_box(compacting.compact().expect("compact"))
        })
    });
    group.bench_function("compact_full", |b| {
        b.iter(|| {
            cid += 1;
            compacting.insert(Trajectory::new(cid, q.clone())).expect("insert");
            black_box(compacting.compact_full().expect("compact"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
