//! Criterion companion to Table VIII: DITA vs Heter-DITA query latency.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use repose_baselines::{BaselinePlacement, Dita, DitaConfig};
use repose_datagen::PaperDataset;
use repose_distance::{Measure, MeasureParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::TDrive);
    let mut group = c.benchmark_group("table8_heter_dita");
    group.sample_size(10);
    for (label, placement) in [
        ("DITA", BaselinePlacement::Homogeneous),
        ("Heter-DITA", BaselinePlacement::Heterogeneous),
    ] {
        let dita = Dita::build(
            &data,
            DitaConfig {
                cluster: cfg.cluster,
                num_partitions: cfg.partitions,
                nl: 32,
                c_factor: 5,
                placement,
            },
            Measure::Frechet,
            MeasureParams::default(),
        );
        group.bench_function(label, |b| {
            b.iter(|| black_box(dita.query(&queries[0].points, cfg.k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
