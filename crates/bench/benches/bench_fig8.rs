//! Criterion companion to Fig. 8: REPOSE query latency vs dataset scale.

mod common;

use common::bench_cfg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repose::{Repose, ReposeConfig};
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::Measure;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("fig8_cardinality");
    group.sample_size(10);
    for scale in [0.01f64, 0.02, 0.04] {
        let data = PaperDataset::Osm.generate(scale, cfg.seed);
        let queries = sample_queries(&data, 1, 3);
        let r = Repose::build(
            &data,
            ReposeConfig::new(Measure::Hausdorff)
                .with_cluster(cfg.cluster)
                .with_partitions(cfg.partitions)
                .with_delta(PaperDataset::Osm.paper_delta(Measure::Hausdorff)),
        );
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, _| {
            b.iter(|| black_box(r.query_independent(&queries[0].points, cfg.k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
