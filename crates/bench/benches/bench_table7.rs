//! Criterion companion to Table VII: REPOSE query latency per partitioning
//! strategy.

mod common;

use common::{bench_cfg, small_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use repose::{PartitionStrategy, Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_cfg();
    let (data, queries) = small_workload(PaperDataset::Xian);
    let mut group = c.benchmark_group("table7_partitioning");
    group.sample_size(10);
    for strategy in [
        PartitionStrategy::Heterogeneous,
        PartitionStrategy::Homogeneous,
        PartitionStrategy::Random,
    ] {
        let r = Repose::build(
            &data,
            ReposeConfig::new(Measure::Hausdorff)
                .with_cluster(cfg.cluster)
                .with_partitions(cfg.partitions)
                .with_delta(PaperDataset::Xian.paper_delta(Measure::Hausdorff))
                .with_strategy(strategy),
        );
        group.bench_function(strategy.name(), |b| {
            b.iter(|| black_box(r.query_independent(&queries[0].points, cfg.k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
