//! Shared runners: build each algorithm once, time a query batch, report
//! the three Table IV metrics.

use repose::{PartitionStrategy, Repose, ReposeConfig};
use repose_baselines::{BaselinePlacement, Dft, DftConfig, Dita, DitaConfig, LinearScan};
use repose_cluster::ClusterConfig;
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::{Measure, MeasureParams};
use repose_model::{Dataset, Trajectory};

/// Shared experiment knobs.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Dataset scale factor (1.0 = the datagen base sizes).
    pub scale: f64,
    /// Queries per measurement (paper: 100; default here: 5).
    pub queries: usize,
    /// Top-k (paper default 100).
    pub k: usize,
    /// Number of partitions (paper default 64).
    pub partitions: usize,
    /// Simulated cluster.
    pub cluster: ClusterConfig,
    /// RNG seed.
    pub seed: u64,
    /// Reader threads for the `serve` experiment (the sweep's largest
    /// configuration; smaller reader counts are derived from it).
    pub readers: usize,
    /// Writer threads for the `serve` experiment.
    pub writers: usize,
    /// Delta-burst size for the `serve` experiment: inserts each writer
    /// issues (the uncompacted backlog a query must search through).
    pub write_burst: usize,
    /// Largest worker-pool size for the `serve_pool` experiment's sweep
    /// (smaller pool sizes are derived from it; 1 is always included as
    /// the sequential baseline).
    pub pool_threads: usize,
    /// Largest shard count for the `shard` experiment's sweep (smaller
    /// shard counts are derived from it; 1 is always included as the
    /// single-node baseline).
    pub shards: usize,
    /// Seeds to soak in the `sim` experiment, starting at `seed`.
    pub sim_seeds: usize,
    /// Repro file for the `sim` experiment: replay this shrunk schedule
    /// instead of generating scenarios from seeds.
    pub sim_repro: Option<String>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 1.0,
            queries: 5,
            k: 100,
            partitions: 64,
            cluster: ClusterConfig::paper_default().with_timing_repeats(3),
            seed: 0xE5E5,
            readers: 4,
            writers: 2,
            write_burst: 100,
            pool_threads: 4,
            shards: 4,
            sim_seeds: 50,
            sim_repro: None,
        }
    }
}

/// The per-algorithm measurement of one (dataset, measure) cell.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Mean simulated distributed query time (seconds).
    pub qt_s: f64,
    /// Index bytes (None = not applicable).
    pub is_bytes: Option<u64>,
    /// Index construction seconds (None = not applicable).
    pub it_s: Option<f64>,
}

/// Builds + times REPOSE under the *paper's* execution model
/// ([`Repose::query_independent`]: independent per-partition search,
/// merge at the end) so the replication tables/figures stay comparable to
/// the paper. The beyond-the-paper shared-threshold default
/// (`Repose::query`) is measured by the `scale` experiment.
pub fn run_repose(
    data: &Dataset,
    queries: &[Trajectory],
    measure: Measure,
    params: MeasureParams,
    delta: f64,
    strategy: PartitionStrategy,
    exp: &ExpConfig,
) -> Measured {
    let cfg = ReposeConfig::new(measure)
        .with_cluster(exp.cluster)
        .with_partitions(exp.partitions)
        .with_delta(delta)
        .with_strategy(strategy)
        .with_params(params)
        .with_seed(exp.seed);
    let r = Repose::build(data, cfg);
    let mut qt = 0.0;
    for q in queries {
        qt += r.query_independent(&q.points, exp.k).query_time().as_secs_f64();
    }
    Measured {
        qt_s: qt / queries.len().max(1) as f64,
        is_bytes: Some(r.index_bytes() as u64),
        it_s: Some(r.index_time().as_secs_f64()),
    }
}

/// Builds + times the linear scan.
pub fn run_ls(
    data: &Dataset,
    queries: &[Trajectory],
    measure: Measure,
    params: MeasureParams,
    exp: &ExpConfig,
) -> Measured {
    let ls = LinearScan::build(data, exp.cluster, exp.partitions, measure, params);
    let mut qt = 0.0;
    for q in queries {
        qt += ls.query(&q.points, exp.k).job.makespan.as_secs_f64();
    }
    Measured {
        qt_s: qt / queries.len().max(1) as f64,
        is_bytes: None,
        it_s: None,
    }
}

/// Builds + times DFT.
pub fn run_dft(
    data: &Dataset,
    queries: &[Trajectory],
    measure: Measure,
    params: MeasureParams,
    placement: BaselinePlacement,
    exp: &ExpConfig,
) -> Measured {
    let cfg = DftConfig {
        cluster: exp.cluster,
        num_partitions: exp.partitions,
        sample_factor: 5,
        placement,
        seed: exp.seed,
    };
    let dft = Dft::build(data, cfg, measure, params);
    let mut qt = 0.0;
    for q in queries {
        qt += dft.query(&q.points, exp.k).job.makespan.as_secs_f64();
    }
    Measured {
        qt_s: qt / queries.len().max(1) as f64,
        is_bytes: Some(dft.index_bytes() as u64),
        it_s: Some(dft.index_time().as_secs_f64()),
    }
}

/// Builds + times DITA (caller must check `Dita::supports(measure)`).
pub fn run_dita(
    data: &Dataset,
    queries: &[Trajectory],
    measure: Measure,
    params: MeasureParams,
    placement: BaselinePlacement,
    exp: &ExpConfig,
) -> Measured {
    let cfg = DitaConfig {
        cluster: exp.cluster,
        num_partitions: exp.partitions,
        nl: 32,
        c_factor: 5,
        placement,
    };
    let dita = Dita::build(data, cfg, measure, params);
    let mut qt = 0.0;
    for q in queries {
        qt += dita.query(&q.points, exp.k).job.makespan.as_secs_f64();
    }
    Measured {
        qt_s: qt / queries.len().max(1) as f64,
        is_bytes: Some(dita.index_bytes() as u64),
        it_s: Some(dita.index_time().as_secs_f64()),
    }
}

/// A built algorithm instance, for sweeps that reuse one index across many
/// queries/k values.
pub enum Algo {
    /// REPOSE deployment.
    Repose(Repose),
    /// DITA baseline.
    Dita(Dita),
    /// DFT baseline.
    Dft(Dft),
    /// Linear scan.
    Ls(LinearScan),
}

impl Algo {
    /// Display name (Table IV row labels).
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Repose(_) => "REPOSE",
            Algo::Dita(_) => "DITA",
            Algo::Dft(_) => "DFT",
            Algo::Ls(_) => "LS",
        }
    }

    /// Runs one query, returning the simulated distributed time (seconds).
    ///
    /// REPOSE uses [`Repose::query_independent`] — the paper's execution
    /// model — so the replication experiments keep measuring what the
    /// paper measured (the shared-threshold default is the `scale`
    /// experiment's subject).
    pub fn query_secs(&self, query: &[repose_model::Point], k: usize) -> f64 {
        match self {
            Algo::Repose(r) => r.query_independent(query, k).query_time().as_secs_f64(),
            Algo::Dita(d) => d.query(query, k).job.makespan.as_secs_f64(),
            Algo::Dft(d) => d.query(query, k).job.makespan.as_secs_f64(),
            Algo::Ls(l) => l.query(query, k).job.makespan.as_secs_f64(),
        }
    }

    /// Mean query time over a batch.
    pub fn batch_secs(&self, queries: &[Trajectory], k: usize) -> f64 {
        if queries.is_empty() {
            return 0.0;
        }
        queries
            .iter()
            .map(|q| self.query_secs(&q.points, k))
            .sum::<f64>()
            / queries.len() as f64
    }
}

/// Builds one algorithm over a dataset (`None` when the measure is
/// unsupported — DITA×Hausdorff, DFT×{LCSS,EDR,ERP}).
#[allow(clippy::too_many_arguments)]
pub fn build_algo(
    name: &str,
    data: &Dataset,
    measure: Measure,
    params: MeasureParams,
    delta: f64,
    placement: BaselinePlacement,
    strategy: PartitionStrategy,
    exp: &ExpConfig,
) -> Option<Algo> {
    match name {
        "REPOSE" => Some(Algo::Repose(Repose::build(
            data,
            ReposeConfig::new(measure)
                .with_cluster(exp.cluster)
                .with_partitions(exp.partitions)
                .with_delta(delta)
                .with_strategy(strategy)
                .with_params(params)
                .with_seed(exp.seed),
        ))),
        "DITA" => Dita::supports(measure).then(|| {
            Algo::Dita(Dita::build(
                data,
                DitaConfig {
                    cluster: exp.cluster,
                    num_partitions: exp.partitions,
                    nl: 32,
                    c_factor: 5,
                    placement,
                },
                measure,
                params,
            ))
        }),
        "DFT" => matches!(
            measure,
            Measure::Hausdorff | Measure::Frechet | Measure::Dtw
        )
        .then(|| {
            Algo::Dft(Dft::build(
                data,
                DftConfig {
                    cluster: exp.cluster,
                    num_partitions: exp.partitions,
                    sample_factor: 5,
                    placement,
                    seed: exp.seed,
                },
                measure,
                params,
            ))
        }),
        "LS" => Some(Algo::Ls(LinearScan::build(
            data,
            exp.cluster,
            exp.partitions,
            measure,
            params,
        ))),
        other => panic!("unknown algorithm {other}"),
    }
}

/// Generates a dataset + its query batch for an experiment.
pub fn load(ds: PaperDataset, exp: &ExpConfig) -> (Dataset, Vec<Trajectory>) {
    let data = ds.generate(exp.scale, exp.seed);
    let queries = sample_queries(&data, exp.queries, exp.seed ^ 0xABCD);
    (data, queries)
}

/// Measure parameters used throughout the experiments: ε tied to the
/// dataset's grid cell (like the paper ties δ to the dataset).
pub fn params_for(ds: PaperDataset, measure: Measure) -> MeasureParams {
    MeasureParams::with_eps(ds.paper_delta(measure))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.02,
            queries: 2,
            k: 5,
            partitions: 4,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 1,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn all_runners_produce_measurements() {
        let exp = tiny();
        let (data, queries) = load(PaperDataset::TDrive, &exp);
        let m = Measure::Frechet;
        let p = params_for(PaperDataset::TDrive, m);
        let delta = PaperDataset::TDrive.paper_delta(m);

        let r = run_repose(&data, &queries, m, p, delta, PartitionStrategy::Heterogeneous, &exp);
        assert!(r.qt_s >= 0.0 && r.is_bytes.unwrap() > 0 && r.it_s.unwrap() >= 0.0);

        let l = run_ls(&data, &queries, m, p, &exp);
        assert!(l.qt_s > 0.0 && l.is_bytes.is_none());

        let f = run_dft(&data, &queries, m, p, BaselinePlacement::Homogeneous, &exp);
        assert!(f.qt_s > 0.0 && f.is_bytes.unwrap() > 0);

        let d = run_dita(&data, &queries, m, p, BaselinePlacement::Homogeneous, &exp);
        assert!(d.qt_s > 0.0 && d.is_bytes.unwrap() > 0);
    }
}
