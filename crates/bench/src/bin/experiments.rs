//! The Section VII experiment driver.
//!
//! ```sh
//! cargo run --release -p repose-bench --bin experiments -- list
//! cargo run --release -p repose-bench --bin experiments -- table4 --scale 0.5
//! cargo run --release -p repose-bench --bin experiments -- all --scale 0.25 --queries 3
//! ```
//!
//! Each experiment prints a paper-style table and writes machine-readable
//! JSON to `results/<name>.json`.

use repose_bench::exp;
use repose_bench::runner::ExpConfig;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        eprintln!(
            "usage: experiments <name|all> [--scale S] [--queries N] [--k K] [--partitions P] \
             [--readers R] [--writers W] [--burst B] [--pool-threads T] [--shards N] \
             [--seeds N] [--repro FILE]"
        );
        eprintln!("experiments:");
        for e in exp::ALL {
            eprintln!("  {:<8} {}", e.name, e.what);
        }
        return;
    }
    let which = args[0].as_str();
    let mut cfg = ExpConfig::default();
    let mut i = 1;
    while i + 1 < args.len() + 1 {
        match args.get(i).map(String::as_str) {
            Some("--scale") => {
                cfg.scale = args[i + 1].parse().expect("bad --scale");
                i += 2;
            }
            Some("--queries") => {
                cfg.queries = args[i + 1].parse().expect("bad --queries");
                i += 2;
            }
            Some("--k") => {
                cfg.k = args[i + 1].parse().expect("bad --k");
                i += 2;
            }
            Some("--partitions") => {
                cfg.partitions = args[i + 1].parse().expect("bad --partitions");
                i += 2;
            }
            Some("--seed") => {
                cfg.seed = args[i + 1].parse().expect("bad --seed");
                i += 2;
            }
            Some("--readers") => {
                cfg.readers = args[i + 1].parse().expect("bad --readers");
                i += 2;
            }
            Some("--writers") => {
                cfg.writers = args[i + 1].parse().expect("bad --writers");
                i += 2;
            }
            Some("--burst") => {
                cfg.write_burst = args[i + 1].parse().expect("bad --burst");
                i += 2;
            }
            Some("--pool-threads") => {
                cfg.pool_threads = args[i + 1].parse().expect("bad --pool-threads");
                i += 2;
            }
            Some("--shards") => {
                cfg.shards = args[i + 1].parse().expect("bad --shards");
                i += 2;
            }
            Some("--seeds") => {
                cfg.sim_seeds = args[i + 1].parse().expect("bad --seeds");
                i += 2;
            }
            Some("--repro") => {
                cfg.sim_repro = Some(args[i + 1].clone());
                i += 2;
            }
            Some(other) => panic!("unknown flag {other}"),
            None => break,
        }
    }
    std::fs::create_dir_all("results").expect("create results dir");
    eprintln!(
        "config: scale {}, {} queries, k = {}, {} partitions, {}x{} cluster",
        cfg.scale,
        cfg.queries,
        cfg.k,
        cfg.partitions,
        cfg.cluster.workers,
        cfg.cluster.cores_per_worker
    );
    for e in exp::ALL {
        if which != "all" && which != e.name {
            continue;
        }
        eprintln!("\n###### {} — {} ######", e.name, e.what);
        let t0 = Instant::now();
        let value = (e.run)(&cfg);
        let path = format!("results/{}.json", e.name);
        std::fs::write(&path, serde_json::to_string_pretty(&value).expect("json"))
            .expect("write results");
        eprintln!("[{}] finished in {:.1?}, wrote {path}", e.name, t0.elapsed());
    }
}
