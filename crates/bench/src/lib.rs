//! Experiment harness for reproducing Section VII of the paper.
//!
//! Every table and figure has a runner in [`exp`]; the `experiments` binary
//! dispatches to them and prints paper-style tables. The `benches/`
//! directory carries criterion micro-benchmarks over the same code paths.
//!
//! Scaling note: the synthetic datasets are ~100–1000× smaller than the
//! paper's (DESIGN.md §2), and the default query batch is 5 instead of 100,
//! so *absolute* times are not comparable — the harness is about the shape:
//! who wins, by what factor, and where the U-curves turn.
//!
//! ```
//! use repose_bench::runner::{load, ExpConfig};
//! use repose_bench::{fmt_bytes, fmt_secs};
//! use repose_datagen::PaperDataset;
//!
//! let mut exp = ExpConfig::default();
//! exp.scale = 0.02; // tiny, for a fast doctest
//! exp.queries = 2;
//! let (data, queries) = load(PaperDataset::TDrive, &exp);
//! assert!(!data.is_empty());
//! assert_eq!(queries.len(), 2);
//! assert_eq!(fmt_secs(0.0123), "12.30ms");
//! assert_eq!(fmt_bytes(2048), "2.0KiB");
//! ```

pub mod exp;
pub mod runner;

use serde::Serialize;

/// One measured algorithm/dataset/measure cell (Table IV's three metrics).
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Algorithm name (REPOSE / DITA / DFT / LS).
    pub algo: String,
    /// Dataset label.
    pub dataset: String,
    /// Measure name.
    pub measure: String,
    /// Average simulated distributed query time, seconds.
    pub qt_s: f64,
    /// Index size, bytes (`None` where the paper prints "/").
    pub is_bytes: Option<u64>,
    /// Index construction time, seconds (`None` where the paper prints "/").
    pub it_s: Option<f64>,
}

/// Generic experiment record: a labeled series of (x, y) points, one per
/// swept parameter value — enough to regenerate any figure.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Series label (e.g. "REPOSE Hausdorff T-drive").
    pub label: String,
    /// Swept x values.
    pub x: Vec<f64>,
    /// Measured y values (seconds unless stated otherwise).
    pub y: Vec<f64>,
}

/// Formats seconds compactly for table cells.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats bytes compactly.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

/// Prints an aligned table: `header` then `rows` of equal arity.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(header.iter().map(|s| s.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for r in rows {
        println!("{}", line(r.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0000005), "0.5us");
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(3.2), "3.20s");
    }

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(12), "12B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
    }
}
