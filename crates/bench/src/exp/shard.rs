//! Sharded serving experiment (beyond the paper): scatter-gather over the
//! loopback transport vs the single-node path, with the same
//! `list_schedule` methodology the pool experiment uses.
//!
//! Two sections, one JSON object:
//!
//! * `"healthy"` — one row per swept shard count. Per-shard task durations
//!   are measured once by querying each shard's service *directly and
//!   sequentially* (clean single-core numbers, no coordinator in the way),
//!   then list-scheduled onto the shards — every shard is a core of the
//!   modeled deployment — to give the **modeled** distributed latency,
//!   host-core-count-independent. The **host** wall latency of the real
//!   scatter-gather (coordinator thread, worker threads, wire-level
//!   `Tighten` broadcasts) is reported next to it, plus the
//!   `model_vs_wall` ratio that says how much of the wall time the
//!   schedule model explains. Every merged answer is asserted, in-run,
//!   bitwise-equal (distance multiset) to the single-node reference.
//! * `"degraded"` — the same queries against an unreplicated cluster with
//!   one shard crashed: every answer must come back flagged `degraded`
//!   with the retry accounting that proves the coordinator actually
//!   walked its deadline/backoff ladder before giving up.

use crate::runner::{load, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::{Repose, ReposeConfig};
use repose_cluster::list_schedule;
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_rptrie::Hit;
use repose_service::{ReposeService, ServiceConfig};
use repose_shard::{NetFault, NetFaultPlan, ShardCluster, ShardClusterConfig};
use serde_json::{json, Value};
use std::time::Duration;

/// Shard counts to sweep: 1 (the single-node baseline), half the maximum,
/// and the maximum.
fn shard_sweep(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut sizes = vec![1, max.div_ceil(2), max];
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// The sorted distance multiset of a result, as exact bits — the same
/// exactness contract the differential suites use (tied *ids* may resolve
/// differently between two exact executions; distances may not).
fn dist_bits(hits: &[Hit]) -> Vec<u64> {
    let mut d: Vec<u64> = hits.iter().map(|h| h.dist.to_bits()).collect();
    d.sort_unstable();
    d
}

fn mean_secs(samples: &[Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(Duration::as_secs_f64).sum::<f64>() / samples.len() as f64
}

/// A cluster config tuned for benching: no result cache (every query is
/// measured cold) and deadlines short enough that the degraded section's
/// retry ladder completes quickly.
fn bench_cluster_config(shards: usize, replicate: bool) -> ShardClusterConfig {
    ShardClusterConfig {
        shards,
        replicate,
        cache_capacity: 0,
        attempt_timeout: Duration::from_millis(150),
        max_retries: 1,
        ..ShardClusterConfig::default()
    }
}

/// Runs the shard sweep + crashed-shard degradation pass.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::TDrive;
    let measure = Measure::Hausdorff;
    let (data, queries) = load(ds, exp);
    let cfg = ReposeConfig::new(measure)
        .with_cluster(exp.cluster)
        .with_partitions(exp.partitions)
        .with_delta(ds.paper_delta(measure))
        .with_seed(exp.seed);

    // ---- Single-node reference ---------------------------------------
    // The answer every merged scatter-gather result must match bitwise,
    // and the latency baseline the speedup columns divide by.
    let single = ReposeService::with_config(
        Repose::build(&data, cfg),
        ServiceConfig { cache_capacity: 0, pool_threads: 1, ..ServiceConfig::default() },
    );
    if let Some(q) = queries.first() {
        let _ = single.query(&q.points, exp.k); // warm-up outside measurement
    }
    let mut single_latency: Vec<Duration> = Vec::new();
    let mut reference_bits: Vec<Vec<u64>> = Vec::new();
    for q in &queries {
        let out = single.query(&q.points, exp.k).expect("query");
        single_latency.push(out.latency);
        reference_bits.push(dist_bits(&out.hits));
    }
    let single_mean = mean_secs(&single_latency);

    // ---- Healthy sweep -----------------------------------------------
    let mut rows = Vec::new();
    let mut healthy_rows = Vec::new();
    for &shards in &shard_sweep(exp.shards) {
        let mut cluster = ShardCluster::build(
            data.clone(),
            cfg,
            bench_cluster_config(shards, false),
            NetFaultPlan::new(),
            None,
        );
        // Per-shard task durations, measured sequentially against each
        // shard's own service: what one shard's core spends on the query.
        let mut task_times: Vec<Vec<Duration>> = Vec::new();
        for q in &queries {
            let per_shard: Vec<Duration> = (0..shards)
                .map(|s| {
                    cluster
                        .leader_service(s)
                        .query(&q.points, exp.k)
                        .expect("shard query")
                        .latency
                })
                .collect();
            task_times.push(per_shard);
        }
        let modeled: Vec<f64> = task_times
            .iter()
            .map(|t| list_schedule(t, shards).as_secs_f64())
            .collect();
        let modeled_mean = modeled.iter().sum::<f64>() / modeled.len().max(1) as f64;

        // The real scatter-gather, with the per-query exactness assert.
        if let Some(q) = queries.first() {
            let _ = cluster.query(&q.points, exp.k); // warm-up
        }
        let mut host: Vec<Duration> = Vec::new();
        let (mut tightenings, mut retries, mut hedges) = (0u64, 0u64, 0u64);
        for (q, want) in queries.iter().zip(&reference_bits) {
            let out = cluster.query(&q.points, exp.k);
            assert!(!out.degraded, "healthy cluster degraded a query");
            assert_eq!(
                &dist_bits(&out.hits),
                want,
                "scatter-gather diverged from the single-node answer"
            );
            host.push(out.latency);
            tightenings += u64::from(out.tightenings);
            retries += u64::from(out.retries);
            hedges += u64::from(out.hedges);
        }
        cluster.shutdown();
        let host_mean = mean_secs(&host);
        let modeled_speedup = if modeled_mean > 0.0 { single_mean / modeled_mean } else { 1.0 };
        let host_speedup = if host_mean > 0.0 { single_mean / host_mean } else { 1.0 };
        let model_vs_wall = if host_mean > 0.0 { modeled_mean / host_mean } else { 1.0 };
        rows.push(vec![
            format!("{shards}"),
            fmt_secs(host_mean),
            format!("{host_speedup:.2}x"),
            fmt_secs(modeled_mean),
            format!("{modeled_speedup:.2}x"),
            format!("{model_vs_wall:.2}"),
            format!("{tightenings}"),
        ]);
        healthy_rows.push(json!({
            "shards": shards,
            "partitions": exp.partitions,
            "queries": queries.len(),
            "k": exp.k,
            "host_mean_s": host_mean,
            "host_speedup_vs_single": host_speedup,
            "modeled_mean_s": modeled_mean,
            "single_mean_s": single_mean,
            "modeled_speedup_vs_single": modeled_speedup,
            "model_vs_wall": model_vs_wall,
            "tightenings": tightenings,
            "retries": retries,
            "hedges": hedges,
            "exact": true,
        }));
    }

    // ---- Degraded pass: one shard crashed, no replica ----------------
    // Partial answers must come back flagged, with the retry ladder
    // walked — never silently wrong, never cached.
    let shards = exp.shards.max(2);
    let faults = NetFaultPlan::new();
    faults.arm(&format!("shard{}", shards - 1), NetFault::Crash, 0);
    let mut cluster =
        ShardCluster::build(data.clone(), cfg, bench_cluster_config(shards, false), faults, None);
    let mut degraded_queries = 0u64;
    let (mut shards_failed, mut deg_retries) = (0u64, 0u64);
    let mut deg_latency: Vec<Duration> = Vec::new();
    for q in &queries {
        let out = cluster.query(&q.points, exp.k);
        assert!(out.degraded, "a crashed shard must degrade the answer");
        assert!(!out.cache_hit, "degraded answers must never be cached");
        degraded_queries += 1;
        shards_failed += u64::from(out.shards_failed);
        deg_retries += u64::from(out.retries);
        deg_latency.push(out.latency);
    }
    cluster.shutdown();
    let degraded = json!({
        "shards": shards,
        "crashed": 1,
        "queries": queries.len(),
        "degraded_queries": degraded_queries,
        "shards_failed_total": shards_failed,
        "retries_total": deg_retries,
        "host_mean_s": mean_secs(&deg_latency),
    });

    println!(
        "\n== shard: sweep up to {} shards, {} partitions, k = {}, {} queries ==",
        exp.shards, exp.partitions, exp.k, queries.len()
    );
    print_table(
        &["shards", "host mean", "host speedup", "modeled mean", "modeled speedup",
          "model/wall", "tightenings"],
        &rows,
    );
    println!(
        "degraded: {} shards with 1 crashed, {}/{} queries flagged, {} retries, mean {}",
        shards,
        degraded_queries,
        queries.len(),
        deg_retries,
        fmt_secs(mean_secs(&deg_latency)),
    );
    json!({ "healthy": healthy_rows, "degraded": degraded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_cluster::ClusterConfig;

    #[test]
    fn shard_sweep_is_deduped_and_sorted() {
        assert_eq!(shard_sweep(4), vec![1, 2, 4]);
        assert_eq!(shard_sweep(1), vec![1]);
        assert_eq!(shard_sweep(3), vec![1, 2, 3]);
        assert_eq!(shard_sweep(0), vec![1]);
    }

    #[test]
    fn shard_experiment_produces_sound_numbers() {
        let exp = ExpConfig {
            scale: 0.02,
            queries: 2,
            k: 5,
            partitions: 4,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 7,
            shards: 2,
            ..ExpConfig::default()
        };
        let v = run(&exp); // the in-run asserts are the exactness check
        let rows = v["healthy"].as_array().expect("healthy rows");
        assert_eq!(rows.len(), 2); // {1, 2}
        for row in rows {
            assert!(row["host_mean_s"].as_f64().unwrap() > 0.0);
            assert!(row["modeled_mean_s"].as_f64().unwrap() > 0.0);
            assert!(row["model_vs_wall"].as_f64().unwrap() > 0.0);
            assert!(row["exact"].as_bool().unwrap());
        }
        let d = &v["degraded"];
        assert_eq!(d["degraded_queries"].as_u64().unwrap(), 2);
        assert!(d["shards_failed_total"].as_u64().unwrap() >= 2);
        assert!(d["retries_total"].as_u64().unwrap() >= 2);
    }
}
