//! Table IX: applying REPOSE's heterogeneous partitioning to DFT
//! (Heter-DFT), compared on Hausdorff and Frechet over T-drive, Xi'an and
//! OSM.

use crate::runner::{load, params_for, run_dft, run_repose, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::PartitionStrategy;
use repose_baselines::BaselinePlacement;
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use serde_json::{json, Value};

const DATASETS: [PaperDataset; 3] =
    [PaperDataset::TDrive, PaperDataset::Xian, PaperDataset::Osm];

/// REPOSE vs Heter-DFT vs DFT.
pub fn run(exp: &ExpConfig) -> Value {
    let mut out = Vec::new();
    for measure in [Measure::Hausdorff, Measure::Frechet] {
        println!("\n== Table IX: {measure} ==");
        let mut rows: Vec<Vec<String>> = vec![
            vec!["REPOSE".into()],
            vec!["Heter-DFT".into()],
            vec!["DFT".into()],
        ];
        for ds in DATASETS {
            eprintln!("table9: {} / {measure}...", ds.name());
            let (data, queries) = load(ds, exp);
            let params = params_for(ds, measure);
            let delta = ds.paper_delta(measure);
            let repose = run_repose(
                &data, &queries, measure, params, delta,
                PartitionStrategy::Heterogeneous, exp,
            );
            let heter = run_dft(
                &data, &queries, measure, params,
                BaselinePlacement::Heterogeneous, exp,
            );
            let homo = run_dft(
                &data, &queries, measure, params,
                BaselinePlacement::Homogeneous, exp,
            );
            rows[0].push(fmt_secs(repose.qt_s));
            rows[1].push(fmt_secs(heter.qt_s));
            rows[2].push(fmt_secs(homo.qt_s));
            out.push(json!({
                "measure": measure.name(),
                "dataset": ds.name(),
                "repose_qt_s": repose.qt_s,
                "heter_dft_qt_s": heter.qt_s,
                "dft_qt_s": homo.qt_s,
            }));
        }
        print_table(&["Algorithm", "T-drive", "Xi'an", "OSM"], &rows);
    }
    Value::Array(out)
}
