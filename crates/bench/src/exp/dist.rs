//! Early-abandoning distance-kernel experiment (beyond the paper): how
//! much exact-verification work the threshold-aware kernels save, per
//! measure.
//!
//! Two vantage points, reported side by side with QT:
//!
//! * **index level** — run the normal REPOSE top-k queries and report the
//!   search counters: how many exact verifications ran and how many of
//!   them the running k-th distance refuted before full `O(m·n)` cost
//!   (`exact_abandoned`).
//! * **kernel level** — scan the whole dataset against one query, once
//!   with the unbounded kernels and once with `distance_within` under the
//!   true k-th distance as threshold (the selectivity an ideal index gives
//!   every verification), and compare host wall times directly.

use crate::runner::{load, params_for, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_model::Dataset;
use repose_rptrie::SearchStats;
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

struct KernelScan {
    full_s: f64,
    within_s: f64,
    abandoned: usize,
    scanned: usize,
}

/// Full-dataset scan with and without the threshold: the per-kernel cost
/// comparison, decoupled from index pruning.
fn kernel_scan(
    data: &Dataset,
    query: &[repose_model::Point],
    measure: Measure,
    params: &repose_distance::MeasureParams,
    k: usize,
) -> KernelScan {
    let t0 = Instant::now();
    let mut dists: Vec<f64> = data
        .trajectories()
        .iter()
        .map(|t| black_box(params.distance(measure, query, &t.points)))
        .collect();
    let full_s = t0.elapsed().as_secs_f64();
    dists.sort_by(f64::total_cmp);
    let dk = dists[k.clamp(1, dists.len()) - 1];

    let t0 = Instant::now();
    let mut abandoned = 0usize;
    for t in data.trajectories() {
        if black_box(params.distance_within(measure, query, &t.points, dk)).is_none() {
            abandoned += 1;
        }
    }
    let within_s = t0.elapsed().as_secs_f64();
    KernelScan { full_s, within_s, abandoned, scanned: data.len() }
}

/// Runs the early-abandoning experiment over all six measures.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::TDrive;
    let (data, queries) = load(ds, exp);
    if data.is_empty() || queries.is_empty() {
        eprintln!("[dist] nothing to measure (empty dataset or --queries 0)");
        return Value::Array(Vec::new());
    }

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for measure in Measure::ALL {
        let params = params_for(ds, measure);
        let cfg = ReposeConfig::new(measure)
            .with_cluster(exp.cluster)
            .with_partitions(exp.partitions)
            .with_delta(ds.paper_delta(measure))
            .with_params(params)
            .with_seed(exp.seed);
        let r = Repose::build(&data, cfg);
        let mut qt = 0.0;
        let mut search = SearchStats::default();
        for q in &queries {
            let o = r.query(&q.points, exp.k);
            qt += o.query_time().as_secs_f64();
            search.merge(&o.search);
        }
        let qt_s = qt / queries.len().max(1) as f64;

        let scan = kernel_scan(&data, &queries[0].points, measure, &params, exp.k);
        let speedup = if scan.within_s > 0.0 { scan.full_s / scan.within_s } else { 0.0 };
        let abandon_rate = if search.exact_computations > 0 {
            search.exact_abandoned as f64 / search.exact_computations as f64
        } else {
            0.0
        };
        rows.push(vec![
            measure.name().to_string(),
            fmt_secs(qt_s),
            search.exact_computations.to_string(),
            search.exact_abandoned.to_string(),
            format!("{:.0}%", abandon_rate * 100.0),
            fmt_secs(scan.full_s),
            fmt_secs(scan.within_s),
            format!("{speedup:.1}x"),
        ]);
        out.push(json!({
            "measure": measure.name(),
            "qt_s": qt_s,
            "exact_computations": search.exact_computations,
            "exact_abandoned": search.exact_abandoned,
            "abandon_rate": abandon_rate,
            "scan_trajectories": scan.scanned,
            "scan_abandoned": scan.abandoned,
            "scan_full_s": scan.full_s,
            "scan_within_s": scan.within_s,
            "scan_speedup": speedup,
        }));
    }
    println!(
        "\n== dist: early-abandoning verification, k = {}, {} queries, scale {} ==",
        exp.k, exp.queries, exp.scale
    );
    print_table(
        &[
            "Measure", "QT", "exact", "abandoned", "abandon %", "scan full",
            "scan within", "speedup",
        ],
        &rows,
    );
    Value::Array(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_cluster::ClusterConfig;

    #[test]
    fn dist_experiment_shows_abandoning_on_selective_queries() {
        let exp = ExpConfig {
            scale: 0.05,
            queries: 2,
            k: 3,
            partitions: 4,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 9,
            ..ExpConfig::default()
        };
        let v = run(&exp);
        let rows = v.as_array().expect("one row per measure");
        assert_eq!(rows.len(), 6);
        let mut any_index_abandons = false;
        for row in rows {
            assert!(row["qt_s"].as_f64().unwrap() >= 0.0);
            let exact = row["exact_computations"].as_u64().unwrap();
            let abandoned = row["exact_abandoned"].as_u64().unwrap();
            assert!(abandoned <= exact, "abandons exceed attempts");
            any_index_abandons |= abandoned > 0;
            // A selective threshold (true k-th over the whole set) must
            // let the kernel-level scan abandon most of the dataset.
            let scanned = row["scan_trajectories"].as_u64().unwrap();
            let scan_abandoned = row["scan_abandoned"].as_u64().unwrap();
            assert!(
                scan_abandoned > scanned / 2,
                "{:?}: only {scan_abandoned}/{scanned} scans abandoned",
                row["measure"].as_str()
            );
        }
        assert!(any_index_abandons, "no measure abandoned inside the index search");
    }
}
