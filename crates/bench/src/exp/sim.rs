//! Deterministic simulation soak: run seeded whole-system scenarios and
//! check every answer against the shadow oracle.
//!
//! ```sh
//! # soak 200 seeds starting at 0
//! cargo run --release -p repose-bench --bin experiments -- sim --seed 0 --seeds 200
//! # re-run one seed
//! cargo run --release -p repose-bench --bin experiments -- sim --seed 1337 --seeds 1
//! # re-run a shrunk repro file
//! cargo run --release -p repose-bench --bin experiments -- sim --repro results/sim_repro_1337.json
//! ```
//!
//! On failure the seed is printed, the schedule is auto-shrunk, and the
//! minimized repro is written to `results/sim_repro_<seed>.json` so it can
//! be replayed (and attached to a bug report) without the seed.

use crate::runner::ExpConfig;
use repose_sim::{run_scenario, shrink, Scenario, Verdict};
use serde_json::{json, Value};
use std::time::Instant;

pub fn run(cfg: &ExpConfig) -> Value {
    if let Some(path) = &cfg.sim_repro {
        return run_repro(path);
    }

    let start = cfg.seed;
    let count = cfg.sim_seeds.max(1) as u64;
    eprintln!("soaking {count} seeds starting at {start}");
    let t0 = Instant::now();
    let mut failures: Vec<Value> = Vec::new();
    for seed in start..start + count {
        let sc = Scenario::generate(seed);
        let report = run_scenario(&sc, None);
        if let Verdict::Failed { op, reason } = &report.verdict {
            eprintln!("seed {seed} FAILED at op {op}: {reason}");
            eprintln!("  last events:");
            for line in report.events.iter().rev().take(6).rev() {
                eprintln!("    {line}");
            }
            let shrunk = shrink(&sc, None, 400);
            let path = format!("results/sim_repro_{seed}.json");
            std::fs::write(&path, shrunk.scenario.to_json()).expect("write repro");
            eprintln!(
                "  shrunk to {} ops / {} initial trajectories in {} runs -> {path}",
                shrunk.scenario.ops.len(),
                shrunk.scenario.initial.len(),
                shrunk.runs
            );
            failures.push(json!({
                "seed": seed,
                "op": *op as u64,
                "reason": reason.clone(),
                "repro": path,
                "shrunk_ops": shrunk.scenario.ops.len() as u64,
            }));
        }
    }
    let elapsed = t0.elapsed();
    eprintln!(
        "{}/{count} seeds passed in {elapsed:.1?}",
        count - failures.len() as u64
    );
    if !failures.is_empty() {
        eprintln!("FAILING SEEDS: re-run any with `experiments -- sim --seed <s> --seeds 1`");
    }
    json!({
        "start_seed": start,
        "seeds": count,
        "failed": failures.len() as u64,
        "elapsed_secs": elapsed.as_secs_f64(),
        "failures": failures,
    })
}

fn run_repro(path: &str) -> Value {
    let text = std::fs::read_to_string(path).expect("read repro file");
    let sc = Scenario::from_json(&text).expect("parse repro file");
    eprintln!(
        "replaying repro {path}: seed {} / {:?} / {} ops",
        sc.seed, sc.mode, sc.ops.len()
    );
    let report = run_scenario(&sc, None);
    for line in &report.events {
        eprintln!("  {line}");
    }
    match &report.verdict {
        Verdict::Ok => eprintln!("repro passed (bug no longer reproduces)"),
        Verdict::Failed { op, reason } => eprintln!("repro FAILED at op {op}: {reason}"),
    }
    json!({
        "repro": path,
        "seed": report.seed,
        "events": report.events.len() as u64,
        "failed": report.failed(),
    })
}
