//! Fig. 9: effect of the number of partitions (16, 32, 48, 64) on OSM for
//! Hausdorff and Frechet, all four algorithms.

use crate::runner::{build_algo, load, params_for, ExpConfig};
use crate::{fmt_secs, print_table, Series};
use repose::PartitionStrategy;
use repose_baselines::BaselinePlacement;
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use serde_json::Value;

const PARTS: [usize; 4] = [16, 32, 48, 64];

/// Sweeps the partition count and reports query times.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::Osm;
    let (data, queries) = load(ds, exp);
    let mut series: Vec<Series> = Vec::new();
    for measure in [Measure::Hausdorff, Measure::Frechet] {
        println!("\n== Fig. 9: OSM with {measure} ==");
        let params = params_for(ds, measure);
        let delta = ds.paper_delta(measure);
        let mut per_algo: std::collections::HashMap<&str, Vec<f64>> = Default::default();
        for &n in &PARTS {
            eprintln!("fig9: {measure} partitions {n}...");
            let mut cfg = exp.clone();
            cfg.partitions = n;
            for algo_name in ["REPOSE", "DITA", "DFT", "LS"] {
                let Some(algo) = build_algo(
                    algo_name,
                    &data,
                    measure,
                    params,
                    delta,
                    BaselinePlacement::Homogeneous,
                    PartitionStrategy::Heterogeneous,
                    &cfg,
                ) else {
                    continue;
                };
                per_algo
                    .entry(algo_name)
                    .or_default()
                    .push(algo.batch_secs(&queries, exp.k));
            }
        }
        let mut table: Vec<Vec<String>> = Vec::new();
        for (algo, ys) in &per_algo {
            let mut row = vec![algo.to_string()];
            row.extend(ys.iter().map(|&y| fmt_secs(y)));
            table.push(row);
            series.push(Series {
                label: format!("{algo} OSM {measure}"),
                x: PARTS.iter().map(|&p| p as f64).collect(),
                y: ys.clone(),
            });
        }
        table.sort();
        let mut header = vec!["Algorithm".to_string()];
        header.extend(PARTS.iter().map(|p| format!("{p} parts")));
        let refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(&refs, &table);
    }
    serde_json::to_value(&series).expect("serializable")
}
