//! Restart experiment (beyond the paper): what a cold start costs with
//! and without a persistent archive.
//!
//! Three sections, one JSON object:
//!
//! * `"cold_start"` — the same frozen deployment started two ways: a full
//!   rebuild from raw trajectories (what a CSV restart must do) vs
//!   checksum + `mmap` attach of an archive generation
//!   ([`repose_archive::Archive::attach`]). Both paths are timed
//!   end-to-end and the attach path's answers are asserted bitwise
//!   identical, so the reported speedup never trades correctness.
//! * `"scrub"` — throughput of the online corruption scrub over the
//!   mapped generation (every checksum re-verified).
//! * `"service"` — the full service-level restart: a durable + archived
//!   service crashes after a compaction and a tail of writes, and
//!   [`repose_service::ReposeService::recover`] runs once with the
//!   archive (attach + WAL-tail replay) and once without (WAL base
//!   rebuild), with identical fingerprints required.

use crate::runner::{load, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::{Repose, ReposeConfig};
use repose_archive::{write_archive, Archive};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_durability::FailPlan;
use repose_model::Trajectory;
use repose_service::{DurabilityConfig, FsyncPolicy, ReposeService, ServiceConfig};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A fresh, unique directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("repose-restart-{tag}-{}-{n}", std::process::id()))
}

/// Sorted distance bit patterns of the first query — the bit-exact
/// fingerprint equality the crash suites use.
fn deployment_bits(r: &Repose, q: &[repose_model::Point], k: usize) -> Vec<u64> {
    let mut bits: Vec<u64> = r.query(q, k).hits.iter().map(|h| h.dist.to_bits()).collect();
    bits.sort_unstable();
    bits
}

fn service_bits(svc: &ReposeService, q: &[repose_model::Point], k: usize) -> Vec<u64> {
    let mut bits: Vec<u64> = svc
        .query(q, k)
        .expect("query")
        .hits
        .iter()
        .map(|h| h.dist.to_bits())
        .collect();
    bits.sort_unstable();
    bits
}

/// Runs the cold-start comparison + scrub throughput measurement.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::TDrive;
    let measure = Measure::Hausdorff;
    let (data, queries) = load(ds, exp);
    let cfg = ReposeConfig::new(measure)
        .with_cluster(exp.cluster)
        .with_partitions(exp.partitions)
        .with_delta(ds.paper_delta(measure))
        .with_seed(exp.seed);
    let q = queries.first().expect("at least one query");

    // ---- Cold start: rebuild vs attach -------------------------------
    let t0 = Instant::now();
    let built = Repose::build(&data, cfg);
    let build_s = t0.elapsed().as_secs_f64();
    let reference = deployment_bits(&built, &q.points, exp.k);

    let arc_dir = fresh_dir("arc");
    let t0 = Instant::now();
    let path = write_archive(&arc_dir, &built, 0, &FailPlan::new()).expect("archive install");
    let write_s = t0.elapsed().as_secs_f64();
    let archive_bytes = std::fs::metadata(&path).expect("archive metadata").len();
    drop(built);

    let t0 = Instant::now();
    let archive = Archive::open(&path, &FailPlan::new()).expect("archive open");
    let attached = archive.attach().expect("archive attach");
    let attach_s = t0.elapsed().as_secs_f64();
    let answers_match = deployment_bits(&attached, &q.points, exp.k) == reference;
    assert!(answers_match, "attached deployment diverged from the built one");
    let speedup = if attach_s > 0.0 { build_s / attach_s } else { 0.0 };
    drop(attached);

    // ---- Scrub throughput --------------------------------------------
    let t0 = Instant::now();
    let scrub = archive.scrub();
    let scrub_s = t0.elapsed().as_secs_f64();
    assert!(scrub.is_clean(), "fresh archive scrubbed dirty: {:?}", scrub.corrupt);
    let scrub_mb_s = if scrub_s > 0.0 {
        scrub.bytes as f64 / scrub_s / (1024.0 * 1024.0)
    } else {
        0.0
    };
    drop(archive);
    let _ = std::fs::remove_dir_all(&arc_dir);

    // ---- Service-level restart: attach + WAL tail vs full rebuild ----
    let (wal_dir, svc_arc_dir) = (fresh_dir("wal"), fresh_dir("svc-arc"));
    let archived = |arc: bool| ServiceConfig {
        cache_capacity: 0,
        pool_threads: 1,
        durability: Some(DurabilityConfig::new(&wal_dir).with_fsync(FsyncPolicy::Never)),
        archive: arc.then(|| svc_arc_dir.clone()),
        ..ServiceConfig::default()
    };
    let svc = ReposeService::try_with_config(Repose::build(&data, cfg), archived(true))
        .expect("archived service");
    for i in 0..exp.write_burst {
        let src = &data.trajectories()[i % data.len()];
        svc.insert(Trajectory::new(40_000_000 + i as u64, src.points.clone()))
            .expect("insert");
    }
    svc.compact().expect("compact");
    // The tail only the WAL holds: half the burst again, after the
    // archived checkpoint.
    for i in 0..exp.write_burst / 2 {
        let src = &data.trajectories()[i % data.len()];
        svc.insert(Trajectory::new(41_000_000 + i as u64, src.points.clone()))
            .expect("insert");
    }
    let pre_crash = service_bits(&svc, &q.points, exp.k);
    drop(svc);

    let (slow, slow_report) = ReposeService::recover(cfg, archived(false)).expect("rebuild recovery");
    assert!(!slow_report.from_archive);
    let slow_s = slow_report.wall_time.as_secs_f64();
    let slow_bits = service_bits(&slow, &q.points, exp.k);
    drop(slow);

    let (fast, fast_report) = ReposeService::recover(cfg, archived(true)).expect("attach recovery");
    assert!(fast_report.from_archive, "valid archive generation was not attached");
    let fast_s = fast_report.wall_time.as_secs_f64();
    let service_match = service_bits(&fast, &q.points, exp.k) == pre_crash && slow_bits == pre_crash;
    assert!(service_match, "restart paths diverged from the pre-crash state");
    let service_speedup = if fast_s > 0.0 { slow_s / fast_s } else { 0.0 };
    drop(fast);
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&svc_arc_dir);

    println!(
        "\n== restart: {} trajectories, {} partitions, scale {} ==",
        data.len(),
        exp.partitions,
        exp.scale
    );
    print_table(
        &["path", "cold-start wall", "speedup"],
        &[
            vec!["rebuild (CSV)".into(), fmt_secs(build_s), "1.00x".into()],
            vec!["archive attach".into(), fmt_secs(attach_s), format!("{speedup:.2}x")],
            vec!["service rebuild".into(), fmt_secs(slow_s), "1.00x".into()],
            vec![
                "service attach+tail".into(),
                fmt_secs(fast_s),
                format!("{service_speedup:.2}x"),
            ],
        ],
    );
    println!(
        "archive: {archive_bytes} bytes written in {} ; scrub {} sections at {scrub_mb_s:.0} MB/s",
        fmt_secs(write_s),
        scrub.sections,
    );

    let cold_start = json!({
        "trajectories": data.len(),
        "build_wall_s": build_s,
        "archive_write_s": write_s,
        "archive_bytes": archive_bytes,
        "attach_wall_s": attach_s,
        "speedup": speedup,
        "answers_match": answers_match,
    });
    let scrub_json = json!({
        "sections": scrub.sections,
        "bytes": scrub.bytes,
        "wall_s": scrub_s,
        "mb_per_s": scrub_mb_s,
        "clean": scrub.is_clean(),
    });
    let service = json!({
        "rebuild_recover_s": slow_s,
        "attach_recover_s": fast_s,
        "speedup": service_speedup,
        "replayed_records_attach": fast_report.replayed_records,
        "replayed_records_rebuild": slow_report.replayed_records,
        "archives_quarantined": fast_report.archives_quarantined,
        "answers_match_pre_crash": service_match,
    });
    json!({ "cold_start": cold_start, "scrub": scrub_json, "service": service })
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_cluster::ClusterConfig;

    #[test]
    fn restart_experiment_produces_sound_numbers() {
        let exp = ExpConfig {
            scale: 0.02,
            queries: 2,
            k: 5,
            partitions: 4,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 7,
            write_burst: 16,
            pool_threads: 1,
            ..ExpConfig::default()
        };
        let v = run(&exp);
        let cold = &v["cold_start"];
        assert!(cold["build_wall_s"].as_f64().unwrap() > 0.0);
        assert!(cold["attach_wall_s"].as_f64().unwrap() > 0.0);
        assert!(cold["archive_bytes"].as_u64().unwrap() > 0);
        assert!(cold["answers_match"].as_bool().unwrap());
        assert!(v["scrub"]["clean"].as_bool().unwrap());
        assert!(v["scrub"]["bytes"].as_u64().unwrap() > 0);
        let svc = &v["service"];
        assert!(svc["answers_match_pre_crash"].as_bool().unwrap());
        // The attach path replays only the post-checkpoint tail; the
        // rebuild path replays the same tail from the WAL base snapshot
        // (the compaction checkpointed the first burst away for both).
        assert_eq!(svc["replayed_records_attach"].as_u64().unwrap(), 8);
        assert_eq!(svc["archives_quarantined"].as_u64().unwrap(), 0);
    }
}
