//! One module per table/figure of Section VII. Every `run` prints a
//! paper-style table and returns a JSON record for EXPERIMENTS.md.

pub mod dist;
pub mod fig6;
pub mod kernels;
pub mod recover;
pub mod restart;
pub mod scale;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod serve;
pub mod serve_pool;
pub mod shard;
pub mod sim;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod table9;

use crate::runner::ExpConfig;
use serde_json::Value;

/// An experiment's name + runner, for the binary's dispatch table.
pub struct Experiment {
    /// CLI name (e.g. "table4").
    pub name: &'static str,
    /// What it reproduces.
    pub what: &'static str,
    /// Runner.
    pub run: fn(&ExpConfig) -> Value,
}

/// All experiments in paper order.
pub const ALL: &[Experiment] = &[
    Experiment { name: "table4", what: "Performance overview (QT/IS/IT)", run: table4::run },
    Experiment { name: "fig6", what: "Query time when varying k", run: fig6::run },
    Experiment { name: "table5", what: "Query time vs grid side delta", run: table5::run },
    Experiment { name: "table6", what: "Query time vs pivot count Np", run: table6::run },
    Experiment { name: "fig7", what: "Optimized-trie improvement", run: fig7::run },
    Experiment { name: "fig8", what: "Effect of dataset cardinality", run: fig8::run },
    Experiment { name: "fig9", what: "Effect of the number of partitions", run: fig9::run },
    Experiment { name: "table7", what: "Effect of partitioning strategy", run: table7::run },
    Experiment { name: "table8", what: "Heterogeneous partitioning in DITA", run: table8::run },
    Experiment { name: "table9", what: "Heterogeneous partitioning in DFT", run: table9::run },
    Experiment {
        name: "serve",
        what: "Online serving: mixed read/write QPS + latency percentiles",
        run: serve::run,
    },
    Experiment {
        name: "dist",
        what: "Early-abandoning exact kernels: abandoned verifications + speedup",
        run: dist::run,
    },
    Experiment {
        name: "scale",
        what: "Shared-threshold vs independent partition search across partition counts",
        run: scale::run,
    },
    Experiment {
        name: "kernels",
        what: "Zero-allocation verification: arena + scratch kernels vs the seed path",
        run: kernels::run,
    },
    Experiment {
        name: "serve_pool",
        what: "Worker-pool serving: query latency vs pool size + incremental compaction",
        run: serve_pool::run,
    },
    Experiment {
        name: "recover",
        what: "Durability: WAL write cost per fsync policy + crash-recovery time",
        run: recover::run,
    },
    Experiment {
        name: "shard",
        what: "Sharded serving: scatter-gather latency vs shard count + degraded mode",
        run: shard::run,
    },
    Experiment {
        name: "restart",
        what: "Persistent archives: cold-start rebuild vs mmap attach + scrub throughput",
        run: restart::run,
    },
    Experiment {
        name: "sim",
        what: "Deterministic simulation soak: seeded chaos schedules vs the shadow oracle",
        run: sim::run,
    },
];
