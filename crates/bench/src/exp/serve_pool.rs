//! Worker-pool serving experiment (beyond the paper): wall-clock query
//! latency vs pool size, and incremental- vs full-compaction cost.
//!
//! Two sections, one JSON object:
//!
//! * `"query"` — one row per swept pool size. Each query's per-partition
//!   task durations are measured once on the *sequential* path (clean
//!   single-core numbers, the same methodology `repose-cluster` uses for
//!   the paper's QT), then list-scheduled onto `t` pool threads to give
//!   the **modeled** pooled latency — host-core-count-independent, which
//!   is what makes the scaling claim reproducible on any machine. The
//!   **host** wall latencies of real pooled executions are reported next
//!   to it (they only show the speedup when the host actually has the
//!   cores). Caveat: the checked-in baseline was produced on a
//!   core-starved container, where the host-wall columns are flat by
//!   construction; they still need confirming against the model on a
//!   genuinely many-core host before being quoted as measured scaling.
//! * `"compaction"` — a write burst confined to one partition, compacted
//!   incrementally (`compact`) vs globally (`compact_full`), with the
//!   partition-rebuild counters and wall times of each.

use crate::runner::{load, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::{Repose, ReposeConfig};
use repose_cluster::list_schedule;
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_model::Trajectory;
use repose_service::{ReposeService, ServiceConfig};
use serde_json::{json, Value};
use std::time::{Duration, Instant};

/// Pool sizes to sweep: 1 (the sequential baseline), half the maximum,
/// and the maximum.
fn pool_sweep(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut sizes = vec![1, max.div_ceil(2), max];
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

fn mean_secs(samples: &[Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(Duration::as_secs_f64).sum::<f64>() / samples.len() as f64
}

/// Runs the pool-threads sweep + compaction comparison.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::TDrive;
    let measure = Measure::Hausdorff;
    let (data, queries) = load(ds, exp);
    let cfg = ReposeConfig::new(measure)
        .with_cluster(exp.cluster)
        .with_partitions(exp.partitions)
        .with_delta(ds.paper_delta(measure))
        .with_seed(exp.seed);

    // ---- Query-latency sweep ----------------------------------------
    // Sequential reference pass: real latencies *and* the per-partition
    // task durations every modeled schedule below is built from.
    let sequential = ReposeService::with_config(
        Repose::build(&data, cfg),
        ServiceConfig { cache_capacity: 0, pool_threads: 1, ..ServiceConfig::default() },
    );
    // Warm-up (thread scratch, page-in) outside measurement.
    if let Some(q) = queries.first() {
        let _ = sequential.query(&q.points, exp.k);
    }
    let mut seq_latency: Vec<Duration> = Vec::new();
    let mut task_times: Vec<Vec<Duration>> = Vec::new();
    for q in &queries {
        let out = sequential.query(&q.points, exp.k).expect("query");
        seq_latency.push(out.latency);
        task_times.push(out.partition_times);
    }
    let modeled_seq: Vec<f64> = task_times
        .iter()
        .map(|t| t.iter().map(Duration::as_secs_f64).sum())
        .collect();
    let modeled_seq_mean = modeled_seq.iter().sum::<f64>() / modeled_seq.len().max(1) as f64;

    let mut rows = Vec::new();
    let mut query_rows = Vec::new();
    for &threads in &pool_sweep(exp.pool_threads) {
        let service = ReposeService::with_config(
            Repose::build(&data, cfg),
            ServiceConfig { cache_capacity: 0, pool_threads: threads, ..ServiceConfig::default() },
        );
        if let Some(q) = queries.first() {
            let _ = service.query(&q.points, exp.k);
        }
        let mut host: Vec<Duration> = Vec::new();
        for q in &queries {
            host.push(service.query(&q.points, exp.k).expect("query").latency);
        }
        let modeled: Vec<f64> = task_times
            .iter()
            .map(|t| list_schedule(t, threads).as_secs_f64())
            .collect();
        let modeled_mean = modeled.iter().sum::<f64>() / modeled.len().max(1) as f64;
        let modeled_speedup = if modeled_mean > 0.0 {
            modeled_seq_mean / modeled_mean
        } else {
            1.0
        };
        let host_mean = mean_secs(&host);
        let host_speedup = if host_mean > 0.0 {
            mean_secs(&seq_latency) / host_mean
        } else {
            1.0
        };
        // How much of the host wall time the schedule model explains
        // (1.0 = the model accounts for all of it; below 1.0 the gap is
        // pool dispatch overhead and host-core contention).
        let model_vs_wall = if host_mean > 0.0 { modeled_mean / host_mean } else { 1.0 };
        rows.push(vec![
            format!("{threads}"),
            fmt_secs(host_mean),
            format!("{host_speedup:.2}x"),
            fmt_secs(modeled_mean),
            format!("{modeled_speedup:.2}x"),
        ]);
        query_rows.push(json!({
            "pool_threads": threads,
            "partitions": exp.partitions,
            "queries": queries.len(),
            "k": exp.k,
            "host_mean_s": host_mean,
            "host_speedup_vs_seq": host_speedup,
            "modeled_mean_s": modeled_mean,
            "modeled_seq_mean_s": modeled_seq_mean,
            "modeled_speedup_vs_seq": modeled_speedup,
            "model_vs_wall": model_vs_wall,
        }));
    }

    // ---- Compaction: incremental vs full ----------------------------
    // A write burst confined to one partition (ids ≡ 1 mod n, geometry
    // copied from indexed trajectories so the frozen region always
    // contains it — no full-rebuild fallback).
    let n = exp.partitions;
    let burst_of = |svc: &ReposeService| {
        for (i, t) in data.trajectories().iter().take(exp.write_burst).enumerate() {
            let id = 20_000_000 + (i * n + 1) as u64;
            svc.insert(Trajectory::new(id, t.points.clone())).expect("insert");
        }
    };
    let incremental = ReposeService::with_config(
        Repose::build(&data, cfg),
        ServiceConfig {
            cache_capacity: 0,
            pool_threads: exp.pool_threads,
            ..ServiceConfig::default()
        },
    );
    // Settle the initial state so only the burst is dirty.
    incremental.compact().expect("compact");
    burst_of(&incremental);
    let t0 = Instant::now();
    let inc_live = incremental.compact().expect("compact");
    let inc_secs = t0.elapsed().as_secs_f64();
    let inc_stats = incremental.stats();

    let full = ReposeService::with_config(
        Repose::build(&data, cfg),
        ServiceConfig {
            cache_capacity: 0,
            pool_threads: exp.pool_threads,
            ..ServiceConfig::default()
        },
    );
    full.compact().expect("compact");
    burst_of(&full);
    let t0 = Instant::now();
    let full_live = full.compact_full().expect("compact");
    let full_secs = t0.elapsed().as_secs_f64();
    let full_stats = full.stats();
    assert_eq!(inc_live, full_live, "compaction paths disagree on live count");

    let compaction = json!({
        "burst": exp.write_burst,
        "partitions": n,
        "incremental_s": inc_secs,
        "incremental_partitions_rebuilt": inc_stats.last_compact_rebuilt,
        "full_s": full_secs,
        "full_partitions_rebuilt": full_stats.last_compact_rebuilt,
        "speedup": if inc_secs > 0.0 { full_secs / inc_secs } else { 1.0 },
        "live": inc_live,
    });

    println!(
        "\n== serve_pool: pool sweep up to {} threads, {} partitions, k = {}, {} queries ==",
        exp.pool_threads, exp.partitions, exp.k, queries.len()
    );
    print_table(
        &["threads", "host mean", "host speedup", "modeled mean", "modeled speedup"],
        &rows,
    );
    println!(
        "compaction: incremental {} ({} partitions rebuilt) vs full {} ({} rebuilt)",
        fmt_secs(inc_secs),
        inc_stats.last_compact_rebuilt,
        fmt_secs(full_secs),
        full_stats.last_compact_rebuilt,
    );
    json!({ "query": query_rows, "compaction": compaction })
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_cluster::ClusterConfig;

    #[test]
    fn pool_sweep_is_deduped_and_sorted() {
        assert_eq!(pool_sweep(4), vec![1, 2, 4]);
        assert_eq!(pool_sweep(1), vec![1]);
        assert_eq!(pool_sweep(8), vec![1, 4, 8]);
        assert_eq!(pool_sweep(0), vec![1]);
    }

    #[test]
    fn serve_pool_experiment_produces_sound_numbers() {
        let exp = ExpConfig {
            scale: 0.02,
            queries: 3,
            k: 5,
            partitions: 8,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 3,
            write_burst: 24,
            pool_threads: 4,
            ..ExpConfig::default()
        };
        let v = run(&exp);
        let rows = v["query"].as_array().expect("query rows");
        assert_eq!(rows.len(), 3); // {1, 2, 4}
        for row in rows {
            let t = row["pool_threads"].as_u64().unwrap();
            let modeled = row["modeled_speedup_vs_seq"].as_f64().unwrap();
            assert!(modeled > 0.0);
            if t == 1 {
                assert!((modeled - 1.0).abs() < 1e-9, "1 thread must model as 1.0x");
            } else {
                // List scheduling n tasks onto t threads can never be
                // slower than sequential.
                assert!(modeled >= 1.0 - 1e-9);
            }
        }
        let c = &v["compaction"];
        assert_eq!(c["incremental_partitions_rebuilt"].as_u64().unwrap(), 1);
        assert_eq!(c["full_partitions_rebuilt"].as_u64().unwrap(), 8);
        assert!(c["incremental_s"].as_f64().unwrap() > 0.0);
        assert!(c["full_s"].as_f64().unwrap() > 0.0);
    }
}
