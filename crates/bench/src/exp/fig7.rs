//! Fig. 7: improvement from the optimized (z-value re-arranged) trie on
//! T-drive and OSM under Hausdorff — reduced node count and query time.

use crate::runner::{load, params_for, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use serde_json::{json, Value};

/// Builds optimized and unoptimized tries and compares both metrics.
pub fn run(exp: &ExpConfig) -> Value {
    let measure = Measure::Hausdorff;
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for ds in [PaperDataset::TDrive, PaperDataset::Osm] {
        let (data, queries) = load(ds, exp);
        let mut record = json!({ "dataset": ds.name() });
        let mut nodes = [0usize; 2];
        let mut qts = [0f64; 2];
        for (i, optimize) in [true, false].into_iter().enumerate() {
            let cfg = ReposeConfig::new(measure)
                .with_cluster(exp.cluster)
                .with_partitions(exp.partitions)
                .with_delta(ds.paper_delta(measure))
                .with_params(params_for(ds, measure))
                .with_seed(exp.seed)
                .with_trie(
                    repose_rptrie::RpTrieConfig::for_measure(measure).with_optimize(optimize),
                );
            let r = Repose::build(&data, cfg);
            nodes[i] = r.trie_nodes();
            // paper's execution model (see runner::run_repose)
            qts[i] = queries
                .iter()
                .map(|q| r.query_independent(&q.points, exp.k).query_time().as_secs_f64())
                .sum::<f64>()
                / queries.len().max(1) as f64;
        }
        record["optimized_nodes"] = json!(nodes[0]);
        record["unoptimized_nodes"] = json!(nodes[1]);
        record["optimized_qt_s"] = json!(qts[0]);
        record["unoptimized_qt_s"] = json!(qts[1]);
        rows.push(vec![
            ds.name().to_string(),
            nodes[0].to_string(),
            nodes[1].to_string(),
            format!("{:.1}%", 100.0 * (1.0 - nodes[0] as f64 / nodes[1] as f64)),
            fmt_secs(qts[0]),
            fmt_secs(qts[1]),
            format!("{:.1}%", 100.0 * (1.0 - qts[0] / qts[1])),
        ]);
        out.push(record);
    }
    println!("\n== Fig. 7: optimized vs unoptimized trie (Hausdorff) ==");
    print_table(
        &[
            "Dataset",
            "opt nodes",
            "unopt nodes",
            "node cut",
            "opt QT",
            "unopt QT",
            "QT cut",
        ],
        &rows,
    );
    Value::Array(out)
}
