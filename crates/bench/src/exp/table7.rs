//! Table VII: effect of the partitioning strategy (heterogeneous /
//! homogeneous / random) with the RP-Trie as the local index, on T-drive,
//! Xi'an and OSM for Hausdorff and Frechet.

use crate::runner::{load, params_for, run_repose, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::PartitionStrategy;
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use serde_json::{json, Value};

const DATASETS: [PaperDataset; 3] =
    [PaperDataset::TDrive, PaperDataset::Xian, PaperDataset::Osm];

/// Runs REPOSE under each strategy.
pub fn run(exp: &ExpConfig) -> Value {
    let mut out = Vec::new();
    for measure in [Measure::Hausdorff, Measure::Frechet] {
        println!("\n== Table VII: {measure} ==");
        let mut rows = Vec::new();
        for strategy in [
            PartitionStrategy::Heterogeneous,
            PartitionStrategy::Homogeneous,
            PartitionStrategy::Random,
        ] {
            let mut row = vec![strategy.name().to_string()];
            for ds in DATASETS {
                let (data, queries) = load(ds, exp);
                let m = run_repose(
                    &data,
                    &queries,
                    measure,
                    params_for(ds, measure),
                    ds.paper_delta(measure),
                    strategy,
                    exp,
                );
                row.push(fmt_secs(m.qt_s));
                out.push(json!({
                    "measure": measure.name(),
                    "strategy": strategy.name(),
                    "dataset": ds.name(),
                    "qt_s": m.qt_s,
                }));
            }
            rows.push(row);
        }
        print_table(&["Partitioning", "T-drive", "Xi'an", "OSM"], &rows);
    }
    Value::Array(out)
}
