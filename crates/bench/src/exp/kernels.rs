//! Kernel experiment (beyond the paper): what the flat trajectory arena,
//! reusable DP scratch, and the SIMD verification backends buy on the
//! exact-verification hot path, per measure **and per backend**.
//!
//! The whole experiment repeats once per SIMD backend the host CPU
//! supports (scalar always, then SSE4.1, then AVX2), with that backend
//! forced process-wide — so one run produces the full differential
//! matrix. Three comparisons per (backend, measure), all against the
//! **seed path** preserved verbatim in [`repose_distance::reference`]:
//!
//! * **full kernel** — exhaustively score every candidate with the
//!   unbounded kernel: per-call-allocating seed kernels over
//!   `Vec<Trajectory>` heap islands vs scratch-threaded (and now
//!   SIMD-dispatched) kernels over one contiguous [`TrajStore`] arena.
//! * **leaf-verification scan** — the realistic verification loop: score
//!   each candidate that survives the O(1) summary prefilter with the
//!   threshold-aware kernel under the true k-th distance, exactly like
//!   trie-leaf verification, one candidate at a time. Most surviving
//!   candidates abandon after a few DP rows, so fixed per-call costs
//!   dominate: the regime the zero-allocation + SIMD work targets.
//! * **batched scan** — the same loop through
//!   `distance_within_batch_in`, the production leaf/refinement path:
//!   lane-batched multi-candidate verification for DTW/Fréchet/ERP
//!   (candidates share each query column load), sequential fallback for
//!   the other measures.
//!
//! Timing is min-of-repeats per arm. Bit-identity of every arm against
//! the seed path is asserted in-run, per backend — the experiment is
//! itself a differential test, not just a stopwatch.

use crate::runner::{load, params_for, ExpConfig};
use crate::{fmt_secs, print_table};
use repose_datagen::PaperDataset;
use repose_distance::{
    available_backends, bound_exceeds, force_backend, just_above, reference, Backend,
    DistScratch, Measure, TrajSummary,
};
use repose_model::{Dataset, Point, TrajStore};
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

const REPEATS: usize = 5;

fn timed<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one repeat"))
}

struct MeasureRow {
    full_seed_s: f64,
    full_arena_s: f64,
    scan_seed_s: f64,
    scan_arena_s: f64,
    scan_batch_s: f64,
    abandoned: usize,
    scanned: usize,
}

#[allow(clippy::too_many_lines)]
fn run_measure(
    data: &Dataset,
    store: &TrajStore,
    query: &[Point],
    measure: Measure,
    params: &repose_distance::MeasureParams,
    k: usize,
    backend: Backend,
) -> MeasureRow {
    let qsum = params.summary_of(query);
    let summaries: Vec<TrajSummary> = data
        .trajectories()
        .iter()
        .map(|t| params.summary_of(&t.points))
        .collect();
    let mut scratch = DistScratch::new();

    // -- Full kernel: seed (alloc, heap islands) vs arena + scratch. --
    let (full_seed_s, seed_dists) = timed(|| {
        data.trajectories()
            .iter()
            .map(|t| black_box(reference::distance(params, measure, query, &t.points)))
            .collect::<Vec<f64>>()
    });
    let (full_arena_s, arena_dists) = timed(|| {
        (0..store.len())
            .map(|s| {
                black_box(params.distance_in(measure, query, store.points(s), &mut scratch))
            })
            .collect::<Vec<f64>>()
    });
    assert_eq!(
        seed_dists.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        arena_dists.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        "{measure} on {backend}: arena kernels diverged from the seed kernels"
    );

    // The true k-th distance: the selectivity an ideal index hands every
    // leaf verification. `just_above` keeps the k-th candidate itself
    // scoreable, as the running-top-k loops do.
    let mut sorted = seed_dists.clone();
    sorted.sort_by(f64::total_cmp);
    let kth = sorted[k.clamp(1, sorted.len()) - 1];
    let dk = just_above(kth);

    // Candidates that reach the kernels: summary bound cannot refute them
    // at the cutoff (same fp-margined test the scan loops use).
    let kernel_cands: Vec<(usize, f64)> = summaries
        .iter()
        .enumerate()
        .filter_map(|(s, summary)| {
            let lb = params.summary_lower_bound(measure, &qsum, summary);
            (!bound_exceeds(lb, kth)).then_some((s, lb))
        })
        .collect();

    // -- Leaf-verification scan under dk over the kernel candidates. --
    let (scan_seed_s, seed_scan) = timed(|| {
        let mut abandoned = 0usize;
        for &(slot, lb) in &kernel_cands {
            let pts = &data.trajectories()[slot].points;
            if black_box(reference::distance_within_from_lb(
                params, measure, query, pts, dk, lb,
            ))
            .is_none()
            {
                abandoned += 1;
            }
        }
        abandoned
    });
    let (scan_arena_s, arena_scan) = timed(|| {
        let mut abandoned = 0usize;
        for &(slot, lb) in &kernel_cands {
            if black_box(params.distance_within_from_lb_in(
                measure,
                query,
                store.points(slot),
                dk,
                lb,
                &mut scratch,
            ))
            .is_none()
            {
                abandoned += 1;
            }
        }
        abandoned
    });
    assert_eq!(
        seed_scan, arena_scan,
        "{measure} on {backend}: scan decisions diverged"
    );

    // -- Batched scan: the production multi-candidate verification path. --
    let cand_refs: Vec<(f64, &[Point])> = kernel_cands
        .iter()
        .map(|&(slot, lb)| (lb, store.points(slot)))
        .collect();
    let mut batch_out = vec![None; cand_refs.len()];
    let (scan_batch_s, batch_abandoned) = timed(|| {
        params.distance_within_batch_in(
            measure,
            query,
            &cand_refs,
            dk,
            &mut scratch,
            &mut batch_out,
        );
        black_box(batch_out.iter().filter(|o| o.is_none()).count())
    });
    assert_eq!(
        seed_scan, batch_abandoned,
        "{measure} on {backend}: batched scan decisions diverged"
    );
    // Full bitwise identity of the batched lane results vs the seed path,
    // candidate by candidate — the differential matrix, in-run.
    for (&(slot, lb), got) in kernel_cands.iter().zip(&batch_out) {
        let pts = &data.trajectories()[slot].points;
        let want = reference::distance_within_from_lb(params, measure, query, pts, dk, lb);
        assert_eq!(
            got.map(f64::to_bits),
            want.map(f64::to_bits),
            "{measure} on {backend}: batched lane result diverged from seed"
        );
    }

    MeasureRow {
        full_seed_s,
        full_arena_s,
        scan_seed_s,
        scan_arena_s,
        scan_batch_s,
        abandoned: arena_scan,
        scanned: kernel_cands.len(),
    }
}

/// Runs the kernel comparison over all six measures, once per available
/// SIMD backend (forced process-wide for its pass; the widest backend is
/// restored afterwards).
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::TDrive;
    let (data, queries) = load(ds, exp);
    if data.is_empty() || queries.is_empty() {
        eprintln!("[kernels] nothing to measure (empty dataset or --queries 0)");
        return Value::Array(Vec::new());
    }
    let store = TrajStore::from_trajectories(data.trajectories());
    let query = &queries[0].points;

    let backends = available_backends();
    let widest = *backends.last().expect("scalar is always available");
    let mut rows = Vec::new();
    let mut out = Vec::new();
    // Headline: geomean over measures of the production (batched) scan
    // speedup on the widest backend — the path live queries actually take.
    let mut headline_product = 1.0f64;
    for &backend in &backends {
        force_backend(backend);
        for measure in Measure::ALL {
            let params = params_for(ds, measure);
            let r = run_measure(&data, &store, query, measure, &params, exp.k, backend);
            let ratio = |seed: f64, new: f64| if new > 0.0 { seed / new } else { 0.0 };
            let full_speedup = ratio(r.full_seed_s, r.full_arena_s);
            let scan_speedup = ratio(r.scan_seed_s, r.scan_arena_s);
            let batch_speedup = ratio(r.scan_seed_s, r.scan_batch_s);
            if backend == widest {
                headline_product *= batch_speedup.max(f64::MIN_POSITIVE);
            }
            rows.push(vec![
                backend.name().to_string(),
                measure.name().to_string(),
                fmt_secs(r.full_seed_s),
                fmt_secs(r.full_arena_s),
                format!("{full_speedup:.2}x"),
                fmt_secs(r.scan_seed_s),
                fmt_secs(r.scan_arena_s),
                format!("{scan_speedup:.2}x"),
                fmt_secs(r.scan_batch_s),
                format!("{batch_speedup:.2}x"),
                format!("{}/{}", r.abandoned, r.scanned),
            ]);
            out.push(json!({
                "backend": backend.name(),
                "measure": measure.name(),
                "full_seed_s": r.full_seed_s,
                "full_arena_s": r.full_arena_s,
                "full_speedup": full_speedup,
                "scan_seed_s": r.scan_seed_s,
                "scan_arena_s": r.scan_arena_s,
                "scan_speedup": scan_speedup,
                "scan_batch_s": r.scan_batch_s,
                "batch_speedup": batch_speedup,
                "scan_abandoned": r.abandoned,
                "scanned": r.scanned,
            }));
        }
    }
    force_backend(widest);
    let scan_speedup_geomean = headline_product.powf(1.0 / Measure::ALL.len() as f64);
    out.push(json!({
        "summary": true,
        "backends": backends.iter().map(|b| b.name()).collect::<Vec<_>>(),
        "headline_backend": widest.name(),
        "scan_speedup_geomean": scan_speedup_geomean,
        "scale": exp.scale,
        "k": exp.k,
    }));
    println!(
        "\n== kernels: SIMD backends + arena/scratch vs seed path, k = {}, scale {} ==",
        exp.k, exp.scale
    );
    print_table(
        &[
            "Backend", "Measure", "full seed", "full arena", "speedup", "scan seed",
            "scan arena", "speedup", "scan batch", "speedup", "abandoned",
        ],
        &rows,
    );
    println!(
        "leaf-verification scan speedup (geomean, batched, {}): {scan_speedup_geomean:.2}x",
        widest.name()
    );
    Value::Array(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_cluster::ClusterConfig;

    #[test]
    fn kernels_experiment_reports_bit_identical_speedups() {
        let exp = ExpConfig {
            scale: 0.03,
            queries: 1,
            k: 3,
            partitions: 4,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 11,
            ..ExpConfig::default()
        };
        let v = run(&exp);
        let rows = v.as_array().expect("rows + summary");
        let n_backends = available_backends().len();
        assert_eq!(
            rows.len(),
            6 * n_backends + 1,
            "six measures per available backend + summary"
        );
        for row in rows.iter().take(6 * n_backends) {
            // run() itself asserts bitwise agreement; here check shape.
            assert!(row["backend"].as_str().is_some());
            assert!(row["full_seed_s"].as_f64().unwrap() >= 0.0);
            assert!(row["scan_speedup"].as_f64().unwrap() > 0.0);
            assert!(row["batch_speedup"].as_f64().unwrap() > 0.0);
            let scanned = row["scanned"].as_u64().unwrap();
            assert!(row["scan_abandoned"].as_u64().unwrap() <= scanned);
        }
        let summary = &rows[6 * n_backends];
        assert!(summary["summary"].as_bool().unwrap());
        assert!(summary["scan_speedup_geomean"].as_f64().unwrap() > 0.0);
        assert_eq!(
            summary["backends"].as_array().unwrap().len(),
            n_backends
        );
    }
}
