//! Fig. 8: effect of dataset cardinality — OSM scaled to 0.2 .. 1.0 of its
//! base size, Hausdorff and Frechet, all four algorithms.

use crate::runner::{build_algo, params_for, ExpConfig};
use crate::{fmt_secs, print_table, Series};
use repose::PartitionStrategy;
use repose_baselines::BaselinePlacement;
use repose_datagen::{sample_queries, PaperDataset};
use repose_distance::Measure;
use serde_json::Value;

const SCALES: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Sweeps the dataset scale and reports query times.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::Osm;
    let mut series: Vec<Series> = Vec::new();
    for measure in [Measure::Hausdorff, Measure::Frechet] {
        println!("\n== Fig. 8: OSM with {measure} ==");
        let params = params_for(ds, measure);
        let delta = ds.paper_delta(measure);
        let mut table: Vec<Vec<String>> = Vec::new();
        let mut per_algo: std::collections::HashMap<&str, Vec<f64>> = Default::default();
        for &scale in &SCALES {
            eprintln!("fig8: {measure} scale {scale}...");
            let data = ds.generate(exp.scale * scale, exp.seed);
            let queries = sample_queries(&data, exp.queries, exp.seed ^ 0xABCD);
            for algo_name in ["REPOSE", "DITA", "DFT", "LS"] {
                let Some(algo) = build_algo(
                    algo_name,
                    &data,
                    measure,
                    params,
                    delta,
                    BaselinePlacement::Homogeneous,
                    PartitionStrategy::Heterogeneous,
                    exp,
                ) else {
                    continue;
                };
                per_algo
                    .entry(algo_name)
                    .or_default()
                    .push(algo.batch_secs(&queries, exp.k));
            }
        }
        for (algo, ys) in &per_algo {
            let mut row = vec![algo.to_string()];
            row.extend(ys.iter().map(|&y| fmt_secs(y)));
            table.push(row);
            series.push(Series {
                label: format!("{algo} OSM {measure}"),
                x: SCALES.to_vec(),
                y: ys.clone(),
            });
        }
        table.sort();
        let mut header = vec!["Algorithm".to_string()];
        header.extend(SCALES.iter().map(|s| format!("scale {s}")));
        let refs: Vec<&str> = header.iter().map(String::as_str).collect();
        print_table(&refs, &table);
    }
    serde_json::to_value(&series).expect("serializable")
}
