//! Cross-partition shared-threshold scaling experiment (beyond the paper):
//! how much exact-verification work and simulated query time the live
//! global top-k bound saves over independent per-partition search, as the
//! number of partitions grows.
//!
//! For each measure and partition count the same deployment answers the
//! same queries twice:
//!
//! * **shared** — [`repose::Repose::query`]: all partitions run
//!   concurrently against one `SharedTopK` collector, each published hit
//!   tightening every other partition's pruning threshold mid-flight;
//! * **independent** — [`repose::Repose::query_independent`]: the paper's
//!   execution model, every partition under an infinite threshold, merge
//!   at the end.
//!
//! Results must be distance-identical (the experiment verifies this per
//! query and reports it); shared must never do *more* exact computations
//! (a structural guarantee — the shared bound only tightens each local
//! threshold) and on the clustered datagen workload does strictly fewer.

use crate::runner::{load, params_for, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::{Repose, QueryOutcome, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use serde_json::{json, Value};

/// Partition counts swept: quarters up to the configured count.
fn partition_sweep(max: usize) -> Vec<usize> {
    let mut v: Vec<usize> = [max / 4, max / 2, max]
        .into_iter()
        .map(|p| p.max(2))
        .collect();
    v.dedup();
    v
}

fn sorted_dist_bits(o: &QueryOutcome) -> Vec<u64> {
    let mut d: Vec<u64> = o.hits.iter().map(|h| h.dist.to_bits()).collect();
    d.sort_unstable();
    d
}

/// Runs the shared-threshold scaling experiment over all six measures.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::TDrive;
    let (data, queries) = load(ds, exp);
    if data.is_empty() || queries.is_empty() {
        eprintln!("[scale] nothing to measure (empty dataset or --queries 0)");
        return Value::Array(Vec::new());
    }

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for measure in Measure::ALL {
        let params = params_for(ds, measure);
        for partitions in partition_sweep(exp.partitions) {
            // Single cold timing run for both arms: shared execution is
            // always timed cold (re-runs would see a warm collector), so
            // the independent arm must not get min-of-repeats either.
            let cfg = ReposeConfig::new(measure)
                .with_cluster(exp.cluster.with_timing_repeats(1))
                .with_partitions(partitions)
                .with_delta(ds.paper_delta(measure))
                .with_params(params)
                .with_seed(exp.seed);
            let r = Repose::build(&data, cfg);
            let mut shared_exact = 0usize;
            let mut indep_exact = 0usize;
            let mut bounds_abandoned = 0usize;
            let mut shared_qt = 0.0f64;
            let mut indep_qt = 0.0f64;
            let mut identical = true;
            for q in &queries {
                let s = r.query(&q.points, exp.k);
                let i = r.query_independent(&q.points, exp.k);
                identical &= sorted_dist_bits(&s) == sorted_dist_bits(&i);
                shared_exact += s.search.exact_computations;
                indep_exact += i.search.exact_computations;
                bounds_abandoned += s.search.bounds_abandoned;
                shared_qt += s.query_time().as_secs_f64();
                indep_qt += i.query_time().as_secs_f64();
            }
            let nq = queries.len() as f64;
            let ratio = if indep_exact > 0 {
                shared_exact as f64 / indep_exact as f64
            } else {
                1.0
            };
            rows.push(vec![
                measure.name().to_string(),
                partitions.to_string(),
                indep_exact.to_string(),
                shared_exact.to_string(),
                format!("{:.0}%", ratio * 100.0),
                bounds_abandoned.to_string(),
                fmt_secs(indep_qt / nq),
                fmt_secs(shared_qt / nq),
                if identical { "yes" } else { "NO" }.to_string(),
            ]);
            out.push(json!({
                "measure": measure.name(),
                "partitions": partitions,
                "indep_exact": indep_exact,
                "shared_exact": shared_exact,
                "exact_ratio": ratio,
                "bounds_abandoned": bounds_abandoned,
                "indep_qt_s": indep_qt / nq,
                "shared_qt_s": shared_qt / nq,
                "identical": identical,
            }));
        }
    }
    println!(
        "\n== scale: shared-threshold vs independent partitions, k = {}, {} queries, scale {} ==",
        exp.k, exp.queries, exp.scale
    );
    print_table(
        &[
            "Measure", "parts", "indep exact", "shared exact", "ratio",
            "bound skips", "indep QT", "shared QT", "identical",
        ],
        &rows,
    );
    Value::Array(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_cluster::ClusterConfig;

    #[test]
    fn shared_never_exceeds_and_beats_independent_overall() {
        let exp = ExpConfig {
            scale: 0.05,
            queries: 2,
            k: 5,
            partitions: 8,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 11,
            ..ExpConfig::default()
        };
        let v = run(&exp);
        let rows = v.as_array().expect("rows");
        assert_eq!(rows.len(), 6 * partition_sweep(exp.partitions).len());
        let mut per_measure: std::collections::HashMap<&str, (u64, u64)> =
            std::collections::HashMap::new();
        for row in rows {
            assert!(row["identical"].as_bool().unwrap(), "{row:?}");
            let shared = row["shared_exact"].as_u64().unwrap();
            let indep = row["indep_exact"].as_u64().unwrap();
            // structural guarantee: holds on every tested config
            assert!(shared <= indep, "{row:?}");
            let e = per_measure
                .entry(row["measure"].as_str().unwrap())
                .or_insert((0, 0));
            e.0 += shared;
            e.1 += indep;
        }
        // the win must be real on the clustered workload: strictly fewer
        // exact computations per measure (summed over partition counts)
        for (m, (shared, indep)) in per_measure {
            assert!(shared < indep, "{m}: shared {shared} !< indep {indep}");
        }
    }
}
