//! Table V: query time as the grid side `δ` varies, on T-drive, Xi'an and
//! OSM for Hausdorff and Frechet (REPOSE only — it is REPOSE's parameter).

use crate::runner::{load, run_repose, ExpConfig};
use crate::{fmt_secs, print_table, Series};
use repose::PartitionStrategy;
use repose_datagen::PaperDataset;
use repose_distance::{Measure, MeasureParams};
use serde_json::Value;

/// The paper's per-dataset δ sweeps (Table V's "Value" columns).
fn deltas(ds: PaperDataset) -> Vec<f64> {
    match ds {
        PaperDataset::TDrive => vec![0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30],
        PaperDataset::Xian => vec![0.005, 0.010, 0.015, 0.020, 0.025, 0.030, 0.035],
        PaperDataset::Osm => vec![0.1, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        _ => vec![0.01, 0.05, 0.1],
    }
}

/// Sweeps δ and reports REPOSE's query time per measure.
pub fn run(exp: &ExpConfig) -> Value {
    let mut series = Vec::new();
    for ds in [PaperDataset::TDrive, PaperDataset::Xian, PaperDataset::Osm] {
        let (data, queries) = load(ds, exp);
        println!("\n== Table V: {} ==", ds.name());
        let mut rows = Vec::new();
        for &delta in &deltas(ds) {
            let mut row = vec![format!("{delta}")];
            for measure in [Measure::Hausdorff, Measure::Frechet] {
                let params = MeasureParams::with_eps(ds.paper_delta(measure));
                let m = run_repose(
                    &data,
                    &queries,
                    measure,
                    params,
                    delta,
                    PartitionStrategy::Heterogeneous,
                    exp,
                );
                row.push(fmt_secs(m.qt_s));
                series.push(Series {
                    label: format!("REPOSE {} {} delta={delta}", ds.name(), measure),
                    x: vec![delta],
                    y: vec![m.qt_s],
                });
            }
            rows.push(row);
        }
        print_table(&["delta", "QT (Hausdorff)", "QT (Frechet)"], &rows);
    }
    serde_json::to_value(&series).expect("serializable")
}
