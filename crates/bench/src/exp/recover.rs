//! Durability experiment (beyond the paper): what the write-ahead log
//! costs on the write path, and what crash recovery costs afterwards.
//!
//! Two sections, one JSON object:
//!
//! * `"write"` — one row per fsync policy (`volatile` baseline without a
//!   journal, then `never`, `every(8)` group commit, and `always`): the
//!   same insert burst timed end-to-end, with the resulting write
//!   throughput and the journal's byte/fsync counters. This is the price
//!   list for [`repose_service::ServiceConfig::durability`].
//! * `"recovery"` — the `always` deployment is dropped mid-flight (its
//!   journal left behind, exactly as a crash would) and rebuilt with
//!   [`repose_service::ReposeService::recover`]: snapshot restore +
//!   record replay wall time, replay rate, and a soundness check that a
//!   reference query answers with bitwise-identical distances before and
//!   after the crash.

use crate::runner::{load, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_model::Trajectory;
use repose_service::{DurabilityConfig, FsyncPolicy, ReposeService, ServiceConfig};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A fresh, unique journal directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("repose-recover-{tag}-{}-{n}", std::process::id()))
}

/// The query answer as a sorted multiset of distance bit patterns — the
/// equality the crash-loop tests use (tied ids may legally differ).
fn sorted_dist_bits(svc: &ReposeService, q: &[repose_model::Point], k: usize) -> Vec<u64> {
    let mut bits: Vec<u64> = svc
        .query(q, k)
        .expect("query")
        .hits
        .iter()
        .map(|h| h.dist.to_bits())
        .collect();
    bits.sort_unstable();
    bits
}

/// Runs the fsync-policy write sweep + crash-recovery measurement.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::TDrive;
    let measure = Measure::Hausdorff;
    let (data, queries) = load(ds, exp);
    let cfg = ReposeConfig::new(measure)
        .with_cluster(exp.cluster)
        .with_partitions(exp.partitions)
        .with_delta(ds.paper_delta(measure))
        .with_seed(exp.seed);

    // The same burst for every policy: geometry copied from indexed
    // trajectories (cycled), fresh ids.
    let burst: Vec<Trajectory> = (0..exp.write_burst)
        .map(|i| {
            let src = &data.trajectories()[i % data.len()];
            Trajectory::new(30_000_000 + i as u64, src.points.clone())
        })
        .collect();

    let policies: [(&str, Option<FsyncPolicy>); 4] = [
        ("volatile", None),
        ("never", Some(FsyncPolicy::Never)),
        ("every(8)", Some(FsyncPolicy::EveryN(8))),
        ("always", Some(FsyncPolicy::Always)),
    ];

    let mut rows = Vec::new();
    let mut write_rows = Vec::new();
    let mut always_dir = None;
    let mut volatile_s = 0.0f64;
    for (name, fsync) in policies {
        let dir = fsync.map(|_| fresh_dir(name));
        let durability = match (&dir, fsync) {
            (Some(d), Some(f)) => Some(DurabilityConfig::new(d).with_fsync(f)),
            _ => None,
        };
        let svc = ReposeService::try_with_config(
            Repose::build(&data, cfg),
            ServiceConfig { cache_capacity: 0, pool_threads: 1, durability, ..ServiceConfig::default() },
        )
        .expect("service");
        let t0 = Instant::now();
        for t in &burst {
            svc.insert(t.clone()).expect("insert");
        }
        let wall = t0.elapsed().as_secs_f64();
        let stats = svc.stats();
        let per_s = if wall > 0.0 { exp.write_burst as f64 / wall } else { 0.0 };
        if fsync.is_none() {
            volatile_s = wall;
        }
        let slowdown = if volatile_s > 0.0 { wall / volatile_s } else { 1.0 };
        rows.push(vec![
            name.to_string(),
            fmt_secs(wall),
            format!("{per_s:.0}/s"),
            format!("{slowdown:.2}x"),
            format!("{}", stats.wal_bytes),
            format!("{}", stats.wal_fsyncs),
        ]);
        write_rows.push(json!({
            "policy": name,
            "burst": exp.write_burst,
            "wall_s": wall,
            "writes_per_s": per_s,
            "slowdown_vs_volatile": slowdown,
            "wal_bytes": stats.wal_bytes,
            "wal_fsyncs": stats.wal_fsyncs,
        }));
        if name == "always" {
            // Crash the durable deployment: record a reference answer,
            // then drop it with the journal un-checkpointed.
            let reference = queries
                .first()
                .map(|q| sorted_dist_bits(&svc, &q.points, exp.k));
            drop(svc);
            always_dir = dir.clone().map(|d| (d, reference));
        } else if let Some(d) = &dir {
            drop(svc);
            let _ = std::fs::remove_dir_all(d);
        }
    }

    // ---- Crash recovery from the `always` journal --------------------
    let (dir, reference) = always_dir.expect("always policy ran");
    let (recovered, report) = ReposeService::recover(
        cfg,
        ServiceConfig {
            cache_capacity: 0,
            pool_threads: 1,
            durability: Some(DurabilityConfig::new(&dir)),
            ..ServiceConfig::default()
        },
    )
    .expect("recovery");
    let wall = report.wall_time.as_secs_f64();
    let replay_per_s = if wall > 0.0 { report.replayed_records as f64 / wall } else { 0.0 };
    assert_eq!(
        recovered.len(),
        data.len() + exp.write_burst,
        "recovery must restore base + every acknowledged insert"
    );
    let answers_match = match (&reference, queries.first()) {
        (Some(r), Some(q)) => *r == sorted_dist_bits(&recovered, &q.points, exp.k),
        _ => true,
    };
    assert!(answers_match, "recovered answers diverge from pre-crash answers");
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    let recovery = json!({
        "base_trajectories": report.base_trajectories,
        "replayed_records": report.replayed_records,
        "torn_bytes": report.torn_bytes,
        "wall_s": wall,
        "replayed_per_s": replay_per_s,
        "live": data.len() + exp.write_burst,
        "answers_match_pre_crash": answers_match,
    });

    println!(
        "\n== recover: {} burst writes, {} partitions, scale {} ==",
        exp.write_burst, exp.partitions, exp.scale
    );
    print_table(
        &["policy", "burst wall", "writes/s", "vs volatile", "wal bytes", "fsyncs"],
        &rows,
    );
    println!(
        "recovery: {} base + {} replayed in {} ({:.0} records/s), answers match pre-crash: {}",
        report.base_trajectories,
        report.replayed_records,
        fmt_secs(wall),
        replay_per_s,
        answers_match,
    );
    json!({ "write": write_rows, "recovery": recovery })
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_cluster::ClusterConfig;

    #[test]
    fn recover_experiment_produces_sound_numbers() {
        let exp = ExpConfig {
            scale: 0.02,
            queries: 2,
            k: 5,
            partitions: 4,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 7,
            write_burst: 16,
            pool_threads: 1,
            ..ExpConfig::default()
        };
        let v = run(&exp);
        let rows = v["write"].as_array().expect("write rows");
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert!(row["wall_s"].as_f64().unwrap() > 0.0);
            match row["policy"].as_str().unwrap() {
                "volatile" => {
                    assert_eq!(row["wal_bytes"].as_u64().unwrap(), 0);
                    assert_eq!(row["wal_fsyncs"].as_u64().unwrap(), 0);
                }
                "never" => assert!(row["wal_bytes"].as_u64().unwrap() > 0),
                "every(8)" => assert!(row["wal_fsyncs"].as_u64().unwrap() >= 2),
                "always" => {
                    // One fsync per acknowledged append, at least.
                    assert!(row["wal_fsyncs"].as_u64().unwrap() >= 16);
                }
                other => panic!("unexpected policy {other}"),
            }
        }
        let r = &v["recovery"];
        assert_eq!(r["replayed_records"].as_u64().unwrap(), 16);
        assert_eq!(r["torn_bytes"].as_u64().unwrap(), 0);
        assert!(r["base_trajectories"].as_u64().unwrap() > 0);
        assert!(r["answers_match_pre_crash"].as_bool().unwrap());
    }
}
