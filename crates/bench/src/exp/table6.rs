//! Table VI: query time as the pivot count `Np` varies in
//! {1, 3, 5, 7, 9, 11}, on T-drive, Xi'an and OSM for Hausdorff and
//! Frechet.

use crate::runner::{load, params_for, ExpConfig};
use crate::{fmt_secs, print_table, Series};
use repose::{Repose, ReposeConfig};
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use serde_json::Value;

const NPS: [usize; 6] = [1, 3, 5, 7, 9, 11];

/// Sweeps `Np` and reports REPOSE's query time per measure.
pub fn run(exp: &ExpConfig) -> Value {
    let mut series = Vec::new();
    for ds in [PaperDataset::TDrive, PaperDataset::Xian, PaperDataset::Osm] {
        let (data, queries) = load(ds, exp);
        println!("\n== Table VI: {} ==", ds.name());
        let mut rows = Vec::new();
        for np in NPS {
            let mut row = vec![np.to_string()];
            for measure in [Measure::Hausdorff, Measure::Frechet] {
                let cfg = ReposeConfig::new(measure)
                    .with_cluster(exp.cluster)
                    .with_partitions(exp.partitions)
                    .with_delta(ds.paper_delta(measure))
                    .with_params(params_for(ds, measure))
                    .with_np(np)
                    .with_seed(exp.seed);
                let r = Repose::build(&data, cfg);
                // paper's execution model (see runner::run_repose)
                let qt = queries
                    .iter()
                    .map(|q| r.query_independent(&q.points, exp.k).query_time().as_secs_f64())
                    .sum::<f64>()
                    / queries.len().max(1) as f64;
                row.push(fmt_secs(qt));
                series.push(Series {
                    label: format!("REPOSE {} {} Np={np}", ds.name(), measure),
                    x: vec![np as f64],
                    y: vec![qt],
                });
            }
            rows.push(row);
        }
        print_table(&["Np", "QT (Hausdorff)", "QT (Frechet)"], &rows);
    }
    serde_json::to_value(&series).expect("serializable")
}
