//! Fig. 6: query time when varying k ∈ {1, 10, ..., 100} on T-drive,
//! Xi'an and OSM under Hausdorff and Frechet, for all four algorithms.

use crate::runner::{build_algo, load, params_for, ExpConfig};
use crate::{fmt_secs, print_table, Series};
use repose::PartitionStrategy;
use repose_baselines::BaselinePlacement;
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use serde_json::Value;

const KS: [usize; 6] = [1, 10, 25, 50, 75, 100];
const DATASETS: [PaperDataset; 3] =
    [PaperDataset::TDrive, PaperDataset::Xian, PaperDataset::Osm];
const MEASURES: [Measure; 2] = [Measure::Hausdorff, Measure::Frechet];

/// Builds each algorithm once per (dataset, measure) and sweeps k.
pub fn run(exp: &ExpConfig) -> Value {
    let mut series: Vec<Series> = Vec::new();
    for ds in DATASETS {
        let (data, queries) = load(ds, exp);
        for measure in MEASURES {
            eprintln!("fig6: {} / {}...", ds.name(), measure);
            let params = params_for(ds, measure);
            let delta = ds.paper_delta(measure);
            println!("\n== Fig. 6: {} with {} ==", ds.name(), measure);
            let mut rows = Vec::new();
            for algo_name in ["REPOSE", "DITA", "DFT", "LS"] {
                let Some(algo) = build_algo(
                    algo_name,
                    &data,
                    measure,
                    params,
                    delta,
                    BaselinePlacement::Homogeneous,
                    PartitionStrategy::Heterogeneous,
                    exp,
                ) else {
                    continue;
                };
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                let mut row = vec![algo_name.to_string()];
                for k in KS {
                    let t = algo.batch_secs(&queries, k);
                    xs.push(k as f64);
                    ys.push(t);
                    row.push(fmt_secs(t));
                }
                rows.push(row);
                series.push(Series {
                    label: format!("{algo_name} {} {}", ds.name(), measure),
                    x: xs,
                    y: ys,
                });
            }
            let mut header = vec!["Algorithm".to_string()];
            header.extend(KS.iter().map(|k| format!("k={k}")));
            let refs: Vec<&str> = header.iter().map(String::as_str).collect();
            print_table(&refs, &rows);
        }
    }
    serde_json::to_value(&series).expect("serializable")
}
