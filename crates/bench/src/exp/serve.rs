//! Online-serving experiment (beyond the paper): a mixed read/write
//! workload against `repose-service`, reporting throughput (QPS) and host
//! latency percentiles — the serving-path numbers the static Section VII
//! experiments cannot express.
//!
//! Thread counts and the delta-burst size are parameterized (CLI:
//! `--readers`, `--writers`, `--burst`); the experiment sweeps reader
//! counts up to the configured maximum and emits **one JSON row per
//! (readers, writers, cache-mode) configuration**, giving a scaling curve
//! instead of a single fixed 4r/2w point. N reader threads replay a pool
//! of cached-and-uncached queries while M writer threads stream inserts
//! into the delta buffers; a compaction run in the middle exercises
//! swap-on-compact under load. Latencies are host wall times of
//! `ReposeService` calls, not simulated cluster times.

use crate::runner::{load, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::{Repose, ReposeConfig};
use repose_cluster::LatencySummary;
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_model::{Point, Trajectory};
use repose_service::{ReposeService, ServiceConfig};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Reads per reader thread.
const OPS_PER_READER: usize = 200;

struct WorkloadResult {
    reads: u64,
    writes: u64,
    wall: Duration,
    read_latency: LatencySummary,
    write_latency: LatencySummary,
    cache_hit_rate: f64,
    exact_abandoned: u64,
    /// Partitions rebuilt by the mid-stream compaction(s) — with
    /// incremental compaction this counts only the dirtied ones.
    partitions_rebuilt: u64,
    partitions: usize,
    /// Durability / degradation counters (all zero for this volatile,
    /// deadline-free workload — reported so the row shape matches a
    /// durable deployment's and regressions are visible in the JSON).
    wal_bytes: u64,
    wal_fsyncs: u64,
    recovered_records: u64,
    queries_degraded: u64,
    queries_shed: u64,
}

fn run_mixed(
    service: &Arc<ReposeService>,
    queries: &[Trajectory],
    k: usize,
    readers: usize,
    writers: usize,
    burst: usize,
) -> WorkloadResult {
    let read_samples: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let write_samples: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let abandoned = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for r in 0..readers {
            let service = Arc::clone(service);
            let read_samples = &read_samples;
            let reads = &reads;
            let abandoned = &abandoned;
            s.spawn(move || {
                let mut local = Vec::with_capacity(OPS_PER_READER);
                for i in 0..OPS_PER_READER {
                    let q = &queries[(r + i) % queries.len()];
                    let out = service.query(&q.points, k).expect("query");
                    local.push(out.latency);
                    reads.fetch_add(1, Ordering::Relaxed);
                    abandoned.fetch_add(out.search.exact_abandoned as u64, Ordering::Relaxed);
                }
                read_samples.lock().expect("samples").extend(local);
            });
        }
        for w in 0..writers {
            let service = Arc::clone(service);
            let write_samples = &write_samples;
            let writes = &writes;
            s.spawn(move || {
                let mut local = Vec::new();
                for i in 0..burst {
                    // Fresh ids far above the dataset's range.
                    let id = 10_000_000 + (w * burst + i) as u64;
                    let base = &queries[(w + i) % queries.len()];
                    let jit = (i as f64 + 1.0) * 1e-5;
                    let traj = Trajectory::new(
                        id,
                        base.points
                            .iter()
                            .map(|p| Point::new(p.x + jit, p.y + jit))
                            .collect(),
                    );
                    let t = Instant::now();
                    service.insert(traj).expect("insert");
                    local.push(t.elapsed());
                    writes.fetch_add(1, Ordering::Relaxed);
                    // Fold the delta in once, mid-stream, under load.
                    if w == 0 && i == burst / 2 {
                        service.compact().expect("compact");
                    }
                }
                write_samples.lock().expect("samples").extend(local);
            });
        }
    });
    let wall = t0.elapsed();
    let stats = service.stats();
    WorkloadResult {
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        wall,
        read_latency: LatencySummary::from_durations(
            read_samples.into_inner().expect("samples"),
        ),
        write_latency: LatencySummary::from_durations(
            write_samples.into_inner().expect("samples"),
        ),
        cache_hit_rate: stats.cache_hit_rate(),
        exact_abandoned: abandoned.load(Ordering::Relaxed),
        partitions_rebuilt: stats.partitions_rebuilt,
        partitions: stats.partitions,
        wal_bytes: stats.wal_bytes,
        wal_fsyncs: stats.wal_fsyncs,
        recovered_records: stats.recovered_records,
        queries_degraded: stats.queries_degraded,
        queries_shed: stats.queries_shed,
    }
}

/// Reader counts to sweep: 1, half the maximum, and the maximum.
fn reader_sweep(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut counts = vec![1, max.div_ceil(2), max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Runs the mixed read/write serving workload sweep.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::TDrive;
    let measure = Measure::Hausdorff;
    let (data, queries) = load(ds, exp);
    let cfg = ReposeConfig::new(measure)
        .with_cluster(exp.cluster)
        .with_partitions(exp.partitions)
        .with_delta(ds.paper_delta(measure))
        .with_seed(exp.seed);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for readers in reader_sweep(exp.readers) {
        for (label, cache_capacity) in [("cached", 1024usize), ("uncached", 0usize)] {
            let service = Arc::new(ReposeService::with_config(
                Repose::build(&data, cfg),
                ServiceConfig { cache_capacity, ..ServiceConfig::default() },
            ));
            let r = run_mixed(
                &service,
                &queries,
                exp.k,
                readers,
                exp.writers,
                exp.write_burst,
            );
            let secs = r.wall.as_secs_f64().max(1e-9);
            let read_qps = r.reads as f64 / secs;
            let write_qps = r.writes as f64 / secs;
            rows.push(vec![
                format!("{readers}r/{}w {label}", exp.writers),
                format!("{read_qps:.0}"),
                format!("{write_qps:.0}"),
                fmt_secs(r.read_latency.p50.as_secs_f64()),
                fmt_secs(r.read_latency.p99.as_secs_f64()),
                fmt_secs(r.write_latency.p50.as_secs_f64()),
                fmt_secs(r.write_latency.p99.as_secs_f64()),
                format!("{:.0}%", r.cache_hit_rate * 100.0),
            ]);
            out.push(json!({
                "mode": label,
                "readers": readers,
                "writers": exp.writers,
                "burst": exp.write_burst,
                "reads": r.reads,
                "writes": r.writes,
                "wall_s": secs,
                "read_qps": read_qps,
                "write_qps": write_qps,
                "read_p50_s": r.read_latency.p50.as_secs_f64(),
                "read_p99_s": r.read_latency.p99.as_secs_f64(),
                "write_p50_s": r.write_latency.p50.as_secs_f64(),
                "write_p99_s": r.write_latency.p99.as_secs_f64(),
                "cache_hit_rate": r.cache_hit_rate,
                "exact_abandoned": r.exact_abandoned,
                "partitions_rebuilt": r.partitions_rebuilt,
                "partitions": r.partitions,
                "wal_bytes": r.wal_bytes,
                "wal_fsyncs": r.wal_fsyncs,
                "recovered_records": r.recovered_records,
                "queries_degraded": r.queries_degraded,
                "queries_shed": r.queries_shed,
            }));
        }
    }
    println!(
        "\n== serve: reader sweep up to {} readers + {} writers, burst {}, k = {}, {} partitions ==",
        exp.readers, exp.writers, exp.write_burst, exp.k, exp.partitions
    );
    print_table(
        &[
            "Config", "read QPS", "write QPS", "read p50", "read p99", "write p50",
            "write p99", "cache hits",
        ],
        &rows,
    );
    Value::Array(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_cluster::ClusterConfig;

    #[test]
    fn serve_experiment_produces_sound_numbers() {
        let exp = ExpConfig {
            scale: 0.02,
            queries: 4,
            k: 5,
            partitions: 4,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 3,
            readers: 4,
            writers: 2,
            write_burst: 50,
            ..ExpConfig::default()
        };
        let v = run(&exp);
        let rows = v.as_array().expect("array of configurations");
        // Sweep {1, 2, 4} readers × {cached, uncached}.
        assert_eq!(rows.len(), 6);
        for row in rows {
            assert!(row["read_qps"].as_f64().unwrap() > 0.0);
            assert!(row["write_qps"].as_f64().unwrap() > 0.0);
            assert!(
                row["read_p99_s"].as_f64().unwrap()
                    >= row["read_p50_s"].as_f64().unwrap()
            );
            assert_eq!(row["writers"].as_u64().unwrap(), 2);
            assert_eq!(row["burst"].as_u64().unwrap(), 50);
            // Volatile, deadline-free workload: every durability /
            // degradation counter must read zero.
            for key in [
                "wal_bytes",
                "wal_fsyncs",
                "recovered_records",
                "queries_degraded",
                "queries_shed",
            ] {
                assert_eq!(row[key].as_u64(), Some(0), "{key} must be 0");
            }
        }
        let readers: Vec<u64> = rows
            .iter()
            .map(|r| r["readers"].as_u64().unwrap())
            .collect();
        assert_eq!(readers, vec![1, 1, 2, 2, 4, 4]);
        // The cached modes must actually hit their cache (readers replay a
        // small query pool); uncached modes never can.
        for pair in rows.chunks(2) {
            assert_eq!(pair[0]["mode"].as_str(), Some("cached"));
            assert!(pair[0]["cache_hit_rate"].as_f64().unwrap() > 0.1);
            assert_eq!(pair[1]["mode"].as_str(), Some("uncached"));
            assert_eq!(pair[1]["cache_hit_rate"].as_f64().unwrap(), 0.0);
        }
    }

    #[test]
    fn reader_sweep_is_deduped_and_sorted() {
        assert_eq!(reader_sweep(4), vec![1, 2, 4]);
        assert_eq!(reader_sweep(1), vec![1]);
        assert_eq!(reader_sweep(2), vec![1, 2]);
        assert_eq!(reader_sweep(8), vec![1, 4, 8]);
        assert_eq!(reader_sweep(0), vec![1], "zero readers must not be swept");
    }
}
