//! Online-serving experiment (beyond the paper): a mixed read/write
//! workload against `repose-service`, reporting throughput (QPS) and host
//! latency percentiles — the serving-path numbers the static Section VII
//! experiments cannot express.
//!
//! N reader threads replay a pool of cached-and-uncached queries while M
//! writer threads stream inserts into the delta buffers; a compaction run
//! in the middle exercises swap-on-compact under load. Latencies are host
//! wall times of `ReposeService` calls, not simulated cluster times.

use crate::runner::{load, ExpConfig};
use crate::{fmt_secs, print_table};
use repose::{Repose, ReposeConfig};
use repose_cluster::LatencySummary;
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use repose_model::{Point, Trajectory};
use repose_service::{ReposeService, ServiceConfig};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const READERS: usize = 4;
const WRITERS: usize = 2;
/// Reads per reader thread (writers scale to half of this).
const OPS_PER_READER: usize = 200;

struct WorkloadResult {
    reads: u64,
    writes: u64,
    wall: Duration,
    read_latency: LatencySummary,
    write_latency: LatencySummary,
    cache_hit_rate: f64,
}

fn run_mixed(service: &Arc<ReposeService>, queries: &[Trajectory], k: usize) -> WorkloadResult {
    let read_samples: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let write_samples: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for r in 0..READERS {
            let service = Arc::clone(service);
            let read_samples = &read_samples;
            let reads = &reads;
            s.spawn(move || {
                let mut local = Vec::with_capacity(OPS_PER_READER);
                for i in 0..OPS_PER_READER {
                    let q = &queries[(r + i) % queries.len()];
                    let out = service.query(&q.points, k);
                    local.push(out.latency);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                read_samples.lock().expect("samples").extend(local);
            });
        }
        for w in 0..WRITERS {
            let service = Arc::clone(service);
            let write_samples = &write_samples;
            let writes = &writes;
            s.spawn(move || {
                let mut local = Vec::new();
                for i in 0..OPS_PER_READER / 2 {
                    // Fresh ids far above the dataset's range.
                    let id = 10_000_000 + (w * OPS_PER_READER + i) as u64;
                    let base = &queries[(w + i) % queries.len()];
                    let jit = (i as f64 + 1.0) * 1e-5;
                    let traj = Trajectory::new(
                        id,
                        base.points
                            .iter()
                            .map(|p| Point::new(p.x + jit, p.y + jit))
                            .collect(),
                    );
                    let t = Instant::now();
                    service.insert(traj);
                    local.push(t.elapsed());
                    writes.fetch_add(1, Ordering::Relaxed);
                    // Fold the delta in once, mid-stream, under load.
                    if w == 0 && i == OPS_PER_READER / 4 {
                        service.compact();
                    }
                }
                write_samples.lock().expect("samples").extend(local);
            });
        }
    });
    let wall = t0.elapsed();
    let stats = service.stats();
    WorkloadResult {
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        wall,
        read_latency: LatencySummary::from_durations(
            read_samples.into_inner().expect("samples"),
        ),
        write_latency: LatencySummary::from_durations(
            write_samples.into_inner().expect("samples"),
        ),
        cache_hit_rate: stats.cache_hit_rate(),
    }
}

/// Runs the mixed read/write serving workload.
pub fn run(exp: &ExpConfig) -> Value {
    let ds = PaperDataset::TDrive;
    let measure = Measure::Hausdorff;
    let (data, queries) = load(ds, exp);
    let cfg = ReposeConfig::new(measure)
        .with_cluster(exp.cluster)
        .with_partitions(exp.partitions)
        .with_delta(ds.paper_delta(measure))
        .with_seed(exp.seed);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (label, cache_capacity) in [("cached", 1024usize), ("uncached", 0usize)] {
        let service = Arc::new(ReposeService::with_config(
            Repose::build(&data, cfg),
            ServiceConfig { cache_capacity },
        ));
        let r = run_mixed(&service, &queries, exp.k);
        let secs = r.wall.as_secs_f64().max(1e-9);
        let read_qps = r.reads as f64 / secs;
        let write_qps = r.writes as f64 / secs;
        rows.push(vec![
            label.to_string(),
            format!("{read_qps:.0}"),
            format!("{write_qps:.0}"),
            fmt_secs(r.read_latency.p50.as_secs_f64()),
            fmt_secs(r.read_latency.p99.as_secs_f64()),
            fmt_secs(r.write_latency.p50.as_secs_f64()),
            fmt_secs(r.write_latency.p99.as_secs_f64()),
            format!("{:.0}%", r.cache_hit_rate * 100.0),
        ]);
        out.push(json!({
            "mode": label,
            "readers": READERS,
            "writers": WRITERS,
            "reads": r.reads,
            "writes": r.writes,
            "wall_s": secs,
            "read_qps": read_qps,
            "write_qps": write_qps,
            "read_p50_s": r.read_latency.p50.as_secs_f64(),
            "read_p99_s": r.read_latency.p99.as_secs_f64(),
            "write_p50_s": r.write_latency.p50.as_secs_f64(),
            "write_p99_s": r.write_latency.p99.as_secs_f64(),
            "cache_hit_rate": r.cache_hit_rate,
        }));
    }
    println!(
        "\n== serve: {READERS} readers + {WRITERS} writers, k = {}, {} partitions ==",
        exp.k, exp.partitions
    );
    print_table(
        &[
            "Mode", "read QPS", "write QPS", "read p50", "read p99", "write p50",
            "write p99", "cache hits",
        ],
        &rows,
    );
    Value::Array(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_cluster::ClusterConfig;

    #[test]
    fn serve_experiment_produces_sound_numbers() {
        let exp = ExpConfig {
            scale: 0.02,
            queries: 4,
            k: 5,
            partitions: 4,
            cluster: ClusterConfig { workers: 2, cores_per_worker: 2, timing_repeats: 1 },
            seed: 3,
        };
        let v = run(&exp);
        let rows = v.as_array().expect("array of modes");
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row["read_qps"].as_f64().unwrap() > 0.0);
            assert!(row["write_qps"].as_f64().unwrap() > 0.0);
            assert!(
                row["read_p99_s"].as_f64().unwrap()
                    >= row["read_p50_s"].as_f64().unwrap()
            );
        }
        // The cached mode must actually hit its cache: readers replay a
        // small query pool.
        assert!(rows[0]["cache_hit_rate"].as_f64().unwrap() > 0.1);
        assert_eq!(rows[1]["cache_hit_rate"].as_f64().unwrap(), 0.0);
    }
}
