//! Table IV: performance overview — QT, IS and IT for REPOSE, DITA, DFT
//! and LS across all seven datasets and three measures.

use crate::runner::{build_algo, load, params_for, ExpConfig};
use crate::{fmt_bytes, fmt_secs, print_table, Cell};
use repose::PartitionStrategy;
use repose_baselines::BaselinePlacement;
use repose_datagen::PaperDataset;
use repose_distance::Measure;
use serde_json::Value;

const ALGOS: [&str; 4] = ["REPOSE", "DITA", "DFT", "LS"];
const MEASURES: [Measure; 3] = [Measure::Hausdorff, Measure::Frechet, Measure::Dtw];

/// Runs the full matrix and prints one block per metric, like Table IV.
pub fn run(exp: &ExpConfig) -> Value {
    let mut cells: Vec<Cell> = Vec::new();
    for ds in PaperDataset::ALL {
        let (data, queries) = load(ds, exp);
        eprintln!(
            "table4: {} ({} trajectories)...",
            ds.name(),
            data.len()
        );
        for measure in MEASURES {
            let params = params_for(ds, measure);
            let delta = ds.paper_delta(measure);
            for algo_name in ALGOS {
                let Some(algo) = build_algo(
                    algo_name,
                    &data,
                    measure,
                    params,
                    delta,
                    BaselinePlacement::Homogeneous,
                    PartitionStrategy::Heterogeneous,
                    exp,
                ) else {
                    continue; // "/" cells (DITA x Hausdorff)
                };
                let qt = algo.batch_secs(&queries, exp.k);
                let (is_bytes, it_s) = match &algo {
                    crate::runner::Algo::Repose(r) => {
                        (Some(r.index_bytes() as u64), Some(r.index_time().as_secs_f64()))
                    }
                    crate::runner::Algo::Dita(d) => {
                        (Some(d.index_bytes() as u64), Some(d.index_time().as_secs_f64()))
                    }
                    crate::runner::Algo::Dft(d) => {
                        (Some(d.index_bytes() as u64), Some(d.index_time().as_secs_f64()))
                    }
                    crate::runner::Algo::Ls(_) => (None, None),
                };
                cells.push(Cell {
                    algo: algo_name.to_string(),
                    dataset: ds.name().to_string(),
                    measure: measure.name().to_string(),
                    qt_s: qt,
                    is_bytes,
                    it_s,
                });
            }
        }
    }
    print_blocks(&cells);
    serde_json::to_value(&cells).expect("serializable")
}

fn print_blocks(cells: &[Cell]) {
    let datasets: Vec<String> = PaperDataset::ALL.iter().map(|d| d.name().to_string()).collect();
    for (metric, title) in [("QT", "query time"), ("IS", "index size"), ("IT", "index construction time")] {
        println!("\n== Table IV ({metric}: {title}) ==");
        let mut header = vec!["Distance", "Algorithm"];
        let ds_refs: Vec<&str> = datasets.iter().map(String::as_str).collect();
        header.extend(ds_refs);
        let mut rows = Vec::new();
        for measure in MEASURES {
            for algo in ALGOS {
                let mut row = vec![measure.name().to_string(), algo.to_string()];
                let mut any = false;
                for ds in &datasets {
                    let cell = cells.iter().find(|c| {
                        c.algo == algo && &c.dataset == ds && c.measure == measure.name()
                    });
                    row.push(match (metric, cell) {
                        (_, None) => "/".to_string(),
                        ("QT", Some(c)) => {
                            any = true;
                            fmt_secs(c.qt_s)
                        }
                        ("IS", Some(c)) => c.is_bytes.map_or("/".to_string(), |b| {
                            any = true;
                            fmt_bytes(b)
                        }),
                        ("IT", Some(c)) => c.it_s.map_or("/".to_string(), |t| {
                            any = true;
                            fmt_secs(t)
                        }),
                        _ => unreachable!(),
                    });
                }
                if any {
                    rows.push(row);
                }
            }
        }
        let header_refs: Vec<&str> = header.to_vec();
        print_table(&header_refs, &rows);
    }
}
