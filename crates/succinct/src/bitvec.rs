use crate::FlatVec;

/// A growable bit vector backed by `u64` words.
///
/// The words live in a [`FlatVec`], so a bit vector can be either owned
/// (while building) or a zero-copy view into a mapped archive section.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BitVec {
    words: FlatVec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec { words: FlatVec::Owned(vec![0; len.div_ceil(64)]), len }
    }

    /// Rebuilds a bit vector from its backing words (e.g. a mapped archive
    /// section) and its bit length.
    ///
    /// Validates the representation invariants — the word count matches
    /// `len` and the bits beyond `len` in the last word are zero — so a
    /// corrupt section is an error, never a structure that silently
    /// miscounts ranks.
    pub fn from_words(words: FlatVec<u64>, len: usize) -> Result<Self, String> {
        if words.len() != len.div_ceil(64) {
            return Err(format!(
                "bitvec of {len} bits needs {} words, got {}",
                len.div_ceil(64),
                words.len()
            ));
        }
        if !len.is_multiple_of(64) {
            let last = words[words.len() - 1];
            if last >> (len % 64) != 0 {
                return Err(format!("bitvec has nonzero bits beyond len {len}"));
            }
        }
        Ok(BitVec { words, len })
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit (copy-on-write when the words are a mapped view).
    pub fn push(&mut self, bit: bool) {
        let w = self.len / 64;
        let words = self.words.to_mut();
        if w == words.len() {
            words.push(0);
        }
        if bit {
            words[w] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Reads the bit at `i`.
    ///
    /// # Panics
    /// When `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `i`.
    ///
    /// # Panics
    /// When `i >= len()`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit index {i} out of bounds (len {})", self.len);
        let mask = 1u64 << (i % 64);
        let words = self.words.to_mut();
        if bit {
            words[i / 64] |= mask;
        } else {
            words[i / 64] &= !mask;
        }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words (trailing bits beyond `len` are zero).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// The backing `u64` words, for batch scans (e.g. iterating set bits of
    /// a bitmap-encoded trie level). Trailing bits beyond `len` are zero.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Approximate heap size in bytes (0 when the words are a mapped view).
    pub fn mem_bytes(&self) -> usize {
        self.words.mem_bytes()
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut bv = BitVec::new();
        for i in 0..130 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 130);
        for i in 0..130 {
            assert_eq!(bv.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn zeros_then_set() {
        let mut bv = BitVec::zeros(100);
        assert_eq!(bv.count_ones(), 0);
        bv.set(0, true);
        bv.set(63, true);
        bv.set(64, true);
        bv.set(99, true);
        assert_eq!(bv.count_ones(), 4);
        assert!(bv.get(63));
        assert!(!bv.get(62));
        bv.set(63, false);
        assert_eq!(bv.count_ones(), 3);
    }

    #[test]
    fn from_iterator() {
        let bv: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(bv.len(), 3);
        assert!(bv.get(0) && !bv.get(1) && bv.get(2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn word_boundary_exactness() {
        let mut bv = BitVec::new();
        for _ in 0..64 {
            bv.push(true);
        }
        assert_eq!(bv.count_ones(), 64);
        bv.push(false);
        bv.push(true);
        assert_eq!(bv.count_ones(), 65);
        assert!(!bv.get(64));
        assert!(bv.get(65));
    }
}
