//! LEB128 variable-length integer coding for the byte-serialized lower trie
//! levels.

use bytes::{Buf, BufMut};

/// Appends `v` to `buf` as a LEB128 varint (1–10 bytes).
pub fn write_u64<B: BufMut>(buf: &mut B, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `buf`.
///
/// # Panics
/// On truncated or over-long (> 10 byte) input.
pub fn read_u64<B: Buf>(buf: &mut B) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        assert!(buf.has_remaining(), "truncated varint");
        let byte = buf.get_u8();
        assert!(shift < 64, "varint too long");
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Appends an `f64` in little-endian (fixed 8 bytes).
pub fn write_f64<B: BufMut>(buf: &mut B, v: f64) {
    buf.put_f64_le(v);
}

/// Reads an `f64` written by [`write_f64`].
pub fn read_f64<B: Buf>(buf: &mut B) -> f64 {
    buf.get_f64_le()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0);
        write_u64(&mut buf, 127);
        assert_eq!(buf.len(), 2);
        let mut r = &buf[..];
        assert_eq!(read_u64(&mut r), 0);
        assert_eq!(read_u64(&mut r), 127);
    }

    #[test]
    fn boundary_values() {
        for v in [127u64, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut r = &buf[..];
            assert_eq!(read_u64(&mut r), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "truncated varint")]
    fn truncated_input_panics() {
        let buf = [0x80u8];
        let mut r = &buf[..];
        read_u64(&mut r);
    }

    #[test]
    fn f64_roundtrip() {
        let mut buf = Vec::new();
        write_f64(&mut buf, -1234.5678);
        let mut r = &buf[..];
        assert_eq!(read_f64(&mut r), -1234.5678);
    }

    proptest! {
        #[test]
        fn u64_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            prop_assert!(buf.len() <= 10);
            let mut r = &buf[..];
            prop_assert_eq!(read_u64(&mut r), v);
        }

        #[test]
        fn sequences_roundtrip(vs in proptest::collection::vec(any::<u64>(), 0..50)) {
            let mut buf = Vec::new();
            for &v in &vs {
                write_u64(&mut buf, v);
            }
            let mut r = &buf[..];
            for &v in &vs {
                prop_assert_eq!(read_u64(&mut r), v);
            }
            prop_assert!(r.is_empty());
        }
    }
}
