//! Borrowed-or-mapped typed storage: [`FlatVec`] is a `Vec<T>` while an
//! index is being built or mutated, and a zero-copy view into a shared
//! byte buffer (an `mmap`ed archive section) once attached.
//!
//! Every container of the frozen deployment (point arenas, slot tables,
//! trie bitmaps, leaf summary tables) stores its elements in a `FlatVec`,
//! so the same search code runs unchanged over a freshly built index and
//! over one attached from disk without deserialization.

use crate::pod::{bytes_of, Pod};
use serde::{Deserialize, Serialize};
use std::ops::Deref;
use std::sync::Arc;

/// A shared, immutable byte buffer backing zero-copy views.
///
/// The bytes must stay valid and unchanged for the lifetime of the value
/// (an `mmap`ed file, or an owned heap allocation). `bytes()` must return
/// the same slice on every call.
pub trait ByteStore: std::fmt::Debug + Send + Sync + 'static {
    /// The backing bytes.
    fn bytes(&self) -> &[u8];
}

/// A cheaply clonable handle to a [`ByteStore`].
pub type ByteBuf = Arc<dyn ByteStore>;

/// An owned, 8-byte-aligned byte buffer.
///
/// Backed by a `Vec<u64>` so the base pointer is always 8-aligned — the
/// heap fallback when `mmap` is unavailable, and the test substrate for
/// view construction. Length is tracked separately (the last word may be
/// partial).
#[derive(Debug)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into a fresh 8-aligned allocation.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: the destination is `words.len() * 8 >= bytes.len()` bytes
        // of initialized (zeroed) u64s; u8 writes at any offset are fine.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                words.as_mut_ptr() as *mut u8,
                bytes.len(),
            );
        }
        AlignedBytes { words, len: bytes.len() }
    }
}

impl ByteStore for AlignedBytes {
    fn bytes(&self) -> &[u8] {
        // SAFETY: the Vec<u64> allocation is fully initialized and at
        // least `len` bytes long.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

/// Typed element storage that is either owned (mutable, growable) or a
/// zero-copy view into a shared byte buffer (see module docs).
///
/// Dereferences to `&[T]` either way; mutation on a view first copies it
/// out into owned storage (copy-on-write), so build-side code keeps
/// working unchanged.
pub enum FlatVec<T: Pod> {
    /// Heap-owned elements (the build/mutate representation).
    Owned(Vec<T>),
    /// `len` elements starting `off` bytes into `buf` (the mapped
    /// representation). Invariants checked at construction: the range is
    /// in bounds and the element pointer is aligned.
    View {
        /// The backing buffer, shared with every sibling section view.
        buf: ByteBuf,
        /// Byte offset of element 0 within `buf`.
        off: usize,
        /// Element count.
        len: usize,
    },
}

impl<T: Pod> FlatVec<T> {
    /// An empty owned vector.
    pub fn new() -> Self {
        FlatVec::Owned(Vec::new())
    }

    /// An empty owned vector with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        FlatVec::Owned(Vec::with_capacity(cap))
    }

    /// A zero-copy view of `len` elements at byte offset `off` in `buf`.
    ///
    /// Fails (with a diagnostic string for the caller's error type) when
    /// the range leaves the buffer or the element pointer would be
    /// misaligned — both are signs of a corrupt or foreign archive, never
    /// a panic.
    pub fn view(buf: ByteBuf, off: usize, len: usize) -> Result<Self, String> {
        let size = std::mem::size_of::<T>();
        let align = std::mem::align_of::<T>();
        let bytes = len
            .checked_mul(size)
            .ok_or_else(|| format!("section length overflows: {len} x {size}"))?;
        let end = off
            .checked_add(bytes)
            .ok_or_else(|| format!("section range overflows: {off}+{bytes}"))?;
        if end > buf.bytes().len() {
            return Err(format!(
                "section [{off}, {end}) outside buffer of {} bytes",
                buf.bytes().len()
            ));
        }
        if !(buf.bytes().as_ptr() as usize + off).is_multiple_of(align) {
            return Err(format!("section at byte {off} misaligned for align-{align} elements"));
        }
        Ok(FlatVec::View { buf, off, len })
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            FlatVec::Owned(v) => v.as_slice(),
            FlatVec::View { buf, off, len } => {
                // SAFETY: `view()` checked bounds and alignment once; the
                // buffer is immutable and outlives `self` via the Arc, and
                // Pod guarantees any bit pattern is a valid T.
                unsafe {
                    std::slice::from_raw_parts(buf.bytes().as_ptr().add(*off) as *const T, *len)
                }
            }
        }
    }

    /// The elements as raw bytes (for checksumming and archive writes).
    pub fn as_bytes(&self) -> &[u8] {
        bytes_of(self.as_slice())
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            FlatVec::Owned(v) => v.len(),
            FlatVec::View { len, .. } => *len,
        }
    }

    /// Whether there are no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutable access, copying a view out into owned storage first.
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let FlatVec::View { .. } = self {
            *self = FlatVec::Owned(self.as_slice().to_vec());
        }
        match self {
            FlatVec::Owned(v) => v,
            FlatVec::View { .. } => unreachable!("converted above"),
        }
    }

    /// Appends an element (copy-on-write for views).
    pub fn push(&mut self, value: T) {
        self.to_mut().push(value);
    }

    /// Whether this is a zero-copy view (attached) rather than owned.
    pub fn is_view(&self) -> bool {
        matches!(self, FlatVec::View { .. })
    }

    /// Heap bytes owned by this container (0 for a view — the mapped
    /// buffer is accounted once by its owner).
    pub fn mem_bytes(&self) -> usize {
        match self {
            FlatVec::Owned(v) => v.capacity() * std::mem::size_of::<T>(),
            FlatVec::View { .. } => 0,
        }
    }
}

impl<T: Pod> Deref for FlatVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Default for FlatVec<T> {
    fn default() -> Self {
        FlatVec::new()
    }
}

impl<T: Pod> From<Vec<T>> for FlatVec<T> {
    fn from(v: Vec<T>) -> Self {
        FlatVec::Owned(v)
    }
}

impl<T: Pod> FromIterator<T> for FlatVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        FlatVec::Owned(iter.into_iter().collect())
    }
}

impl<T: Pod> Clone for FlatVec<T> {
    fn clone(&self) -> Self {
        match self {
            FlatVec::Owned(v) => FlatVec::Owned(v.clone()),
            // Cloning a view is an Arc bump, not a data copy.
            FlatVec::View { buf, off, len } => {
                FlatVec::View { buf: Arc::clone(buf), off: *off, len: *len }
            }
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for FlatVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Pod + PartialEq> PartialEq for FlatVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for FlatVec<T> {}

// Serialized exactly like a Vec<T> (an array of elements), so containers
// that move a field from Vec to FlatVec keep their JSON format.
impl<T: Pod + Serialize> Serialize for FlatVec<T> {
    fn to_value(&self) -> serde::Value {
        self.as_slice().to_value()
    }
}

impl<T: Pod + Deserialize> Deserialize for FlatVec<T> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Vec::<T>::from_value(v).map(FlatVec::Owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf_of(bytes: &[u8]) -> ByteBuf {
        Arc::new(AlignedBytes::copy_from(bytes))
    }

    #[test]
    fn owned_push_and_slice() {
        let mut v: FlatVec<u32> = FlatVec::new();
        v.push(7);
        v.push(9);
        assert_eq!(&*v, &[7, 9]);
        assert!(!v.is_view());
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn view_reads_mapped_words() {
        let words: Vec<u64> = vec![3, u64::MAX, 0];
        let buf = buf_of(bytes_of(&words));
        let v = FlatVec::<u64>::view(buf, 0, 3).unwrap();
        assert!(v.is_view());
        assert_eq!(&*v, &[3, u64::MAX, 0]);
        assert_eq!(v.mem_bytes(), 0);
    }

    #[test]
    fn view_at_offset() {
        let words: Vec<u64> = vec![1, 2, 3, 4];
        let buf = buf_of(bytes_of(&words));
        let v = FlatVec::<u64>::view(buf, 16, 2).unwrap();
        assert_eq!(&*v, &[3, 4]);
    }

    #[test]
    fn view_rejects_out_of_bounds_and_misalignment() {
        let words: Vec<u64> = vec![1, 2];
        let buf = buf_of(bytes_of(&words));
        assert!(FlatVec::<u64>::view(Arc::clone(&buf), 0, 3).is_err());
        assert!(FlatVec::<u64>::view(Arc::clone(&buf), 4, 1).is_err());
        assert!(FlatVec::<u64>::view(buf, usize::MAX, 1).is_err());
    }

    #[test]
    fn copy_on_write_preserves_then_diverges() {
        let words: Vec<u64> = vec![10, 20];
        let buf = buf_of(bytes_of(&words));
        let mut v = FlatVec::<u64>::view(buf, 0, 2).unwrap();
        v.push(30);
        assert!(!v.is_view(), "mutation converts to owned");
        assert_eq!(&*v, &[10, 20, 30]);
    }

    #[test]
    fn equality_crosses_representations() {
        let words: Vec<u64> = vec![5, 6];
        let buf = buf_of(bytes_of(&words));
        let view = FlatVec::<u64>::view(buf, 0, 2).unwrap();
        let owned = FlatVec::Owned(vec![5u64, 6]);
        assert_eq!(view, owned);
    }

    #[test]
    fn serde_matches_vec_format() {
        let v = FlatVec::Owned(vec![1u64, 2, 3]);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: FlatVec<u64> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        assert!(!back.is_view());
    }

    #[test]
    fn empty_view_is_fine() {
        let buf = buf_of(&[]);
        let v = FlatVec::<u64>::view(buf, 0, 0).unwrap();
        assert!(v.is_empty());
    }
}
