//! The [`Pod`] marker: types whose values are plain bytes, so a section of
//! a mapped archive can be reinterpreted as a typed slice with no decode
//! step and no copy.

/// Marker for plain-old-data element types of a [`crate::FlatVec`].
///
/// # Safety
///
/// Implementors must guarantee, for the archive's zero-copy contract:
///
/// * `#[repr(C)]` (or a primitive), so the in-memory layout is defined and
///   identical across builds;
/// * **every** bit pattern of `size_of::<T>()` bytes is a valid value
///   (reading a mapped, attacker-flippable byte range as `&[T]` must never
///   be undefined behaviour — validation happens by checksum, above this
///   layer);
/// * **no padding bytes** — every byte of the value is a field byte.
///   Padding would be uninitialized on write (UB to read as bytes) and
///   would make section checksums nondeterministic. Types with tail
///   padding must carry an explicit zeroed filler field instead;
/// * alignment at most 8 (archive sections are 8-byte aligned).
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

// Primitives: no padding, any bit pattern valid, align <= 8.
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

/// Reinterprets a typed slice as its raw bytes.
///
/// Sound for any [`Pod`] `T` (no padding, defined layout); this is the
/// write/checksum side of the zero-copy contract.
pub fn bytes_of<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: Pod guarantees no padding (no uninitialized bytes) and a
    // defined repr; the length never overflows because the slice exists.
    unsafe {
        std::slice::from_raw_parts(slice.as_ptr() as *const u8, std::mem::size_of_val(slice))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_of_little_endian_words() {
        let v: Vec<u64> = vec![0x0102_0304_0506_0708, u64::MAX];
        let b = bytes_of(&v);
        assert_eq!(b.len(), 16);
        assert_eq!(&b[..8], &[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(&b[8..], &[0xff; 8]);
    }

    #[test]
    fn bytes_of_empty() {
        let v: Vec<u32> = Vec::new();
        assert!(bytes_of(&v).is_empty());
    }
}
