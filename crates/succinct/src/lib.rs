//! Succinct building blocks for the RP-Trie's two-layer physical layout
//! (Section III-B, "Succinct trie structure", inspired by SuRF).
//!
//! The upper, frequently-accessed trie levels are encoded as bitmaps with
//! O(1) rank support ([`BitVec`] + [`RankSelect`]); the lower, sparse levels
//! are serialized as byte sequences (varint helpers in [`varint`]).
//!
//! ```
//! use repose_succinct::{varint, BitVec, RankSelect};
//!
//! // rank1(i) = ones strictly before i; select1(k) = position of the
//! // k-th one (0-based) — the child-addressing primitives of the trie.
//! let mut bits = BitVec::new();
//! for b in [true, false, true, true, false] {
//!     bits.push(b);
//! }
//! let rs = RankSelect::new(bits);
//! assert_eq!(rs.rank1(3), 2);
//! assert_eq!(rs.select1(2), Some(3));
//!
//! // LEB128 varints for the sparse levels.
//! let mut buf = Vec::new();
//! varint::write_u64(&mut buf, 300);
//! assert_eq!(buf.len(), 2);
//! let mut r = &buf[..];
//! assert_eq!(varint::read_u64(&mut r), 300);
//! ```

//!
//! For persistence, the same crate provides the zero-copy storage layer:
//! [`Pod`] marks byte-reinterpretable element types, [`FlatVec`] holds a
//! container's elements either owned (build time) or as a view into a
//! shared [`ByteStore`] buffer (an `mmap`ed archive section), and the
//! succinct structures themselves are `FlatVec`-backed so an index
//! attaches from disk without deserialization.

#![warn(missing_docs)]

mod bitvec;
mod flat;
mod pod;
mod rank;
pub mod varint;

pub use bitvec::BitVec;
pub use flat::{AlignedBytes, ByteBuf, ByteStore, FlatVec};
pub use pod::{bytes_of, Pod};
pub use rank::RankSelect;
