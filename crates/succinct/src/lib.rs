//! Succinct building blocks for the RP-Trie's two-layer physical layout
//! (Section III-B, "Succinct trie structure", inspired by SuRF).
//!
//! The upper, frequently-accessed trie levels are encoded as bitmaps with
//! O(1) rank support ([`BitVec`] + [`RankSelect`]); the lower, sparse levels
//! are serialized as byte sequences (varint helpers in [`varint`]).

#![warn(missing_docs)]

mod bitvec;
mod rank;
pub mod varint;

pub use bitvec::BitVec;
pub use rank::RankSelect;
