use crate::BitVec;

/// Constant-time rank (and logarithmic select) over an immutable [`BitVec`].
///
/// Ranks are precomputed per 512-bit superblock; a query scans at most eight
/// words. This is the classic layout SuRF's LOUDS-DS uses for its
/// upper-level bitmaps.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RankSelect {
    bits: BitVec,
    /// `super_ranks[i]` = number of ones before superblock `i` (512 bits).
    super_ranks: Vec<u64>,
    total_ones: usize,
}

const WORDS_PER_BLOCK: usize = 8; // 512 bits

impl RankSelect {
    /// Builds the rank directory for `bits`.
    pub fn new(bits: BitVec) -> Self {
        let words = bits.words();
        let n_blocks = words.len().div_ceil(WORDS_PER_BLOCK);
        let mut super_ranks = Vec::with_capacity(n_blocks + 1);
        let mut acc = 0u64;
        super_ranks.push(0);
        for block in 0..n_blocks {
            let start = block * WORDS_PER_BLOCK;
            let end = (start + WORDS_PER_BLOCK).min(words.len());
            for w in &words[start..end] {
                acc += u64::from(w.count_ones());
            }
            super_ranks.push(acc);
        }
        let total_ones = acc as usize;
        RankSelect { bits, super_ranks, total_ones }
    }

    /// The underlying bits.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.total_ones
    }

    /// `rank1(i)`: number of set bits strictly before position `i`
    /// (`0 <= i <= len`).
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.bits.len(), "rank index out of bounds");
        let words = self.bits.words();
        let block = i / (WORDS_PER_BLOCK * 64);
        let mut r = self.super_ranks[block] as usize;
        let first_word = block * WORDS_PER_BLOCK;
        let word = i / 64;
        for w in &words[first_word..word] {
            r += w.count_ones() as usize;
        }
        let rem = i % 64;
        if rem > 0 {
            r += (words[word] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// `rank0(i)`: number of clear bits strictly before position `i`.
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// `select1(k)`: position of the `k`-th set bit (0-based), or `None`
    /// when fewer than `k + 1` bits are set.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.total_ones {
            return None;
        }
        // Binary search the superblock, then scan words.
        let target = k as u64 + 1;
        let mut lo = 0usize;
        let mut hi = self.super_ranks.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.super_ranks[mid + 1] >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let block = lo;
        let mut remaining = target - self.super_ranks[block];
        let words = self.bits.words();
        let start = block * WORDS_PER_BLOCK;
        for (wi, w) in words[start..(start + WORDS_PER_BLOCK).min(words.len())]
            .iter()
            .enumerate()
        {
            let ones = u64::from(w.count_ones());
            if ones >= remaining {
                // find the `remaining`-th set bit inside this word
                let mut word = *w;
                for _ in 1..remaining {
                    word &= word - 1; // clear lowest set bit
                }
                return Some((start + wi) * 64 + word.trailing_zeros() as usize);
            }
            remaining -= ones;
        }
        unreachable!("select accounting is inconsistent");
    }

    /// Approximate heap size in bytes (bits + directory).
    pub fn mem_bytes(&self) -> usize {
        self.bits.mem_bytes() + self.super_ranks.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_rank(bits: &BitVec, i: usize) -> usize {
        (0..i).filter(|&j| bits.get(j)).count()
    }

    #[test]
    fn rank_on_small_pattern() {
        let bv: BitVec = [true, false, true, true, false].into_iter().collect();
        let rs = RankSelect::new(bv);
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.rank1(1), 1);
        assert_eq!(rs.rank1(3), 2);
        assert_eq!(rs.rank1(5), 3);
        assert_eq!(rs.rank0(5), 2);
    }

    #[test]
    fn select_inverts_rank() {
        let bv: BitVec = (0..1000).map(|i| i % 7 == 0).collect();
        let rs = RankSelect::new(bv);
        for k in 0..rs.count_ones() {
            let pos = rs.select1(k).unwrap();
            assert!(rs.bits().get(pos));
            assert_eq!(rs.rank1(pos), k);
        }
        assert_eq!(rs.select1(rs.count_ones()), None);
    }

    #[test]
    fn empty_vector() {
        let rs = RankSelect::new(BitVec::new());
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.select1(0), None);
        assert_eq!(rs.count_ones(), 0);
    }

    #[test]
    fn all_ones_across_blocks() {
        let bv: BitVec = (0..2000).map(|_| true).collect();
        let rs = RankSelect::new(bv);
        assert_eq!(rs.rank1(2000), 2000);
        assert_eq!(rs.rank1(513), 513);
        assert_eq!(rs.select1(512), Some(512));
        assert_eq!(rs.select1(1999), Some(1999));
    }

    proptest! {
        #[test]
        fn rank_matches_naive(bits in proptest::collection::vec(any::<bool>(), 0..1500)) {
            let bv: BitVec = bits.iter().copied().collect();
            let rs = RankSelect::new(bv.clone());
            // probe a few positions including the ends
            let n = bv.len();
            for i in [0, n / 3, n / 2, n.saturating_sub(1), n] {
                prop_assert_eq!(rs.rank1(i), naive_rank(&bv, i));
            }
        }

        #[test]
        fn select_then_rank_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..1500)) {
            let bv: BitVec = bits.iter().copied().collect();
            let rs = RankSelect::new(bv);
            let ones = rs.count_ones();
            if ones > 0 {
                for k in [0, ones / 2, ones - 1] {
                    let pos = rs.select1(k).unwrap();
                    prop_assert_eq!(rs.rank1(pos), k);
                    prop_assert!(rs.bits().get(pos));
                }
            }
        }
    }
}
