//! Property tests for the succinct building blocks the archive format
//! leans on: bit-vector word roundtrips (`as_words` → `from_words` is how
//! a mapped archive section becomes a live `BitVec`), rank/select
//! consistency, and varint stream roundtrips — with the degenerate shapes
//! (empty, all ones, word-boundary lengths) pinned explicitly.

use proptest::prelude::*;
use repose_succinct::varint::{read_u64, write_u64};
use repose_succinct::{AlignedBytes, BitVec, FlatVec, RankSelect};
use std::sync::Arc;

/// Reconstructs a `BitVec` the way the archive reader does: serialize the
/// words to bytes, view them through a `ByteBuf`, and validate.
fn roundtrip_words(bv: &BitVec) -> Result<BitVec, String> {
    let bytes: Vec<u8> = bv.as_words().iter().flat_map(|w| w.to_le_bytes()).collect();
    let buf = Arc::new(AlignedBytes::copy_from(&bytes));
    let words = FlatVec::<u64>::view(buf, 0, bv.as_words().len())?;
    BitVec::from_words(words, bv.len())
}

fn bitvec_of(bits: &[bool]) -> BitVec {
    bits.iter().copied().collect()
}

#[test]
fn empty_bitvec_roundtrips() {
    let bv = BitVec::new();
    let back = roundtrip_words(&bv).expect("empty roundtrip");
    assert_eq!(back.len(), 0);
    assert!(back.is_empty());
    assert_eq!(back.count_ones(), 0);
    let rs = RankSelect::new(back);
    assert_eq!(rs.rank1(0), 0);
    assert_eq!(rs.select1(0), None);
}

#[test]
fn all_ones_roundtrips_at_word_boundaries() {
    for len in [1usize, 63, 64, 65, 127, 128, 129, 1000] {
        let bv = bitvec_of(&vec![true; len]);
        let back = roundtrip_words(&bv).unwrap_or_else(|e| panic!("len {len}: {e}"));
        assert_eq!(back.len(), len);
        assert_eq!(back.count_ones(), len, "len {len}");
        let rs = RankSelect::new(back);
        for i in [0, len / 2, len] {
            assert_eq!(rs.rank1(i), i, "len {len}, rank at {i}");
        }
        for k in [0, len - 1] {
            assert_eq!(rs.select1(k), Some(k), "len {len}, select {k}");
        }
        assert_eq!(rs.select1(len), None, "len {len}: one-past-end select");
    }
}

#[test]
fn from_words_rejects_malformed_reconstructions() {
    // Word count must match the bit length exactly...
    let one_word = FlatVec::<u64>::from_iter([u64::MAX]);
    assert!(BitVec::from_words(one_word, 128).is_err(), "too few words accepted");
    let two_words = FlatVec::<u64>::from_iter([u64::MAX, u64::MAX]);
    assert!(BitVec::from_words(two_words, 64).is_err(), "too many words accepted");
    // ...and bits beyond the length must be zero (a flipped padding bit in
    // a mapped archive section is corruption, not slack).
    let padded = FlatVec::<u64>::from_iter([0b1000u64]);
    assert!(BitVec::from_words(padded, 3).is_err(), "nonzero padding accepted");
    let exact = FlatVec::<u64>::from_iter([0b0111u64]);
    assert_eq!(BitVec::from_words(exact, 3).unwrap().count_ones(), 3);
}

proptest! {
    /// Words → bytes → view → `from_words` is the identity on arbitrary
    /// bit patterns, at arbitrary (boundary-biased) lengths.
    #[test]
    fn word_roundtrip_is_identity(
        bits in proptest::collection::vec(any::<bool>(), 0..520),
    ) {
        let bv = bitvec_of(&bits);
        let back = roundtrip_words(&bv).expect("roundtrip");
        prop_assert_eq!(back.len(), bits.len());
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(back.get(i), bit, "bit {} diverged", i);
        }
    }

    /// rank0/rank1 partition every prefix, agree with a naive count, and
    /// select1 inverts rank1 — after a words roundtrip.
    #[test]
    fn rank_select_consistency_after_roundtrip(
        bits in proptest::collection::vec(any::<bool>(), 0..700),
    ) {
        let rs = RankSelect::new(roundtrip_words(&bitvec_of(&bits)).expect("roundtrip"));
        let n = bits.len();
        let mut ones = 0usize;
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(rs.rank1(i), ones, "rank1({})", i);
            prop_assert_eq!(rs.rank0(i) + rs.rank1(i), i, "ranks must partition [0, {})", i);
            if bit {
                prop_assert_eq!(rs.select1(ones), Some(i), "select1({})", ones);
                ones += 1;
            }
        }
        prop_assert_eq!(rs.rank1(n), ones, "rank1 over the full length");
        prop_assert_eq!(rs.rank0(n) + rs.rank1(n), n, "full-length ranks must partition");
        prop_assert_eq!(rs.count_ones(), ones);
        prop_assert_eq!(rs.select1(ones), None);
    }

    /// A varint stream of arbitrary values decodes back to exactly the
    /// input sequence. The one-byte/two-byte/ten-byte encoding edges are
    /// spliced into every generated stream so the boundaries are always
    /// exercised alongside random neighbors.
    #[test]
    fn varint_stream_roundtrips(
        random in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let mut values = random;
        values.extend([0u64, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX]);
        let mut buf = Vec::new();
        for &v in &values {
            write_u64(&mut buf, v);
        }
        let mut r = &buf[..];
        for &v in &values {
            prop_assert_eq!(read_u64(&mut r), v);
        }
        prop_assert!(r.is_empty(), "trailing bytes after decoding every value");
    }
}
