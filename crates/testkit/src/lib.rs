//! Shared seeded generators and comparison helpers for the workspace
//! integration tests.
//!
//! The exactness suites (`tests/shared_threshold.rs`,
//! `tests/pooled_service.rs`, `tests/zero_alloc.rs`, `tests/invariants.rs`)
//! all need the same ingredients: deterministic tie-heavy datasets whose
//! k-th boundaries cut through duplicate groups, flat trajectory arenas for
//! allocation counting, raw-coordinate-to-[`Trajectory`] lifting for
//! proptest strategies, and bit-exact distance-multiset comparison. They
//! each grew a private copy; this crate is the single shared one, so a
//! change to a generator (e.g. widening a tie group) propagates to every
//! suite instead of silently diverging.
//!
//! Everything here is deterministic: generators are either closed-form in
//! their arguments or driven by an explicit proptest strategy — no ambient
//! randomness, so failures reproduce across runs and hosts.

#![warn(missing_docs)]

use proptest::prelude::*;
use repose_durability::WalRecord;
use repose_model::{Dataset, Mbr, Point, TrajStore, Trajectory};

/// Lifts `(x, y)` pairs into [`Point`]s.
pub fn pts(v: &[(f64, f64)]) -> Vec<Point> {
    v.iter().map(|&(x, y)| Point::new(x, y)).collect()
}

/// Lifts raw per-trajectory coordinate lists into [`Trajectory`]s with
/// sequential ids — the common tail of every proptest dataset strategy.
pub fn trajectories_from_raw(raw: Vec<Vec<(f64, f64)>>) -> Vec<Trajectory> {
    raw.into_iter()
        .enumerate()
        .map(|(i, p)| Trajectory::new(i as u64, pts(&p)))
        .collect()
}

/// The sorted distance multiset of a result, as exact bits.
///
/// The paper's Definition 3 permits tied *ids* to resolve differently
/// between two exact executions, so exactness tests compare this multiset
/// (bit-for-bit, never an epsilon) instead of id lists.
pub fn sorted_dist_bits(dists: impl IntoIterator<Item = f64>) -> Vec<u64> {
    let mut d: Vec<u64> = dists.into_iter().map(f64::to_bits).collect();
    d.sort_unstable();
    d
}

/// The square region `[0, extent]^2`.
pub fn square(extent: f64) -> Mbr {
    Mbr::new(Point::new(0.0, 0.0), Point::new(extent, extent))
}

/// Deterministic tie-heavy trajectory: ids fall into groups of 5 sharing
/// one base cell in `[0, 64]^2`; even groups are *exact duplicates*
/// (maximal ties at every k boundary), odd groups carry tiny per-id jitter
/// (distinct distances). Every query against a `tie_traj` dataset faces
/// heavy k-th-boundary ties — the worst case for shared strict thresholds.
pub fn tie_traj(id: u64) -> Trajectory {
    let group = id / 5; // 5 ids per duplicate group
    let gx = (group % 8) as f64 * 7.0;
    let gy = (group / 8 % 8) as f64 * 7.0;
    let jit = if group.is_multiple_of(2) { 0.0 } else { (id % 5) as f64 * 1e-3 };
    Trajectory::new(
        id,
        (0..8)
            .map(|s| Point::new(gx + s as f64 * 0.5 + jit, gy + jit))
            .collect(),
    )
}

/// Region fence posts: extreme corners so `enclosing_square` always covers
/// every trajectory [`tie_traj`] can produce (delta inserts included —
/// incremental compaction never falls back for region reasons unless a
/// test arranges it).
pub fn sentinels() -> Vec<Trajectory> {
    vec![
        Trajectory::new(1_000_000, vec![Point::new(-1.0, -1.0)]),
        Trajectory::new(1_000_001, vec![Point::new(64.0, 64.0)]),
    ]
}

/// A [`tie_traj`] dataset over `ids`, fenced by [`sentinels`].
pub fn tie_dataset(ids: std::ops::Range<u64>) -> Dataset {
    let mut trajs: Vec<Trajectory> = ids.map(tie_traj).collect();
    trajs.extend(sentinels());
    Dataset::from_trajectories(trajs)
}

/// Five fixed query trajectories probing distinct [`tie_traj`] cells (on a
/// duplicate group, on a jitter group, between cells, near the far fence).
pub fn tie_queries() -> Vec<Vec<Point>> {
    [(0.2, 0.1), (7.3, 7.2), (21.5, 14.0), (35.1, 48.9), (10.0, 3.0)]
        .iter()
        .map(|&(x, y)| (0..8).map(|s| Point::new(x + s as f64 * 0.5, y)).collect())
        .collect()
}

/// A flat [`TrajStore`] arena of `n` deterministic trajectories of `len`
/// points spread over `spread`-spaced rows — the fixture the allocation
/// counting tests verify kernels against.
pub fn arena(n: u64, len: usize, spread: f64) -> TrajStore {
    let mut store = TrajStore::new();
    for i in 0..n {
        let y = (i % 7) as f64 * spread;
        let x0 = (i / 7) as f64 * 0.9;
        let points: Vec<Point> = (0..len)
            .map(|j| Point::new(x0 + j as f64 * 0.31, y + (j % 3) as f64 * 0.2))
            .collect();
        store.push(i, &points);
    }
    store
}

/// Strategy: a query-sized point list inside `[0, extent)^2`.
pub fn arb_points(
    extent: f64,
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0..extent, 0.0..extent), len)
        .prop_map(|raw| pts(&raw))
}

/// Strategy: `count` random trajectories of `len` points each inside
/// `[0, extent)^2`, with sequential ids.
pub fn arb_trajectories(
    extent: f64,
    count: std::ops::Range<usize>,
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<Trajectory>> {
    proptest::collection::vec(
        proptest::collection::vec((0.0..extent, 0.0..extent), len),
        count,
    )
    .prop_map(trajectories_from_raw)
}

/// A random WAL record built from raw integers: `kind` selects the
/// variant and the `u64` bit patterns become coordinates, so NaNs,
/// infinities, -0.0 and subnormals all appear. Shared by the durability
/// property tests and the shard replication-log suite, so both exercise
/// the identical record space.
pub fn build_record(kind: u8, seq: u64, id: u64, bits: &[(u64, u64)]) -> WalRecord {
    match kind % 4 {
        0 => WalRecord::Upsert {
            seq,
            id,
            points: bits
                .iter()
                .map(|&(x, y)| Point::new(f64::from_bits(x), f64::from_bits(y)))
                .collect(),
        },
        1 => WalRecord::Delete { seq, id },
        2 => WalRecord::Seal { seq },
        _ => WalRecord::Checkpoint { seq },
    }
}

/// The coordinate bit patterns of a record's points (empty for
/// non-upserts) — bitwise comparison, because NaN != NaN under float
/// equality.
pub fn record_point_bits(r: &WalRecord) -> Vec<(u64, u64)> {
    match r {
        WalRecord::Upsert { points, .. } => {
            points.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect()
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_groups_are_exact_duplicates_on_even_groups() {
        // Group 0 (even): ids 0..5 identical geometry.
        let base = tie_traj(0);
        for id in 1..5 {
            assert_eq!(tie_traj(id).points, base.points);
        }
        // Group 1 (odd): ids 5..10 pairwise distinct.
        for id in 6..10 {
            assert_ne!(tie_traj(id).points, tie_traj(5).points);
        }
    }

    #[test]
    fn sorted_dist_bits_is_order_insensitive() {
        let a = sorted_dist_bits([3.0, 1.0, 2.0]);
        let b = sorted_dist_bits([2.0, 3.0, 1.0]);
        assert_eq!(a, b);
        assert_eq!(a, vec![1.0f64.to_bits(), 2.0f64.to_bits(), 3.0f64.to_bits()]);
    }

    #[test]
    fn arena_is_deterministic() {
        let a = arena(6, 9, 1.1);
        let b = arena(6, 9, 1.1);
        assert_eq!(a.len(), 6);
        for i in 0..a.len() {
            assert_eq!(a.points(i), b.points(i));
        }
    }
}
