//! Property tests for the WAL record format and torn-tail policy.
//!
//! Three contracts, exercised over random inputs:
//!
//! 1. every record type roundtrips bit-exactly through encode/decode
//!    (coordinates included — arbitrary `u64` bit patterns, NaNs and all);
//! 2. a single bit flip anywhere in a framed stream is always detected
//!    (never silently decoded as a different valid stream);
//! 3. tearing the tail of a log never drops an fsync-acknowledged record.

use proptest::prelude::*;
use repose_durability::{
    replay, DurabilityConfig, FailAction, FsyncPolicy, Wal, WalRecord,
};
use repose_model::Point;
use repose_testkit::{build_record, record_point_bits as bits_of};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "repose-walprops-{}-{}-{}",
        tag,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_record_roundtrips_bit_exactly(
        kind in any::<u8>(),
        seq in any::<u64>(),
        id in any::<u64>(),
        bits in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..20),
    ) {
        let record = build_record(kind, seq, id, &bits);
        let buf = record.to_bytes();
        let mut cur = buf.as_slice();
        let back = WalRecord::decode(&mut cur).unwrap().expect("one record");
        prop_assert!(cur.is_empty());
        prop_assert_eq!(back.seq(), record.seq());
        // Coordinate equality must be bitwise, not float-==, so compare
        // the bit patterns (NaN != NaN under float comparison).
        prop_assert_eq!(bits_of(&back), bits_of(&record));
        prop_assert_eq!(
            std::mem::discriminant(&back),
            std::mem::discriminant(&record)
        );
    }

    #[test]
    fn single_bit_flip_is_always_detected(
        seq in any::<u64>(),
        id in any::<u64>(),
        bits in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..6),
        flip_at in any::<u32>(),
    ) {
        let record = build_record(0, seq, id, &bits);
        let good = record.to_bytes();
        let pos = flip_at as usize % (good.len() * 8);
        let mut bad = good.clone();
        bad[pos / 8] ^= 1 << (pos % 8);
        let mut cur = bad.as_slice();
        match WalRecord::decode(&mut cur) {
            Err(_) => {}
            Ok(decoded) => {
                // A flip in the length prefix can make the frame claim
                // more bytes than remain — decode must NOT succeed with
                // different content.
                prop_assert!(
                    decoded.as_ref().map(bits_of) == Some(bits_of(&record))
                        && decoded.as_ref().map(WalRecord::seq) == Some(record.seq()),
                    "bit flip at {} silently decoded as {:?}",
                    pos,
                    decoded
                );
            }
        }
    }

    #[test]
    fn torn_tail_never_drops_an_acknowledged_record(
        n_acked in 1usize..12,
        sizes in proptest::collection::vec(0u64..6, 12..13),
    ) {
        let dir = scratch("ttail");
        let cfg = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::Always);
        let mut wal = Wal::create(&cfg).unwrap();
        repose_durability::write_snapshot(&dir, 0, std::iter::empty(), &cfg.failpoints).unwrap();
        for seq in 1..=n_acked as u64 {
            let n_pts = sizes[(seq as usize - 1) % sizes.len()];
            let points: Vec<Point> =
                (0..n_pts).map(|i| Point::new(i as f64, seq as f64)).collect();
            // `Always` policy: returning Ok is the fsync acknowledgement.
            wal.append(&WalRecord::Upsert { seq, id: seq, points }).unwrap();
        }
        // The next write tears mid-flush, exactly as a crash would.
        cfg.failpoints.arm("wal.flush", FailAction::ShortWrite, 0);
        let torn = wal.append(&WalRecord::Upsert {
            seq: n_acked as u64 + 1,
            id: 999,
            points: vec![Point::new(1.0, 2.0); 4],
        });
        prop_assert!(torn.is_err());
        drop(wal);

        let replayed = replay(&dir).unwrap();
        let upserts: Vec<u64> = replayed
            .records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Upsert { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        let want: Vec<u64> = (1..=n_acked as u64).collect();
        prop_assert_eq!(upserts, want, "every acknowledged record, nothing else");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
