//! The write-ahead log writer: group commit, segment rotation, base
//! snapshots, and checkpoint truncation.
//!
//! # Durability contract
//!
//! [`Wal::append`] buffers the encoded record and then commits it
//! according to the [`FsyncPolicy`]:
//!
//! * [`FsyncPolicy::Always`] — the record is flushed to the OS **and**
//!   `fsync`ed before `append` returns. An acknowledged write survives
//!   both process and machine crash.
//! * [`FsyncPolicy::EveryN`]`(n)` — group commit: records are flushed and
//!   synced once `n` have accumulated (and at graceful shutdown). An
//!   acknowledged write survives a crash once any later sync completed;
//!   at most the last `n - 1` acknowledged writes can be lost.
//! * [`FsyncPolicy::Never`] — records are written to the OS on every
//!   append but never `fsync`ed (test/bench baseline).
//!
//! # Fail-stop
//!
//! Any I/O failure (real or injected) marks the WAL **dead**: every later
//! operation returns [`WalError::Dead`]. A half-failed write path must not
//! keep acknowledging operations whose durability is unknown; the owning
//! service surfaces the typed error and the operator recovers from the
//! directory ([`crate::replay()`]).
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/wal-<index>.log   record stream; `index` strictly increasing
//! <dir>/base-<seq>.snap   base snapshot covering operations <= seq
//! <dir>/*.tmp             in-flight snapshot writes (ignored by replay)
//! ```
//!
//! Snapshots are written to a temp file, `fsync`ed, then atomically
//! renamed — a crash mid-snapshot leaves only ignorable garbage. A
//! [`Wal::checkpoint`] records that snapshot `seq` is durable, then prunes
//! every sealed segment whose records all fall at or below it (and every
//! older snapshot). Replay correctness never depends on pruning: records
//! at or below the best snapshot's seq are skipped regardless.

use crate::failpoint::{FailAction, FailPlan};
use crate::record::WalRecord;
use repose_model::{Point, TrajId};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When `fsync` runs relative to appends (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Flush + `fsync` on every append: acknowledged ⇒ durable.
    Always,
    /// Group commit: flush + `fsync` after every `n` appends.
    EveryN(u32),
    /// Flush on every append, never `fsync` (tests/benchmarks).
    Never,
}

/// Configuration of the durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the WAL segments and base snapshots.
    pub dir: PathBuf,
    /// The fsync policy (default [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the current one exceeds this many
    /// durably written bytes (default 8 MiB).
    pub segment_bytes: u64,
    /// Deterministic fault-injection plan (default: empty — nothing
    /// fires). See [`crate::FailPlan::from_env`] for environment arming.
    pub failpoints: FailPlan,
}

impl DurabilityConfig {
    /// A config with the production defaults (`Always`, 8 MiB segments,
    /// no fail points).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            segment_bytes: 8 << 20,
            failpoints: FailPlan::new(),
        }
    }

    /// Replaces the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Replaces the segment rotation threshold.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Replaces the fault-injection plan.
    pub fn with_failpoints(mut self, plan: FailPlan) -> Self {
        self.failpoints = plan;
        self
    }
}

/// Errors of the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// A real I/O operation failed at the named point.
    Io {
        /// Which write-path site failed.
        point: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A [`FailPlan`] arm fired at the named point.
    Injected {
        /// Which write-path site the arm was attached to.
        point: &'static str,
        /// The injected action.
        action: FailAction,
    },
    /// The WAL is dead after an earlier failure (fail-stop); recover from
    /// the directory to resume.
    Dead,
    /// A record in a *non-final* position failed to decode — mid-log
    /// corruption, which recovery must not paper over.
    Corrupt {
        /// The corrupt file.
        segment: PathBuf,
        /// Byte offset of the bad frame.
        offset: u64,
        /// Why the frame was rejected.
        reason: crate::record::DecodeError,
    },
    /// A base snapshot is unusable (missing, truncated, or failing its
    /// trailer check).
    BadSnapshot {
        /// The snapshot path (or the directory when none exists).
        path: PathBuf,
        /// Human-readable reason.
        reason: String,
    },
    /// [`Wal::create`] on a directory that already holds a journal.
    DirNotEmpty {
        /// The offending directory.
        dir: PathBuf,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { point, source } => write!(f, "wal I/O failure at {point}: {source}"),
            WalError::Injected { point, action } => {
                write!(f, "injected fault at {point}: {action:?}")
            }
            WalError::Dead => write!(f, "wal is dead after an earlier failure; recover to resume"),
            WalError::Corrupt { segment, offset, reason } => write!(
                f,
                "mid-log corruption in {} at byte {offset}: {reason}",
                segment.display()
            ),
            WalError::BadSnapshot { path, reason } => {
                write!(f, "unusable base snapshot {}: {reason}", path.display())
            }
            WalError::DirNotEmpty { dir } => write!(
                f,
                "{} already holds a journal; use recovery instead of fresh creation",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

pub(crate) fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.log"))
}

pub(crate) fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("base-{seq:016x}.snap"))
}

/// A sealed segment the writer (or replayer) knows about.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// The segment's rotation index.
    pub index: u64,
    /// Its path.
    pub path: PathBuf,
    /// The largest record sequence it contains (0 when empty).
    pub max_seq: u64,
}

/// Counters a [`Wal`] exposes for service stats.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalCounters {
    /// Bytes handed to the OS across all segments and snapshots.
    pub bytes_written: u64,
    /// `fsync` (`sync_data`) calls issued.
    pub fsyncs: u64,
}

/// The write-ahead log writer (see the module docs).
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    plan: FailPlan,
    file: File,
    seg_index: u64,
    seg_path: PathBuf,
    /// Bytes of the current segment already written to the OS.
    seg_written: u64,
    /// Bytes of the current segment covered by a completed `fsync` — what
    /// the simulated-crash model guarantees survives (see [`Wal::inject`]).
    synced_len: u64,
    /// Encoded records not yet handed to the OS (the group-commit buffer).
    pending: Vec<u8>,
    appends_since_sync: u32,
    /// Sealed segments, oldest first.
    sealed: Vec<SegmentInfo>,
    /// Largest record seq in the current segment (pending included).
    seg_max_seq: u64,
    last_seq: u64,
    counters: WalCounters,
    dead: bool,
}

impl Wal {
    /// Creates a fresh journal in `cfg.dir` (creating the directory as
    /// needed). Fails with [`WalError::DirNotEmpty`] if the directory
    /// already holds segments or snapshots — recovering over an existing
    /// journal must be an explicit choice, never an accident.
    pub fn create(cfg: &DurabilityConfig) -> Result<Wal, WalError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("wal.create", e))?;
        let has_journal = fs::read_dir(&cfg.dir)
            .map_err(|e| io_err("wal.create", e))?
            .flatten()
            .any(|entry| {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                name.starts_with("wal-") || name.starts_with("base-")
            });
        if has_journal {
            return Err(WalError::DirNotEmpty { dir: cfg.dir.clone() });
        }
        Wal::open_at(cfg, Vec::new(), 1, 0)
    }

    /// Reopens a journal after [`crate::replay()`]: starts a *fresh* segment
    /// (never appends into a possibly-torn tail) with the replayer's
    /// segment inventory and last sequence.
    pub fn resume(
        cfg: &DurabilityConfig,
        sealed: Vec<SegmentInfo>,
        next_index: u64,
        last_seq: u64,
    ) -> Result<Wal, WalError> {
        Wal::open_at(cfg, sealed, next_index, last_seq)
    }

    fn open_at(
        cfg: &DurabilityConfig,
        sealed: Vec<SegmentInfo>,
        index: u64,
        last_seq: u64,
    ) -> Result<Wal, WalError> {
        let seg_path = segment_path(&cfg.dir, index);
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&seg_path)
            .map_err(|e| io_err("wal.create", e))?;
        Ok(Wal {
            dir: cfg.dir.clone(),
            fsync: cfg.fsync,
            segment_bytes: cfg.segment_bytes.max(1),
            plan: cfg.failpoints.clone(),
            file,
            seg_index: index,
            seg_path,
            seg_written: 0,
            synced_len: 0,
            pending: Vec::new(),
            appends_since_sync: 0,
            sealed,
            seg_max_seq: 0,
            last_seq,
            counters: WalCounters::default(),
            dead: false,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The last sequence successfully appended.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Whether the WAL has fail-stopped.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Durability counters (bytes written, fsyncs issued).
    pub fn counters(&self) -> WalCounters {
        self.counters
    }

    /// Appends `record` and commits it per the fsync policy. On `Ok`, the
    /// record is durable to the policy's guarantee; on `Err`, nothing
    /// about the record is guaranteed and the WAL is dead.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), WalError> {
        self.check_alive()?;
        if self.seg_written >= self.segment_bytes {
            self.rotate()?;
        }
        if let Some(action) = self.plan.hit("wal.append") {
            return Err(self.inject("wal.append", action));
        }
        record.encode(&mut self.pending);
        self.seg_max_seq = self.seg_max_seq.max(record.seq());
        self.appends_since_sync += 1;
        match self.fsync {
            FsyncPolicy::Always => {
                self.flush()?;
                self.sync()?;
            }
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n.max(1) {
                    self.flush()?;
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => self.flush()?,
        }
        self.last_seq = self.last_seq.max(record.seq());
        Ok(())
    }

    /// Forces pending records to disk (flush + `fsync`), regardless of
    /// policy — the graceful-shutdown path.
    pub fn commit(&mut self) -> Result<(), WalError> {
        self.check_alive()?;
        self.flush()?;
        self.sync()
    }

    /// Seals the current segment (a [`WalRecord::Seal`] trailer, flushed
    /// and synced) and opens the next one. Called automatically when a
    /// segment outgrows [`DurabilityConfig::segment_bytes`], and by the
    /// service when compaction seals the in-memory delta segments.
    pub fn rotate(&mut self) -> Result<(), WalError> {
        self.check_alive()?;
        if let Some(action) = self.plan.hit("wal.rotate") {
            return Err(self.inject("wal.rotate", action));
        }
        WalRecord::Seal { seq: self.last_seq }.encode(&mut self.pending);
        self.flush()?;
        self.sync()?;
        self.sealed.push(SegmentInfo {
            index: self.seg_index,
            path: self.seg_path.clone(),
            max_seq: self.seg_max_seq,
        });
        self.seg_index += 1;
        self.seg_path = segment_path(&self.dir, self.seg_index);
        self.file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&self.seg_path)
            .map_err(|e| self.die("wal.rotate", e))?;
        self.seg_written = 0;
        self.synced_len = 0;
        self.seg_max_seq = 0;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Records that the base snapshot covering operations `<= seq` is
    /// durable: appends a [`WalRecord::Checkpoint`], syncs it, then prunes
    /// every sealed segment whose records all fall at or below `seq` and
    /// every snapshot older than `seq`. Pruning is best-effort — replay
    /// skips covered records by sequence, so a surviving stale file is
    /// dead weight, not a correctness hazard.
    pub fn checkpoint(&mut self, seq: u64) -> Result<(), WalError> {
        self.check_alive()?;
        if let Some(action) = self.plan.hit("wal.checkpoint") {
            return Err(self.inject("wal.checkpoint", action));
        }
        WalRecord::Checkpoint { seq }.encode(&mut self.pending);
        self.flush()?;
        self.sync()?;
        self.sealed.retain(|info| {
            if info.max_seq <= seq {
                let _ = fs::remove_file(&info.path);
                false
            } else {
                true
            }
        });
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if let Some(snap_seq) = parse_snapshot_name(&entry.file_name().to_string_lossy()) {
                    if snap_seq < seq {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(())
    }

    fn check_alive(&self) -> Result<(), WalError> {
        if self.dead {
            Err(WalError::Dead)
        } else {
            Ok(())
        }
    }

    /// Hands the pending buffer to the OS.
    fn flush(&mut self) -> Result<(), WalError> {
        if let Some(action) = self.plan.hit("wal.flush") {
            return Err(self.inject("wal.flush", action));
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file
            .write_all(&self.pending)
            .map_err(|e| self.die("wal.flush", e))?;
        let n = self.pending.len() as u64;
        self.seg_written += n;
        self.counters.bytes_written += n;
        self.pending.clear();
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        if let Some(action) = self.plan.hit("wal.sync") {
            return Err(self.inject("wal.sync", action));
        }
        self.file.sync_data().map_err(|e| self.die("wal.sync", e))?;
        self.counters.fsyncs += 1;
        self.appends_since_sync = 0;
        self.synced_len = self.seg_written;
        Ok(())
    }

    /// Applies an injected action, simulating the crash **adversarially**:
    /// the segment is first truncated back to its last `fsync`ed length —
    /// flushed-but-unsynced bytes are exactly what a machine crash is
    /// allowed to lose, so the simulation always loses them — then
    /// `ShortWrite` and `Crash` land a deterministic torn prefix (half of
    /// the pending bytes) so recovery also faces a realistic partial
    /// frame. All three kill the WAL.
    fn inject(&mut self, point: &'static str, action: FailAction) -> WalError {
        self.dead = true;
        let _ = self.file.set_len(self.synced_len);
        let _ = self.file.seek(SeekFrom::Start(self.synced_len));
        if matches!(action, FailAction::ShortWrite | FailAction::Crash) {
            let torn = self.pending.len() / 2;
            let _ = self.file.write_all(&self.pending[..torn]);
            let _ = self.file.sync_data();
        }
        self.pending.clear();
        WalError::Injected { point, action }
    }

    fn die(&mut self, point: &'static str, source: std::io::Error) -> WalError {
        self.dead = true;
        self.pending.clear();
        WalError::Io { point, source }
    }
}

impl Drop for Wal {
    /// Graceful shutdown flushes the group-commit buffer (best effort);
    /// a dead WAL is left exactly as the failure left it.
    fn drop(&mut self) {
        if !self.dead && !self.pending.is_empty() {
            let _ = self.commit();
        }
    }
}

fn io_err(point: &'static str, source: std::io::Error) -> WalError {
    WalError::Io { point, source }
}

pub(crate) fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("base-")?.strip_suffix(".snap")?;
    u64::from_str_radix(hex, 16).ok()
}

pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    let num = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    num.parse().ok()
}

/// Writes the base snapshot covering operations `<= seq`: every live
/// trajectory as an [`WalRecord::Upsert`] stamped `seq`, closed by a
/// [`WalRecord::Checkpoint`] trailer, written to a temp file, `fsync`ed,
/// and atomically renamed into place. A crash anywhere before the rename
/// leaves no visible snapshot; after it, the snapshot is complete by
/// construction (the trailer is verified again on load).
pub fn write_snapshot<'a>(
    dir: &Path,
    seq: u64,
    live: impl Iterator<Item = (TrajId, &'a [Point])>,
    plan: &FailPlan,
) -> Result<u64, WalError> {
    if let Some(action) = plan.hit("wal.snapshot") {
        return Err(WalError::Injected { point: "wal.snapshot", action });
    }
    let final_path = snapshot_path(dir, seq);
    let tmp_path = final_path.with_extension("snap.tmp");
    let mut buf = Vec::new();
    for (id, points) in live {
        WalRecord::Upsert { seq, id, points: points.to_vec() }.encode(&mut buf);
    }
    WalRecord::Checkpoint { seq }.encode(&mut buf);
    let bytes = buf.len() as u64;
    let mut tmp = File::create(&tmp_path).map_err(|e| io_err("wal.snapshot", e))?;
    tmp.write_all(&buf).map_err(|e| io_err("wal.snapshot", e))?;
    tmp.sync_data().map_err(|e| io_err("wal.snapshot", e))?;
    drop(tmp);
    fs::rename(&tmp_path, &final_path).map_err(|e| io_err("wal.snapshot", e))?;
    // Make the rename itself durable (POSIX: fsync the directory).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(bytes)
}
