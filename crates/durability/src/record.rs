//! The on-disk record format shared by WAL segments and base snapshots.
//!
//! Every record is framed as
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! payload = [tag: u8] [seq: u64 LE] [tag-specific fields]
//! ```
//!
//! where `crc` is the CRC-32 (IEEE 802.3 polynomial) of the payload. The
//! length prefix gives framing; the checksum turns any torn or bit-flipped
//! write into a *detected* decode failure instead of silently corrupted
//! state (CRC-32 detects all single-bit and all burst errors up to 32
//! bits). Sequence numbers are the service's global operation sequence —
//! strictly increasing across upserts and deletes — so replay can skip
//! everything a base snapshot already covers and recovery can restore the
//! exact pre-crash operation counter.

use repose_model::{wire, Point, TrajId};

/// Maximum accepted payload length when decoding (64 MiB). A corrupt
/// length prefix claiming more than this is rejected immediately instead
/// of waiting for a gigabyte-sized read to fail.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// One durable operation of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An insert/replace of trajectory `id` with `points`, acknowledged as
    /// operation `seq`.
    Upsert {
        /// Global operation sequence of this write.
        seq: u64,
        /// The written trajectory's id.
        id: TrajId,
        /// Its sample points (bit-exact through encode/decode).
        points: Vec<Point>,
    },
    /// A delete of trajectory `id`, acknowledged as operation `seq`.
    Delete {
        /// Global operation sequence of this write.
        seq: u64,
        /// The deleted trajectory's id.
        id: TrajId,
    },
    /// A segment seal marker: the writer rotated to a fresh segment after
    /// this record (aligned with delta-segment seals at compaction).
    /// `seq` is the last operation sequence issued at seal time.
    Seal {
        /// Last operation sequence issued before the seal.
        seq: u64,
    },
    /// A compaction checkpoint: every operation with sequence `<= seq` is
    /// fully reflected in the base snapshot named by `seq`, so log records
    /// at or below it are dead and their segments can be pruned.
    Checkpoint {
        /// The snapshot's covering operation sequence.
        seq: u64,
    },
}

const TAG_UPSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_SEAL: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;

impl WalRecord {
    /// The record's operation sequence.
    pub fn seq(&self) -> u64 {
        match *self {
            WalRecord::Upsert { seq, .. }
            | WalRecord::Delete { seq, .. }
            | WalRecord::Seal { seq }
            | WalRecord::Checkpoint { seq } => seq,
        }
    }

    /// Appends the framed record (length, checksum, payload) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let mut payload = Vec::new();
        match self {
            WalRecord::Upsert { seq, id, points } => {
                payload.push(TAG_UPSERT);
                wire::put_u64(&mut payload, *seq);
                wire::put_u64(&mut payload, *id);
                wire::put_points(&mut payload, points);
            }
            WalRecord::Delete { seq, id } => {
                payload.push(TAG_DELETE);
                wire::put_u64(&mut payload, *seq);
                wire::put_u64(&mut payload, *id);
            }
            WalRecord::Seal { seq } => {
                payload.push(TAG_SEAL);
                wire::put_u64(&mut payload, *seq);
            }
            WalRecord::Checkpoint { seq } => {
                payload.push(TAG_CHECKPOINT);
                wire::put_u64(&mut payload, *seq);
            }
        }
        wire::put_u32(buf, payload.len() as u32);
        wire::put_u32(buf, crc32(&payload));
        buf.extend_from_slice(&payload);
    }

    /// The framed record as a fresh byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes one framed record from the front of `cur`, advancing it
    /// past the record on success. Failures distinguish a clean
    /// end-of-input from a torn or corrupt frame so the replayer can apply
    /// its torn-tail policy.
    pub fn decode(cur: &mut &[u8]) -> Result<Option<WalRecord>, DecodeError> {
        if cur.is_empty() {
            return Ok(None);
        }
        let mut probe = *cur;
        let Some(len) = wire::read_u32(&mut probe) else {
            return Err(DecodeError::Truncated);
        };
        if len > MAX_PAYLOAD {
            return Err(DecodeError::BadLength(len));
        }
        let Some(crc) = wire::read_u32(&mut probe) else {
            return Err(DecodeError::Truncated);
        };
        if probe.len() < len as usize {
            return Err(DecodeError::Truncated);
        }
        let payload = &probe[..len as usize];
        if crc32(payload) != crc {
            return Err(DecodeError::BadChecksum);
        }
        let record = Self::decode_payload(payload).ok_or(DecodeError::BadPayload)?;
        *cur = &probe[len as usize..];
        Ok(Some(record))
    }

    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, mut cur) = payload.split_first()?;
        let record = match tag {
            TAG_UPSERT => WalRecord::Upsert {
                seq: wire::read_u64(&mut cur)?,
                id: wire::read_u64(&mut cur)?,
                points: wire::read_points(&mut cur)?,
            },
            TAG_DELETE => WalRecord::Delete {
                seq: wire::read_u64(&mut cur)?,
                id: wire::read_u64(&mut cur)?,
            },
            TAG_SEAL => WalRecord::Seal { seq: wire::read_u64(&mut cur)? },
            TAG_CHECKPOINT => WalRecord::Checkpoint { seq: wire::read_u64(&mut cur)? },
            _ => return None,
        };
        // Trailing payload bytes mean the frame does not describe this
        // record: reject rather than ignore (a checksum collision on a
        // longer buffer must not slip through as a valid shorter record).
        cur.is_empty().then_some(record)
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes remain than the frame header or its declared payload
    /// needs — the classic torn tail.
    Truncated,
    /// The length prefix exceeds [`MAX_PAYLOAD`] (corrupt header).
    BadLength(u32),
    /// The payload's CRC-32 does not match the header.
    BadChecksum,
    /// The checksum held but the payload structure is invalid (unknown
    /// tag, underrun inside a field, or trailing garbage).
    BadPayload,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated (torn write)"),
            DecodeError::BadLength(len) => write!(f, "record length {len} exceeds the format maximum"),
            DecodeError::BadChecksum => write!(f, "record checksum mismatch"),
            DecodeError::BadPayload => write!(f, "record payload is structurally invalid"),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// polynomial used by zip/png/ethernet. Slice-by-8: eight compile-time
/// tables consume 8 input bytes per step instead of 1, which matters
/// because archive attach and scrub checksum whole mapped files, not just
/// WAL records. Bit-identical to the byte-at-a-time definition (the
/// standard test vector below pins it); no external dependency.
pub fn crc32(data: &[u8]) -> u32 {
    const T: [[u32; 256]; 8] = crc32_tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = T[7][(lo & 0xFF) as usize]
            ^ T[6][((lo >> 8) & 0xFF) as usize]
            ^ T[5][((lo >> 16) & 0xFF) as usize]
            ^ T[4][(lo >> 24) as usize]
            ^ T[3][(hi & 0xFF) as usize]
            ^ T[2][((hi >> 8) & 0xFF) as usize]
            ^ T[1][((hi >> 16) & 0xFF) as usize]
            ^ T[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ T[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // Table `t` maps a byte processed `t` positions early: shifting a
    // prior table's entry through table 0 composes the per-byte steps.
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use repose_model::Point;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Upsert {
                seq: 1,
                id: 42,
                points: vec![Point::new(1.25, -3.5), Point::new(f64::MIN_POSITIVE, 0.0)],
            },
            WalRecord::Upsert { seq: 2, id: 7, points: vec![] },
            WalRecord::Delete { seq: 3, id: 42 },
            WalRecord::Seal { seq: 3 },
            WalRecord::Checkpoint { seq: 3 },
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_all_record_types() {
        let mut buf = Vec::new();
        for r in samples() {
            r.encode(&mut buf);
        }
        let mut cur = buf.as_slice();
        let mut back = Vec::new();
        while let Some(r) = WalRecord::decode(&mut cur).expect("valid stream") {
            back.push(r);
        }
        assert_eq!(back, samples());
    }

    #[test]
    fn truncation_at_every_byte_is_truncated_error() {
        let buf = samples()[0].to_bytes();
        for cut in 1..buf.len() {
            let mut cur = &buf[..cut];
            let got = WalRecord::decode(&mut cur);
            assert!(
                matches!(got, Err(DecodeError::Truncated | DecodeError::BadChecksum)),
                "cut at {cut}: {got:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let buf = samples()[0].to_bytes();
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                let mut cur = bad.as_slice();
                let got = WalRecord::decode(&mut cur);
                match got {
                    Err(_) => {}
                    Ok(rec) => panic!(
                        "flip byte {byte} bit {bit} decoded silently: {rec:?}"
                    ),
                }
            }
        }
    }

    #[test]
    fn empty_input_is_clean_end() {
        let mut cur: &[u8] = &[];
        assert_eq!(WalRecord::decode(&mut cur).unwrap(), None);
    }

    #[test]
    fn hostile_length_is_rejected() {
        let mut buf = Vec::new();
        repose_model::wire::put_u32(&mut buf, MAX_PAYLOAD + 1);
        repose_model::wire::put_u32(&mut buf, 0);
        let mut cur = buf.as_slice();
        assert_eq!(
            WalRecord::decode(&mut cur),
            Err(DecodeError::BadLength(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn point_bits_survive_roundtrip() {
        let r = WalRecord::Upsert {
            seq: 9,
            id: 1,
            points: vec![Point::new(-0.0, f64::from_bits(0x7FF8_0000_0000_0001))],
        };
        let buf = r.to_bytes();
        let mut cur = buf.as_slice();
        let back = WalRecord::decode(&mut cur).unwrap().unwrap();
        let WalRecord::Upsert { points, .. } = back else { panic!() };
        let WalRecord::Upsert { points: orig, .. } = r else { panic!() };
        assert_eq!(points[0].x.to_bits(), orig[0].x.to_bits());
        assert_eq!(points[0].y.to_bits(), orig[0].y.to_bits());
    }
}
