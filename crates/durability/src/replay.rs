//! Crash recovery: turn a durability directory back into state.
//!
//! [`replay()`] scans the directory, loads the newest complete base
//! snapshot, and decodes every WAL segment in rotation order, applying the
//! torn-tail policy:
//!
//! * a decode failure in the **final** segment is a torn tail — the crash
//!   interrupted the last write. Everything before the bad frame is kept,
//!   the dangling bytes are counted in [`Replayed::torn_bytes`] and
//!   physically truncated from the file (so a later replay — recovery is
//!   idempotent — never mistakes them for mid-log corruption once the
//!   resumed writer has made this segment non-final), and recovery
//!   proceeds. This can only ever drop records that were *not*
//!   fsync-acknowledged (rotation seals segments with a flush + sync, so a
//!   sealed, non-final segment is never torn by a clean failure).
//! * a decode failure **anywhere else** is mid-log corruption: replay
//!   refuses with [`WalError::Corrupt`] rather than silently dropping
//!   acknowledged history.
//!
//! Records with sequence at or below the snapshot's covering sequence are
//! skipped — the snapshot already reflects them — which also makes replay
//! indifferent to whether checkpoint pruning got around to deleting their
//! segments.

use crate::record::WalRecord;
use crate::wal::{parse_segment_name, parse_snapshot_name, snapshot_path, SegmentInfo, WalError};
use repose_model::{Point, TrajId};
use std::fs;
use std::path::{Path, PathBuf};

/// Everything [`replay()`] recovered from a durability directory.
#[derive(Debug)]
pub struct Replayed {
    /// Live trajectories from the base snapshot, in snapshot order.
    pub base: Vec<(TrajId, Vec<Point>)>,
    /// The snapshot's covering operation sequence.
    pub base_seq: u64,
    /// Log records with sequence above `base_seq`, in append order
    /// (upserts, deletes, and seals; checkpoints are consumed here).
    pub records: Vec<WalRecord>,
    /// The highest operation sequence seen anywhere (snapshot included).
    pub last_seq: u64,
    /// Dangling bytes truncated from a torn final segment (0 on a clean
    /// shutdown).
    pub torn_bytes: u64,
    /// Scanned segments with their max sequences, for [`crate::Wal::resume`].
    pub segments: Vec<SegmentInfo>,
    /// The rotation index the resumed writer should open next.
    pub next_segment_index: u64,
}

/// Replays the durability directory at `dir` (see the module docs).
pub fn replay(dir: &Path) -> Result<Replayed, WalError> {
    let mut snapshots: Vec<u64> = Vec::new();
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| WalError::Io { point: "replay.scan", source: e })?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = parse_snapshot_name(&name) {
            snapshots.push(seq);
        } else if let Some(index) = parse_segment_name(&name) {
            segments.push((index, entry.path()));
        }
        // Anything else (e.g. *.tmp from an interrupted snapshot) is
        // ignorable garbage.
    }
    let Some(&base_seq) = snapshots.iter().max() else {
        return Err(WalError::BadSnapshot {
            path: dir.to_path_buf(),
            reason: "no base snapshot found".into(),
        });
    };
    let base = load_snapshot(&snapshot_path(dir, base_seq), base_seq)?;

    segments.sort_by_key(|&(index, _)| index);
    let next_segment_index = segments.last().map_or(1, |&(index, _)| index + 1);
    let last_index = segments.last().map(|&(index, _)| index);

    let mut records = Vec::new();
    let mut last_seq = base_seq;
    let mut torn_bytes = 0u64;
    let mut infos = Vec::new();
    for (index, path) in segments {
        let bytes = fs::read(&path).map_err(|e| WalError::Io { point: "replay.read", source: e })?;
        let mut cur = bytes.as_slice();
        let mut max_seq = 0u64;
        loop {
            match WalRecord::decode(&mut cur) {
                Ok(None) => break,
                Ok(Some(record)) => {
                    max_seq = max_seq.max(record.seq());
                    last_seq = last_seq.max(record.seq());
                    if record.seq() > base_seq && !matches!(record, WalRecord::Checkpoint { .. }) {
                        records.push(record);
                    }
                }
                Err(reason) => {
                    if Some(index) == last_index {
                        torn_bytes = cur.len() as u64;
                        // Physically drop the dangling bytes so recovery is
                        // idempotent: a resumed writer rotates to a *new*
                        // segment, making this one non-final — if the torn
                        // frame stayed on disk, the next replay would
                        // misread it as mid-log corruption.
                        truncate_segment(&path, (bytes.len() - cur.len()) as u64)?;
                        break;
                    }
                    return Err(WalError::Corrupt {
                        segment: path,
                        offset: (bytes.len() - cur.len()) as u64,
                        reason,
                    });
                }
            }
        }
        infos.push(SegmentInfo { index, path, max_seq });
    }

    Ok(Replayed {
        base,
        base_seq,
        records,
        last_seq,
        torn_bytes,
        segments: infos,
        next_segment_index,
    })
}

/// Truncates a torn final segment to its clean prefix and syncs it, so
/// the dangling half-frame can never be re-read as corruption by a later
/// replay (recovery must be idempotent).
fn truncate_segment(path: &Path, clean_len: u64) -> Result<(), WalError> {
    let io = |source: std::io::Error| WalError::Io { point: "replay.truncate", source };
    let file = fs::OpenOptions::new().write(true).open(path).map_err(io)?;
    file.set_len(clean_len).map_err(io)?;
    file.sync_all().map_err(io)?;
    Ok(())
}

/// Loads and validates a base snapshot: a run of [`WalRecord::Upsert`]s
/// closed by a [`WalRecord::Checkpoint`] whose sequence matches the file
/// name. Snapshots are written atomically (temp + rename), so any defect
/// here is real corruption and a hard error.
fn load_snapshot(path: &Path, expect_seq: u64) -> Result<Vec<(TrajId, Vec<Point>)>, WalError> {
    let bad = |reason: String| WalError::BadSnapshot { path: path.to_path_buf(), reason };
    let bytes = fs::read(path).map_err(|e| bad(format!("unreadable: {e}")))?;
    let mut cur = bytes.as_slice();
    let mut base = Vec::new();
    let mut closed = false;
    loop {
        match WalRecord::decode(&mut cur) {
            Ok(None) => break,
            Ok(Some(WalRecord::Upsert { id, points, .. })) if !closed => base.push((id, points)),
            Ok(Some(WalRecord::Checkpoint { seq })) if !closed => {
                if seq != expect_seq {
                    return Err(bad(format!(
                        "trailer sequence {seq} does not match file name sequence {expect_seq}"
                    )));
                }
                closed = true;
            }
            Ok(Some(other)) => {
                return Err(bad(format!("unexpected record {other:?}")));
            }
            Err(reason) => return Err(bad(format!("decode failure: {reason}"))),
        }
    }
    if !closed {
        return Err(bad("missing checkpoint trailer (incomplete snapshot)".into()));
    }
    Ok(base)
}
