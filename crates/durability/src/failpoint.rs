//! Deterministic fault injection for the durability layer.
//!
//! A [`FailPlan`] is a small, shareable registry of *named failure sites*
//! armed with an action and a hit countdown. The WAL writer and the
//! archive writer consult the plan at every registered point
//! ([`POINTS`]); when an armed point's countdown reaches zero the action
//! fires **exactly once**, so a test can say "on the 7th flush, tear the
//! write in half" and get the same torn byte stream on every run — no
//! randomness, no timing.
//!
//! Plans are per-instance (an `Arc` handed to each [`crate::Wal`]), never
//! process-global: concurrent tests cannot interfere with each other, and
//! a production service simply carries the default empty plan, whose
//! per-append cost is one atomic load of an "anything armed?" flag.
//!
//! For integration-style runs the plan can also be parsed from the
//! `REPOSE_FAILPOINTS` environment variable
//! (`point=action[:after][,point=action[:after]...]`, e.g.
//! `wal.flush=short:3,wal.sync=crash`). The grammar and the countdown
//! registry are shared with the shard layer's `REPOSE_NETFAULTS` plan —
//! see [`crate::spec`].

use crate::spec::{ArmRegistry, SpecIssue};
use std::sync::Arc;

/// Every failure site the WAL writer consults, in hit order along the
/// write path. The crash-loop harness iterates this list to prove
/// recovery at *every* registered WAL point.
pub const WAL_POINTS: &[&str] = &[
    "wal.append",
    "wal.flush",
    "wal.sync",
    "wal.rotate",
    "wal.snapshot",
    "wal.checkpoint",
];

/// Every failure site the archive writer and reader consult. Unlike the
/// WAL points, an injected archive failure never refuses a client
/// operation — the WAL stays the source of truth and serving continues —
/// so the archive suites (not the crash loop) iterate these.
pub const ARC_POINTS: &[&str] = &["arc.write", "arc.sync", "arc.rename", "arc.map"];

/// Every registered failure site across both write paths.
pub const POINTS: &[&str] = &[
    "wal.append",
    "wal.flush",
    "wal.sync",
    "wal.rotate",
    "wal.snapshot",
    "wal.checkpoint",
    "arc.write",
    "arc.sync",
    "arc.rename",
    "arc.map",
];

/// What an armed fail point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The operation fails with an injected I/O error before writing
    /// anything; the WAL goes dead (fail-stop).
    IoError,
    /// The pending bytes are written only up to half their length — a torn
    /// write — then the WAL goes dead.
    ShortWrite,
    /// Process death at this point: whatever was already durably flushed
    /// stays, half of the pending bytes land as a torn tail, and the WAL
    /// goes dead. Recovery from the directory is the only way forward.
    Crash,
}

fn parse_action(s: &str) -> Option<FailAction> {
    match s {
        "io" => Some(FailAction::IoError),
        "short" => Some(FailAction::ShortWrite),
        "crash" => Some(FailAction::Crash),
        _ => None,
    }
}

/// A deterministic, shareable fault-injection plan (see module docs).
/// Cloning shares the underlying registry.
#[derive(Debug, Clone, Default)]
pub struct FailPlan {
    inner: Arc<ArmRegistry<FailAction>>,
}

impl FailPlan {
    /// An empty plan (nothing ever fires).
    pub fn new() -> Self {
        FailPlan::default()
    }

    /// Arms `point` to fire `action` after `after` further hits (0 =
    /// fire on the very next hit). Re-arming a point replaces its
    /// previous arm.
    pub fn arm(&self, point: &str, action: FailAction, after: u32) {
        self.inner.arm(point, action, after);
    }

    /// Hit `point`: decrements its countdown and returns the action the
    /// moment it fires (exactly once per arm).
    pub fn hit(&self, point: &str) -> Option<FailAction> {
        self.inner.hit(point)
    }

    /// Whether any arm has fired.
    pub fn any_fired(&self) -> bool {
        self.inner.any_fired()
    }

    /// A plan parsed from the `REPOSE_FAILPOINTS` environment variable;
    /// empty when unset. Malformed entries panic at arm time with a
    /// message naming them — a silently ignored fault plan is worse than
    /// none.
    pub fn from_env() -> Self {
        match std::env::var("REPOSE_FAILPOINTS") {
            Ok(spec) => match Self::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => panic!("REPOSE_FAILPOINTS: {e}"),
            },
            Err(_) => FailPlan::new(),
        }
    }

    /// Parses `point=action[:after][,...]` (actions: `io`, `short`,
    /// `crash`; points must name a registered site from [`POINTS`] — an
    /// unknown point would arm a fault that can never fire, which is the
    /// silently-ignored plan this parser exists to refuse).
    pub fn parse(spec: &str) -> Result<Self, FailSpecError> {
        let plan = FailPlan::new();
        crate::spec::parse_spec(
            spec,
            |p| POINTS.contains(&p),
            parse_action,
            |point, action, after| plan.arm(point, action, after),
        )
        .map_err(|e| FailSpecError {
            entry: e.entry,
            reason: match e.issue {
                SpecIssue::MissingEquals => FailSpecReason::MissingEquals,
                SpecIssue::BadPoint(p) => FailSpecReason::UnknownPoint(p),
                SpecIssue::BadAction(a) => FailSpecReason::UnknownAction(a),
                SpecIssue::BadCount(n) => FailSpecReason::BadCount(n),
            },
        })?;
        Ok(plan)
    }
}

/// A malformed fail-point spec entry (see [`FailPlan::parse`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailSpecError {
    /// The offending `point=action[:after]` entry, verbatim.
    pub entry: String,
    /// What was wrong with it.
    pub reason: FailSpecReason,
}

/// Why a fail-point spec entry was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailSpecReason {
    /// The entry has no `=` separating point from action.
    MissingEquals,
    /// The point names no registered failure site (see [`POINTS`]).
    UnknownPoint(String),
    /// The action is not one of `io`, `short`, `crash`.
    UnknownAction(String),
    /// The `:after` countdown is not a non-negative integer.
    BadCount(String),
}

impl std::fmt::Display for FailSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let entry = &self.entry;
        match &self.reason {
            FailSpecReason::MissingEquals => {
                write!(f, "failpoint entry `{entry}` lacks `=`")
            }
            FailSpecReason::UnknownPoint(p) => write!(
                f,
                "unknown failpoint `{p}` in `{entry}` (registered points: {})",
                POINTS.join(", ")
            ),
            FailSpecReason::UnknownAction(a) => {
                write!(f, "unknown failpoint action `{a}` in `{entry}`")
            }
            FailSpecReason::BadCount(n) => {
                write!(f, "bad failpoint count `{n}` in `{entry}`")
            }
        }
    }
}

impl std::error::Error for FailSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_fires() {
        let plan = FailPlan::new();
        for p in POINTS {
            assert_eq!(plan.hit(p), None);
        }
        assert!(!plan.any_fired());
    }

    #[test]
    fn countdown_fires_exactly_once() {
        let plan = FailPlan::new();
        plan.arm("wal.flush", FailAction::ShortWrite, 2);
        assert_eq!(plan.hit("wal.flush"), None);
        assert_eq!(plan.hit("wal.flush"), None);
        assert_eq!(plan.hit("wal.flush"), Some(FailAction::ShortWrite));
        assert_eq!(plan.hit("wal.flush"), None, "fires once, not repeatedly");
        assert!(plan.any_fired());
    }

    #[test]
    fn points_are_independent() {
        let plan = FailPlan::new();
        plan.arm("wal.sync", FailAction::Crash, 0);
        assert_eq!(plan.hit("wal.append"), None);
        assert_eq!(plan.hit("wal.sync"), Some(FailAction::Crash));
    }

    #[test]
    fn clones_share_the_registry() {
        let plan = FailPlan::new();
        let shared = plan.clone();
        plan.arm("wal.append", FailAction::IoError, 0);
        assert_eq!(shared.hit("wal.append"), Some(FailAction::IoError));
    }

    #[test]
    fn parse_spec() {
        let plan = FailPlan::parse("wal.flush=short:1, wal.sync=crash").unwrap();
        assert_eq!(plan.hit("wal.sync"), Some(FailAction::Crash));
        assert_eq!(plan.hit("wal.flush"), None);
        assert_eq!(plan.hit("wal.flush"), Some(FailAction::ShortWrite));
    }

    #[test]
    fn parse_accepts_archive_points() {
        let plan = FailPlan::parse("arc.rename=crash, arc.write=short:2").unwrap();
        assert_eq!(plan.hit("arc.rename"), Some(FailAction::Crash));
        assert_eq!(plan.hit("arc.write"), None);
    }

    #[test]
    fn parse_rejects_unknown_action() {
        let err = FailPlan::parse("wal.flush=explode").unwrap_err();
        assert_eq!(
            err.reason,
            FailSpecReason::UnknownAction("explode".into())
        );
    }

    #[test]
    fn parse_rejects_unknown_point() {
        // The original motivation: a typo'd point must not silently arm a
        // fault that can never fire.
        let err = FailPlan::parse("wal.flsh=io").unwrap_err();
        assert_eq!(err.reason, FailSpecReason::UnknownPoint("wal.flsh".into()));
        assert!(err.to_string().contains("wal.append"), "error lists valid points");
    }

    #[test]
    fn parse_rejects_missing_equals_and_bad_count() {
        assert_eq!(
            FailPlan::parse("wal.flush").unwrap_err().reason,
            FailSpecReason::MissingEquals
        );
        assert_eq!(
            FailPlan::parse("wal.flush=io:soon").unwrap_err().reason,
            FailSpecReason::BadCount("soon".into())
        );
    }

    #[test]
    fn parse_empty_spec_is_empty_plan() {
        let plan = FailPlan::parse("").unwrap();
        assert!(!plan.any_fired());
        for p in POINTS {
            assert_eq!(plan.hit(p), None);
        }
    }
}
