//! Deterministic fault injection for the durability layer.
//!
//! A [`FailPlan`] is a small, shareable registry of *named failure sites*
//! armed with an action and a hit countdown. The WAL writer consults the
//! plan at every registered point ([`POINTS`]); when an armed point's
//! countdown reaches zero the action fires **exactly once**, so a test can
//! say "on the 7th flush, tear the write in half" and get the same torn
//! byte stream on every run — no randomness, no timing.
//!
//! Plans are per-instance (an `Arc` handed to each [`crate::Wal`]), never
//! process-global: concurrent tests cannot interfere with each other, and
//! a production service simply carries the default empty plan, whose
//! per-append cost is one atomic load of an "anything armed?" flag.
//!
//! For integration-style runs the plan can also be parsed from the
//! `REPOSE_FAILPOINTS` environment variable
//! (`point=action[:after][,point=action[:after]...]`, e.g.
//! `wal.flush=short:3,wal.sync=crash`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Every failure site the WAL writer consults, in hit order along the
/// write path. The crash-loop harness iterates this list to prove
/// recovery at *every* registered point.
pub const POINTS: &[&str] = &[
    "wal.append",
    "wal.flush",
    "wal.sync",
    "wal.rotate",
    "wal.snapshot",
    "wal.checkpoint",
];

/// What an armed fail point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The operation fails with an injected I/O error before writing
    /// anything; the WAL goes dead (fail-stop).
    IoError,
    /// The pending bytes are written only up to half their length — a torn
    /// write — then the WAL goes dead.
    ShortWrite,
    /// Process death at this point: whatever was already durably flushed
    /// stays, half of the pending bytes land as a torn tail, and the WAL
    /// goes dead. Recovery from the directory is the only way forward.
    Crash,
}

#[derive(Debug, Clone, Copy)]
struct Arm {
    action: FailAction,
    /// Hits remaining before the action fires (0 = fire on the next hit).
    after: u32,
    fired: bool,
}

/// A deterministic, shareable fault-injection plan (see module docs).
/// Cloning shares the underlying registry.
#[derive(Debug, Clone, Default)]
pub struct FailPlan {
    inner: Arc<PlanInner>,
}

#[derive(Debug, Default)]
struct PlanInner {
    /// Fast path: skip the mutex entirely when nothing was ever armed.
    armed: AtomicBool,
    arms: Mutex<HashMap<String, Arm>>,
}

impl FailPlan {
    /// An empty plan (nothing ever fires).
    pub fn new() -> Self {
        FailPlan::default()
    }

    /// Arms `point` to fire `action` after `after` further hits (0 =
    /// fire on the very next hit). Re-arming a point replaces its
    /// previous arm.
    pub fn arm(&self, point: &str, action: FailAction, after: u32) {
        let mut arms = self.inner.arms.lock().unwrap_or_else(|e| e.into_inner());
        arms.insert(point.to_string(), Arm { action, after, fired: false });
        self.inner.armed.store(true, Ordering::Release);
    }

    /// Hit `point`: decrements its countdown and returns the action the
    /// moment it fires (exactly once per arm).
    pub fn hit(&self, point: &str) -> Option<FailAction> {
        if !self.inner.armed.load(Ordering::Acquire) {
            return None;
        }
        let mut arms = self.inner.arms.lock().unwrap_or_else(|e| e.into_inner());
        let arm = arms.get_mut(point)?;
        if arm.fired {
            return None;
        }
        if arm.after == 0 {
            arm.fired = true;
            Some(arm.action)
        } else {
            arm.after -= 1;
            None
        }
    }

    /// Whether any arm has fired.
    pub fn any_fired(&self) -> bool {
        self.inner
            .arms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .any(|a| a.fired)
    }

    /// A plan parsed from the `REPOSE_FAILPOINTS` environment variable;
    /// empty when unset. Malformed entries panic with a message naming
    /// them — a silently ignored fault plan is worse than none.
    pub fn from_env() -> Self {
        match std::env::var("REPOSE_FAILPOINTS") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => FailPlan::new(),
        }
    }

    /// Parses `point=action[:after][,...]` (actions: `io`, `short`,
    /// `crash`).
    pub fn parse(spec: &str) -> Self {
        let plan = FailPlan::new();
        for entry in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (point, rhs) = entry
                .split_once('=')
                .unwrap_or_else(|| panic!("failpoint entry `{entry}` lacks `=`"));
            let (action, after) = match rhs.split_once(':') {
                Some((a, n)) => (
                    a,
                    n.parse::<u32>()
                        .unwrap_or_else(|_| panic!("bad failpoint count in `{entry}`")),
                ),
                None => (rhs, 0),
            };
            let action = match action {
                "io" => FailAction::IoError,
                "short" => FailAction::ShortWrite,
                "crash" => FailAction::Crash,
                other => panic!("unknown failpoint action `{other}` in `{entry}`"),
            };
            plan.arm(point, action, after);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_fires() {
        let plan = FailPlan::new();
        for p in POINTS {
            assert_eq!(plan.hit(p), None);
        }
        assert!(!plan.any_fired());
    }

    #[test]
    fn countdown_fires_exactly_once() {
        let plan = FailPlan::new();
        plan.arm("wal.flush", FailAction::ShortWrite, 2);
        assert_eq!(plan.hit("wal.flush"), None);
        assert_eq!(plan.hit("wal.flush"), None);
        assert_eq!(plan.hit("wal.flush"), Some(FailAction::ShortWrite));
        assert_eq!(plan.hit("wal.flush"), None, "fires once, not repeatedly");
        assert!(plan.any_fired());
    }

    #[test]
    fn points_are_independent() {
        let plan = FailPlan::new();
        plan.arm("wal.sync", FailAction::Crash, 0);
        assert_eq!(plan.hit("wal.append"), None);
        assert_eq!(plan.hit("wal.sync"), Some(FailAction::Crash));
    }

    #[test]
    fn clones_share_the_registry() {
        let plan = FailPlan::new();
        let shared = plan.clone();
        plan.arm("wal.append", FailAction::IoError, 0);
        assert_eq!(shared.hit("wal.append"), Some(FailAction::IoError));
    }

    #[test]
    fn parse_spec() {
        let plan = FailPlan::parse("wal.flush=short:1, wal.sync=crash");
        assert_eq!(plan.hit("wal.sync"), Some(FailAction::Crash));
        assert_eq!(plan.hit("wal.flush"), None);
        assert_eq!(plan.hit("wal.flush"), Some(FailAction::ShortWrite));
    }

    #[test]
    #[should_panic(expected = "unknown failpoint action")]
    fn parse_rejects_unknown_action() {
        FailPlan::parse("wal.flush=explode");
    }
}
