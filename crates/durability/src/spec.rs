//! The one strict `point=action[:after][,...]` spec parser behind every
//! fault-injection environment variable (`REPOSE_FAILPOINTS` here,
//! `REPOSE_NETFAULTS` in `repose-shard`).
//!
//! Both registries share the same grammar and the same strictness
//! contract — a misspelled point or action is a typed error, never a
//! silently ignored fault — so the grammar lives in exactly one place and
//! each caller plugs in only what differs: how to validate a site name and
//! how to decode an action. The same file also hosts the generic
//! exactly-once countdown registry both plans wrap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Why a spec entry was rejected, in grammar-neutral terms. Callers map
/// these onto their own public error enums (`FailSpecReason`,
/// `NetSpecReason`) so existing matches keep working.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecIssue {
    /// The entry has no `=` separating point from action.
    MissingEquals,
    /// The point failed the caller's site validation.
    BadPoint(String),
    /// The action failed the caller's action decoder.
    BadAction(String),
    /// The `:after` countdown is not a non-negative integer.
    BadCount(String),
}

/// A rejected entry: which one (verbatim) and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecEntryError {
    /// The offending `point=action[:after]` entry.
    pub entry: String,
    /// What was wrong with it.
    pub issue: SpecIssue,
}

/// Parses a comma-separated `point=action[:after]` spec, handing each
/// well-formed entry to `arm`.
///
/// `valid_point` accepts or rejects a (trimmed) site name; `parse_action`
/// decodes a (trimmed) action string, `None` meaning unknown. Empty
/// entries (doubled or trailing commas, whitespace) are skipped; the first
/// rejected entry aborts the whole parse — a partially applied fault plan
/// would be exactly the silent misconfiguration this parser exists to
/// refuse.
pub fn parse_spec<A>(
    spec: &str,
    valid_point: impl Fn(&str) -> bool,
    parse_action: impl Fn(&str) -> Option<A>,
    mut arm: impl FnMut(&str, A, u32),
) -> Result<(), SpecEntryError> {
    for entry in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let err = |issue: SpecIssue| SpecEntryError { entry: entry.to_string(), issue };
        let (point, rhs) =
            entry.split_once('=').ok_or_else(|| err(SpecIssue::MissingEquals))?;
        let point = point.trim();
        if !valid_point(point) {
            return Err(err(SpecIssue::BadPoint(point.to_string())));
        }
        let (action, after) = match rhs.split_once(':') {
            Some((a, n)) => (
                a.trim(),
                n.trim()
                    .parse::<u32>()
                    .map_err(|_| err(SpecIssue::BadCount(n.trim().to_string())))?,
            ),
            None => (rhs.trim(), 0),
        };
        let action =
            parse_action(action).ok_or_else(|| err(SpecIssue::BadAction(action.to_string())))?;
        arm(point, action, after);
    }
    Ok(())
}

/// The exactly-once countdown registry shared by [`crate::FailPlan`] and
/// the shard layer's `NetFaultPlan`: named sites armed with an action and
/// a hit countdown; an armed site fires its action exactly once, when the
/// countdown reaches zero. The unarmed fast path is one atomic load.
#[derive(Debug)]
pub struct ArmRegistry<A: Copy> {
    /// Fast path: skip the mutex entirely when nothing was ever armed.
    armed: AtomicBool,
    arms: Mutex<HashMap<String, Arm<A>>>,
}

impl<A: Copy> Default for ArmRegistry<A> {
    fn default() -> Self {
        ArmRegistry { armed: AtomicBool::new(false), arms: Mutex::new(HashMap::new()) }
    }
}

#[derive(Debug, Clone, Copy)]
struct Arm<A> {
    action: A,
    /// Hits remaining before the action fires (0 = fire on the next hit).
    after: u32,
    fired: bool,
}

impl<A: Copy> ArmRegistry<A> {
    /// Arms `point` to fire `action` after `after` further hits (0 = fire
    /// on the very next hit). Re-arming a point replaces its previous arm.
    pub fn arm(&self, point: &str, action: A, after: u32) {
        let mut arms = self.arms.lock().unwrap_or_else(|e| e.into_inner());
        arms.insert(point.to_string(), Arm { action, after, fired: false });
        self.armed.store(true, Ordering::Release);
    }

    /// Hit `point`: decrements its countdown and returns the action the
    /// moment it fires (exactly once per arm).
    pub fn hit(&self, point: &str) -> Option<A> {
        if !self.armed.load(Ordering::Acquire) {
            return None;
        }
        let mut arms = self.arms.lock().unwrap_or_else(|e| e.into_inner());
        let arm = arms.get_mut(point)?;
        if arm.fired {
            return None;
        }
        if arm.after == 0 {
            arm.fired = true;
            Some(arm.action)
        } else {
            arm.after -= 1;
            None
        }
    }

    /// Whether any arm has fired.
    pub fn any_fired(&self) -> bool {
        self.arms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .any(|a| a.fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actions(s: &str) -> Option<u8> {
        match s {
            "a" => Some(1),
            "b" => Some(2),
            _ => None,
        }
    }

    #[test]
    fn parses_entries_with_whitespace_and_counts() {
        let mut got = Vec::new();
        parse_spec(
            " x=a:3 ,, y = b ",
            |p| p == "x" || p == "y",
            actions,
            |p, a, n| got.push((p.to_string(), a, n)),
        )
        .unwrap();
        assert_eq!(got, vec![("x".to_string(), 1, 3), ("y".to_string(), 2, 0)]);
    }

    #[test]
    fn rejects_each_malformation() {
        let run = |s: &str| {
            parse_spec(s, |p| p == "x", actions, |_, _: u8, _| {})
                .unwrap_err()
                .issue
        };
        assert_eq!(run("x"), SpecIssue::MissingEquals);
        assert_eq!(run("z=a"), SpecIssue::BadPoint("z".into()));
        assert_eq!(run("x=q"), SpecIssue::BadAction("q".into()));
        assert_eq!(run("x=a:soon"), SpecIssue::BadCount("soon".into()));
    }

    #[test]
    fn first_bad_entry_aborts_whole_parse() {
        let mut armed = 0;
        let _ = parse_spec("x=a, x=q, x=b", |p| p == "x", actions, |_, _, _| armed += 1);
        // The error surfaces before the third (valid) entry is reached;
        // the caller discards the partially armed plan.
        assert_eq!(armed, 1);
    }

    #[test]
    fn registry_fires_exactly_once_after_countdown() {
        let reg = ArmRegistry::<u8>::default();
        reg.arm("p", 9, 2);
        assert_eq!(reg.hit("p"), None);
        assert_eq!(reg.hit("p"), None);
        assert_eq!(reg.hit("p"), Some(9));
        assert_eq!(reg.hit("p"), None);
        assert!(reg.any_fired());
        assert_eq!(reg.hit("other"), None);
    }
}
