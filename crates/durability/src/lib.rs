//! Durability and failure model for the REPOSE serving layer.
//!
//! The serving layer (`repose-service`) keeps its delta writes in memory;
//! this crate makes them survive crashes and makes the failure behaviour
//! testable:
//!
//! * [`record`] — the length-prefixed, CRC-checksummed, sequence-stamped
//!   on-disk record format shared by WAL segments and base snapshots.
//! * [`wal`] — the [`Wal`] writer: group commit under a configurable
//!   [`FsyncPolicy`], segment rotation aligned with delta-segment seals,
//!   atomic base snapshots, and checkpoint truncation.
//! * [`replay()`](crate::replay()) — crash recovery: newest complete snapshot + ordered log
//!   replay, with a torn-tail policy that never drops an
//!   fsync-acknowledged record and never papers over mid-log corruption.
//! * [`failpoint`] — a deterministic, per-instance fault-injection
//!   registry ([`FailPlan`]) the WAL and archive writers consult at named
//!   points ([`POINTS`]), so tests can crash either write path at any
//!   site and prove recovery.
//! * [`spec`] — the shared `point=action[:after]` spec grammar and the
//!   exactly-once countdown registry, reused by the shard layer's
//!   `REPOSE_NETFAULTS` plan.
//!
//! The format stores coordinates via `f64::to_bits`, so recovered
//! trajectories are bit-identical to what was acknowledged — queries after
//! recovery return bitwise-identical distances.

#![warn(missing_docs)]

pub mod failpoint;
pub mod record;
pub mod replay;
pub mod spec;
pub mod wal;

pub use failpoint::{
    FailAction, FailPlan, FailSpecError, FailSpecReason, ARC_POINTS, POINTS, WAL_POINTS,
};
pub use record::{crc32, DecodeError, WalRecord};
pub use replay::{replay, Replayed};
pub use wal::{
    write_snapshot, DurabilityConfig, FsyncPolicy, SegmentInfo, Wal, WalCounters, WalError,
};

#[cfg(test)]
mod tests {
    use super::*;
    use repose_model::Point;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test (no tempfile dependency).
    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "repose-durability-{}-{}-{}",
            tag,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pts(n: u64) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64 * 0.5, -(i as f64))).collect()
    }

    fn fresh(dir: &PathBuf) -> (DurabilityConfig, Wal) {
        let cfg = DurabilityConfig::new(dir);
        let wal = Wal::create(&cfg).unwrap();
        write_snapshot(dir, 0, std::iter::empty(), &cfg.failpoints).unwrap();
        (cfg, wal)
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = scratch("roundtrip");
        let (_cfg, mut wal) = fresh(&dir);
        wal.append(&WalRecord::Upsert { seq: 1, id: 10, points: pts(4) }).unwrap();
        wal.append(&WalRecord::Upsert { seq: 2, id: 11, points: pts(2) }).unwrap();
        wal.append(&WalRecord::Delete { seq: 3, id: 10 }).unwrap();
        drop(wal);

        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.base_seq, 0);
        assert!(replayed.base.is_empty());
        assert_eq!(replayed.last_seq, 3);
        assert_eq!(replayed.torn_bytes, 0);
        assert_eq!(replayed.records.len(), 3);
        assert_eq!(replayed.records[2], WalRecord::Delete { seq: 3, id: 10 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_journal() {
        let dir = scratch("nonempty");
        let (cfg, wal) = fresh(&dir);
        drop(wal);
        assert!(matches!(Wal::create(&cfg), Err(WalError::DirNotEmpty { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_nth_append() {
        let dir = scratch("groupcommit");
        let cfg = DurabilityConfig::new(&dir).with_fsync(FsyncPolicy::EveryN(3));
        let mut wal = Wal::create(&cfg).unwrap();
        write_snapshot(&dir, 0, std::iter::empty(), &cfg.failpoints).unwrap();
        wal.append(&WalRecord::Upsert { seq: 1, id: 1, points: pts(1) }).unwrap();
        wal.append(&WalRecord::Upsert { seq: 2, id: 2, points: pts(1) }).unwrap();
        assert_eq!(wal.counters().fsyncs, 0, "two appends stay buffered");
        wal.append(&WalRecord::Upsert { seq: 3, id: 3, points: pts(1) }).unwrap();
        assert_eq!(wal.counters().fsyncs, 1, "third append triggers the group sync");
        drop(wal);
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = scratch("torn");
        let (cfg, mut wal) = fresh(&dir);
        wal.append(&WalRecord::Upsert { seq: 1, id: 1, points: pts(3) }).unwrap();
        cfg.failpoints.arm("wal.flush", FailAction::ShortWrite, 0);
        let err = wal.append(&WalRecord::Upsert { seq: 2, id: 2, points: pts(3) });
        assert!(matches!(err, Err(WalError::Injected { point: "wal.flush", .. })));
        assert!(wal.is_dead());
        assert!(matches!(
            wal.append(&WalRecord::Delete { seq: 3, id: 1 }),
            Err(WalError::Dead)
        ));
        drop(wal);

        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.records.len(), 1, "acknowledged record survives");
        assert!(replayed.torn_bytes > 0, "the torn prefix is detected and dropped");
        assert_eq!(replayed.last_seq, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let dir = scratch("midlog");
        let (_cfg, mut wal) = fresh(&dir);
        wal.append(&WalRecord::Upsert { seq: 1, id: 1, points: pts(2) }).unwrap();
        wal.rotate().unwrap();
        wal.append(&WalRecord::Upsert { seq: 2, id: 2, points: pts(2) }).unwrap();
        drop(wal);
        // Flip a byte in the middle of the FIRST (non-final) segment.
        let seg1 = dir.join("wal-00000001.log");
        let mut bytes = std::fs::read(&seg1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&seg1, &bytes).unwrap();
        assert!(matches!(replay(&dir), Err(WalError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_prunes_covered_segments_and_old_snapshots() {
        let dir = scratch("checkpoint");
        let (cfg, mut wal) = fresh(&dir);
        wal.append(&WalRecord::Upsert { seq: 1, id: 1, points: pts(2) }).unwrap();
        wal.append(&WalRecord::Upsert { seq: 2, id: 2, points: pts(2) }).unwrap();
        wal.rotate().unwrap();
        wal.append(&WalRecord::Upsert { seq: 3, id: 3, points: pts(2) }).unwrap();
        // Snapshot reflecting everything up to seq 2, then checkpoint it.
        let live = [(1u64, pts(2)), (2u64, pts(2))];
        write_snapshot(
            &dir,
            2,
            live.iter().map(|(id, p)| (*id, p.as_slice())),
            &cfg.failpoints,
        )
        .unwrap();
        wal.checkpoint(2).unwrap();
        drop(wal);

        assert!(!dir.join("wal-00000001.log").exists(), "covered segment pruned");
        assert!(!dir.join(format!("base-{:016x}.snap", 0)).exists(), "old snapshot pruned");

        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.base_seq, 2);
        assert_eq!(replayed.base.len(), 2);
        // Only seq-3 upsert remains to replay (seq <= 2 covered by the base).
        let data: Vec<_> = replayed
            .records
            .iter()
            .filter(|r| matches!(r, WalRecord::Upsert { .. } | WalRecord::Delete { .. }))
            .collect();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].seq(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_after_recovery_continues_the_log() {
        let dir = scratch("resume");
        let (cfg, mut wal) = fresh(&dir);
        wal.append(&WalRecord::Upsert { seq: 1, id: 1, points: pts(2) }).unwrap();
        drop(wal);
        let replayed = replay(&dir).unwrap();
        let mut wal = Wal::resume(
            &cfg,
            replayed.segments.clone(),
            replayed.next_segment_index,
            replayed.last_seq,
        )
        .unwrap();
        wal.append(&WalRecord::Upsert { seq: 2, id: 2, points: pts(2) }).unwrap();
        drop(wal);
        let again = replay(&dir).unwrap();
        assert_eq!(again.records.len(), 2);
        assert_eq!(again.last_seq, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_snapshot_leaves_no_visible_snapshot() {
        let dir = scratch("snapcrash");
        let (cfg, mut wal) = fresh(&dir);
        wal.append(&WalRecord::Upsert { seq: 1, id: 1, points: pts(2) }).unwrap();
        cfg.failpoints.arm("wal.snapshot", FailAction::Crash, 0);
        let live = [(1u64, pts(2))];
        let err = write_snapshot(
            &dir,
            1,
            live.iter().map(|(id, p)| (*id, p.as_slice())),
            &cfg.failpoints,
        );
        assert!(matches!(err, Err(WalError::Injected { point: "wal.snapshot", .. })));
        drop(wal);
        // Recovery still works off the base-0 snapshot + the log.
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.base_seq, 0);
        assert_eq!(replayed.records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_rotation_by_size() {
        let dir = scratch("rotate");
        let cfg = DurabilityConfig::new(&dir).with_segment_bytes(64);
        let mut wal = Wal::create(&cfg).unwrap();
        write_snapshot(&dir, 0, std::iter::empty(), &cfg.failpoints).unwrap();
        for seq in 1..=8 {
            wal.append(&WalRecord::Upsert { seq, id: seq, points: pts(4) }).unwrap();
        }
        drop(wal);
        let replayed = replay(&dir).unwrap();
        assert!(replayed.segments.len() > 1, "tiny segment budget forces rotation");
        assert_eq!(
            replayed
                .records
                .iter()
                .filter(|r| matches!(r, WalRecord::Upsert { .. }))
                .count(),
            8,
            "every record survives across rotations"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
