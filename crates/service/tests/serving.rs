//! Integration tests of the online serving layer: exactness of the
//! trie + delta search, cache invalidation, upsert/delete semantics, and
//! concurrency (interleaved writers/readers, queries racing compaction).

use repose::{Repose, ReposeConfig};
use repose_distance::{Measure, MeasureParams};
use repose_model::{Dataset, Point, Trajectory};
use repose_service::{ReposeService, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Deterministic pseudo-random trajectory `id` with jittered coordinates
/// (distinct ids never tie in distance).
fn traj(id: u64) -> Trajectory {
    let gx = (id % 7) as f64 * 11.0;
    let gy = (id / 7 % 5) as f64 * 13.0;
    let jit = (id % 101) as f64 * 1e-4 + (id % 13) as f64 * 3e-6;
    Trajectory::new(
        id,
        (0..10)
            .map(|s| Point::new(gx + s as f64 * 0.4 + jit, gy + jit * 0.7))
            .collect(),
    )
}

fn dataset(ids: impl Iterator<Item = u64>) -> Dataset {
    Dataset::from_trajectories(ids.map(traj).collect())
}

fn config(measure: Measure) -> ReposeConfig {
    ReposeConfig::new(measure)
        .with_partitions(6)
        .with_delta(0.7)
        .with_params(MeasureParams::with_eps(0.5))
}

fn queries() -> Vec<Vec<Point>> {
    [(0.1, 0.2), (11.3, 13.1), (22.7, 26.2), (33.0, 39.5), (5.0, 50.0)]
        .iter()
        .map(|&(x, y)| (0..10).map(|s| Point::new(x + s as f64 * 0.4, y)).collect())
        .collect()
}

/// Ids returned by a service query.
fn served_ids(service: &ReposeService, q: &[Point], k: usize) -> Vec<u64> {
    service.query(q, k).unwrap().hits.iter().map(|h| h.id).collect()
}

/// Ids returned by a freshly built offline deployment.
fn rebuilt_ids(data: &Dataset, cfg: ReposeConfig, q: &[Point], k: usize) -> Vec<u64> {
    let r = Repose::build(data, cfg);
    r.query(q, k).hits.iter().map(|h| h.id).collect()
}

#[test]
fn delta_search_is_exact_for_every_measure() {
    for measure in Measure::ALL {
        let cfg = config(measure);
        let params = MeasureParams::with_eps(0.5);
        let service = ReposeService::new(Repose::build(&dataset(0..80), cfg));
        // Buffer 40 more trajectories without compacting.
        for id in 80..120 {
            service.insert(traj(id)).unwrap();
        }
        let full = dataset(0..120);
        for q in &queries() {
            for k in [1, 7, 30] {
                let got = service.query(q, k).unwrap();
                let want = Repose::build(&full, cfg).query(q, k);
                if matches!(measure, Measure::Lcss | Measure::Edr) {
                    // Quantized measures tie freely; Definition 3 permits
                    // any tied subset. Compare the distance vector and
                    // check every reported distance is the true one.
                    assert_eq!(got.hits.len(), want.hits.len(), "{measure} k={k}");
                    for (g, w) in got.hits.iter().zip(&want.hits) {
                        assert!(
                            (g.dist - w.dist).abs() < 1e-9,
                            "{measure} k={k}: distance vector differs"
                        );
                        let t = full
                            .trajectories()
                            .iter()
                            .find(|t| t.id == g.id)
                            .expect("known id");
                        let true_d = params.distance(measure, q, &t.points);
                        assert!(
                            (g.dist - true_d).abs() < 1e-9,
                            "{measure} k={k}: reported distance is wrong"
                        );
                    }
                } else {
                    // Continuous measures on jittered data: no ties, the
                    // id lists must agree exactly.
                    assert_eq!(
                        got.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
                        want.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
                        "{measure} k={k}: trie+delta differs from rebuilt index"
                    );
                }
            }
        }
    }
}

#[test]
fn upsert_and_delete_semantics() {
    let cfg = config(Measure::Hausdorff);
    let service = ReposeService::new(Repose::build(&dataset(0..30), cfg));
    assert_eq!(service.len(), 30);
    let q: Vec<Point> = (0..10).map(|s| Point::new(s as f64 * 0.4, 0.0)).collect();

    // Delete a frozen trajectory: it must vanish from results.
    let victim = served_ids(&service, &q, 1)[0];
    service.remove(victim).unwrap();
    assert!(!served_ids(&service, &q, 30).contains(&victim));
    assert_eq!(service.len(), 29);

    // Re-insert it moved elsewhere (upsert): reappears with new geometry.
    let mut moved = traj(victim);
    for p in &mut moved.points {
        p.x += 100.0;
        p.y += 100.0;
    }
    service.insert(moved).unwrap();
    assert_eq!(service.len(), 30);
    let far_q: Vec<Point> = (0..10)
        .map(|s| Point::new(100.0 + s as f64 * 0.4, 100.0))
        .collect();
    assert_eq!(served_ids(&service, &far_q, 1), vec![victim]);

    // Upsert an id twice more: still one live copy, latest geometry wins.
    service.insert(traj(victim)).unwrap();
    service
        .insert({
            let mut t = traj(victim);
            t.points[0].x += 0.001;
            t
        })
        .unwrap();
    assert_eq!(service.len(), 30);

    // Deleting a never-inserted id is a no-op.
    service.remove(9999).unwrap();
    assert_eq!(service.len(), 30);

    // Everything still matches a from-scratch rebuild.
    let mut final_trajs: Vec<Trajectory> = (0..30)
        .filter(|&i| i != victim)
        .map(traj)
        .collect();
    final_trajs.push({
        let mut t = traj(victim);
        t.points[0].x += 0.001;
        t
    });
    let full = Dataset::from_trajectories(final_trajs);
    for k in [1, 5, 30] {
        assert_eq!(served_ids(&service, &q, k), rebuilt_ids(&full, cfg, &q, k));
    }
}

#[test]
fn cached_results_reflect_every_write() {
    let cfg = config(Measure::Hausdorff);
    let service = ReposeService::new(Repose::build(&dataset(0..40), cfg));
    let q: Vec<Point> = (0..10).map(|s| Point::new(s as f64 * 0.4, 0.05)).collect();

    // Prime the cache, then verify a hit.
    let first = service.query(&q, 5).unwrap();
    assert!(!first.cache_hit);
    let second = service.query(&q, 5).unwrap();
    assert!(second.cache_hit, "repeat query should hit the cache");
    assert_eq!(
        first.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
        second.hits.iter().map(|h| h.id).collect::<Vec<_>>()
    );

    // Insert a trajectory that must dominate this query: the previously
    // cached answer is now stale and must not be served.
    let winner = Trajectory::new(777, q.clone());
    service.insert(winner).unwrap();
    let after = service.query(&q, 5).unwrap();
    assert!(!after.cache_hit, "cache served a stale result across a write");
    assert_eq!(after.hits[0].id, 777);
    assert!(after.hits[0].dist.abs() < 1e-12);

    // Deletes invalidate too.
    service.remove(777).unwrap();
    let post_delete = service.query(&q, 5).unwrap();
    assert!(!post_delete.cache_hit);
    assert_ne!(post_delete.hits[0].id, 777);

    // And compaction does as well (same answer, freshly computed).
    let pre = served_ids(&service, &q, 5);
    service.compact().unwrap();
    let post = service.query(&q, 5).unwrap();
    assert!(!post.cache_hit);
    assert_eq!(pre, post.hits.iter().map(|h| h.id).collect::<Vec<_>>());

    let stats = service.stats();
    assert!(stats.cache_hits >= 1);
    assert!(stats.cache_misses >= 4);
    assert!(stats.cache_hit_rate() > 0.0);
}

#[test]
fn compaction_drains_deltas_and_preserves_answers() {
    let cfg = config(Measure::Frechet);
    let service = ReposeService::new(Repose::build(&dataset(0..50), cfg));
    for id in 50..90 {
        service.insert(traj(id)).unwrap();
    }
    for id in [3, 17, 60] {
        service.remove(id).unwrap();
    }
    let before: Vec<Vec<u64>> = queries()
        .iter()
        .map(|q| served_ids(&service, q, 12))
        .collect();
    let stats = service.stats();
    assert!(stats.delta_len > 0 && stats.tombstones > 0);

    let rebuilt = service.compact().unwrap();
    assert_eq!(rebuilt, 87); // 50 + 40 - 3 deletes
    let stats = service.stats();
    assert_eq!(
        (stats.delta_len, stats.tombstones),
        (0, 0),
        "compaction must drain fully-covered deltas and tombstones"
    );

    let after: Vec<Vec<u64>> = queries()
        .iter()
        .map(|q| served_ids(&service, q, 12))
        .collect();
    assert_eq!(before, after, "compaction changed query answers");
    assert_eq!(service.stats().compactions, 1);
}

/// Acceptance criterion: ≥4 threads interleaving inserts and queries; the
/// final state must answer exactly like a from-scratch rebuild over the
/// same live data.
#[test]
fn interleaved_writers_and_readers_converge_to_rebuild() {
    let cfg = config(Measure::Hausdorff);
    let service = Arc::new(ReposeService::new(Repose::build(&dataset(0..60), cfg)));
    let qs = queries();

    // 3 writer threads × 30 inserts each, disjoint id ranges, racing
    // 3 reader threads issuing queries the whole time.
    let mut handles = Vec::new();
    for w in 0..3u64 {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            for i in 0..30 {
                service.insert(traj(1000 + w * 100 + i)).unwrap();
                if i % 7 == 0 {
                    // Delete some frozen ids.
                    service.remove(w * 10 + i % 10).unwrap();
                }
            }
        }));
    }
    for r in 0..3usize {
        let service = Arc::clone(&service);
        let qs = qs.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..40 {
                let q = &qs[(r + round) % qs.len()];
                let out = service.query(q, 10).unwrap();
                // Mid-stream answers must be well-formed: sorted, deduped.
                for w in out.hits.windows(2) {
                    assert!(
                        w[0].dist < w[1].dist
                            || (w[0].dist == w[1].dist && w[0].id < w[1].id)
                    );
                    assert_ne!(w[0].id, w[1].id, "duplicate id served");
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }

    // Reconstruct the exact live set the interleaving produced.
    let mut deleted = std::collections::HashSet::new();
    for w in 0..3u64 {
        for i in 0..30 {
            if i % 7 == 0 {
                deleted.insert(w * 10 + i % 10);
            }
        }
    }
    let mut live: Vec<Trajectory> = (0..60)
        .filter(|id| !deleted.contains(id))
        .map(traj)
        .collect();
    for w in 0..3u64 {
        for i in 0..30 {
            live.push(traj(1000 + w * 100 + i));
        }
    }
    let full = Dataset::from_trajectories(live);
    assert_eq!(service.len(), full.len());
    for q in &qs {
        for k in [1, 10, 50] {
            assert_eq!(
                served_ids(&service, q, k),
                rebuilt_ids(&full, cfg, q, k),
                "k={k}: post-race state differs from rebuilt index"
            );
        }
    }

    // ...and the same equivalence must hold after compaction.
    service.compact().unwrap();
    for q in &qs {
        assert_eq!(served_ids(&service, q, 25), rebuilt_ids(&full, cfg, q, 25));
    }
}

/// Readers racing `compact()` must never observe partial state: every
/// answer equals the (unchanging) logical answer, whether it was computed
/// against the old frozen state, the new one, or either plus deltas.
#[test]
fn queries_racing_compaction_never_see_partial_state() {
    let cfg = config(Measure::Hausdorff);
    let service = Arc::new(ReposeService::with_config(
        Repose::build(&dataset(0..70), cfg),
        // Disable the cache so every query exercises the search path.
        ServiceConfig { cache_capacity: 0, ..ServiceConfig::default() },
    ));
    for id in 70..100 {
        service.insert(traj(id)).unwrap();
    }
    let expected: Vec<Vec<u64>> = {
        let full = dataset(0..100);
        queries()
            .iter()
            .map(|q| rebuilt_ids(&full, cfg, q, 15))
            .collect()
    };

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for r in 0..4usize {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let qs = queries();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            let mut rounds = 0u32;
            while !stop.load(Ordering::Relaxed) || rounds < 5 {
                let qi = (r + rounds as usize) % qs.len();
                let got = service.query(&qs[qi], 15).unwrap();
                assert_eq!(
                    got.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
                    expected[qi],
                    "query observed partial compaction state"
                );
                rounds += 1;
            }
        }));
    }
    // Compact repeatedly while the readers hammer away.
    for _ in 0..3 {
        service.compact().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("reader panicked");
    }
    assert_eq!(service.stats().compactions, 3);
}

#[test]
fn service_on_empty_deployment() {
    let cfg = config(Measure::Hausdorff);
    let service = ReposeService::new(Repose::build(&Dataset::new(), cfg));
    assert!(service.is_empty());
    let q = vec![Point::new(0.0, 0.0)];
    assert!(service.query(&q, 3).unwrap().hits.is_empty());

    // Grow it purely through the online path.
    for id in 0..12 {
        service.insert(traj(id)).unwrap();
    }
    assert_eq!(service.len(), 12);
    let out = service.query(&queries()[0], 5).unwrap();
    assert_eq!(out.hits.len(), 5);
    assert_eq!(
        served_ids(&service, &queries()[0], 5),
        rebuilt_ids(&dataset(0..12), cfg, &queries()[0], 5)
    );
    service.compact().unwrap();
    assert_eq!(service.len(), 12);
    assert_eq!(
        served_ids(&service, &queries()[0], 5),
        rebuilt_ids(&dataset(0..12), cfg, &queries()[0], 5)
    );
}

#[test]
fn delta_scan_abandons_hopeless_candidates() {
    // A large uncompacted write burst, mostly far from the query: the
    // lower-bound-sorted delta scan must refute most candidates without
    // full-cost exact scoring, while the answer stays exact.
    let cfg = config(Measure::Hausdorff);
    let service = ReposeService::new(Repose::build(&dataset(0..40), cfg));
    for id in 40..120 {
        service.insert(traj(id)).unwrap();
    }
    let q = &queries()[0];
    let out = service.query(q, 3).unwrap();
    assert!(out.delta_candidates > 0, "delta must be scanned");
    assert!(
        out.search.exact_abandoned > 0,
        "hopeless delta candidates should be abandoned, outcome scanned {} / abandoned {}",
        out.delta_candidates,
        out.search.exact_abandoned
    );
    assert_eq!(
        out.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
        rebuilt_ids(&dataset(0..120), cfg, q, 3)
    );
}

#[test]
fn batch_queries_and_latency_stats() {
    let cfg = config(Measure::Hausdorff);
    let service = ReposeService::new(Repose::build(&dataset(0..40), cfg));
    for id in 40..50 {
        service.insert(traj(id)).unwrap();
    }
    let qs = queries();
    let outcomes = service.query_batch(&qs, 6).unwrap();
    assert_eq!(outcomes.len(), qs.len());
    for (q, o) in qs.iter().zip(&outcomes) {
        assert_eq!(
            o.hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            served_ids(&service, q, 6)
        );
        assert!(o.delta_candidates > 0, "delta must be scanned");
    }
    let stats = service.stats();
    assert!(stats.queries >= 10);
    assert_eq!(stats.inserts, 10);
    assert!(stats.read_latency.count > 0);
    assert!(stats.write_latency.count == 10);
    assert!(stats.read_latency.p99 >= stats.read_latency.p50);
}
