//! The `ReposeService` itself: shared state layout and the read/write/
//! compact paths.
//!
//! # Concurrency design
//!
//! All mutable state sits behind one `RwLock<ServeState>`; the expensive
//! work happens *outside* it:
//!
//! * **Queries** take the read lock just long enough to clone the frozen
//!   `Arc<Repose>`, the tombstone map, and the per-partition delta
//!   segments (`Arc` clones), then release it and search. Many queries
//!   snapshot and search in parallel.
//! * **Writes** take the write lock for an O(1) arena append + map insert.
//! * **Compaction** snapshots under the read lock, rebuilds *only the
//!   dirtied partitions* with no lock held, then takes the write lock for
//!   an O(n) pointer swap + prefix drain. Readers are never exposed to a
//!   half-compacted state: they either snapshot entirely before or
//!   entirely after the swap, and both states answer queries identically.
//!
//! # Execution model
//!
//! A query's per-partition work (delta scan + trie search) is dispatched
//! onto a persistent [`WorkerPool`] in **bound order**: partitions sorted
//! by a cheap lower bound on their best possible hit
//! ([`repose_rptrie::RpTrie::root_bound`] min'd with the best stored delta
//! summary bound), so the most promising partition publishes into the
//! query's [`SharedTopK`] collector first and tightens the live pruning
//! threshold for everyone else — the two-phase seed idea generalized to a
//! priority schedule, without any phase barrier. [`ReposeService::
//! query_batch`] admits every query of a batch onto the same pool with
//! per-query collectors, so concurrent read throughput scales with cores
//! instead of queueing behind one query. With `pool_threads <= 1` the
//! service runs the same bound-ordered schedule inline on the caller
//! thread (the sequential reference path; results are identical either
//! way — see the `shared` module of `repose-rptrie` for the soundness
//! argument).
//!
//! A monotone *write version* ([`AtomicU64`]) is bumped **after** every
//! completed mutation; cache entries are stamped with the version current
//! when their query *began*, so a concurrent write always invalidates
//! in-flight results before they can be served from cache. Completed
//! answers additionally seed later near-duplicate queries' collectors
//! through the cache's threshold-hint ring (metric measures only; see
//! `crate::cache`).

use crate::cache::{CacheKey, QueryCache};
use crate::delta::{snapshot_len, DeltaLog, DeltaSnapshot};
use crate::stats::{ServiceCounters, ServiceStats};
use repose::{Repose, ReposeConfig};
use repose_cluster::{default_pool_threads, WorkerPool};
use repose_distance::{just_above, Measure, MeasureParams, TrajSummary};
use repose_model::{Point, TrajId, TrajStore, Trajectory};
use repose_rptrie::{Hit, SearchStats, SharedTopK};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for [`ReposeService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Result-cache capacity in entries (0 disables caching *and* the
    /// threshold-hint ring).
    pub cache_capacity: usize,
    /// Worker threads of the query execution pool. Defaults to the host's
    /// available parallelism ([`repose_cluster::default_pool_threads`]);
    /// `<= 1` disables the pool and runs the same bound-ordered partition
    /// schedule inline on the calling thread (the sequential reference
    /// path).
    pub pool_threads: usize,
    /// Forces a specific verification-kernel backend process-wide at
    /// service construction (`None` keeps the `REPOSE_BACKEND` /
    /// auto-detected default). All backends are bit-identical, so this is a
    /// performance/debugging knob, never a results knob.
    ///
    /// # Panics
    /// Construction panics when the host CPU cannot run the requested
    /// backend ([`repose_distance::force_backend`]'s contract): a forced
    /// backend must never silently fall back.
    pub backend: Option<repose_distance::Backend>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            pool_threads: default_pool_threads(),
            backend: None,
        }
    }
}

/// Everything queries snapshot and writes mutate, under one lock.
struct ServeState {
    frozen: Arc<Repose>,
    deltas: Vec<DeltaLog>,
    /// Each partition's [`DeltaLog::epoch`] as of the last completed
    /// compaction — the incremental-compaction dirtiness counters:
    /// `deltas[pi].epoch() > compacted_epochs[pi]` means partition `pi`'s
    /// log changed since the last compact and it must be rebuilt.
    compacted_epochs: Vec<u64>,
    /// id -> sequence of its latest write (insert *or* delete). An id in
    /// this map is hidden from the frozen index; the delta entry with a
    /// sequence >= the tombstone sequence (if any) is its live version.
    ///
    /// Kept behind an `Arc` so query snapshots are an O(1) pointer clone;
    /// writes copy-on-write (`Arc::make_mut`) only when a snapshot is
    /// outstanding.
    tombstones: Arc<HashMap<TrajId, u64>>,
    op_seq: u64,
}

/// The outcome of one served query.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Top-k hits over the live data (frozen ∪ delta − tombstones),
    /// ascending by distance with ties broken by id.
    pub hits: Vec<Hit>,
    /// Host wall time of this call (what a caller actually waited). For a
    /// query answered as part of [`ReposeService::query_batch`]'s pooled
    /// execution this is the *batch* wall time — per-query work interleaves
    /// on the pool, so individual completion times are not meaningful.
    pub latency: Duration,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Local-search work counters (all zero on a cache hit).
    /// `search.exact_abandoned` counts verifications (delta scan + trie
    /// search) the shared threshold refuted before full kernel cost,
    /// including delta candidates skipped outright because their stored
    /// summary bound already lost.
    pub search: SearchStats,
    /// Delta-buffer candidates considered for this query.
    pub delta_candidates: usize,
    /// Single-thread duration of each partition's task (delta scan + trie
    /// search), indexed by partition. Empty on a cache hit. Enables
    /// modeling the pooled schedule on hosts with any core count (see the
    /// `serve_pool` experiment).
    pub partition_times: Vec<Duration>,
    /// The initial collector bound this query started from: finite when a
    /// cache threshold hint pre-bounded `dk` before the first
    /// verification, `INFINITY` otherwise.
    pub threshold_seed: f64,
}

/// One partition's completed task.
struct PartResult {
    hits: Vec<Hit>,
    stats: SearchStats,
    delta_live: usize,
    time: Duration,
}

/// A thread-safe online serving layer over a [`Repose`] deployment.
///
/// `&self` methods are safe to call from any number of threads; see the
/// module docs for the locking discipline. Construction freezes the
/// initial dataset exactly like the offline pipeline; everything written
/// afterwards lives in delta buffers until [`ReposeService::compact`]
/// folds it into (selectively) rebuilt tries.
pub struct ReposeService {
    state: RwLock<ServeState>,
    /// Serializes compactions (the rebuild is expensive; overlapping
    /// compactions would waste work and interleave drains).
    compact_gate: Mutex<()>,
    cache: Mutex<QueryCache>,
    /// The persistent query-execution pool (`None` when
    /// [`ServiceConfig::pool_threads`] <= 1: the sequential path).
    pool: Option<WorkerPool>,
    /// Bumped after every completed mutation; tags cache entries.
    version: AtomicU64,
    /// The deployment's measure, copied out so the cache-hit fast path
    /// never touches the state lock.
    measure: Measure,
    /// The deployment's measure parameters, copied out so writes can
    /// summarize without touching the state lock.
    params: MeasureParams,
    counters: ServiceCounters,
}

impl ReposeService {
    /// Wraps a built deployment with default [`ServiceConfig`].
    pub fn new(repose: Repose) -> Self {
        ReposeService::with_config(repose, ServiceConfig::default())
    }

    /// Wraps a built deployment.
    pub fn with_config(repose: Repose, config: ServiceConfig) -> Self {
        if let Some(b) = config.backend {
            repose_distance::force_backend(b);
        }
        let partitions = repose.num_partitions();
        let measure = repose.config().measure();
        let params = repose.config().trie.params;
        ReposeService {
            measure,
            params,
            state: RwLock::new(ServeState {
                frozen: Arc::new(repose),
                deltas: (0..partitions).map(|_| DeltaLog::default()).collect(),
                compacted_epochs: vec![0; partitions],
                tombstones: Arc::new(HashMap::new()),
                op_seq: 0,
            }),
            compact_gate: Mutex::new(()),
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            pool: (config.pool_threads > 1).then(|| WorkerPool::new(config.pool_threads)),
            version: AtomicU64::new(0),
            counters: ServiceCounters::default(),
        }
    }

    /// The configuration of the underlying deployment.
    pub fn config(&self) -> ReposeConfig {
        *self.read_state().frozen.config()
    }

    /// Worker threads of the query execution pool (1 = sequential path).
    pub fn pool_threads(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::threads)
    }

    /// Number of live trajectories (frozen + delta − tombstones).
    ///
    /// O(frozen + delta); intended for tests and monitoring, not hot paths.
    pub fn len(&self) -> usize {
        let s = self.read_state();
        let frozen_live = s
            .frozen
            .all_trajectories()
            .filter(|(id, _)| !s.tombstones.contains_key(id))
            .count();
        let delta_live: usize = s.deltas.iter().map(|d| d.live_len(&s.tombstones)).sum();
        frozen_live + delta_live
    }

    /// Whether no live trajectories exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `traj`, replacing any live trajectory with the same id
    /// (upsert). Visible to every query that starts after this returns.
    /// The points are copied into the partition's delta arena segment
    /// ([`Trajectory`] is only the I/O edge).
    pub fn insert(&self, traj: Trajectory) {
        let t0 = Instant::now();
        // Summarize outside the lock: the same O(1)-prefilter summary the
        // frozen tries store per leaf member, paid once per write instead
        // of per query.
        let summary = self.params.summary_of(&traj.points);
        {
            let mut s = self.state.write().expect("service state lock");
            s.op_seq += 1;
            let seq = s.op_seq;
            let partition = (traj.id as usize) % s.deltas.len();
            Arc::make_mut(&mut s.tombstones).insert(traj.id, seq);
            s.deltas[partition].push(seq, traj.id, &traj.points, summary);
        }
        self.version.fetch_add(1, Ordering::Release);
        ServiceCounters::bump(&self.counters.inserts);
        self.counters.record_write(t0.elapsed());
    }

    /// Deletes the trajectory with id `id` (a no-op if absent).
    pub fn remove(&self, id: TrajId) {
        let t0 = Instant::now();
        {
            let mut s = self.state.write().expect("service state lock");
            s.op_seq += 1;
            let seq = s.op_seq;
            Arc::make_mut(&mut s.tombstones).insert(id, seq);
        }
        self.version.fetch_add(1, Ordering::Release);
        ServiceCounters::bump(&self.counters.deletes);
        self.counters.record_write(t0.elapsed());
    }

    /// Exact top-k over the live data.
    ///
    /// Every partition's delta scan and trie search shares one
    /// [`SharedTopK`] collector, and the per-partition tasks run on the
    /// service's worker pool in bound order (see the module docs), so the
    /// query's wall-clock latency scales with cores while the answer stays
    /// exactly what the sequential path returns (identical distance
    /// multiset; ties may resolve per the paper's Definition 3).
    pub fn query(&self, query: &[Point], k: usize) -> ServiceOutcome {
        let t0 = Instant::now();
        ServiceCounters::bump(&self.counters.queries);

        let key = CacheKey::new(self.measure, query, k);
        // Load the version *before* snapshotting: any write that completes
        // after this load bumps past it, so a result cached under this
        // version can never be served once newer data exists. (A write
        // landing between the load and the snapshot merely makes the
        // cached entry conservatively stale.)
        let version = self.version.load(Ordering::Acquire);
        if let Some(hits) = self.cache.lock().expect("cache lock").get(&key, version) {
            ServiceCounters::bump(&self.counters.cache_hits);
            let latency = t0.elapsed();
            self.counters.record_read(latency);
            return ServiceOutcome {
                hits,
                latency,
                cache_hit: true,
                search: SearchStats::default(),
                delta_candidates: 0,
                partition_times: Vec::new(),
                threshold_seed: f64::INFINITY,
            };
        }
        ServiceCounters::bump(&self.counters.cache_misses);

        let (frozen, deltas, tombstones, state_seq) = self.snapshot();
        // Hints are matched on the snapshot's op-seq, *after* the
        // snapshot: a hint seeds this query iff it was computed on this
        // exact logical dataset.
        let threshold_seed = self.hint_bound(query, k, state_seq);

        // One shared collector for the whole query: every partition's
        // delta scan and trie search publishes into it and prunes with its
        // live global k-th-distance bound, so a close delta candidate in
        // partition 0 tightens partition 5's trie descent and vice versa.
        // A finite threshold hint pre-bounds dk before the first
        // verification anywhere (inclusively, via `just_above`, so ties at
        // the seed bound are kept).
        let collector = if threshold_seed.is_finite() {
            SharedTopK::with_initial_bound(k, just_above(threshold_seed))
        } else {
            SharedTopK::new(k)
        };
        let qsum = self.params.summary_of(query);
        let parts = self.run_partitions(&frozen, &deltas, &tombstones, query, k, &qsum, &collector);

        let mut hits: Vec<Hit> = Vec::new();
        let mut search = SearchStats::default();
        let mut delta_candidates = 0;
        let mut partition_times = Vec::with_capacity(parts.len());
        for p in &parts {
            search.merge(&p.stats);
            delta_candidates += p.delta_live;
            partition_times.push(p.time);
            hits.extend_from_slice(&p.hits);
        }
        hits.sort_by(Hit::cmp_by_dist_then_id);
        hits.truncate(k);

        {
            let mut cache = self.cache.lock().expect("cache lock");
            cache.put(key, version, hits.clone());
            if hits.len() == k {
                if let Some(kth) = hits.last() {
                    cache.record_hint(self.measure, query, k, state_seq, kth.dist);
                }
            }
        }
        let latency = t0.elapsed();
        self.counters.record_read(latency);
        ServiceOutcome {
            hits,
            latency,
            cache_hit: false,
            search,
            delta_candidates,
            partition_times,
            threshold_seed,
        }
    }

    /// Answers a batch of queries (cache consulted per query).
    ///
    /// With the pool enabled, every cache-missing query of the batch is
    /// admitted onto the pool at once — one task per (query, partition),
    /// interleaved so each query's most promising partition dispatches
    /// first — with one [`SharedTopK`] collector *per query*. Concurrent
    /// read throughput therefore scales with pool threads instead of the
    /// batch queueing behind one query at a time. Results are exactly the
    /// per-query [`ReposeService::query`] answers.
    pub fn query_batch(&self, queries: &[Vec<Point>], k: usize) -> Vec<ServiceOutcome> {
        let Some(pool) = &self.pool else {
            return queries.iter().map(|q| self.query(q, k)).collect();
        };
        if queries.len() <= 1 {
            return queries.iter().map(|q| self.query(q, k)).collect();
        }

        let t0 = Instant::now();
        let version = self.version.load(Ordering::Acquire);
        let mut outcomes: Vec<Option<ServiceOutcome>> = Vec::new();
        outcomes.resize_with(queries.len(), || None);
        // Unique cache-missing queries; in-batch duplicates collapse onto
        // one execution (`dup_of[qi]` points at the query that computes
        // their shared answer), like the sequential path's second-query
        // cache hit.
        let mut misses: Vec<usize> = Vec::new();
        let mut dup_of: Vec<Option<usize>> = vec![None; queries.len()];
        {
            let mut cache = self.cache.lock().expect("cache lock");
            let mut seen: HashMap<CacheKey, usize> = HashMap::new();
            for (qi, q) in queries.iter().enumerate() {
                ServiceCounters::bump(&self.counters.queries);
                let key = CacheKey::new(self.measure, q, k);
                if let Some(hits) = cache.get(&key, version) {
                    ServiceCounters::bump(&self.counters.cache_hits);
                    // Cache hits are done now; their latency is their own,
                    // not the batch's.
                    outcomes[qi] = Some(ServiceOutcome {
                        hits,
                        latency: t0.elapsed(),
                        cache_hit: true,
                        search: SearchStats::default(),
                        delta_candidates: 0,
                        partition_times: Vec::new(),
                        threshold_seed: f64::INFINITY,
                    });
                } else if let Some(&twin) = seen.get(&key) {
                    ServiceCounters::bump(&self.counters.cache_hits);
                    dup_of[qi] = Some(twin);
                } else {
                    ServiceCounters::bump(&self.counters.cache_misses);
                    seen.insert(key, qi);
                    misses.push(qi);
                }
            }
        }

        if !misses.is_empty() {
            let (frozen, deltas, tombstones, state_seq) = self.snapshot();
            let n = frozen.num_partitions();
            // Hint seeding happens *after* the snapshot, matched on its
            // op-seq: a hint applies iff computed on this exact dataset.
            let seeds: Vec<f64> = misses
                .iter()
                .map(|&qi| self.hint_bound(&queries[qi], k, state_seq))
                .collect();
            let collectors: Vec<SharedTopK> = seeds
                .iter()
                .map(|&b| {
                    if b.is_finite() {
                        SharedTopK::with_initial_bound(k, just_above(b))
                    } else {
                        SharedTopK::new(k)
                    }
                })
                .collect();
            let qsums: Vec<TrajSummary> = misses
                .iter()
                .map(|&qi| self.params.summary_of(&queries[qi]))
                .collect();
            #[allow(clippy::type_complexity)]
            let schedules: Vec<(Vec<usize>, Vec<Vec<(f64, u64, &[Point])>>)> = misses
                .iter()
                .zip(&qsums)
                .map(|(&qi, qsum)| {
                    partition_schedule(
                        &frozen,
                        &deltas,
                        &tombstones,
                        &queries[qi],
                        qsum,
                        self.params,
                    )
                })
                .collect();
            let results: Vec<Vec<Mutex<Option<PartResult>>>> = (0..misses.len())
                .map(|_| (0..n).map(|_| Mutex::new(None)).collect())
                .collect();

            pool.scope(|s| {
                // Rank-major interleaving: every query's best-bound
                // partition dispatches before any query's second-best, so
                // each collector tightens as early as possible. (`rank`
                // deliberately indexes every query's schedule at once —
                // not a needless range loop over one slice.)
                #[allow(clippy::needless_range_loop)]
                for rank in 0..n {
                    for (mi, &qi) in misses.iter().enumerate() {
                        let pi = schedules[mi].0[rank];
                        let slot = &results[mi][pi];
                        let collector = &collectors[mi];
                        let cands = &schedules[mi].1[pi];
                        let query = queries[qi].as_slice();
                        let frozen = &frozen;
                        let tombstones = &tombstones;
                        let params = self.params;
                        s.submit(move || {
                            let r = run_partition(
                                frozen, tombstones, query, k, collector, params, cands, pi,
                            );
                            *slot.lock().expect("partition slot") = Some(r);
                        });
                    }
                }
            });

            let mut cache = self.cache.lock().expect("cache lock");
            for (mi, &qi) in misses.iter().enumerate() {
                let mut hits: Vec<Hit> = Vec::new();
                let mut search = SearchStats::default();
                let mut delta_candidates = 0;
                let mut partition_times = Vec::with_capacity(n);
                for slot in &results[mi] {
                    let p = slot
                        .lock()
                        .expect("partition slot")
                        .take()
                        .expect("every partition task completed");
                    search.merge(&p.stats);
                    delta_candidates += p.delta_live;
                    partition_times.push(p.time);
                    hits.extend_from_slice(&p.hits);
                }
                hits.sort_by(Hit::cmp_by_dist_then_id);
                hits.truncate(k);
                let key = CacheKey::new(self.measure, &queries[qi], k);
                cache.put(key, version, hits.clone());
                if hits.len() == k {
                    if let Some(kth) = hits.last() {
                        cache.record_hint(self.measure, &queries[qi], k, state_seq, kth.dist);
                    }
                }
                outcomes[qi] = Some(ServiceOutcome {
                    hits,
                    latency: Duration::ZERO, // stamped below
                    cache_hit: false,
                    search,
                    delta_candidates,
                    partition_times,
                    threshold_seed: seeds[mi],
                });
            }
        }

        // In-batch duplicates share their twin's hits but report as cache
        // hits (they did no search work of their own).
        let latency = t0.elapsed();
        for qi in 0..queries.len() {
            if let Some(twin) = dup_of[qi] {
                let hits = outcomes[twin]
                    .as_ref()
                    .expect("twin executed")
                    .hits
                    .clone();
                outcomes[qi] = Some(ServiceOutcome {
                    hits,
                    latency,
                    cache_hit: true,
                    search: SearchStats::default(),
                    delta_candidates: 0,
                    partition_times: Vec::new(),
                    threshold_seed: f64::INFINITY,
                });
            }
        }
        outcomes
            .into_iter()
            .map(|o| {
                let mut o = o.expect("every query answered");
                if !o.cache_hit {
                    o.latency = latency;
                }
                self.counters.record_read(o.latency);
                o
            })
            .collect()
    }

    /// Folds every buffered write into rebuilt frozen tries —
    /// **incrementally**: only partitions whose delta log changed since
    /// the last compact (per-partition epoch counters) or whose frozen
    /// data is hit by a tombstone are rebuilt; every other partition's
    /// arena and trie are shared with the previous deployment untouched
    /// (`Arc` clones via [`Repose::rebuild_partitions`]).
    ///
    /// The rebuild runs without holding the state lock — readers and
    /// writers proceed against the old state — and the new deployment is
    /// installed with a brief write-locked swap that drains exactly the
    /// compacted delta prefix. Writes that land mid-rebuild stay buffered
    /// and survive into the next compaction. Returns the number of
    /// trajectories in the rebuilt deployment.
    ///
    /// Incremental compaction keeps each rebuilt partition's existing data
    /// placement (frozen survivors + its own delta arrivals) and reuses
    /// the deployment's region grid; if a live delta point falls *outside*
    /// that region — where reference-point discretization would clamp and
    /// lose bound soundness — the compaction transparently falls back to
    /// [`ReposeService::compact_full`]'s global re-partition.
    pub fn compact(&self) -> usize {
        self.compact_inner(false)
    }

    /// [`ReposeService::compact`] forced to rebuild the *whole*
    /// deployment: the live set is re-partitioned globally (fresh region,
    /// fresh placement), like the offline build. Use it to restore
    /// partition balance after long runs of skewed writes; plain
    /// `compact` is the cheap steady-state operation.
    pub fn compact_full(&self) -> usize {
        self.compact_inner(true)
    }

    fn compact_inner(&self, force_full: bool) -> usize {
        let _gate = self.compact_gate.lock().expect("compact gate");

        // Phase 1: consistent snapshot.
        let (frozen, raw_deltas, prefix_lens, epochs, compacted_epochs, tomb_snapshot, seq_snapshot) = {
            let s = self.state.read().expect("service state lock");
            let raw: Vec<DeltaSnapshot> = s.deltas.iter().map(DeltaLog::snapshot).collect();
            let lens: Vec<usize> = raw.iter().map(snapshot_len).collect();
            let epochs: Vec<u64> = s.deltas.iter().map(DeltaLog::epoch).collect();
            (
                Arc::clone(&s.frozen),
                raw,
                lens,
                epochs,
                s.compacted_epochs.clone(),
                Arc::clone(&s.tombstones),
                s.op_seq,
            )
        };
        let n = frozen.num_partitions();

        // Selective rebuild reuses the frozen region's grid; live points
        // outside it would discretize unsoundly — fall back to the global
        // rebuild, which recomputes the region. (Checked lazily: a forced
        // full rebuild skips the scan over every live delta point.)
        let in_region = || {
            let region = frozen.region();
            raw_deltas.iter().flatten().all(|seg| {
                (0..seg.store.len()).all(|slot| {
                    !seg.is_live(slot, &tomb_snapshot)
                        || seg.store.points(slot).iter().all(|p| region.contains(*p))
                })
            })
        };

        // Phase 2: rebuild offline from the live snapshot.
        let (new_frozen, rebuilt_parts) = if force_full || !in_region() {
            // Global re-partition: the live set is assembled as one flat
            // arena (frozen survivors copied partition-arena-to-arena, one
            // contiguous range copy per trajectory; then live delta
            // entries, segment-arena-to-arena) and dealt out afresh.
            let mut live = TrajStore::new();
            for pi in 0..n {
                let view = frozen.partition_view(pi);
                for slot in 0..view.store.len() {
                    if !tomb_snapshot.contains_key(&view.store.id(slot)) {
                        live.push_from(view.store, slot);
                    }
                }
            }
            for segs in &raw_deltas {
                for seg in segs {
                    for slot in 0..seg.store.len() {
                        if seg.is_live(slot, &tomb_snapshot) {
                            live.push_from(&seg.store, slot);
                        }
                    }
                }
            }
            (
                Arc::new(Repose::build_from_store(&live, *frozen.config())),
                n,
            )
        } else {
            // Incremental: each dirty partition's new arena is its frozen
            // survivors plus its own live delta arrivals, assembled purely
            // with arena-to-arena range copies; untouched partitions swap
            // in their existing trie + arena via `Arc`. A partition is
            // dirty when its delta epoch moved past the last compacted
            // epoch (buffered writes), or when a tombstone hides any of
            // its frozen rows.
            let dirty = (0..n).map(|pi| {
                epochs[pi] > compacted_epochs[pi] || {
                    let view = frozen.partition_view(pi);
                    (0..view.store.len())
                        .any(|slot| tomb_snapshot.contains_key(&view.store.id(slot)))
                }
            });
            let mut replacements: Vec<(usize, TrajStore)> = Vec::new();
            for (pi, is_dirty) in dirty.enumerate() {
                if !is_dirty {
                    continue;
                }
                let view = frozen.partition_view(pi);
                let mut part = TrajStore::new();
                for slot in 0..view.store.len() {
                    if !tomb_snapshot.contains_key(&view.store.id(slot)) {
                        part.push_from(view.store, slot);
                    }
                }
                for seg in &raw_deltas[pi] {
                    for slot in 0..seg.store.len() {
                        if seg.is_live(slot, &tomb_snapshot) {
                            part.push_from(&seg.store, slot);
                        }
                    }
                }
                replacements.push((pi, part));
            }
            let count = replacements.len();
            let rebuilt = if replacements.is_empty() {
                Arc::clone(&frozen)
            } else {
                Arc::new(frozen.rebuild_partitions(replacements))
            };
            (rebuilt, count)
        };
        let rebuilt_len: usize = new_frozen.partition_sizes().iter().sum();

        // Phase 3: atomic install.
        {
            let mut s = self.state.write().expect("service state lock");
            for (log, &len) in s.deltas.iter_mut().zip(&prefix_lens) {
                log.drain_prefix(len);
            }
            s.compacted_epochs.copy_from_slice(&epochs);
            // Tombstones at or before the snapshot are fully reflected in
            // the rebuilt deployment; later ones still apply.
            Arc::make_mut(&mut s.tombstones).retain(|_, seq| *seq > seq_snapshot);
            s.frozen = new_frozen;
        }
        self.version.fetch_add(1, Ordering::Release);
        ServiceCounters::bump(&self.counters.compactions);
        self.counters
            .partitions_rebuilt
            .fetch_add(rebuilt_parts as u64, Ordering::Relaxed);
        self.counters
            .last_compact_rebuilt
            .store(rebuilt_parts as u64, Ordering::Relaxed);
        rebuilt_len
    }

    /// A point-in-time snapshot of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        let s = self.read_state();
        let delta_len = s.deltas.iter().map(DeltaLog::len).sum();
        let tombstones = s.tombstones.len();
        let partitions = s.frozen.num_partitions();
        drop(s);
        let cached = self.cache.lock().expect("cache lock").len();
        self.counters
            .snapshot(delta_len, tombstones, cached, partitions)
    }

    fn read_state(&self) -> std::sync::RwLockReadGuard<'_, ServeState> {
        self.state.read().expect("service state lock")
    }

    /// Clones everything a query needs, under a brief read lock: the
    /// frozen deployment, each partition's delta segments (`Arc` clones —
    /// any later write starts a new segment rather than touching these),
    /// the tombstone map, and the op-seq identifying this exact logical
    /// dataset (the threshold-hint validity key).
    #[allow(clippy::type_complexity)]
    fn snapshot(
        &self,
    ) -> (Arc<Repose>, Vec<DeltaSnapshot>, Arc<HashMap<TrajId, u64>>, u64) {
        let s = self.read_state();
        let deltas = s.deltas.iter().map(DeltaLog::snapshot).collect();
        (
            Arc::clone(&s.frozen),
            deltas,
            Arc::clone(&s.tombstones),
            s.op_seq,
        )
    }

    /// The tightest sound upper bound on this query's k-th distance the
    /// threshold-hint ring can offer (`INFINITY` when none): for each
    /// metric-measure hint `q'` with the same `k` computed on the *same
    /// logical dataset* (op-seq match — see [`crate::cache`]),
    /// `dk(q) <= dk(q') + d(q, q')` by the triangle inequality. Kernel
    /// calls happen outside the cache lock.
    fn hint_bound(&self, query: &[Point], k: usize, state_seq: u64) -> f64 {
        let candidates = self
            .cache
            .lock()
            .expect("cache lock")
            .hint_candidates(self.measure, k, state_seq);
        let mut bound = f64::INFINITY;
        for hint in candidates {
            let d = self.params.distance(self.measure, query, &hint.query);
            bound = bound.min(hint.kth + d);
        }
        bound
    }

    /// Executes every partition's task for one query against `collector`,
    /// in bound order — on the pool when enabled (most promising partition
    /// inline on the caller, the rest FIFO to the workers), inline
    /// otherwise. Returns per-partition results indexed by partition.
    #[allow(clippy::too_many_arguments)]
    fn run_partitions(
        &self,
        frozen: &Arc<Repose>,
        deltas: &[DeltaSnapshot],
        tombstones: &Arc<HashMap<TrajId, u64>>,
        query: &[Point],
        k: usize,
        qsum: &TrajSummary,
        collector: &SharedTopK,
    ) -> Vec<PartResult> {
        let n = frozen.num_partitions();
        let (order, cands) =
            partition_schedule(frozen, deltas, tombstones, query, qsum, self.params);
        let params = self.params;
        let run = |pi: usize| {
            run_partition(frozen, tombstones, query, k, collector, params, &cands[pi], pi)
        };
        let mut slots: Vec<Option<PartResult>> = Vec::new();
        slots.resize_with(n, || None);
        match &self.pool {
            Some(pool) if n > 1 => {
                let results: Vec<Mutex<Option<PartResult>>> =
                    (0..n).map(|_| Mutex::new(None)).collect();
                pool.scope(|s| {
                    for &pi in &order[1..] {
                        let slot = &results[pi];
                        let run = &run;
                        s.submit(move || {
                            *slot.lock().expect("partition slot") = Some(run(pi));
                        });
                    }
                    // The most promising partition runs right here on the
                    // caller's thread: it starts without dispatch latency
                    // and its published hits tighten everyone downstream.
                    *results[order[0]].lock().expect("partition slot") = Some(run(order[0]));
                });
                for (slot, result) in slots.iter_mut().zip(results) {
                    *slot = result.into_inner().expect("partition slot");
                }
            }
            _ => {
                for &pi in &order {
                    slots[pi] = Some(run(pi));
                }
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every partition task completed"))
            .collect()
    }
}

/// One partition's full task for one query: delta scan (cheapest stored
/// bound first, under the live shared threshold), then the trie search
/// seeded with the scan's survivors — both publishing into `collector`.
/// `cands` is the partition's precomputed live delta candidate list from
/// [`partition_schedule`] (bounds already priced; no second pass over the
/// delta segments).
#[allow(clippy::too_many_arguments)]
fn run_partition(
    frozen: &Arc<Repose>,
    tombstones: &HashMap<TrajId, u64>,
    query: &[Point],
    k: usize,
    collector: &SharedTopK,
    params: MeasureParams,
    cands: &[(f64, u64, &[Point])],
    pi: usize,
) -> PartResult {
    let t0 = Instant::now();
    let view = frozen.partition_view(pi);
    let mut stats = SearchStats::default();
    let delta_live = cands.len();
    let seeds = scan_delta(
        view.trie.measure(),
        params,
        query,
        k,
        cands,
        &mut stats,
        collector,
    );
    let filter = |id: TrajId| !tombstones.contains_key(&id);
    let local = view
        .trie
        .top_k_shared(view.store, query, k, &seeds, Some(&filter), collector);
    stats.merge(&local.stats);
    PartResult {
        hits: local.hits,
        stats,
        delta_live,
        time: t0.elapsed(),
    }
}

/// The bound-ordered partition schedule for one query: partitions sorted
/// ascending by a cheap lower bound on the best hit they could possibly
/// contain — the trie's root-level `LBo` min'd with the best stored
/// summary bound among live delta entries. No exact kernels run. The most
/// promising partition dispatches first, publishes first, and its k-th
/// distance prunes every later partition; correctness never depends on
/// the order (any schedule returns the same multiset), only wasted work
/// does.
///
/// The same pass that prices each partition also materializes its live
/// delta candidate list `(summary bound, id, arena point slice)` — the
/// exact input [`scan_delta`] needs — so the liveness filtering and O(1)
/// summary bounds are paid once per query, not once for scheduling and
/// again per scan.
#[allow(clippy::type_complexity)]
fn partition_schedule<'a>(
    frozen: &Arc<Repose>,
    deltas: &'a [DeltaSnapshot],
    tombstones: &HashMap<TrajId, u64>,
    query: &[Point],
    qsum: &TrajSummary,
    params: MeasureParams,
) -> (Vec<usize>, Vec<Vec<(f64, u64, &'a [Point])>>) {
    let measure = frozen.config().measure();
    let n = frozen.num_partitions();
    debug_assert_eq!(deltas.len(), n);
    let mut cands: Vec<Vec<(f64, u64, &[Point])>> = Vec::with_capacity(n);
    let mut keyed: Vec<(f64, usize)> = Vec::with_capacity(n);
    for (pi, segs) in deltas.iter().enumerate() {
        let mut key = frozen.partition_view(pi).trie.root_bound(query);
        let mut list: Vec<(f64, u64, &[Point])> = Vec::with_capacity(snapshot_len(segs));
        for seg in segs {
            for slot in 0..seg.store.len() {
                if seg.is_live(slot, tombstones) {
                    let lb = params.summary_lower_bound(measure, qsum, &seg.meta[slot].1);
                    key = key.min(lb);
                    list.push((lb, seg.store.id(slot), seg.store.points(slot)));
                }
            }
        }
        cands.push(list);
        keyed.push((key, pi));
    }
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    (keyed.into_iter().map(|(_, pi)| pi).collect(), cands)
}

/// Scores one partition's live delta candidates against the query,
/// cheapest stored summary bound first, keeping the best `k` under the
/// query's shared threshold
/// ([`repose_distance::MeasureParams::refine_by_bound_shared`]).
///
/// Returns the same `k` best seeds a full exact scan would (ties
/// included) while charging far less: sort keys are the insert-time
/// [`TrajSummary`] bounds precomputed by [`partition_schedule`] (O(1) per
/// candidate, no per-point walk), candidate points are contiguous arena
/// slices of the delta segments, hopeless candidates are refuted by the
/// early-abandoning kernel under the live cross-partition bound, and once
/// even the cheap lower bound cannot beat the global k-th distance the
/// (sorted) remainder is skipped outright. Accepted hits publish into
/// `collector` so later partitions' scans and trie searches prune harder.
/// Every candidate counts as an attempted verification, so
/// `exact_abandoned <= exact_computations` always holds.
fn scan_delta(
    measure: Measure,
    params: MeasureParams,
    query: &[Point],
    k: usize,
    cands: &[(f64, u64, &[Point])],
    search: &mut SearchStats,
    collector: &SharedTopK,
) -> Vec<Hit> {
    use repose_distance::RefineEvent;

    if k == 0 || cands.is_empty() {
        return Vec::new();
    }
    params
        .refine_by_bound_shared(
            measure,
            query,
            k,
            f64::INFINITY,
            Some(collector),
            cands.to_vec(),
            |e| match e {
                RefineEvent::Scored { abandoned } => {
                    search.exact_computations += 1;
                    search.exact_abandoned += usize::from(abandoned);
                }
                RefineEvent::SkippedRest(n) => {
                    search.exact_computations += n;
                    search.exact_abandoned += n;
                }
            },
        )
        .into_iter()
        .map(|(dist, id)| Hit { id, dist })
        .collect()
}

impl std::fmt::Debug for ReposeService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.read_state();
        f.debug_struct("ReposeService")
            .field("partitions", &s.frozen.num_partitions())
            .field("delta_len", &s.deltas.iter().map(DeltaLog::len).sum::<usize>())
            .field("tombstones", &s.tombstones.len())
            .field("pool_threads", &self.pool_threads())
            .field("version", &self.version.load(Ordering::Relaxed))
            .finish()
    }
}
