//! The `ReposeService` itself: shared state layout and the read/write/
//! compact paths.
//!
//! # Concurrency design
//!
//! All mutable state sits behind one `RwLock<ServeState>`; the expensive
//! work happens *outside* it:
//!
//! * **Queries** take the read lock just long enough to clone the frozen
//!   `Arc<Repose>`, the tombstone map, and the live delta entries
//!   (`Arc<Trajectory>` clones), then release it and search. Many queries
//!   snapshot and search in parallel.
//! * **Writes** take the write lock for an O(1) append + map insert.
//! * **Compaction** snapshots under the read lock, rebuilds the frozen
//!   deployment with no lock held, then takes the write lock for an O(n)
//!   pointer swap + prefix drain. Readers are never exposed to a half-
//!   compacted state: they either snapshot entirely before or entirely
//!   after the swap, and both states answer queries identically.
//!
//! A monotone *write version* ([`AtomicU64`]) is bumped **after** every
//! completed mutation; cache entries are stamped with the version current
//! when their query *began*, so a concurrent write always invalidates
//! in-flight results before they can be served from cache.

use crate::cache::{CacheKey, QueryCache};
use crate::delta::{DeltaLog, LiveEntry};
use crate::stats::{ServiceCounters, ServiceStats};
use repose::{Repose, ReposeConfig};
use repose_distance::MeasureParams;
use repose_model::{TrajId, TrajStore, Trajectory};
use repose_rptrie::{Hit, SearchStats, SharedTopK};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Tuning knobs for [`ReposeService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { cache_capacity: 1024 }
    }
}

/// Everything queries snapshot and writes mutate, under one lock.
struct ServeState {
    frozen: Arc<Repose>,
    deltas: Vec<DeltaLog>,
    /// id -> sequence of its latest write (insert *or* delete). An id in
    /// this map is hidden from the frozen index; the delta entry with a
    /// sequence >= the tombstone sequence (if any) is its live version.
    ///
    /// Kept behind an `Arc` so query snapshots are an O(1) pointer clone;
    /// writes copy-on-write (`Arc::make_mut`) only when a snapshot is
    /// outstanding.
    tombstones: Arc<HashMap<TrajId, u64>>,
    op_seq: u64,
}

/// The outcome of one served query.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Top-k hits over the live data (frozen ∪ delta − tombstones),
    /// ascending by distance with ties broken by id.
    pub hits: Vec<Hit>,
    /// Host wall time of this call (what a caller actually waited).
    pub latency: Duration,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Local-search work counters (all zero on a cache hit).
    /// `search.exact_abandoned` counts verifications (delta scan + trie
    /// search) the shared threshold refuted before full kernel cost,
    /// including delta candidates skipped outright because their stored
    /// summary bound already lost.
    pub search: SearchStats,
    /// Delta-buffer candidates considered for this query.
    pub delta_candidates: usize,
}

/// A thread-safe online serving layer over a [`Repose`] deployment.
///
/// `&self` methods are safe to call from any number of threads; see the
/// module docs for the locking discipline. Construction freezes the
/// initial dataset exactly like the offline pipeline; everything written
/// afterwards lives in delta buffers until [`ReposeService::compact`]
/// folds it into freshly rebuilt tries.
pub struct ReposeService {
    state: RwLock<ServeState>,
    /// Serializes compactions (the rebuild is expensive; overlapping
    /// compactions would waste work and interleave drains).
    compact_gate: Mutex<()>,
    cache: Mutex<QueryCache>,
    /// Bumped after every completed mutation; tags cache entries.
    version: AtomicU64,
    /// The deployment's measure, copied out so the cache-hit fast path
    /// never touches the state lock.
    measure: repose_distance::Measure,
    /// The deployment's measure parameters, copied out so writes can
    /// summarize without touching the state lock.
    params: MeasureParams,
    counters: ServiceCounters,
}

impl ReposeService {
    /// Wraps a built deployment with default [`ServiceConfig`].
    pub fn new(repose: Repose) -> Self {
        ReposeService::with_config(repose, ServiceConfig::default())
    }

    /// Wraps a built deployment.
    pub fn with_config(repose: Repose, config: ServiceConfig) -> Self {
        let partitions = repose.num_partitions();
        let measure = repose.config().measure();
        let params = repose.config().trie.params;
        ReposeService {
            measure,
            params,
            state: RwLock::new(ServeState {
                frozen: Arc::new(repose),
                deltas: (0..partitions).map(|_| DeltaLog::default()).collect(),
                tombstones: Arc::new(HashMap::new()),
                op_seq: 0,
            }),
            compact_gate: Mutex::new(()),
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            version: AtomicU64::new(0),
            counters: ServiceCounters::default(),
        }
    }

    /// The configuration of the underlying deployment.
    pub fn config(&self) -> ReposeConfig {
        *self.read_state().frozen.config()
    }

    /// Number of live trajectories (frozen + delta − tombstones).
    ///
    /// O(frozen + delta); intended for tests and monitoring, not hot paths.
    pub fn len(&self) -> usize {
        let (frozen, deltas, tombstones) = self.snapshot();
        let frozen_live = frozen
            .all_trajectories()
            .filter(|(id, _)| !tombstones.contains_key(id))
            .count();
        frozen_live + deltas.iter().map(Vec::len).sum::<usize>()
    }

    /// Whether no live trajectories exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `traj`, replacing any live trajectory with the same id
    /// (upsert). Visible to every query that starts after this returns.
    pub fn insert(&self, traj: Trajectory) {
        let t0 = Instant::now();
        // Summarize outside the lock: the same O(1)-prefilter summary the
        // frozen tries store per leaf member, paid once per write instead
        // of per query.
        let summary = self.params.summary_of(&traj.points);
        {
            let mut s = self.state.write().expect("service state lock");
            s.op_seq += 1;
            let seq = s.op_seq;
            let partition = (traj.id as usize) % s.deltas.len();
            Arc::make_mut(&mut s.tombstones).insert(traj.id, seq);
            s.deltas[partition].push(seq, Arc::new(traj), summary);
        }
        self.version.fetch_add(1, Ordering::Release);
        ServiceCounters::bump(&self.counters.inserts);
        self.counters.record_write(t0.elapsed());
    }

    /// Deletes the trajectory with id `id` (a no-op if absent).
    pub fn remove(&self, id: TrajId) {
        let t0 = Instant::now();
        {
            let mut s = self.state.write().expect("service state lock");
            s.op_seq += 1;
            let seq = s.op_seq;
            Arc::make_mut(&mut s.tombstones).insert(id, seq);
        }
        self.version.fetch_add(1, Ordering::Release);
        ServiceCounters::bump(&self.counters.deletes);
        self.counters.record_write(t0.elapsed());
    }

    /// Exact top-k over the live data.
    pub fn query(&self, query: &[repose_model::Point], k: usize) -> ServiceOutcome {
        let t0 = Instant::now();
        ServiceCounters::bump(&self.counters.queries);

        let key = CacheKey::new(self.measure, query, k);
        // Load the version *before* snapshotting: any write that completes
        // after this load bumps past it, so a result cached under this
        // version can never be served once newer data exists. (A write
        // landing between the load and the snapshot merely makes the
        // cached entry conservatively stale.)
        let version = self.version.load(Ordering::Acquire);
        if let Some(hits) = self
            .cache
            .lock()
            .expect("cache lock")
            .get(&key, version)
        {
            ServiceCounters::bump(&self.counters.cache_hits);
            let latency = t0.elapsed();
            self.counters.record_read(latency);
            return ServiceOutcome {
                hits,
                latency,
                cache_hit: true,
                search: SearchStats::default(),
                delta_candidates: 0,
            };
        }
        ServiceCounters::bump(&self.counters.cache_misses);

        let (frozen, deltas, tombstones) = self.snapshot();

        // One shared collector for the whole query: every partition's
        // delta scan and trie search publishes into it and prunes with its
        // live global k-th-distance bound, so a close delta candidate in
        // partition 0 tightens partition 5's trie descent and vice versa.
        let collector = SharedTopK::new(k);
        let mut hits: Vec<Hit> = Vec::new();
        let mut search = SearchStats::default();
        let mut delta_candidates = 0;
        let filter = |id: TrajId| !tombstones.contains_key(&id);
        for (pi, delta) in deltas.iter().enumerate() {
            let view = frozen.partition_view(pi);
            // Score the partition's live delta candidates under the shared
            // threshold: cheapest (stored, O(1)) lower bound first, so the
            // earliest candidates tighten the threshold and the rest are
            // refuted by the early-abandoning kernel — or skipped outright
            // once even their lower bound cannot win. The k survivors seed
            // the trie search, which keeps tightening the same collector.
            let seeds = scan_delta(view.trie, query, k, delta, &mut search, &collector);
            delta_candidates += delta.len();
            let local =
                view.trie.top_k_shared(view.store, query, k, &seeds, Some(&filter), &collector);
            search.merge(&local.stats);
            hits.extend_from_slice(&local.hits);
        }
        hits.sort_by(Hit::cmp_by_dist_then_id);
        hits.truncate(k);

        self.cache
            .lock()
            .expect("cache lock")
            .put(key, version, hits.clone());
        let latency = t0.elapsed();
        self.counters.record_read(latency);
        ServiceOutcome {
            hits,
            latency,
            cache_hit: false,
            search,
            delta_candidates,
        }
    }

    /// Answers a batch of queries (cache consulted per query).
    pub fn query_batch(
        &self,
        queries: &[Vec<repose_model::Point>],
        k: usize,
    ) -> Vec<ServiceOutcome> {
        queries.iter().map(|q| self.query(q, k)).collect()
    }

    /// Folds every buffered write into freshly rebuilt frozen tries.
    ///
    /// The rebuild runs without holding the state lock — readers and
    /// writers proceed against the old state — and the new deployment is
    /// installed with a brief write-locked swap that drains exactly the
    /// compacted delta prefix. Writes that land mid-rebuild stay buffered
    /// and survive into the next compaction. Returns the number of
    /// trajectories in the rebuilt deployment.
    pub fn compact(&self) -> usize {
        let _gate = self.compact_gate.lock().expect("compact gate");

        // Phase 1: consistent snapshot.
        let (frozen, raw_deltas, prefix_lens, tomb_snapshot, seq_snapshot) = {
            let s = self.state.read().expect("service state lock");
            let raw: Vec<Vec<(u64, Arc<Trajectory>)>> =
                s.deltas.iter().map(DeltaLog::snapshot).collect();
            let lens: Vec<usize> = raw.iter().map(Vec::len).collect();
            (
                Arc::clone(&s.frozen),
                raw,
                lens,
                Arc::clone(&s.tombstones),
                s.op_seq,
            )
        };

        // Phase 2: rebuild offline from the live snapshot. The live set is
        // assembled as one flat arena: frozen survivors are copied
        // partition-arena-to-arena (one contiguous range copy per
        // trajectory, no intermediate `Trajectory` clones), then live
        // delta entries are appended from their write-path buffers.
        let mut live = TrajStore::new();
        for pi in 0..frozen.num_partitions() {
            let view = frozen.partition_view(pi);
            for slot in 0..view.store.len() {
                if !tomb_snapshot.contains_key(&view.store.id(slot)) {
                    live.push_from(view.store, slot);
                }
            }
        }
        for log in &raw_deltas {
            for (seq, t) in log {
                if tomb_snapshot.get(&t.id).is_none_or(|&ts| *seq >= ts) {
                    live.push(t.id, &t.points);
                }
            }
        }
        let rebuilt_len = live.len();
        let rebuilt = Repose::build_from_store(&live, *frozen.config());

        // Phase 3: atomic install.
        {
            let mut s = self.state.write().expect("service state lock");
            for (log, &n) in s.deltas.iter_mut().zip(&prefix_lens) {
                log.drain_prefix(n);
            }
            // Tombstones at or before the snapshot are fully reflected in
            // the rebuilt deployment; later ones still apply.
            Arc::make_mut(&mut s.tombstones).retain(|_, seq| *seq > seq_snapshot);
            s.frozen = Arc::new(rebuilt);
        }
        self.version.fetch_add(1, Ordering::Release);
        ServiceCounters::bump(&self.counters.compactions);
        rebuilt_len
    }

    /// A point-in-time snapshot of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        let s = self.read_state();
        let delta_len = s.deltas.iter().map(DeltaLog::len).sum();
        let tombstones = s.tombstones.len();
        drop(s);
        let cached = self.cache.lock().expect("cache lock").len();
        self.counters.snapshot(delta_len, tombstones, cached)
    }

    fn read_state(&self) -> std::sync::RwLockReadGuard<'_, ServeState> {
        self.state.read().expect("service state lock")
    }

    /// Clones everything a query needs, under a brief read lock.
    #[allow(clippy::type_complexity)]
    fn snapshot(
        &self,
    ) -> (
        Arc<Repose>,
        Vec<Vec<LiveEntry>>,
        Arc<HashMap<TrajId, u64>>,
    ) {
        let s = self.read_state();
        let deltas = s
            .deltas
            .iter()
            .map(|d| d.live(&s.tombstones))
            .collect();
        (Arc::clone(&s.frozen), deltas, Arc::clone(&s.tombstones))
    }
}

/// Scores one partition's delta candidates against the query, cheapest
/// stored summary bound first, keeping the best `k` under the query's
/// shared threshold
/// ([`repose_distance::MeasureParams::refine_by_bound_shared`]).
///
/// Returns the same `k` best `(dist, id)` seeds a full exact scan would
/// (ties included), while charging far less: sort keys come from the
/// insert-time [`repose_distance::TrajSummary`] (O(1) per candidate, no
/// per-point walk), hopeless candidates are refuted by the early-
/// abandoning kernel under the live cross-partition bound, and once even
/// the cheap lower bound cannot beat the global k-th distance the (sorted)
/// remainder is skipped outright. Accepted hits publish into `collector`
/// so later partitions' scans and trie searches prune harder. Every
/// candidate counts as an attempted verification, so
/// `exact_abandoned <= exact_computations` always holds.
fn scan_delta(
    trie: &repose_rptrie::RpTrie,
    query: &[repose_model::Point],
    k: usize,
    delta: &[LiveEntry],
    search: &mut SearchStats,
    collector: &SharedTopK,
) -> Vec<Hit> {
    use repose_distance::RefineEvent;

    if k == 0 || delta.is_empty() {
        return Vec::new();
    }
    let measure = trie.measure();
    let params = trie.params();
    let qsum = params.summary_of(query);
    let cands: Vec<(f64, u64, &[repose_model::Point])> = delta
        .iter()
        .map(|(t, summary)| {
            (
                params.summary_lower_bound(measure, &qsum, summary),
                t.id,
                t.points.as_slice(),
            )
        })
        .collect();
    params
        .refine_by_bound_shared(
            measure,
            query,
            k,
            f64::INFINITY,
            Some(collector),
            cands,
            |e| match e {
                RefineEvent::Scored { abandoned } => {
                    search.exact_computations += 1;
                    search.exact_abandoned += usize::from(abandoned);
                }
                RefineEvent::SkippedRest(n) => {
                    search.exact_computations += n;
                    search.exact_abandoned += n;
                }
            },
        )
        .into_iter()
        .map(|(dist, id)| Hit { id, dist })
        .collect()
}

impl std::fmt::Debug for ReposeService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.read_state();
        f.debug_struct("ReposeService")
            .field("partitions", &s.frozen.num_partitions())
            .field("delta_len", &s.deltas.iter().map(DeltaLog::len).sum::<usize>())
            .field("tombstones", &s.tombstones.len())
            .field("version", &self.version.load(Ordering::Relaxed))
            .finish()
    }
}
