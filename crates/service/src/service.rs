//! The `ReposeService` itself: shared state layout and the read/write/
//! compact paths.
//!
//! # Concurrency design
//!
//! All mutable state sits behind one `RwLock<ServeState>`; the expensive
//! work happens *outside* it:
//!
//! * **Queries** take the read lock just long enough to clone the frozen
//!   `Arc<Repose>`, the tombstone map, and the per-partition delta
//!   segments (`Arc` clones), then release it and search. Many queries
//!   snapshot and search in parallel.
//! * **Writes** take the write lock for an O(1) arena append + map insert.
//! * **Compaction** snapshots under the read lock, rebuilds *only the
//!   dirtied partitions* with no lock held, then takes the write lock for
//!   an O(n) pointer swap + prefix drain. Readers are never exposed to a
//!   half-compacted state: they either snapshot entirely before or
//!   entirely after the swap, and both states answer queries identically.
//!
//! # Execution model
//!
//! A query's per-partition work (delta scan + trie search) is dispatched
//! onto a persistent [`WorkerPool`] in **bound order**: partitions sorted
//! by a cheap lower bound on their best possible hit
//! ([`repose_rptrie::RpTrie::root_bound`] min'd with the best stored delta
//! summary bound), so the most promising partition publishes into the
//! query's [`SharedTopK`] collector first and tightens the live pruning
//! threshold for everyone else — the two-phase seed idea generalized to a
//! priority schedule, without any phase barrier. [`ReposeService::
//! query_batch`] admits every query of a batch onto the same pool with
//! per-query collectors, so concurrent read throughput scales with cores
//! instead of queueing behind one query. With `pool_threads <= 1` the
//! service runs the same bound-ordered schedule inline on the caller
//! thread (the sequential reference path; results are identical either
//! way — see the `shared` module of `repose-rptrie` for the soundness
//! argument).
//!
//! A monotone *write version* ([`AtomicU64`]) is bumped **after** every
//! completed mutation; cache entries are stamped with the version current
//! when their query *began*, so a concurrent write always invalidates
//! in-flight results before they can be served from cache. Completed
//! answers additionally seed later near-duplicate queries' collectors
//! through the cache's threshold-hint ring (metric measures only; see
//! `crate::cache`).

use crate::cache::{CacheKey, QueryCache};
use crate::delta::{snapshot_len, DeltaLog, DeltaSnapshot};
use crate::error::ServiceError;
use crate::stats::{ServiceCounters, ServiceStats};
use repose::{Repose, ReposeConfig};
use repose_archive::{latest_valid, prune_generations, quarantine, write_archive, Archive, ScrubReport};
use repose_cluster::{
    default_pool_threads, AdmissionGate, Clock, Deadline, SystemClock, WorkerPool,
};
use repose_distance::{just_above, Measure, MeasureParams, TrajSummary};
use repose_durability::{write_snapshot, DurabilityConfig, FailPlan, Wal, WalCounters, WalRecord};
use repose_model::{Point, TrajId, TrajStore, Trajectory};
use repose_rptrie::{Hit, SearchStats, SharedTopK};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How many installed archive generations a service retains: the one it
/// just wrote plus one predecessor to fall back to if the newest is later
/// found corrupt. Older generations are pruned on every install.
const ARCHIVE_GENERATIONS_KEPT: usize = 2;

/// Tuning knobs for [`ReposeService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Result-cache capacity in entries (0 disables caching *and* the
    /// threshold-hint ring).
    pub cache_capacity: usize,
    /// Worker threads of the query execution pool. Defaults to the host's
    /// available parallelism ([`repose_cluster::default_pool_threads`]);
    /// `<= 1` disables the pool and runs the same bound-ordered partition
    /// schedule inline on the calling thread (the sequential reference
    /// path).
    pub pool_threads: usize,
    /// Forces a specific verification-kernel backend process-wide at
    /// service construction (`None` keeps the `REPOSE_BACKEND` /
    /// auto-detected default). All backends are bit-identical, so this is a
    /// performance/debugging knob, never a results knob.
    ///
    /// # Panics
    /// Construction panics when the host CPU cannot run the requested
    /// backend ([`repose_distance::force_backend`]'s contract): a forced
    /// backend must never silently fall back.
    pub backend: Option<repose_distance::Backend>,
    /// Wall-clock budget per query. `None` (the default) keeps the exact
    /// path bit-for-bit unchanged; `Some(budget)` makes the bound-ordered
    /// schedule stop dispatching partition tasks once the budget expires
    /// and return whatever was found, explicitly marked
    /// [`ServiceOutcome::degraded`]. Degraded answers are never cached.
    pub query_deadline: Option<Duration>,
    /// Maximum concurrently executing (cache-missing) queries before the
    /// admission gate sheds load with [`ServiceError::Overloaded`].
    /// 0 (the default) means unbounded. Cache hits are always served.
    pub max_inflight_queries: usize,
    /// Write-ahead logging configuration. `None` (the default) runs the
    /// service volatile, exactly as before; `Some` makes every
    /// acknowledged insert/delete durable per the configured
    /// [`repose_durability::FsyncPolicy`] and enables
    /// [`ReposeService::recover`].
    pub durability: Option<DurabilityConfig>,
    /// Directory for persistent zero-copy archive generations
    /// (`gen-*.arc`; see [`repose_archive`]). `None` (the default) keeps
    /// every existing path byte-identical. `Some` makes construction and
    /// every compaction atomically install a checksummed archive of the
    /// frozen deployment, and makes [`ReposeService::recover`] prefer
    /// *attaching* the newest valid generation (mmap + checksum, an
    /// O(checksum) restart) over rebuilding the index from the WAL base
    /// snapshot — replaying only the WAL tail past the archived
    /// operation sequence. A generation that fails validation is
    /// quarantined loudly and recovery falls back, first to the previous
    /// generation, then to the full WAL rebuild: a corrupt archive can
    /// cost speed, never correctness.
    pub archive: Option<PathBuf>,
    /// The time source for every timer-driven decision the service makes
    /// (today: [`ServiceConfig::query_deadline`] expiry). The default
    /// [`repose_cluster::SystemClock`] is the monotonic clock — production
    /// behavior unchanged; the deterministic simulator injects a
    /// [`repose_cluster::SimClock`] so deadline skips replay bit-exact
    /// from a seed. Observability timings (latency counters) deliberately
    /// stay on the host clock — they describe the host, not the decision.
    pub clock: Arc<dyn Clock>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            pool_threads: default_pool_threads(),
            backend: None,
            query_deadline: None,
            max_inflight_queries: 0,
            durability: None,
            archive: None,
            clock: Arc::new(SystemClock),
        }
    }
}

/// Everything queries snapshot and writes mutate, under one lock.
struct ServeState {
    frozen: Arc<Repose>,
    deltas: Vec<DeltaLog>,
    /// Each partition's [`DeltaLog::epoch`] as of the last completed
    /// compaction — the incremental-compaction dirtiness counters:
    /// `deltas[pi].epoch() > compacted_epochs[pi]` means partition `pi`'s
    /// log changed since the last compact and it must be rebuilt.
    compacted_epochs: Vec<u64>,
    /// id -> sequence of its latest write (insert *or* delete). An id in
    /// this map is hidden from the frozen index; the delta entry with a
    /// sequence >= the tombstone sequence (if any) is its live version.
    ///
    /// Kept behind an `Arc` so query snapshots are an O(1) pointer clone;
    /// writes copy-on-write (`Arc::make_mut`) only when a snapshot is
    /// outstanding.
    tombstones: Arc<HashMap<TrajId, u64>>,
    op_seq: u64,
}

/// The outcome of one served query.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Top-k hits over the live data (frozen ∪ delta − tombstones),
    /// ascending by distance with ties broken by id.
    pub hits: Vec<Hit>,
    /// Host wall time of this call (what a caller actually waited). For a
    /// query answered as part of [`ReposeService::query_batch`]'s pooled
    /// execution this is the *batch* wall time — per-query work interleaves
    /// on the pool, so individual completion times are not meaningful.
    pub latency: Duration,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Local-search work counters (all zero on a cache hit).
    /// `search.exact_abandoned` counts verifications (delta scan + trie
    /// search) the shared threshold refuted before full kernel cost,
    /// including delta candidates skipped outright because their stored
    /// summary bound already lost.
    pub search: SearchStats,
    /// Delta-buffer candidates considered for this query.
    pub delta_candidates: usize,
    /// Single-thread duration of each partition's task (delta scan + trie
    /// search), indexed by partition. Empty on a cache hit. Enables
    /// modeling the pooled schedule on hosts with any core count (see the
    /// `serve_pool` experiment).
    pub partition_times: Vec<Duration>,
    /// The initial collector bound this query started from: finite when a
    /// cache threshold hint pre-bounded `dk` before the first
    /// verification, `INFINITY` otherwise.
    pub threshold_seed: f64,
    /// Whether the query's deadline expired before every partition was
    /// searched: the hits are a best-effort partial answer, **not** the
    /// exact top-k. Always `false` when [`ServiceConfig::query_deadline`]
    /// is `None` (the default exact path).
    pub degraded: bool,
    /// Partitions actually searched (equals the partition count for an
    /// exact answer; 0 for a cache hit, which needed no search).
    pub partitions_searched: usize,
    /// Partitions skipped because the deadline expired before their task
    /// started (0 for an exact answer).
    pub partitions_skipped: usize,
}

/// One partition's completed task.
struct PartResult {
    hits: Vec<Hit>,
    stats: SearchStats,
    delta_live: usize,
    time: Duration,
    /// The task never ran: the query's deadline had already expired when
    /// it was dispatched.
    skipped: bool,
}

impl PartResult {
    /// The marker for a deadline-skipped task.
    fn skipped() -> Self {
        PartResult {
            hits: Vec::new(),
            stats: SearchStats::default(),
            delta_live: 0,
            time: Duration::ZERO,
            skipped: true,
        }
    }
}

/// What [`ReposeService::recover`] found and rebuilt.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Trajectories restored from the base snapshot.
    pub base_trajectories: usize,
    /// Data records (upserts + deletes) replayed from the log above the
    /// snapshot.
    pub replayed_records: u64,
    /// Dangling bytes truncated from a torn final segment (0 after a
    /// clean shutdown).
    pub torn_bytes: u64,
    /// The restored global operation sequence.
    pub last_seq: u64,
    /// Whether the frozen deployment was *attached* from a persisted
    /// archive generation (mmap + checksum) instead of rebuilt from the
    /// WAL base snapshot. When `true`, only WAL records past
    /// [`RecoveryReport::archive_op_seq`] were replayed.
    pub from_archive: bool,
    /// The operation sequence of the attached archive generation
    /// (`None` when recovery fell back to the full rebuild).
    pub archive_op_seq: Option<u64>,
    /// Archive generations that failed validation and were moved into
    /// the archive directory's `.quarantine/` — loud evidence, never
    /// silently served or silently deleted.
    pub archives_quarantined: usize,
    /// Wall time of the whole recovery (replay + rebuild or attach).
    pub wall_time: Duration,
}

/// A thread-safe online serving layer over a [`Repose`] deployment.
///
/// `&self` methods are safe to call from any number of threads; see the
/// module docs for the locking discipline. Construction freezes the
/// initial dataset exactly like the offline pipeline; everything written
/// afterwards lives in delta buffers until [`ReposeService::compact`]
/// folds it into (selectively) rebuilt tries.
pub struct ReposeService {
    state: RwLock<ServeState>,
    /// Serializes compactions (the rebuild is expensive; overlapping
    /// compactions would waste work and interleave drains).
    compact_gate: Mutex<()>,
    cache: Mutex<QueryCache>,
    /// The persistent query-execution pool (`None` when
    /// [`ServiceConfig::pool_threads`] <= 1: the sequential path).
    pool: Option<WorkerPool>,
    /// Bumped after every completed mutation; tags cache entries.
    version: AtomicU64,
    /// The deployment's measure, copied out so the cache-hit fast path
    /// never touches the state lock.
    measure: Measure,
    /// The deployment's measure parameters, copied out so writes can
    /// summarize without touching the state lock.
    params: MeasureParams,
    counters: ServiceCounters,
    /// The write-ahead log (`None` = volatile service). Its own mutex:
    /// writers take the state lock *then* this one; compaction's
    /// checkpoint takes only this one — a consistent order, no cycle.
    wal: Option<Mutex<Wal>>,
    /// The durability configuration (snapshot dir + fail plan), kept for
    /// compaction checkpoints.
    durability: Option<DurabilityConfig>,
    /// Bounded query admission (limit 0 = unbounded).
    admission: AdmissionGate,
    /// Per-query clock budget (`None` = exact path, no checks).
    query_deadline: Option<Duration>,
    /// The time source deadline decisions read (see [`ServiceConfig::clock`]).
    clock: Arc<dyn Clock>,
    /// Archive-generation state (`None` = no persistent archives).
    archive: Option<ArchiveState>,
}

/// Where archive generations live and which one this service last
/// installed or attached (the scrub target).
struct ArchiveState {
    dir: PathBuf,
    /// The `arc.*` fail points ride on the durability fail plan when one
    /// is configured, so one `REPOSE_FAILPOINTS` spec drives both layers.
    failpoints: FailPlan,
    /// The newest generation this service wrote or attached, re-opened
    /// through validation so [`ReposeService::scrub`] re-verifies the
    /// exact bytes a restart would map.
    current: Mutex<Option<Archive>>,
}

impl ReposeService {
    /// Wraps a built deployment with default [`ServiceConfig`].
    pub fn new(repose: Repose) -> Self {
        ReposeService::with_config(repose, ServiceConfig::default())
    }

    /// Wraps a built deployment.
    ///
    /// # Panics
    /// On a durability-layer failure while creating the write-ahead log
    /// (use [`ReposeService::try_with_config`] for the fallible form), or
    /// when a forced backend cannot run on this host.
    pub fn with_config(repose: Repose, config: ServiceConfig) -> Self {
        ReposeService::try_with_config(repose, config).expect("service construction")
    }

    /// Wraps a built deployment; fails with a typed error if the
    /// write-ahead log cannot be created (e.g. the directory already
    /// holds a journal — recover instead of re-creating).
    ///
    /// With durability enabled this writes the initial base snapshot
    /// (`base-0.snap`) of the frozen dataset, so the durability directory
    /// is self-contained for [`ReposeService::recover`] from the first
    /// acknowledged write onward.
    pub fn try_with_config(
        repose: Repose,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        if let Some(b) = config.backend {
            repose_distance::force_backend(b);
        }
        let wal = match &config.durability {
            Some(dcfg) => {
                let wal = Wal::create(dcfg)?;
                write_snapshot(&dcfg.dir, 0, repose.all_trajectories(), &dcfg.failpoints)?;
                Some(Mutex::new(wal))
            }
            None => None,
        };
        let service = ReposeService::assemble(repose, &config, wal, 0);
        if service.archive.is_some() {
            let frozen = Arc::clone(&service.read_state().frozen);
            service.install_archive_generation(&frozen, 0);
        }
        Ok(service)
    }

    /// The common constructor body: state layout, pool, cache, gates.
    /// `op_seq` is 0 for a fresh service and the recovered sequence after
    /// [`ReposeService::recover`] (the version stamp starts just above it,
    /// so nothing ever sees a stale pre-crash cache generation).
    fn assemble(
        repose: Repose,
        config: &ServiceConfig,
        wal: Option<Mutex<Wal>>,
        op_seq: u64,
    ) -> Self {
        let partitions = repose.num_partitions();
        let measure = repose.config().measure();
        let params = repose.config().trie.params;
        ReposeService {
            measure,
            params,
            state: RwLock::new(ServeState {
                frozen: Arc::new(repose),
                deltas: (0..partitions).map(|_| DeltaLog::default()).collect(),
                compacted_epochs: vec![0; partitions],
                tombstones: Arc::new(HashMap::new()),
                op_seq,
            }),
            compact_gate: Mutex::new(()),
            cache: Mutex::new(QueryCache::new(config.cache_capacity)),
            pool: (config.pool_threads > 1).then(|| WorkerPool::new(config.pool_threads)),
            version: AtomicU64::new(op_seq),
            counters: ServiceCounters::default(),
            wal,
            durability: config.durability.clone(),
            admission: AdmissionGate::new(config.max_inflight_queries),
            query_deadline: config.query_deadline,
            clock: Arc::clone(&config.clock),
            archive: config.archive.as_ref().map(|dir| ArchiveState {
                dir: dir.clone(),
                failpoints: config
                    .durability
                    .as_ref()
                    .map_or_else(FailPlan::new, |d| d.failpoints.clone()),
                current: Mutex::new(None),
            }),
        }
    }

    /// Installs a fresh archive generation of `deployment` and re-opens it
    /// as the scrub target. Failure is *graceful by design*: the archive
    /// only accelerates restarts (the WAL stays the source of truth), so
    /// an install error is counted in
    /// [`ServiceStats::archive_write_failures`] and serving continues.
    fn install_archive_generation(&self, deployment: &Repose, op_seq: u64) {
        let Some(arc) = &self.archive else { return };
        match write_archive(&arc.dir, deployment, op_seq, &arc.failpoints) {
            Ok(path) => {
                ServiceCounters::bump(&self.counters.archive_generations);
                prune_generations(&arc.dir, ARCHIVE_GENERATIONS_KEPT);
                // Read-back verification: re-open through full validation,
                // proving end-to-end that a restart could attach these
                // exact bytes. The handle becomes the scrub target.
                match Archive::open(&path, &arc.failpoints) {
                    Ok(archive) => {
                        *arc.current.lock().unwrap_or_else(|e| e.into_inner()) = Some(archive);
                    }
                    Err(_) => {
                        ServiceCounters::bump(&self.counters.archive_write_failures);
                        let _ = quarantine(&path);
                    }
                }
            }
            Err(_) => ServiceCounters::bump(&self.counters.archive_write_failures),
        }
    }

    /// Re-verifies every checksum of the current archive generation
    /// against its mapped bytes — the online corruption scrub. Returns
    /// `None` when the service has no archive (not configured, or every
    /// install failed). Corrupt regions are counted in
    /// [`ServiceStats::scrub_corruptions`] and named in the report; a
    /// dirty generation is left in place for recovery to quarantine (the
    /// report is the operator's signal to compact, which installs a fresh
    /// generation).
    pub fn scrub(&self) -> Option<ScrubReport> {
        let arc = self.archive.as_ref()?;
        let current = arc.current.lock().unwrap_or_else(|e| e.into_inner());
        let report = current.as_ref()?.scrub();
        ServiceCounters::bump(&self.counters.scrubs);
        self.counters
            .scrub_corruptions
            .fetch_add(report.corrupt.len() as u64, Ordering::Relaxed);
        Some(report)
    }

    /// Rebuilds a service from its durability directory after a crash:
    /// loads the newest complete base snapshot, replays every logged
    /// operation above it into fresh delta segments (tolerating a torn
    /// tail — see [`repose_durability::replay()`]), restores the operation
    /// sequence, and reopens the WAL on a fresh segment.
    ///
    /// With [`ServiceConfig::archive`] configured, the O(index build)
    /// step is skipped whenever a valid archive generation can stand in
    /// for it: the newest generation whose checksums verify, whose
    /// configuration matches, and whose operation sequence the WAL can
    /// bridge is *attached* (mmap) as the frozen deployment, and only the
    /// WAL records past its sequence are replayed. Generations that fail
    /// validation are quarantined (see
    /// [`RecoveryReport::archives_quarantined`]); with none usable,
    /// recovery falls back to the full rebuild below — identical answers,
    /// just slower.
    ///
    /// `repose_config` must be the deployment configuration the original
    /// service was built with (measure, partitions, trie parameters);
    /// `config.durability` names the directory and must be `Some`.
    ///
    /// The recovered service answers queries bitwise-identically to one
    /// holding exactly the acknowledged pre-crash writes.
    pub fn recover(
        repose_config: ReposeConfig,
        config: ServiceConfig,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let t0 = Instant::now();
        let dcfg = config
            .durability
            .clone()
            .ok_or(ServiceError::DurabilityNotConfigured)?;
        let replayed = repose_durability::replay(&dcfg.dir)?;

        // Archive-first: attach the newest valid, bridgeable generation.
        let mut quarantined = 0usize;
        let mut attached: Option<(Repose, Archive)> = None;
        if let Some(adir) = &config.archive {
            loop {
                let scan = latest_valid(adir, &dcfg.failpoints);
                for (path, _err) in &scan.rejected {
                    if quarantine(path).is_ok() {
                        quarantined += 1;
                    }
                }
                let Some(archive) = scan.best else { break };
                // Usable only if the WAL can bridge from its sequence to
                // the present: records in (archive, last] must all still
                // be in the log. A generation older than the WAL base
                // snapshot is stale (checkpoints pruned its tail) — valid
                // but unusable, so it is skipped, not quarantined.
                let bridgeable = archive.op_seq() >= replayed.base_seq
                    && archive.op_seq() <= replayed.last_seq;
                if !bridgeable || archive.meta().config != repose_config {
                    break;
                }
                match archive.attach() {
                    Ok(repose) => {
                        attached = Some((repose, archive));
                        break;
                    }
                    Err(_) => {
                        // Checksums passed but reconstruction didn't —
                        // quarantine and retry with the next-newest. If
                        // even the quarantine move fails we must stop
                        // rescanning (the same file would be found again)
                        // and fall back to the full rebuild.
                        if quarantine(archive.path()).is_ok() {
                            quarantined += 1;
                        } else {
                            break;
                        }
                    }
                }
            }
        }

        let (repose, current_archive) = match attached {
            Some((repose, archive)) => (repose, Some(archive)),
            None => {
                let mut base = TrajStore::new();
                for (id, points) in &replayed.base {
                    base.push(*id, points);
                }
                (Repose::build_from_store(&base, repose_config), None)
            }
        };
        let wal = Wal::resume(
            &dcfg,
            replayed.segments,
            replayed.next_segment_index,
            replayed.last_seq,
        )?;

        let service =
            ReposeService::assemble(repose, &config, Some(Mutex::new(wal)), replayed.last_seq);
        // Everything at or below the cutover is already inside the frozen
        // deployment: the attached archive's sequence, or (full rebuild)
        // the base snapshot's — where the filter is vacuous, because
        // `replay` only returns records above the base.
        let cutover = current_archive
            .as_ref()
            .map_or(replayed.base_seq, Archive::op_seq);
        let archive_op_seq = current_archive.as_ref().map(Archive::op_seq);
        if let (Some(state), Some(archive)) = (&service.archive, current_archive) {
            *state.current.lock().unwrap_or_else(|e| e.into_inner()) = Some(archive);
        }
        let mut data_records = 0u64;
        {
            let mut s = service
                .state
                .write()
                .map_err(|_| ServiceError::StatePoisoned)?;
            let n = s.deltas.len();
            for record in &replayed.records {
                if record.seq() <= cutover {
                    continue;
                }
                match record {
                    WalRecord::Upsert { seq, id, points } => {
                        let summary = service.params.summary_of(points);
                        let partition = (*id as usize) % n;
                        Arc::make_mut(&mut s.tombstones).insert(*id, *seq);
                        s.deltas[partition].push(*seq, *id, points, summary);
                        data_records += 1;
                    }
                    WalRecord::Delete { seq, id } => {
                        Arc::make_mut(&mut s.tombstones).insert(*id, *seq);
                        data_records += 1;
                    }
                    WalRecord::Seal { .. } => {
                        // Mirror the logged segment boundary in the
                        // recovered delta logs.
                        for log in &mut s.deltas {
                            log.seal();
                        }
                    }
                    // `replay` consumes checkpoints while choosing what
                    // to skip; none reach here.
                    WalRecord::Checkpoint { .. } => {}
                }
            }
        }
        service
            .counters
            .recovered_records
            .store(data_records, Ordering::Relaxed);
        // Start the cache generation strictly above every pre-crash
        // version so no stale entry or hint could ever match.
        service
            .version
            .store(replayed.last_seq + 1, Ordering::Release);
        let report = RecoveryReport {
            base_trajectories: replayed.base.len(),
            replayed_records: data_records,
            torn_bytes: replayed.torn_bytes,
            last_seq: replayed.last_seq,
            from_archive: archive_op_seq.is_some(),
            archive_op_seq,
            archives_quarantined: quarantined,
            wall_time: t0.elapsed(),
        };
        Ok((service, report))
    }

    /// The configuration of the underlying deployment.
    pub fn config(&self) -> ReposeConfig {
        *self.read_state().frozen.config()
    }

    /// Worker threads of the query execution pool (1 = sequential path).
    pub fn pool_threads(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::threads)
    }

    /// The operation sequence of the last applied write (0 before any).
    /// A replica acknowledges replication with this value — it names the
    /// exact prefix of the leader's log this service has durably adopted.
    pub fn op_seq(&self) -> u64 {
        self.read_state().op_seq
    }

    /// Number of live trajectories (frozen + delta − tombstones).
    ///
    /// O(frozen + delta); intended for tests and monitoring, not hot paths.
    pub fn len(&self) -> usize {
        let s = self.read_state();
        let frozen_live = s
            .frozen
            .all_trajectories()
            .filter(|(id, _)| !s.tombstones.contains_key(id))
            .count();
        let delta_live: usize = s.deltas.iter().map(|d| d.live_len(&s.tombstones)).sum();
        frozen_live + delta_live
    }

    /// Whether no live trajectories exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `traj`, replacing any live trajectory with the same id
    /// (upsert). Visible to every query that starts after this returns.
    /// The points are copied into the partition's delta arena segment
    /// ([`Trajectory`] is only the I/O edge).
    ///
    /// With durability enabled the write is logged **before** it is
    /// applied: `Ok` means durable to the configured
    /// [`repose_durability::FsyncPolicy`]'s guarantee; on `Err` the
    /// in-memory state is unchanged and the write was not acknowledged.
    pub fn insert(&self, traj: Trajectory) -> Result<(), ServiceError> {
        self.insert_acked(traj).map(|_seq| ())
    }

    /// [`ReposeService::insert`], additionally returning the operation
    /// sequence the write was logged under — the identity a replicating
    /// leader needs to forward the exact logged record to its follower.
    pub fn insert_acked(&self, traj: Trajectory) -> Result<u64, ServiceError> {
        let t0 = Instant::now();
        // Summarize outside the lock: the same O(1)-prefilter summary the
        // frozen tries store per leaf member, paid once per write instead
        // of per query.
        let summary = self.params.summary_of(&traj.points);
        let seq = {
            let mut s = self.state.write().map_err(|_| ServiceError::StatePoisoned)?;
            let seq = s.op_seq + 1;
            self.log_write(|| WalRecord::Upsert {
                seq,
                id: traj.id,
                points: traj.points.clone(),
            })?;
            s.op_seq = seq;
            let partition = (traj.id as usize) % s.deltas.len();
            Arc::make_mut(&mut s.tombstones).insert(traj.id, seq);
            s.deltas[partition].push(seq, traj.id, &traj.points, summary);
            seq
        };
        self.version.fetch_add(1, Ordering::Release);
        ServiceCounters::bump(&self.counters.inserts);
        self.counters.record_write(t0.elapsed());
        Ok(seq)
    }

    /// Deletes the trajectory with id `id` (a no-op if absent). Same
    /// durability contract as [`ReposeService::insert`].
    pub fn remove(&self, id: TrajId) -> Result<(), ServiceError> {
        self.remove_acked(id).map(|_seq| ())
    }

    /// [`ReposeService::remove`], additionally returning the operation
    /// sequence the delete was logged under (see
    /// [`ReposeService::insert_acked`]).
    pub fn remove_acked(&self, id: TrajId) -> Result<u64, ServiceError> {
        let t0 = Instant::now();
        let seq = {
            let mut s = self.state.write().map_err(|_| ServiceError::StatePoisoned)?;
            let seq = s.op_seq + 1;
            self.log_write(|| WalRecord::Delete { seq, id })?;
            s.op_seq = seq;
            Arc::make_mut(&mut s.tombstones).insert(id, seq);
            seq
        };
        self.version.fetch_add(1, Ordering::Release);
        ServiceCounters::bump(&self.counters.deletes);
        self.counters.record_write(t0.elapsed());
        Ok(seq)
    }

    /// Applies one record replicated from a leader, adopting the leader's
    /// operation sequence so this replica's WAL and logical state stay
    /// byte-identical to the leader's.
    ///
    /// * a record at or below the current sequence is a duplicate delivery
    ///   (network retry or duplication): it is **not** re-logged or
    ///   re-applied, and `Ok(false)` says so — acknowledging it again is
    ///   safe, which is what makes replication idempotent;
    /// * a record more than one ahead is a gap (a lost predecessor):
    ///   refused with [`ServiceError::ReplicationGap`] so the leader
    ///   retries from the hole instead of the replica silently diverging;
    /// * the next record in sequence is logged **before** it is applied,
    ///   exactly like a local write ([`ServiceError::Durability`] means
    ///   not acknowledged).
    ///
    /// Only data records replicate; [`WalRecord::Seal`] /
    /// [`WalRecord::Checkpoint`] are segment-lifecycle records each node
    /// writes for itself and are rejected as a gap-free no-op (`Ok(false)`).
    pub fn apply_replica(&self, record: &WalRecord) -> Result<bool, ServiceError> {
        type Apply<'a> = Box<dyn FnOnce(&mut ServeState) + 'a>;
        let (seq, apply): (u64, Apply<'_>) = match record {
            WalRecord::Upsert { seq, id, points } => {
                let summary = self.params.summary_of(points);
                (*seq, Box::new(move |s: &mut ServeState| {
                    let partition = (*id as usize) % s.deltas.len();
                    Arc::make_mut(&mut s.tombstones).insert(*id, *seq);
                    s.deltas[partition].push(*seq, *id, points, summary);
                }))
            }
            WalRecord::Delete { seq, id } => (*seq, Box::new(move |s: &mut ServeState| {
                Arc::make_mut(&mut s.tombstones).insert(*id, *seq);
            })),
            WalRecord::Seal { .. } | WalRecord::Checkpoint { .. } => return Ok(false),
        };
        {
            let mut s = self.state.write().map_err(|_| ServiceError::StatePoisoned)?;
            if seq <= s.op_seq {
                return Ok(false);
            }
            if seq != s.op_seq + 1 {
                return Err(ServiceError::ReplicationGap { expected: s.op_seq + 1, got: seq });
            }
            self.log_write(|| record.clone())?;
            s.op_seq = seq;
            apply(&mut s);
        }
        self.version.fetch_add(1, Ordering::Release);
        match record {
            WalRecord::Upsert { .. } => ServiceCounters::bump(&self.counters.inserts),
            WalRecord::Delete { .. } => ServiceCounters::bump(&self.counters.deletes),
            _ => {}
        }
        Ok(true)
    }

    /// Appends one record to the WAL (a no-op for a volatile service).
    /// Called with the state write lock held — state → wal is the global
    /// lock order. The record is built lazily so the volatile path pays
    /// nothing.
    fn log_write(&self, record: impl FnOnce() -> WalRecord) -> Result<(), ServiceError> {
        if let Some(wal) = &self.wal {
            wal.lock()
                .map_err(|_| ServiceError::StatePoisoned)?
                .append(&record())?;
        }
        Ok(())
    }

    /// Exact top-k over the live data.
    ///
    /// Every partition's delta scan and trie search shares one
    /// [`SharedTopK`] collector, and the per-partition tasks run on the
    /// service's worker pool in bound order (see the module docs), so the
    /// query's wall-clock latency scales with cores while the answer stays
    /// exactly what the sequential path returns (identical distance
    /// multiset; ties may resolve per the paper's Definition 3).
    pub fn query(&self, query: &[Point], k: usize) -> Result<ServiceOutcome, ServiceError> {
        let t0 = Instant::now();
        ServiceCounters::bump(&self.counters.queries);

        let key = CacheKey::new(self.measure, query, k);
        // Load the version *before* snapshotting: any write that completes
        // after this load bumps past it, so a result cached under this
        // version can never be served once newer data exists. (A write
        // landing between the load and the snapshot merely makes the
        // cached entry conservatively stale.)
        let version = self.version.load(Ordering::Acquire);
        if let Some(hits) = self.lock_cache().get(&key, version) {
            ServiceCounters::bump(&self.counters.cache_hits);
            let latency = t0.elapsed();
            self.counters.record_read(latency);
            return Ok(ServiceOutcome {
                hits,
                latency,
                cache_hit: true,
                search: SearchStats::default(),
                delta_candidates: 0,
                partition_times: Vec::new(),
                threshold_seed: f64::INFINITY,
                degraded: false,
                partitions_searched: 0,
                partitions_skipped: 0,
            });
        }
        // Admission is checked only for queries that must search: cache
        // hits cost nothing and are always served, even under overload.
        let _permit = match self.admission.try_acquire() {
            Ok(p) => p,
            Err(in_flight) => {
                ServiceCounters::bump(&self.counters.queries_shed);
                return Err(ServiceError::Overloaded {
                    in_flight,
                    limit: self.admission.limit(),
                });
            }
        };
        ServiceCounters::bump(&self.counters.cache_misses);
        let deadline = self
            .query_deadline
            .map(|budget| Deadline::after(&*self.clock, budget));

        let (frozen, deltas, tombstones, state_seq) = self.snapshot();
        // Hints are matched on the snapshot's op-seq, *after* the
        // snapshot: a hint seeds this query iff it was computed on this
        // exact logical dataset.
        let threshold_seed = self.hint_bound(query, k, state_seq);

        // One shared collector for the whole query: every partition's
        // delta scan and trie search publishes into it and prunes with its
        // live global k-th-distance bound, so a close delta candidate in
        // partition 0 tightens partition 5's trie descent and vice versa.
        // A finite threshold hint pre-bounds dk before the first
        // verification anywhere (inclusively, via `just_above`, so ties at
        // the seed bound are kept).
        let collector = if threshold_seed.is_finite() {
            SharedTopK::with_initial_bound(k, just_above(threshold_seed))
        } else {
            SharedTopK::new(k)
        };
        let qsum = self.params.summary_of(query);
        let parts = self.run_partitions(
            &frozen, &deltas, &tombstones, query, k, &qsum, &collector, deadline,
        );

        let mut hits: Vec<Hit> = Vec::new();
        let mut search = SearchStats::default();
        let mut delta_candidates = 0;
        let mut partition_times = Vec::with_capacity(parts.len());
        let mut skipped = 0;
        for p in &parts {
            search.merge(&p.stats);
            delta_candidates += p.delta_live;
            partition_times.push(p.time);
            hits.extend_from_slice(&p.hits);
            skipped += usize::from(p.skipped);
        }
        hits.sort_by(Hit::cmp_by_dist_then_id);
        hits.truncate(k);
        let degraded = skipped > 0;

        if degraded {
            // A partial answer must never poison the cache or the
            // threshold-hint ring: both assume exact k-th distances.
            ServiceCounters::bump(&self.counters.queries_degraded);
        } else {
            let mut cache = self.lock_cache();
            cache.put(key, version, hits.clone());
            if hits.len() == k {
                if let Some(kth) = hits.last() {
                    cache.record_hint(self.measure, query, k, state_seq, kth.dist);
                }
            }
        }
        let latency = t0.elapsed();
        self.counters.record_read(latency);
        Ok(ServiceOutcome {
            hits,
            latency,
            cache_hit: false,
            search,
            delta_candidates,
            partition_times,
            threshold_seed,
            degraded,
            partitions_searched: parts.len() - skipped,
            partitions_skipped: skipped,
        })
    }

    /// Exact top-k over the live data, executed sequentially in bound
    /// order with a hook after every partition — the scatter-side entry a
    /// shard worker drives when this service owns one shard of a larger
    /// deployment.
    ///
    /// `seed_dk` pre-bounds the collector (inclusively, via `just_above`,
    /// so ties at the seed survive) when finite — typically the
    /// coordinator's current global k-th-distance bound at scatter time.
    /// After each partition's task completes, `on_partition` receives the
    /// query's collector and that partition's accepted hits: the worker
    /// streams the hits to its coordinator and folds any remotely
    /// received `Tighten` bounds into the collector
    /// ([`SharedTopK::tighten`]) so later partitions prune mid-flight.
    ///
    /// Cache, admission, deadline, and the worker pool are intentionally
    /// bypassed: the coordinator owns those policies for a distributed
    /// query, and shard-level parallelism comes from the shards
    /// themselves. The union of hits passed to `on_partition` equals the
    /// hit set a plain [`ReposeService::query`] merges, so a coordinator
    /// collecting every streamed hit reconstructs the exact answer.
    pub fn query_scatter(
        &self,
        query: &[Point],
        k: usize,
        seed_dk: f64,
        mut on_partition: impl FnMut(&SharedTopK, &[Hit]),
    ) -> Result<ServiceOutcome, ServiceError> {
        let t0 = Instant::now();
        ServiceCounters::bump(&self.counters.queries);
        ServiceCounters::bump(&self.counters.cache_misses);
        let (frozen, deltas, tombstones, _state_seq) = self.snapshot();
        let collector = if seed_dk.is_finite() {
            SharedTopK::with_initial_bound(k, just_above(seed_dk))
        } else {
            SharedTopK::new(k)
        };
        let qsum = self.params.summary_of(query);
        let (order, cands) =
            partition_schedule(&frozen, &deltas, &tombstones, query, &qsum, self.params);

        let mut hits: Vec<Hit> = Vec::new();
        let mut search = SearchStats::default();
        let mut delta_candidates = 0;
        let mut partition_times = vec![Duration::ZERO; order.len()];
        for &pi in &order {
            let p = run_partition(
                &frozen, &tombstones, query, k, &collector, self.params, &cands[pi], pi,
            );
            on_partition(&collector, &p.hits);
            search.merge(&p.stats);
            delta_candidates += p.delta_live;
            partition_times[pi] = p.time;
            hits.extend_from_slice(&p.hits);
        }
        hits.sort_by(Hit::cmp_by_dist_then_id);
        hits.truncate(k);
        let latency = t0.elapsed();
        self.counters.record_read(latency);
        Ok(ServiceOutcome {
            hits,
            latency,
            cache_hit: false,
            search,
            delta_candidates,
            partition_times,
            threshold_seed: seed_dk,
            degraded: false,
            partitions_searched: order.len(),
            partitions_skipped: 0,
        })
    }

    /// Answers a batch of queries (cache consulted per query).
    ///
    /// With the pool enabled, every cache-missing query of the batch is
    /// admitted onto the pool at once — one task per (query, partition),
    /// interleaved so each query's most promising partition dispatches
    /// first — with one [`SharedTopK`] collector *per query*. Concurrent
    /// read throughput therefore scales with pool threads instead of the
    /// batch queueing behind one query at a time. Results are exactly the
    /// per-query [`ReposeService::query`] answers.
    ///
    /// A batch holds **one** admission slot for all its cache-missing
    /// queries (it is one caller); a full gate rejects the whole call
    /// with [`ServiceError::Overloaded`]. With a configured deadline the
    /// budget covers the batch, and each query reports its own degraded
    /// flag.
    pub fn query_batch(
        &self,
        queries: &[Vec<Point>],
        k: usize,
    ) -> Result<Vec<ServiceOutcome>, ServiceError> {
        let Some(pool) = &self.pool else {
            return queries.iter().map(|q| self.query(q, k)).collect();
        };
        if queries.len() <= 1 {
            return queries.iter().map(|q| self.query(q, k)).collect();
        }

        let t0 = Instant::now();
        let version = self.version.load(Ordering::Acquire);
        let mut outcomes: Vec<Option<ServiceOutcome>> = Vec::new();
        outcomes.resize_with(queries.len(), || None);
        // Unique cache-missing queries; in-batch duplicates collapse onto
        // one execution (`dup_of[qi]` points at the query that computes
        // their shared answer), like the sequential path's second-query
        // cache hit.
        let mut misses: Vec<usize> = Vec::new();
        let mut dup_of: Vec<Option<usize>> = vec![None; queries.len()];
        {
            let mut cache = self.lock_cache();
            let mut seen: HashMap<CacheKey, usize> = HashMap::new();
            for (qi, q) in queries.iter().enumerate() {
                ServiceCounters::bump(&self.counters.queries);
                let key = CacheKey::new(self.measure, q, k);
                if let Some(hits) = cache.get(&key, version) {
                    ServiceCounters::bump(&self.counters.cache_hits);
                    // Cache hits are done now; their latency is their own,
                    // not the batch's.
                    outcomes[qi] = Some(ServiceOutcome {
                        hits,
                        latency: t0.elapsed(),
                        cache_hit: true,
                        search: SearchStats::default(),
                        delta_candidates: 0,
                        partition_times: Vec::new(),
                        threshold_seed: f64::INFINITY,
                        degraded: false,
                        partitions_searched: 0,
                        partitions_skipped: 0,
                    });
                } else if let Some(&twin) = seen.get(&key) {
                    ServiceCounters::bump(&self.counters.cache_hits);
                    dup_of[qi] = Some(twin);
                } else {
                    ServiceCounters::bump(&self.counters.cache_misses);
                    seen.insert(key, qi);
                    misses.push(qi);
                }
            }
        }

        if !misses.is_empty() {
            let _permit = match self.admission.try_acquire() {
                Ok(p) => p,
                Err(in_flight) => {
                    ServiceCounters::bump(&self.counters.queries_shed);
                    return Err(ServiceError::Overloaded {
                        in_flight,
                        limit: self.admission.limit(),
                    });
                }
            };
            let deadline = self
                .query_deadline
                .map(|budget| Deadline::after(&*self.clock, budget));
            let (frozen, deltas, tombstones, state_seq) = self.snapshot();
            let n = frozen.num_partitions();
            // Hint seeding happens *after* the snapshot, matched on its
            // op-seq: a hint applies iff computed on this exact dataset.
            let seeds: Vec<f64> = misses
                .iter()
                .map(|&qi| self.hint_bound(&queries[qi], k, state_seq))
                .collect();
            let collectors: Vec<SharedTopK> = seeds
                .iter()
                .map(|&b| {
                    if b.is_finite() {
                        SharedTopK::with_initial_bound(k, just_above(b))
                    } else {
                        SharedTopK::new(k)
                    }
                })
                .collect();
            let qsums: Vec<TrajSummary> = misses
                .iter()
                .map(|&qi| self.params.summary_of(&queries[qi]))
                .collect();
            #[allow(clippy::type_complexity)]
            let schedules: Vec<(Vec<usize>, Vec<Vec<(f64, u64, &[Point])>>)> = misses
                .iter()
                .zip(&qsums)
                .map(|(&qi, qsum)| {
                    partition_schedule(
                        &frozen,
                        &deltas,
                        &tombstones,
                        &queries[qi],
                        qsum,
                        self.params,
                    )
                })
                .collect();
            let results: Vec<Vec<Mutex<Option<PartResult>>>> = (0..misses.len())
                .map(|_| (0..n).map(|_| Mutex::new(None)).collect())
                .collect();

            pool.scope(|s| {
                // Rank-major interleaving: every query's best-bound
                // partition dispatches before any query's second-best, so
                // each collector tightens as early as possible. (`rank`
                // deliberately indexes every query's schedule at once —
                // not a needless range loop over one slice.)
                #[allow(clippy::needless_range_loop)]
                for rank in 0..n {
                    for (mi, &qi) in misses.iter().enumerate() {
                        let pi = schedules[mi].0[rank];
                        let slot = &results[mi][pi];
                        let collector = &collectors[mi];
                        let cands = &schedules[mi].1[pi];
                        let query = queries[qi].as_slice();
                        let frozen = &frozen;
                        let tombstones = &tombstones;
                        let params = self.params;
                        let clock = &self.clock;
                        s.submit(move || {
                            // One clock sample decides this dispatch.
                            let r = if deadline.is_some_and(|d| d.expired_at(clock.now())) {
                                PartResult::skipped()
                            } else {
                                run_partition(
                                    frozen, tombstones, query, k, collector, params, cands, pi,
                                )
                            };
                            *slot.lock().expect("partition slot") = Some(r);
                        });
                    }
                }
            });

            let mut cache = self.lock_cache();
            for (mi, &qi) in misses.iter().enumerate() {
                let mut hits: Vec<Hit> = Vec::new();
                let mut search = SearchStats::default();
                let mut delta_candidates = 0;
                let mut partition_times = Vec::with_capacity(n);
                let mut skipped = 0;
                for slot in &results[mi] {
                    let p = slot
                        .lock()
                        .expect("partition slot")
                        .take()
                        .expect("every partition task completed");
                    search.merge(&p.stats);
                    delta_candidates += p.delta_live;
                    partition_times.push(p.time);
                    hits.extend_from_slice(&p.hits);
                    skipped += usize::from(p.skipped);
                }
                hits.sort_by(Hit::cmp_by_dist_then_id);
                hits.truncate(k);
                let degraded = skipped > 0;
                if degraded {
                    // Partial answers never reach the cache or the hint
                    // ring (both assume exact k-th distances).
                    ServiceCounters::bump(&self.counters.queries_degraded);
                } else {
                    let key = CacheKey::new(self.measure, &queries[qi], k);
                    cache.put(key, version, hits.clone());
                    if hits.len() == k {
                        if let Some(kth) = hits.last() {
                            cache.record_hint(self.measure, &queries[qi], k, state_seq, kth.dist);
                        }
                    }
                }
                outcomes[qi] = Some(ServiceOutcome {
                    hits,
                    latency: Duration::ZERO, // stamped below
                    cache_hit: false,
                    search,
                    delta_candidates,
                    partition_times,
                    threshold_seed: seeds[mi],
                    degraded,
                    partitions_searched: n - skipped,
                    partitions_skipped: skipped,
                });
            }
        }

        // In-batch duplicates share their twin's hits but report as cache
        // hits (they did no search work of their own). A degraded twin's
        // partial answer is shared too — flagged identically.
        let latency = t0.elapsed();
        for qi in 0..queries.len() {
            if let Some(twin) = dup_of[qi] {
                let twin = outcomes[twin].as_ref().expect("twin executed");
                let hits = twin.hits.clone();
                let degraded = twin.degraded;
                outcomes[qi] = Some(ServiceOutcome {
                    hits,
                    latency,
                    cache_hit: true,
                    search: SearchStats::default(),
                    delta_candidates: 0,
                    partition_times: Vec::new(),
                    threshold_seed: f64::INFINITY,
                    degraded,
                    partitions_searched: 0,
                    partitions_skipped: 0,
                });
            }
        }
        Ok(outcomes
            .into_iter()
            .map(|o| {
                let mut o = o.expect("every query answered");
                if !o.cache_hit {
                    o.latency = latency;
                }
                self.counters.record_read(o.latency);
                o
            })
            .collect())
    }

    /// Folds every buffered write into rebuilt frozen tries —
    /// **incrementally**: only partitions whose delta log changed since
    /// the last compact (per-partition epoch counters) or whose frozen
    /// data is hit by a tombstone are rebuilt; every other partition's
    /// arena and trie are shared with the previous deployment untouched
    /// (`Arc` clones via [`Repose::rebuild_partitions`]).
    ///
    /// The rebuild runs without holding the state lock — readers and
    /// writers proceed against the old state — and the new deployment is
    /// installed with a brief write-locked swap that drains exactly the
    /// compacted delta prefix. Writes that land mid-rebuild stay buffered
    /// and survive into the next compaction. Returns the number of
    /// trajectories in the rebuilt deployment.
    ///
    /// Incremental compaction keeps each rebuilt partition's existing data
    /// placement (frozen survivors + its own delta arrivals) and reuses
    /// the deployment's region grid; if a live delta point falls *outside*
    /// that region — where reference-point discretization would clamp and
    /// lose bound soundness — the compaction transparently falls back to
    /// [`ReposeService::compact_full`]'s global re-partition.
    ///
    /// With durability enabled a completed compaction also **checkpoints**
    /// the WAL: the rebuilt deployment is written as a fresh base snapshot,
    /// the log rotates to a new segment (aligned with the delta-segment
    /// seal), and every fully covered segment is pruned — so recovery time
    /// tracks the write volume since the last compaction, not service
    /// lifetime.
    pub fn compact(&self) -> Result<usize, ServiceError> {
        self.compact_inner(false)
    }

    /// [`ReposeService::compact`] forced to rebuild the *whole*
    /// deployment: the live set is re-partitioned globally (fresh region,
    /// fresh placement), like the offline build. Use it to restore
    /// partition balance after long runs of skewed writes; plain
    /// `compact` is the cheap steady-state operation.
    pub fn compact_full(&self) -> Result<usize, ServiceError> {
        self.compact_inner(true)
    }

    fn compact_inner(&self, force_full: bool) -> Result<usize, ServiceError> {
        let _gate = self
            .compact_gate
            .lock()
            .map_err(|_| ServiceError::StatePoisoned)?;

        // Phase 1: consistent snapshot.
        let (frozen, raw_deltas, prefix_lens, epochs, compacted_epochs, tomb_snapshot, seq_snapshot) = {
            let s = self.state.read().map_err(|_| ServiceError::StatePoisoned)?;
            let raw: Vec<DeltaSnapshot> = s.deltas.iter().map(DeltaLog::snapshot).collect();
            let lens: Vec<usize> = raw.iter().map(snapshot_len).collect();
            let epochs: Vec<u64> = s.deltas.iter().map(DeltaLog::epoch).collect();
            (
                Arc::clone(&s.frozen),
                raw,
                lens,
                epochs,
                s.compacted_epochs.clone(),
                Arc::clone(&s.tombstones),
                s.op_seq,
            )
        };
        let n = frozen.num_partitions();

        // Selective rebuild reuses the frozen region's grid; live points
        // outside it would discretize unsoundly — fall back to the global
        // rebuild, which recomputes the region. (Checked lazily: a forced
        // full rebuild skips the scan over every live delta point.)
        let in_region = || {
            let region = frozen.region();
            raw_deltas.iter().flatten().all(|seg| {
                (0..seg.store.len()).all(|slot| {
                    !seg.is_live(slot, &tomb_snapshot)
                        || seg.store.points(slot).iter().all(|p| region.contains(*p))
                })
            })
        };

        // Phase 2: rebuild offline from the live snapshot.
        let (new_frozen, rebuilt_parts) = if force_full || !in_region() {
            // Global re-partition: the live set is assembled as one flat
            // arena (frozen survivors copied partition-arena-to-arena, one
            // contiguous range copy per trajectory; then live delta
            // entries, segment-arena-to-arena) and dealt out afresh.
            let mut live = TrajStore::new();
            for pi in 0..n {
                let view = frozen.partition_view(pi);
                for slot in 0..view.store.len() {
                    if !tomb_snapshot.contains_key(&view.store.id(slot)) {
                        live.push_from(view.store, slot);
                    }
                }
            }
            for segs in &raw_deltas {
                for seg in segs {
                    for slot in 0..seg.store.len() {
                        if seg.is_live(slot, &tomb_snapshot) {
                            live.push_from(&seg.store, slot);
                        }
                    }
                }
            }
            (
                Arc::new(Repose::build_from_store(&live, *frozen.config())),
                n,
            )
        } else {
            // Incremental: each dirty partition's new arena is its frozen
            // survivors plus its own live delta arrivals, assembled purely
            // with arena-to-arena range copies; untouched partitions swap
            // in their existing trie + arena via `Arc`. A partition is
            // dirty when its delta epoch moved past the last compacted
            // epoch (buffered writes), or when a tombstone hides any of
            // its frozen rows.
            let dirty = (0..n).map(|pi| {
                epochs[pi] > compacted_epochs[pi] || {
                    let view = frozen.partition_view(pi);
                    (0..view.store.len())
                        .any(|slot| tomb_snapshot.contains_key(&view.store.id(slot)))
                }
            });
            let mut replacements: Vec<(usize, TrajStore)> = Vec::new();
            for (pi, is_dirty) in dirty.enumerate() {
                if !is_dirty {
                    continue;
                }
                let view = frozen.partition_view(pi);
                let mut part = TrajStore::new();
                for slot in 0..view.store.len() {
                    if !tomb_snapshot.contains_key(&view.store.id(slot)) {
                        part.push_from(view.store, slot);
                    }
                }
                for seg in &raw_deltas[pi] {
                    for slot in 0..seg.store.len() {
                        if seg.is_live(slot, &tomb_snapshot) {
                            part.push_from(&seg.store, slot);
                        }
                    }
                }
                replacements.push((pi, part));
            }
            let count = replacements.len();
            let rebuilt = if replacements.is_empty() {
                Arc::clone(&frozen)
            } else {
                Arc::new(frozen.rebuild_partitions(replacements))
            };
            (rebuilt, count)
        };
        let rebuilt_len: usize = new_frozen.partition_sizes().iter().sum();

        // Phase 3: atomic install.
        {
            let mut s = self.state.write().map_err(|_| ServiceError::StatePoisoned)?;
            for (log, &len) in s.deltas.iter_mut().zip(&prefix_lens) {
                log.drain_prefix(len);
            }
            s.compacted_epochs.copy_from_slice(&epochs);
            // Tombstones at or before the snapshot are fully reflected in
            // the rebuilt deployment; later ones still apply.
            Arc::make_mut(&mut s.tombstones).retain(|_, seq| *seq > seq_snapshot);
            s.frozen = Arc::clone(&new_frozen);
        }
        self.version.fetch_add(1, Ordering::Release);
        ServiceCounters::bump(&self.counters.compactions);
        self.counters
            .partitions_rebuilt
            .fetch_add(rebuilt_parts as u64, Ordering::Relaxed);
        self.counters
            .last_compact_rebuilt
            .store(rebuilt_parts as u64, Ordering::Relaxed);

        // Phase 4 (durable services): checkpoint the WAL against the
        // installed deployment. The snapshot is written with *no* locks
        // held (`new_frozen` is our own `Arc`; it reflects exactly the
        // operations with seq <= seq_snapshot), then the log rotates and
        // prunes under its own lock. Writers doing state -> wal cannot
        // deadlock with this wal-only section.
        if let (Some(wal), Some(dcfg)) = (&self.wal, &self.durability) {
            let bytes = write_snapshot(
                &dcfg.dir,
                seq_snapshot,
                new_frozen.all_trajectories(),
                &dcfg.failpoints,
            )?;
            self.counters
                .snapshot_bytes
                .fetch_add(bytes, Ordering::Relaxed);
            let mut wal = wal.lock().map_err(|_| ServiceError::StatePoisoned)?;
            wal.rotate()?;
            wal.checkpoint(seq_snapshot)?;
        }

        // Phase 5 (archived services): install a fresh archive generation
        // of the deployment just swapped in, again with no locks held.
        // `new_frozen` reflects exactly the operations with
        // seq <= seq_snapshot, matching the WAL checkpoint above, so a
        // restart attaches this generation and replays only the tail.
        self.install_archive_generation(&new_frozen, seq_snapshot);
        Ok(rebuilt_len)
    }

    /// A point-in-time snapshot of the service's counters.
    pub fn stats(&self) -> ServiceStats {
        let s = self.read_state();
        let delta_len = s.deltas.iter().map(DeltaLog::len).sum();
        let tombstones = s.tombstones.len();
        let partitions = s.frozen.num_partitions();
        drop(s);
        let cached = self.lock_cache().len();
        let wal = self.wal.as_ref().map_or_else(WalCounters::default, |w| {
            w.lock().unwrap_or_else(|e| e.into_inner()).counters()
        });
        self.counters
            .snapshot(delta_len, tombstones, cached, partitions, wal)
    }

    /// Infallible observers (stats, `len`, `Debug`, queries) read through
    /// lock poisoning: a panicked writer can at worst leave one
    /// half-applied write, which these read-only paths tolerate — only
    /// *mutation* refuses a poisoned state (typed
    /// [`ServiceError::StatePoisoned`]).
    fn read_state(&self) -> std::sync::RwLockReadGuard<'_, ServeState> {
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The cache's internal structure is valid at every step, so reads
    /// and writes both recover from poisoning.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, QueryCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Clones everything a query needs, under a brief read lock: the
    /// frozen deployment, each partition's delta segments (`Arc` clones —
    /// any later write starts a new segment rather than touching these),
    /// the tombstone map, and the op-seq identifying this exact logical
    /// dataset (the threshold-hint validity key).
    #[allow(clippy::type_complexity)]
    fn snapshot(
        &self,
    ) -> (Arc<Repose>, Vec<DeltaSnapshot>, Arc<HashMap<TrajId, u64>>, u64) {
        let s = self.read_state();
        let deltas = s.deltas.iter().map(DeltaLog::snapshot).collect();
        (
            Arc::clone(&s.frozen),
            deltas,
            Arc::clone(&s.tombstones),
            s.op_seq,
        )
    }

    /// The tightest sound upper bound on this query's k-th distance the
    /// threshold-hint ring can offer (`INFINITY` when none): for each
    /// metric-measure hint `q'` with the same `k` computed on the *same
    /// logical dataset* (op-seq match — see [`crate::cache`]),
    /// `dk(q) <= dk(q') + d(q, q')` by the triangle inequality. Kernel
    /// calls happen outside the cache lock.
    fn hint_bound(&self, query: &[Point], k: usize, state_seq: u64) -> f64 {
        let candidates = self
            .lock_cache()
            .hint_candidates(self.measure, k, state_seq);
        let mut bound = f64::INFINITY;
        for hint in candidates {
            let d = self.params.distance(self.measure, query, &hint.query);
            bound = bound.min(hint.kth + d);
        }
        bound
    }

    /// Executes every partition's task for one query against `collector`,
    /// in bound order — on the pool when enabled (most promising partition
    /// inline on the caller, the rest FIFO to the workers), inline
    /// otherwise. Returns per-partition results indexed by partition.
    ///
    /// With a `deadline`, each task checks expiry at the moment it starts
    /// executing: expired tasks are skipped (marked in their
    /// [`PartResult`]) instead of searched, so the query returns promptly
    /// with whatever the on-time partitions found. `None` adds no checks —
    /// the exact path is untouched.
    #[allow(clippy::too_many_arguments)]
    fn run_partitions(
        &self,
        frozen: &Arc<Repose>,
        deltas: &[DeltaSnapshot],
        tombstones: &Arc<HashMap<TrajId, u64>>,
        query: &[Point],
        k: usize,
        qsum: &TrajSummary,
        collector: &SharedTopK,
        deadline: Option<Deadline>,
    ) -> Vec<PartResult> {
        let n = frozen.num_partitions();
        let (order, cands) =
            partition_schedule(frozen, deltas, tombstones, query, qsum, self.params);
        let params = self.params;
        let clock = &self.clock;
        let run = |pi: usize| {
            // One clock sample decides this dispatch.
            if deadline.is_some_and(|d| d.expired_at(clock.now())) {
                return PartResult::skipped();
            }
            run_partition(frozen, tombstones, query, k, collector, params, &cands[pi], pi)
        };
        let mut slots: Vec<Option<PartResult>> = Vec::new();
        slots.resize_with(n, || None);
        match &self.pool {
            Some(pool) if n > 1 => {
                let results: Vec<Mutex<Option<PartResult>>> =
                    (0..n).map(|_| Mutex::new(None)).collect();
                pool.scope(|s| {
                    for &pi in &order[1..] {
                        let slot = &results[pi];
                        let run = &run;
                        s.submit(move || {
                            *slot.lock().expect("partition slot") = Some(run(pi));
                        });
                    }
                    // The most promising partition runs right here on the
                    // caller's thread: it starts without dispatch latency
                    // and its published hits tighten everyone downstream.
                    *results[order[0]].lock().expect("partition slot") = Some(run(order[0]));
                });
                for (slot, result) in slots.iter_mut().zip(results) {
                    *slot = result.into_inner().expect("partition slot");
                }
            }
            _ => {
                for &pi in &order {
                    slots[pi] = Some(run(pi));
                }
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every partition task completed"))
            .collect()
    }
}

/// One partition's full task for one query: delta scan (cheapest stored
/// bound first, under the live shared threshold), then the trie search
/// seeded with the scan's survivors — both publishing into `collector`.
/// `cands` is the partition's precomputed live delta candidate list from
/// [`partition_schedule`] (bounds already priced; no second pass over the
/// delta segments).
#[allow(clippy::too_many_arguments)]
fn run_partition(
    frozen: &Arc<Repose>,
    tombstones: &HashMap<TrajId, u64>,
    query: &[Point],
    k: usize,
    collector: &SharedTopK,
    params: MeasureParams,
    cands: &[(f64, u64, &[Point])],
    pi: usize,
) -> PartResult {
    let t0 = Instant::now();
    let view = frozen.partition_view(pi);
    let mut stats = SearchStats::default();
    let delta_live = cands.len();
    let seeds = scan_delta(
        view.trie.measure(),
        params,
        query,
        k,
        cands,
        &mut stats,
        collector,
    );
    let filter = |id: TrajId| !tombstones.contains_key(&id);
    let local = view
        .trie
        .top_k_shared(view.store, query, k, &seeds, Some(&filter), collector);
    stats.merge(&local.stats);
    PartResult {
        hits: local.hits,
        stats,
        delta_live,
        time: t0.elapsed(),
        skipped: false,
    }
}

/// The bound-ordered partition schedule for one query: partitions sorted
/// ascending by a cheap lower bound on the best hit they could possibly
/// contain — the trie's root-level `LBo` min'd with the best stored
/// summary bound among live delta entries. No exact kernels run. The most
/// promising partition dispatches first, publishes first, and its k-th
/// distance prunes every later partition; correctness never depends on
/// the order (any schedule returns the same multiset), only wasted work
/// does.
///
/// The same pass that prices each partition also materializes its live
/// delta candidate list `(summary bound, id, arena point slice)` — the
/// exact input [`scan_delta`] needs — so the liveness filtering and O(1)
/// summary bounds are paid once per query, not once for scheduling and
/// again per scan.
#[allow(clippy::type_complexity)]
fn partition_schedule<'a>(
    frozen: &Arc<Repose>,
    deltas: &'a [DeltaSnapshot],
    tombstones: &HashMap<TrajId, u64>,
    query: &[Point],
    qsum: &TrajSummary,
    params: MeasureParams,
) -> (Vec<usize>, Vec<Vec<(f64, u64, &'a [Point])>>) {
    let measure = frozen.config().measure();
    let n = frozen.num_partitions();
    debug_assert_eq!(deltas.len(), n);
    let mut cands: Vec<Vec<(f64, u64, &[Point])>> = Vec::with_capacity(n);
    let mut keyed: Vec<(f64, usize)> = Vec::with_capacity(n);
    for (pi, segs) in deltas.iter().enumerate() {
        let mut key = frozen.partition_view(pi).trie.root_bound(query);
        let mut list: Vec<(f64, u64, &[Point])> = Vec::with_capacity(snapshot_len(segs));
        for seg in segs {
            for slot in 0..seg.store.len() {
                if seg.is_live(slot, tombstones) {
                    let lb = params.summary_lower_bound(measure, qsum, &seg.meta[slot].1);
                    key = key.min(lb);
                    list.push((lb, seg.store.id(slot), seg.store.points(slot)));
                }
            }
        }
        cands.push(list);
        keyed.push((key, pi));
    }
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    (keyed.into_iter().map(|(_, pi)| pi).collect(), cands)
}

/// Scores one partition's live delta candidates against the query,
/// cheapest stored summary bound first, keeping the best `k` under the
/// query's shared threshold
/// ([`repose_distance::MeasureParams::refine_by_bound_shared`]).
///
/// Returns the same `k` best seeds a full exact scan would (ties
/// included) while charging far less: sort keys are the insert-time
/// [`TrajSummary`] bounds precomputed by [`partition_schedule`] (O(1) per
/// candidate, no per-point walk), candidate points are contiguous arena
/// slices of the delta segments, hopeless candidates are refuted by the
/// early-abandoning kernel under the live cross-partition bound, and once
/// even the cheap lower bound cannot beat the global k-th distance the
/// (sorted) remainder is skipped outright. Accepted hits publish into
/// `collector` so later partitions' scans and trie searches prune harder.
/// Every candidate counts as an attempted verification, so
/// `exact_abandoned <= exact_computations` always holds.
fn scan_delta(
    measure: Measure,
    params: MeasureParams,
    query: &[Point],
    k: usize,
    cands: &[(f64, u64, &[Point])],
    search: &mut SearchStats,
    collector: &SharedTopK,
) -> Vec<Hit> {
    use repose_distance::RefineEvent;

    if k == 0 || cands.is_empty() {
        return Vec::new();
    }
    params
        .refine_by_bound_shared(
            measure,
            query,
            k,
            f64::INFINITY,
            Some(collector),
            cands.to_vec(),
            |e| match e {
                RefineEvent::Scored { abandoned } => {
                    search.exact_computations += 1;
                    search.exact_abandoned += usize::from(abandoned);
                }
                RefineEvent::SkippedRest(n) => {
                    search.exact_computations += n;
                    search.exact_abandoned += n;
                }
            },
        )
        .into_iter()
        .map(|(dist, id)| Hit { id, dist })
        .collect()
}

impl std::fmt::Debug for ReposeService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.read_state();
        f.debug_struct("ReposeService")
            .field("partitions", &s.frozen.num_partitions())
            .field("delta_len", &s.deltas.iter().map(DeltaLog::len).sum::<usize>())
            .field("tombstones", &s.tombstones.len())
            .field("pool_threads", &self.pool_threads())
            .field("version", &self.version.load(Ordering::Relaxed))
            .finish()
    }
}
