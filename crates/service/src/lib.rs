//! Online serving layer over a REPOSE deployment: concurrent top-k
//! queries, dynamic inserts/deletes, compaction, and an LRU result cache.
//!
//! The paper's pipeline is build-once/query-forever: [`repose::Repose`]
//! freezes every partition's RP-Trie at construction. This crate adds the
//! online path a production deployment needs, without giving up exactness:
//!
//! * **Writes** go to per-partition append-only *delta arena segments*
//!   (flat `TrajStore`s — the frozen layout's contiguous-scan property,
//!   extended to the write path) plus a tombstone map
//!   ([`ReposeService::insert`] / [`ReposeService::remove`] —
//!   upsert/delete semantics). Frozen tries are never mutated.
//! * **Queries** ([`ReposeService::query`]) search every frozen partition
//!   *and* its delta against one live `SharedTopK` collector: delta
//!   candidates are scanned cheapest-stored-summary-bound first under the
//!   global threshold (hopeless ones abandoned or skipped), the survivors
//!   seed the trie search (`RpTrie::top_k_shared`), and every accepted
//!   hit published anywhere tightens every later scan and descent —
//!   across partitions. The per-partition tasks run **wall-clock
//!   parallel** on a persistent worker pool, dispatched in *bound order*
//!   (most promising partition first, so it publishes first);
//!   [`ReposeService::query_batch`] admits whole batches onto the same
//!   pool with per-query collectors. Results are exactly what a freshly
//!   rebuilt index over the same live data would return.
//! * **Compaction** ([`ReposeService::compact`]) rebuilds *only the
//!   partitions dirtied since the last compact* (delta epoch counters +
//!   tombstone scan; untouched partitions are shared by `Arc`) off-line
//!   and swaps the deployment in atomically; readers keep serving the
//!   old state during the rebuild and are only blocked for the pointer
//!   swap. [`ReposeService::compact_full`] forces the global
//!   re-partition.
//! * **Caching**: results are cached per (quantized polyline, k, measure)
//!   and invalidated by a global write version — a cache hit is never
//!   staler than the latest completed write. Completed answers also feed
//!   a threshold-hint ring that pre-bounds near-duplicate queries'
//!   collectors (metric measures, triangle inequality — sound and
//!   answer-preserving).
//! * **Durability & failure model** (opt-in via
//!   [`ServiceConfig::durability`]): every acknowledged write is recorded
//!   in a checksummed write-ahead log *before* it is applied, compaction
//!   checkpoints truncate the log behind an atomic base snapshot, and
//!   [`ReposeService::recover`] rebuilds the exact acknowledged state
//!   after a crash (bitwise-identical query answers). Overload and
//!   deadline pressure degrade *explicitly*:
//!   [`ServiceConfig::max_inflight_queries`] sheds excess load with a
//!   typed [`ServiceError::Overloaded`], and
//!   [`ServiceConfig::query_deadline`] turns an expired query into a
//!   partial answer flagged [`ServiceOutcome::degraded`] — never a
//!   silently wrong "exact" result.
//! * **Persistent archives** (opt-in via [`ServiceConfig::archive`]):
//!   construction and every compaction atomically install a checksummed
//!   zero-copy archive of the frozen deployment ([`repose_archive`]), so
//!   [`ReposeService::recover`] restarts by *attaching* the newest valid
//!   generation (mmap + checksum verification) and replaying only the
//!   WAL tail — milliseconds instead of an index rebuild. Corrupt
//!   generations are quarantined loudly and recovery falls back to the
//!   full rebuild; [`ReposeService::scrub`] re-verifies the live
//!   generation's checksums online.
//!
//! ```
//! use repose::{Repose, ReposeConfig};
//! use repose_distance::Measure;
//! use repose_model::{Dataset, Point, Trajectory};
//! use repose_service::ReposeService;
//!
//! let trajs: Vec<Trajectory> = (0..50)
//!     .map(|i| {
//!         let y = (i % 5) as f64;
//!         Trajectory::new(i, (0..8).map(|j| Point::new(j as f64, y)).collect())
//!     })
//!     .collect();
//! let repose = Repose::build(
//!     &Dataset::from_trajectories(trajs),
//!     ReposeConfig::new(Measure::Hausdorff).with_partitions(4).with_delta(0.5),
//! );
//! let service = ReposeService::new(repose);
//!
//! let query: Vec<Point> = (0..8).map(|j| Point::new(j as f64, 0.1)).collect();
//! assert_eq!(service.query(&query, 3).unwrap().hits.len(), 3);
//!
//! // Insert a brand-new, perfectly matching trajectory: visible at once.
//! service.insert(Trajectory::new(
//!     999,
//!     (0..8).map(|j| Point::new(j as f64, 0.1)).collect(),
//! )).unwrap();
//! let out = service.query(&query, 3).unwrap();
//! assert_eq!(out.hits[0].id, 999);
//!
//! // Merge the delta into freshly rebuilt frozen tries; answers unchanged.
//! service.compact().unwrap();
//! assert_eq!(service.query(&query, 3).unwrap().hits[0].id, 999);
//! ```

#![warn(missing_docs)]

mod cache;
mod delta;
mod error;
mod service;
mod stats;

pub use error::ServiceError;
pub use service::{RecoveryReport, ReposeService, ServiceConfig, ServiceOutcome};
pub use stats::ServiceStats;

// Durability types callers need to configure [`ServiceConfig::durability`]
// or drive fault-injection tests, re-exported for convenience.
pub use repose_durability::{DurabilityConfig, FailAction, FailPlan, FsyncPolicy, WalError};

// Archive types callers need to interpret [`ReposeService::scrub`] reports
// or inspect generations written via [`ServiceConfig::archive`].
pub use repose_archive::{ArchiveError, ScrubReport};
