//! Typed errors of the serving layer.
//!
//! The write and compact paths never panic on expected failures: a full
//! admission gate, a dead or failing write-ahead log, and a lock poisoned
//! by a panicking writer all surface as [`ServiceError`] variants the
//! caller can match on. An errored write is **not acknowledged** — the
//! in-memory state is left exactly as it was.

use repose_durability::WalError;

/// Why a service operation was refused.
#[derive(Debug)]
pub enum ServiceError {
    /// The admission gate is full: the query was shed to protect the
    /// latency of those already running. Retry after back-off.
    Overloaded {
        /// Queries in flight when this one arrived.
        in_flight: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// The durability layer failed (or fail-stopped earlier); the write
    /// was not acknowledged and the in-memory state is unchanged. Recover
    /// from the durability directory to resume.
    Durability(WalError),
    /// A lock was poisoned by a panicking writer — the in-memory state
    /// can no longer be trusted for mutation.
    StatePoisoned,
    /// [`crate::ReposeService::recover`] was called with a config whose
    /// `durability` is `None`.
    DurabilityNotConfigured,
    /// A replicated record arrived out of order: applying it would leave a
    /// hole in the operation sequence, so the replica refuses (and does
    /// not acknowledge) rather than silently diverge from its leader.
    ReplicationGap {
        /// The next sequence this replica can accept.
        expected: u64,
        /// The sequence that actually arrived.
        got: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { in_flight, limit } => write!(
                f,
                "query shed: {in_flight} queries in flight at the admission limit of {limit}"
            ),
            ServiceError::Durability(e) => write!(f, "durability failure: {e}"),
            ServiceError::StatePoisoned => {
                write!(f, "service state lock poisoned by a panicking writer")
            }
            ServiceError::DurabilityNotConfigured => {
                write!(f, "recovery requires a durability configuration")
            }
            ServiceError::ReplicationGap { expected, got } => write!(
                f,
                "replicated record out of order: expected sequence {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Durability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for ServiceError {
    fn from(e: WalError) -> Self {
        ServiceError::Durability(e)
    }
}
