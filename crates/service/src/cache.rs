//! The LRU result cache and the threshold-hint ring it feeds.
//!
//! Keys quantize the query polyline onto a fine integer lattice, so two
//! float-wise-identical (or nearly identical, within ~1e-7 of a
//! coordinate unit) queries with the same `k` and measure share an entry.
//! Every entry is stamped with the service's *write version*; any
//! insert/delete/compact bumps the version, so stale entries are never
//! served — they are lazily dropped when next touched.
//!
//! Beyond exact-key hits, completed answers also feed a small ring of
//! [`ThresholdHint`]s: for *metric* measures, a cached k-th distance for a
//! nearby query `q'` bounds the current query's k-th distance via the
//! triangle inequality (`dk(q) <= dk(q') + d(q, q')`), so a cache *miss*
//! can still start its search with a finite pruning threshold (see
//! [`hint_candidates`](QueryCache::hint_candidates)).

use repose_distance::Measure;
use repose_model::Point;
use repose_rptrie::Hit;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Lattice scale for query quantization: coordinates are rounded to
/// multiples of 1e-7, well below any distance the indexes distinguish.
const QUANT_SCALE: f64 = 1e7;

/// A cache key: measure, k, and the quantized polyline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    measure: Measure,
    k: usize,
    poly: Vec<(i64, i64)>,
}

impl CacheKey {
    pub(crate) fn new(measure: Measure, query: &[Point], k: usize) -> Self {
        CacheKey {
            measure,
            k,
            poly: query
                .iter()
                .map(|p| ((p.x * QUANT_SCALE).round() as i64, (p.y * QUANT_SCALE).round() as i64))
                .collect(),
        }
    }
}

struct Entry {
    hits: Vec<Hit>,
    version: u64,
    last_used: u64,
}

/// How many recent full answers the threshold-hint ring retains. Small on
/// purpose: each candidate costs one exact query-to-query kernel call at
/// lookup time.
const HINT_RING: usize = 8;

/// A recent complete answer, kept for triangle-inequality threshold
/// seeding. The query polyline is shared (`Arc`) so hint lookups can
/// release the cache lock before running any distance kernel.
///
/// Hints are stamped with the service's **operation sequence**
/// (`ServeState::op_seq`, read under the same lock as the data snapshot)
/// rather than the write version: the op-seq identifies the logical live
/// set exactly, so a hint applies iff the current snapshot is the *same*
/// dataset the hint's k-th distance was computed on — immune to the
/// load-version/take-snapshot race a version stamp would have (a delete
/// completing in between could otherwise make the bound unsound), and
/// hints survive compaction (which changes no live data).
#[derive(Clone)]
pub(crate) struct ThresholdHint {
    /// The answered query.
    pub(crate) query: Arc<[Point]>,
    /// Its k-th (worst returned) distance.
    pub(crate) kth: f64,
    measure: Measure,
    k: usize,
    state_seq: u64,
}

/// A version-checked LRU map from queries to top-k hit lists, plus the
/// threshold-hint ring.
pub(crate) struct QueryCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<CacheKey, Entry>,
    hints: VecDeque<ThresholdHint>,
}

impl QueryCache {
    pub(crate) fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
            hints: VecDeque::new(),
        }
    }

    /// A hit only if the entry was produced at the current write version.
    pub(crate) fn get(&mut self, key: &CacheKey, current_version: u64) -> Option<Vec<Hit>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            Some(e) if e.version == current_version => {
                e.last_used = clock;
                Some(e.hits.clone())
            }
            Some(_) => {
                // Stale: written before the last mutation. Drop it.
                self.entries.remove(key);
                None
            }
            None => None,
        }
    }

    pub(crate) fn put(&mut self, key: CacheKey, version: u64, hits: Vec<Hit>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the least-recently-used entry. Linear scan: the
            // capacity is small (default 1024) and eviction is off the
            // cache-hit fast path.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        self.entries
            .insert(key, Entry { hits, version, last_used: self.clock });
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Records a completed full answer (`hits.len() == k`) as a threshold
    /// hint, stamped with the op-seq of the snapshot it was computed on.
    /// Only metric measures are kept — the triangle-inequality bound
    /// below is unsound for DTW/LCSS/EDR.
    pub(crate) fn record_hint(
        &mut self,
        measure: Measure,
        query: &[Point],
        k: usize,
        state_seq: u64,
        kth: f64,
    ) {
        if self.capacity == 0 || !measure.is_metric() || k == 0 {
            return;
        }
        if self.hints.len() == HINT_RING {
            self.hints.pop_front();
        }
        self.hints.push_back(ThresholdHint {
            query: Arc::from(query),
            kth,
            measure,
            k,
            state_seq,
        });
    }

    /// The hints usable for a `(measure, k)` query over the snapshot with
    /// op-seq `state_seq`: same measure, same `k`, same logical dataset
    /// (any write in between changes the op-seq, and a hint over
    /// different data — deletes especially — is not a sound bound). The
    /// caller computes `min(hint.kth + d(q, hint.query))` over these
    /// *outside* the cache lock — the kernel calls are the expensive part.
    pub(crate) fn hint_candidates(
        &self,
        measure: Measure,
        k: usize,
        state_seq: u64,
    ) -> Vec<ThresholdHint> {
        self.hints
            .iter()
            .filter(|h| h.measure == measure && h.k == k && h.state_seq == state_seq)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(x: f64, k: usize) -> CacheKey {
        CacheKey::new(Measure::Hausdorff, &[Point::new(x, 0.0)], k)
    }

    fn hits(id: u64) -> Vec<Hit> {
        vec![Hit { id, dist: 1.0 }]
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let mut c = QueryCache::new(8);
        c.put(key(1.0, 5), 1, hits(1));
        assert!(c.get(&key(1.0, 5), 1).is_some());
        assert!(c.get(&key(1.0, 5), 2).is_none(), "stale version served");
        assert_eq!(c.len(), 0, "stale entry should be dropped");
    }

    #[test]
    fn quantization_bridges_float_noise() {
        let a = CacheKey::new(Measure::Hausdorff, &[Point::new(1.0, 2.0)], 3);
        let b = CacheKey::new(
            Measure::Hausdorff,
            &[Point::new(1.0 + 1e-12, 2.0 - 1e-12)],
            3,
        );
        assert_eq!(a, b);
        let c = CacheKey::new(Measure::Hausdorff, &[Point::new(1.1, 2.0)], 3);
        assert_ne!(a, c);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = QueryCache::new(2);
        c.put(key(1.0, 1), 1, hits(1));
        c.put(key(2.0, 1), 1, hits(2));
        assert!(c.get(&key(1.0, 1), 1).is_some()); // touch 1 -> 2 is LRU
        c.put(key(3.0, 1), 1, hits(3));
        assert!(c.get(&key(2.0, 1), 1).is_none(), "LRU entry survived");
        assert!(c.get(&key(1.0, 1), 1).is_some());
        assert!(c.get(&key(3.0, 1), 1).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = QueryCache::new(0);
        c.put(key(1.0, 1), 1, hits(1));
        assert!(c.get(&key(1.0, 1), 1).is_none());
    }

    #[test]
    fn hints_match_on_measure_k_and_version() {
        let mut c = QueryCache::new(8);
        let q = [Point::new(1.0, 2.0)];
        c.record_hint(Measure::Hausdorff, &q, 5, 3, 1.25);
        // Exact context: returned.
        let got = c.hint_candidates(Measure::Hausdorff, 5, 3);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].kth, 1.25);
        assert_eq!(&*got[0].query, &q[..]);
        // Any mismatch — k, version, or measure — filters it out.
        assert!(c.hint_candidates(Measure::Hausdorff, 4, 3).is_empty());
        assert!(c.hint_candidates(Measure::Hausdorff, 5, 4).is_empty());
        assert!(c.hint_candidates(Measure::Frechet, 5, 3).is_empty());
    }

    #[test]
    fn hints_reject_non_metric_measures_and_ring_is_bounded() {
        let mut c = QueryCache::new(8);
        let q = [Point::new(0.0, 0.0)];
        // DTW/LCSS/EDR have no triangle inequality: never recorded.
        for m in [Measure::Dtw, Measure::Lcss, Measure::Edr] {
            c.record_hint(m, &q, 3, 1, 0.5);
            assert!(c.hint_candidates(m, 3, 1).is_empty(), "{m:?}");
        }
        // The ring keeps only the most recent HINT_RING entries.
        for i in 0..20 {
            c.record_hint(Measure::Hausdorff, &[Point::new(i as f64, 0.0)], 3, 1, i as f64);
        }
        let got = c.hint_candidates(Measure::Hausdorff, 3, 1);
        assert_eq!(got.len(), super::HINT_RING);
        assert_eq!(got[0].kth, 12.0, "oldest surviving entry");
    }

    #[test]
    fn disabled_cache_disables_hints() {
        let mut c = QueryCache::new(0);
        c.record_hint(Measure::Hausdorff, &[Point::new(0.0, 0.0)], 3, 1, 0.5);
        assert!(c.hint_candidates(Measure::Hausdorff, 3, 1).is_empty());
    }
}
