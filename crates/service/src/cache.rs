//! The LRU result cache.
//!
//! Keys quantize the query polyline onto a fine integer lattice, so two
//! float-wise-identical (or nearly identical, within ~1e-7 of a
//! coordinate unit) queries with the same `k` and measure share an entry.
//! Every entry is stamped with the service's *write version*; any
//! insert/delete/compact bumps the version, so stale entries are never
//! served — they are lazily dropped when next touched.

use repose_distance::Measure;
use repose_model::Point;
use repose_rptrie::Hit;
use std::collections::HashMap;

/// Lattice scale for query quantization: coordinates are rounded to
/// multiples of 1e-7, well below any distance the indexes distinguish.
const QUANT_SCALE: f64 = 1e7;

/// A cache key: measure, k, and the quantized polyline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    measure: Measure,
    k: usize,
    poly: Vec<(i64, i64)>,
}

impl CacheKey {
    pub(crate) fn new(measure: Measure, query: &[Point], k: usize) -> Self {
        CacheKey {
            measure,
            k,
            poly: query
                .iter()
                .map(|p| ((p.x * QUANT_SCALE).round() as i64, (p.y * QUANT_SCALE).round() as i64))
                .collect(),
        }
    }
}

struct Entry {
    hits: Vec<Hit>,
    version: u64,
    last_used: u64,
}

/// A version-checked LRU map from queries to top-k hit lists.
pub(crate) struct QueryCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<CacheKey, Entry>,
}

impl QueryCache {
    pub(crate) fn new(capacity: usize) -> Self {
        QueryCache { capacity, clock: 0, entries: HashMap::new() }
    }

    /// A hit only if the entry was produced at the current write version.
    pub(crate) fn get(&mut self, key: &CacheKey, current_version: u64) -> Option<Vec<Hit>> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            Some(e) if e.version == current_version => {
                e.last_used = clock;
                Some(e.hits.clone())
            }
            Some(_) => {
                // Stale: written before the last mutation. Drop it.
                self.entries.remove(key);
                None
            }
            None => None,
        }
    }

    pub(crate) fn put(&mut self, key: CacheKey, version: u64, hits: Vec<Hit>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the least-recently-used entry. Linear scan: the
            // capacity is small (default 1024) and eviction is off the
            // cache-hit fast path.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
            }
        }
        self.entries
            .insert(key, Entry { hits, version, last_used: self.clock });
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(x: f64, k: usize) -> CacheKey {
        CacheKey::new(Measure::Hausdorff, &[Point::new(x, 0.0)], k)
    }

    fn hits(id: u64) -> Vec<Hit> {
        vec![Hit { id, dist: 1.0 }]
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let mut c = QueryCache::new(8);
        c.put(key(1.0, 5), 1, hits(1));
        assert!(c.get(&key(1.0, 5), 1).is_some());
        assert!(c.get(&key(1.0, 5), 2).is_none(), "stale version served");
        assert_eq!(c.len(), 0, "stale entry should be dropped");
    }

    #[test]
    fn quantization_bridges_float_noise() {
        let a = CacheKey::new(Measure::Hausdorff, &[Point::new(1.0, 2.0)], 3);
        let b = CacheKey::new(
            Measure::Hausdorff,
            &[Point::new(1.0 + 1e-12, 2.0 - 1e-12)],
            3,
        );
        assert_eq!(a, b);
        let c = CacheKey::new(Measure::Hausdorff, &[Point::new(1.1, 2.0)], 3);
        assert_ne!(a, c);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = QueryCache::new(2);
        c.put(key(1.0, 1), 1, hits(1));
        c.put(key(2.0, 1), 1, hits(2));
        assert!(c.get(&key(1.0, 1), 1).is_some()); // touch 1 -> 2 is LRU
        c.put(key(3.0, 1), 1, hits(3));
        assert!(c.get(&key(2.0, 1), 1).is_none(), "LRU entry survived");
        assert!(c.get(&key(1.0, 1), 1).is_some());
        assert!(c.get(&key(3.0, 1), 1).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = QueryCache::new(0);
        c.put(key(1.0, 1), 1, hits(1));
        assert!(c.get(&key(1.0, 1), 1).is_none());
    }
}
