//! Serving-side operation counters and latency tracking.

use repose_cluster::LatencySummary;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many recent latency samples each reservoir keeps. Old samples are
/// overwritten ring-buffer style, so percentiles describe recent traffic.
const RESERVOIR: usize = 4096;

#[derive(Debug, Default)]
pub(crate) struct Reservoir {
    samples: Vec<Duration>,
    next: usize,
}

impl Reservoir {
    fn record(&mut self, d: Duration) {
        if self.samples.len() < RESERVOIR {
            self.samples.push(d);
        } else {
            self.samples[self.next] = d;
            self.next = (self.next + 1) % RESERVOIR;
        }
    }
}

/// Internal mutable counters of a `ReposeService`.
#[derive(Debug, Default)]
pub(crate) struct ServiceCounters {
    pub(crate) queries: AtomicU64,
    pub(crate) inserts: AtomicU64,
    pub(crate) deletes: AtomicU64,
    pub(crate) compactions: AtomicU64,
    pub(crate) partitions_rebuilt: AtomicU64,
    pub(crate) last_compact_rebuilt: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    /// Queries answered with a deadline-degraded (partial) schedule.
    pub(crate) queries_degraded: AtomicU64,
    /// Queries rejected at the admission gate.
    pub(crate) queries_shed: AtomicU64,
    /// Data records replayed by [`crate::ReposeService::recover`] (0 for a
    /// fresh service).
    pub(crate) recovered_records: AtomicU64,
    /// Snapshot bytes written by compaction checkpoints (the WAL's own
    /// counters cover only its segments).
    pub(crate) snapshot_bytes: AtomicU64,
    /// Archive generations successfully installed (construction +
    /// compactions).
    pub(crate) archive_generations: AtomicU64,
    /// Archive installs that failed. An archive is a restart accelerator,
    /// not the source of truth, so a failed install degrades gracefully:
    /// it is counted here and serving continues on the WAL alone.
    pub(crate) archive_write_failures: AtomicU64,
    /// Completed [`crate::ReposeService::scrub`] passes.
    pub(crate) scrubs: AtomicU64,
    /// Corrupt regions found across all scrub passes (0 = every scrubbed
    /// byte re-verified against its recorded checksum).
    pub(crate) scrub_corruptions: AtomicU64,
    pub(crate) read_latency: Mutex<Reservoir>,
    pub(crate) write_latency: Mutex<Reservoir>,
}

impl ServiceCounters {
    pub(crate) fn record_read(&self, d: Duration) {
        self.read_latency.lock().expect("stats lock").record(d);
    }

    pub(crate) fn record_write(&self, d: Duration) {
        self.write_latency.lock().expect("stats lock").record(d);
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        delta_len: usize,
        tombstones: usize,
        cached: usize,
        partitions: usize,
        wal: repose_durability::WalCounters,
    ) -> ServiceStats {
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            partitions_rebuilt: self.partitions_rebuilt.load(Ordering::Relaxed),
            last_compact_rebuilt: self.last_compact_rebuilt.load(Ordering::Relaxed) as usize,
            partitions,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            delta_len,
            tombstones,
            cached_queries: cached,
            wal_bytes: wal.bytes_written + self.snapshot_bytes.load(Ordering::Relaxed),
            wal_fsyncs: wal.fsyncs,
            recovered_records: self.recovered_records.load(Ordering::Relaxed),
            queries_degraded: self.queries_degraded.load(Ordering::Relaxed),
            queries_shed: self.queries_shed.load(Ordering::Relaxed),
            archive_generations: self.archive_generations.load(Ordering::Relaxed),
            archive_write_failures: self.archive_write_failures.load(Ordering::Relaxed),
            scrubs: self.scrubs.load(Ordering::Relaxed),
            scrub_corruptions: self.scrub_corruptions.load(Ordering::Relaxed),
            read_latency: LatencySummary::from_durations(
                self.read_latency.lock().expect("stats lock").samples.clone(),
            ),
            write_latency: LatencySummary::from_durations(
                self.write_latency.lock().expect("stats lock").samples.clone(),
            ),
        }
    }
}

/// A point-in-time snapshot of a service's operational counters.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Queries served (cache hits included).
    pub queries: u64,
    /// Inserts/upserts accepted.
    pub inserts: u64,
    /// Deletes accepted.
    pub deletes: u64,
    /// Completed compactions.
    pub compactions: u64,
    /// Partitions rebuilt across all compactions so far. Incremental
    /// compaction rebuilds only dirtied partitions, so this grows by the
    /// dirty count per compact — not by the partition count.
    pub partitions_rebuilt: u64,
    /// Partitions the most recent compaction rebuilt (0 before any
    /// compaction).
    pub last_compact_rebuilt: usize,
    /// Partitions in the deployment (the rebuild counters' denominator).
    pub partitions: usize,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that had to search.
    pub cache_misses: u64,
    /// Delta-log entries currently buffered across partitions
    /// (superseded entries included — this is the compaction backlog).
    pub delta_len: usize,
    /// Live tombstone records (ids hidden from the frozen index).
    pub tombstones: usize,
    /// Entries currently in the result cache.
    pub cached_queries: usize,
    /// Bytes the durability layer has handed to the OS (WAL segments plus
    /// compaction snapshots; 0 for a volatile service).
    pub wal_bytes: u64,
    /// `fsync` calls the WAL has issued (0 for a volatile service).
    pub wal_fsyncs: u64,
    /// Data records (upserts + deletes) replayed at recovery (0 for a
    /// fresh service).
    pub recovered_records: u64,
    /// Queries whose deadline expired mid-schedule and were answered
    /// explicitly degraded (partial partition coverage).
    pub queries_degraded: u64,
    /// Queries rejected at the admission gate under overload.
    pub queries_shed: u64,
    /// Archive generations successfully installed by this service
    /// (construction + compactions; 0 without
    /// [`crate::ServiceConfig::archive`]).
    pub archive_generations: u64,
    /// Archive installs that failed and were degraded past (the service
    /// keeps serving on the WAL alone — an archive only accelerates
    /// restarts, it is never the source of truth).
    pub archive_write_failures: u64,
    /// Completed online [`crate::ReposeService::scrub`] passes.
    pub scrubs: u64,
    /// Corrupt regions found across all scrub passes (anything non-zero
    /// means the current archive generation must not be trusted for the
    /// next restart; it will be quarantined by recovery).
    pub scrub_corruptions: u64,
    /// Recent query latencies (host wall time, reservoir-sampled).
    pub read_latency: LatencySummary,
    /// Recent insert/delete latencies.
    pub write_latency: LatencySummary,
}

impl ServiceStats {
    /// Cache hit rate over all queries so far (0 when no queries).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}
